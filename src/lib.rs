//! Facade for the workspace's top-level examples and integration tests.
//!
//! Downstream users should depend on the [`asymfence`] and
//! [`asymfence_workloads`] crates directly; this crate only re-exports them
//! so the repository's `examples/` and `tests/` have a single import root.

pub use asymfence;
pub use asymfence_workloads as workloads;

/// Commonly used items for examples and tests.
pub mod prelude {
    pub use asymfence::prelude::*;
    pub use asymfence_workloads as workloads;
}
