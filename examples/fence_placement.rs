//! Fence placement end-to-end: the delay-set analyzer decides where
//! fences go; the simulator + SC checker confirm the placement works and
//! that removing a required fence re-exposes the violation.
//!
//! Run with: `cargo run --example fence_placement`

use asymfence_suite::prelude::*;
use asymfence::placement::{fence_positions, Relaxation, StaticAccess, StaticProgram};

fn addr_of(loc: u64) -> Addr {
    Addr::new(0x40 * loc)
}

/// Turns a static thread into a runnable program, inserting fences at the
/// analyzer's positions (thread 0 gets the critical role).
fn realize(
    accs: &[StaticAccess],
    fences: &[usize],
    role: FenceRole,
    thread: usize,
) -> (ScriptProgram, Registers) {
    let mut instrs = Vec::new();
    let mut tag = 1;
    // Reordering pressure, as in the litmus suite: warm the read targets
    // so post-fence loads are fast, and queue a cold store so the write
    // buffer is busy when the interesting accesses arrive.
    for a in accs.iter().filter(|a| !a.is_write) {
        instrs.push(Instr::Load {
            addr: addr_of(a.addr),
            tag: None,
        });
    }
    instrs.push(Instr::Compute { cycles: 1600 });
    instrs.push(Instr::Store {
        addr: Addr::new(0x100000 + 0x40000 * thread as u64),
        value: 1,
    });
    for (i, a) in accs.iter().enumerate() {
        if a.is_write {
            instrs.push(Instr::Store {
                addr: addr_of(a.addr),
                value: 1,
            });
        } else {
            instrs.push(Instr::Load {
                addr: addr_of(a.addr),
                tag: Some(tag),
            });
            tag += 1;
        }
        if fences.contains(&i) {
            instrs.push(Instr::fence(role));
        }
    }
    ScriptProgram::new(instrs)
}

fn run_and_check(prog: &StaticProgram, placements: &[Vec<usize>], design: FenceDesign) -> bool {
    let cfg = MachineConfig::builder()
        .cores(prog.threads().len().max(2))
        .fence_design(design)
        .record_scv_log(true)
        .build();
    let mut m = Machine::new(&cfg);
    for (t, accs) in prog.threads().iter().enumerate() {
        let role = if t == 0 {
            FenceRole::Critical
        } else {
            FenceRole::NonCritical
        };
        let (p, _) = realize(accs, &placements[t], role, t);
        m.add_thread(Box::new(p));
    }
    assert_eq!(m.run(10_000_000), RunOutcome::Finished);
    !scv::has_violation(m.scv_log().expect("log on"))
}

fn main() {
    let w = StaticAccess::write;
    let r = StaticAccess::read;

    println!("delay-set analysis -> fence placement -> simulate -> verify SC\n");

    let cases: Vec<(&str, StaticProgram)> = vec![
        (
            "store buffering (fig 1a)",
            StaticProgram::new(vec![vec![w(0), r(1)], vec![w(1), r(0)]]),
        ),
        (
            "message passing",
            StaticProgram::new(vec![vec![w(0), w(1)], vec![r(1), r(0)]]),
        ),
        (
            "3-thread cycle (fig 1e)",
            StaticProgram::new(vec![vec![w(0), r(1)], vec![w(1), r(2)], vec![w(2), r(0)]]),
        ),
        (
            "independent threads",
            StaticProgram::new(vec![vec![w(0), r(1)], vec![w(2), r(3)]]),
        ),
    ];

    for (name, prog) in cases {
        let placements = fence_positions(&prog, Relaxation::Tso);
        let total: usize = placements.iter().map(Vec::len).sum();
        println!("{name}: {total} fence(s) needed under TSO -> {placements:?}");
        for design in [FenceDesign::SPlus, FenceDesign::WsPlus] {
            let sc = run_and_check(&prog, &placements, design);
            println!("   with placement, {design}: SC preserved = {sc}");
            assert!(sc, "analyzer placement must preserve SC");
        }
        if total > 0 {
            // Drop every fence: the violation should be reachable.
            let none: Vec<Vec<usize>> = placements.iter().map(|_| Vec::new()).collect();
            let sc = run_and_check(&prog, &none, FenceDesign::SPlus);
            println!("   without fences: SC preserved = {sc} (violation expected)");
        }
        println!();
    }
}
