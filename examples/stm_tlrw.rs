//! Software transactional memory: TLRW read/write-lock transactions with
//! a weak fence in the (frequent) read barrier and a strong fence in the
//! (rare) write barrier — the paper's §4.2 usage. Reports transactional
//! throughput like Figure 9.
//!
//! Run with: `cargo run --release --example stm_tlrw [bench]`

use asymfence_suite::prelude::*;
use asymfence_suite::workloads::tlrw;
use asymfence_suite::workloads::ustm::{self, UstmBench};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Hash".into());
    let bench = UstmBench::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {name:?}; using Hash");
            UstmBench::Hash
        });

    const WINDOW: u64 = 3_000_000; // simulated cycles per run
    println!(
        "TLRW STM: {} for {} simulated cycles on 8 cores\n",
        bench.name(),
        WINDOW
    );

    let mut base = None;
    for design in [
        FenceDesign::SPlus,
        FenceDesign::WsPlus,
        FenceDesign::WPlus,
        FenceDesign::Wee,
    ] {
        let cfg = MachineConfig::builder()
            .cores(8)
            .fence_design(design)
            .seed(2015)
            .build();
        let mut m = Machine::new(&cfg);
        ustm::install(&mut m, bench, cfg.seed, None);
        m.run(WINDOW);
        let (commits, aborts) = tlrw::tally(&m);
        let b = *base.get_or_insert(commits.max(1));
        let stats = m.stats();
        println!(
            "{:>4}: {commits:>7} commits ({:>5.1}% of S+) | {aborts} aborts | fence stall {:>4.1}%",
            design.label(),
            100.0 * commits as f64 / b as f64,
            100.0 * stats.fence_stall_fraction(),
        );
    }
}
