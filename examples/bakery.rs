//! Lamport's Bakery lock (paper §4.3): arbitrary-size fence groups, with
//! either one prioritized thread (WS+ usage) or all-fast threads (W+).
//!
//! Run with: `cargo run --release --example bakery`

use asymfence_suite::prelude::*;
use asymfence_suite::workloads::bakery::{self, RoleAssign};

fn main() {
    const ITERS: u64 = 40;
    println!("Bakery mutual exclusion, 4 threads x {ITERS} critical sections\n");

    for (design, roles) in [
        (FenceDesign::SPlus, RoleAssign::PriorityThread0),
        (FenceDesign::WsPlus, RoleAssign::PriorityThread0),
        (FenceDesign::SwPlus, RoleAssign::PriorityThread0),
        (FenceDesign::WPlus, RoleAssign::AllCritical),
    ] {
        let cfg = MachineConfig::builder()
            .cores(4)
            .fence_design(design)
            .seed(6)
            .build();
        let mut m = Machine::new(&cfg);
        for p in bakery::programs(&cfg, roles, ITERS, cfg.seed) {
            m.add_thread(p);
        }
        let outcome = m.run(2_000_000_000);
        assert_eq!(outcome, RunOutcome::Finished, "{design}");
        let (entries, violations) = bakery::tally(&m);
        assert_eq!(violations, 0, "{design} must preserve mutual exclusion");
        let stats = m.stats();
        println!(
            "{:>4} ({roles:?}): {} cycles | {entries} CS entries | 0 violations | recoveries {}",
            design.label(),
            stats.cycles,
            stats.aggregate().recoveries,
        );
    }
}
