//! Litmus matrix: run the paper's figure scenarios under every design and
//! verify SC with the Shasha–Snir cycle checker — including the Figure 3a
//! deadlock of unprotected weak fences and its W+ recovery.
//!
//! Run with: `cargo run --example litmus_scv`

use asymfence_suite::prelude::*;
use asymfence_suite::workloads::litmus;

fn run_case(
    name: &str,
    design: FenceDesign,
    setup: litmus::LitmusSetup,
    expect_deadlock: bool,
) {
    let (progs, _regs) = setup;
    let cfg = MachineConfig::builder()
        .cores(progs.len().max(2))
        .fence_design(design)
        .watchdog_cycles(30_000)
        .record_scv_log(true)
        .build();
    let mut m = Machine::new(&cfg);
    for p in progs {
        m.add_thread(p);
    }
    let outcome = m.run(50_000_000);
    let verdict = match outcome {
        RunOutcome::Deadlocked if expect_deadlock => "deadlock (expected)".to_string(),
        RunOutcome::Deadlocked => "DEADLOCK (unexpected!)".to_string(),
        RunOutcome::Finished => {
            let log = m.scv_log().expect("scv log enabled");
            match scv::find_cycle(log) {
                None => format!("SC preserved ({} accesses checked)", log.len()),
                Some(c) => format!("SC VIOLATION!\n{}", scv::describe_cycle(log, &c)),
            }
        }
        RunOutcome::CycleLimit => "cycle limit".to_string(),
    };
    println!("  {:<14} {:>5}: {}", name, design.label(), verdict);
}

fn main() {
    use FenceRole::{Critical, NonCritical};
    println!("litmus matrix (paper figures 1, 3, 4)\n");

    for design in [
        FenceDesign::SPlus,
        FenceDesign::WsPlus,
        FenceDesign::SwPlus,
        FenceDesign::WPlus,
        FenceDesign::Wee,
    ] {
        run_case(
            "SB (fig 1d)",
            design,
            litmus::store_buffering(Some((Critical, NonCritical))),
            false,
        );
    }
    for design in [FenceDesign::WsPlus, FenceDesign::SwPlus] {
        run_case(
            "3-thread (3c)",
            design,
            litmus::three_thread_cycle([Critical, NonCritical, NonCritical]),
            false,
        );
    }
    run_case(
        "3-thread (3c)",
        FenceDesign::WPlus,
        litmus::three_thread_cycle([Critical; 3]),
        false,
    );
    for design in [FenceDesign::WsPlus, FenceDesign::SwPlus, FenceDesign::WPlus] {
        run_case(
            "false-share(4b)",
            design,
            litmus::false_sharing_pair(Critical, Critical),
            false,
        );
    }
    run_case(
        "fig 3a",
        FenceDesign::WfOnlyUnsafe,
        litmus::false_sharing_pair(Critical, Critical),
        true,
    );
    println!("\nall scenarios behaved as the paper describes.");
}
