//! Work stealing: run a Cilk-style application on the THE deque and show
//! how asymmetric fences (weak fence for the owner, strong for the thief)
//! recover the fence stall of the owner's `take()`.
//!
//! Run with: `cargo run --release --example work_stealing [app]`

use asymfence_suite::prelude::*;
use asymfence_suite::workloads::cilk::{self, CilkApp, CilkWorker};

fn main() {
    let app_name = std::env::args().nth(1).unwrap_or_else(|| "fib".into());
    let app = CilkApp::ALL
        .into_iter()
        .find(|a| a.name() == app_name)
        .unwrap_or_else(|| {
            eprintln!("unknown app {app_name:?}; using fib");
            CilkApp::Fib
        });

    println!("work stealing: {} on 8 cores\n", app.name());
    let mut baseline_cycles = None;
    for design in [FenceDesign::SPlus, FenceDesign::WsPlus, FenceDesign::WPlus] {
        let cfg = MachineConfig::builder()
            .cores(8)
            .fence_design(design)
            .seed(2015)
            .build();
        let mut m = Machine::new(&cfg);
        cilk::setup(&mut m, app, cfg.seed);
        let outcome = m.run(2_000_000_000);
        assert_eq!(outcome, RunOutcome::Finished, "{design}");

        let stats = m.stats();
        let agg = stats.aggregate();
        let (mut executed, mut stolen) = (0u64, 0u64);
        for i in 0..8 {
            let w = m
                .thread_program(CoreId(i))
                .as_any()
                .downcast_ref::<CilkWorker>()
                .expect("cilk worker");
            executed += w.executed;
            stolen += w.stolen;
        }
        let base = *baseline_cycles.get_or_insert(stats.cycles);
        println!(
            "{:>4}: {:>10} cycles ({:>5.1}% of S+) | tasks {executed} (stolen {stolen}, {:.2}%) \
             | fence stall {:.1}% of core time",
            design.label(),
            stats.cycles,
            100.0 * stats.cycles as f64 / base as f64,
            100.0 * stolen as f64 / executed.max(1) as f64,
            100.0 * stats.fence_stall_fraction(),
        );
        let _ = agg;
    }
}
