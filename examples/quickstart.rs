//! Quickstart: build a machine, run a Dekker-style asymmetric fence
//! group, and compare the fence designs.
//!
//! Run with: `cargo run --example quickstart`

use asymfence_suite::prelude::*;

fn main() {
    println!("asymfence quickstart — Dekker flags under each fence design\n");

    // Two threads set crossed flags and then read the other's flag. The
    // fence between the store and the load keeps the execution
    // sequentially consistent: at least one thread must see the other's
    // flag set.
    for design in [
        FenceDesign::SPlus,
        FenceDesign::WsPlus,
        FenceDesign::SwPlus,
        FenceDesign::WPlus,
        FenceDesign::Wee,
    ] {
        let cfg = MachineConfig::builder()
            .cores(2)
            .fence_design(design)
            .build();
        let mut machine = Machine::new(&cfg);

        let x = Addr::new(0x00);
        let y = Addr::new(0x40);
        let (a, ra) = ScriptProgram::new(vec![
            Instr::Store { addr: x, value: 1 },
            // The hot thread's fence: weak under WS+/SW+/W+.
            Instr::fence(FenceRole::Critical),
            Instr::Load { addr: y, tag: Some(1) },
        ]);
        let (b, rb) = ScriptProgram::new(vec![
            Instr::Store { addr: y, value: 1 },
            // The rare thread's fence: strong under WS+/SW+.
            Instr::fence(FenceRole::NonCritical),
            Instr::Load { addr: x, tag: Some(1) },
        ]);
        machine.add_thread(Box::new(a));
        machine.add_thread(Box::new(b));

        let outcome = machine.run(1_000_000);
        assert_eq!(outcome, RunOutcome::Finished);

        let (r1, r2) = (ra.borrow()[&1], rb.borrow()[&1]);
        assert_ne!((r1, r2), (0, 0), "the non-SC outcome must never happen");

        let stats = machine.stats();
        let agg = stats.aggregate();
        println!(
            "{:>4}: {} cycles | fences sf={} wf={} | fence-stall {} cycles | outcome r1={r1} r2={r2}",
            design.label(),
            stats.cycles,
            agg.sf_count,
            agg.wf_count,
            agg.fence_stall_cycles,
        );
    }

    println!("\nEvery design preserved sequential consistency.");
}
