#!/usr/bin/env bash
# Tier-1 verification, fully offline: the workspace has no external
# dependencies, so every step runs with --offline and must succeed on a
# machine with no network and no registry cache.
#
#   ./ci.sh         full tier-1 + explorer smoke sweep
#   ./ci.sh quick   skip the release build (fast local loop)
set -euo pipefail
cd "$(dirname "$0")"

QUICK="${1:-}"

echo "== build (release, offline) =="
if [ "$QUICK" != "quick" ]; then
  cargo build --release --offline --workspace
fi

echo "== clippy (workspace, -D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== docs (rustdoc, -D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps

echo "== test (workspace, offline) =="
cargo test -q --offline --workspace

echo "== parallel harness smoke (jobs=2 == jobs=1, byte-for-byte) =="
# The run engine must produce identical stdout, CSVs, and telemetry
# snapshots at any worker count; run the full quick grid serially and
# with two workers and diff. ASF_TELEMETRY_DETERMINISTIC masks
# wall-clock/RSS so the --metrics JSON is comparable byte-for-byte.
if [ "$QUICK" != "quick" ]; then
  SMOKE="$(mktemp -d)"
  trap 'rm -rf "${SMOKE:-}" "${SYNTH:-}" "${EXH:-}" "${ANA:-}" "${NATIVE:-}" "${SWEEP:-}"' EXIT
  for jobs in 1 2; do
    mkdir -p "$SMOKE/j$jobs"
    ( cd "$SMOKE/j$jobs" && \
      ASF_QUICK=1 ASF_JOBS=$jobs ASF_PROGRESS=0 ASF_TELEMETRY_DETERMINISTIC=1 \
        "$OLDPWD/target/release/all_experiments" --metrics metrics.json \
        > stdout.txt )
  done
  diff -u "$SMOKE/j1/stdout.txt" "$SMOKE/j2/stdout.txt"
  diff -r "$SMOKE/j1/results" "$SMOKE/j2/results"
  diff -u "$SMOKE/j1/metrics.json" "$SMOKE/j2/metrics.json"

  echo "== perf gate (perfdiff vs results/bench_baseline.json) =="
  # Counters, derived ratios and fence percentiles must match the
  # checked-in baseline exactly (wall fields are masked on both sides);
  # schema or key drift fails. Re-bless by regenerating the baseline:
  #   ASF_TELEMETRY_DETERMINISTIC=1 ASF_QUICK=1 ASF_PROGRESS=0 \
  #     target/release/all_experiments --quick --metrics results/bench_baseline.json
  # (run it in a scratch dir and copy the JSON in, so results/*.csv keep
  # their full-run contents).
  target/release/perfdiff --check results/bench_baseline.json \
    "$SMOKE/j1/metrics.json"

  echo "== throughput floor (quick grid, serial, >= 1.2M sim-cycles/s) =="
  # Absolute kernel-speed gate: re-run the quick grid with real timing
  # (no deterministic masking) and require the event-driven kernel to
  # sustain the floor. With --metrics the grid runs fence-traced, which
  # costs ~25%: the post-refactor kernel measures ~1.7M cycles/s traced
  # on the reference container, the pre-refactor lock-step kernel ~1.0M.
  # 1.2M sits between the two, so a regression to per-cycle ticking or a
  # hot-path allocation creep trips it while machine noise does not.
  # Raise the floor when the kernel gets faster.
  mkdir -p "$SMOKE/floor"
  ( cd "$SMOKE/floor" && \
    ASF_QUICK=1 ASF_JOBS=1 ASF_PROGRESS=0 \
      "$OLDPWD/target/release/all_experiments" --metrics metrics.json \
      > stdout.txt )
  target/release/perfdiff --throughput-floor 1200000 "$SMOKE/floor/metrics.json"
fi

echo "== sharded sweep (3 shards == single process, byte-for-byte) =="
# The sweep ledger must be an exact decomposition of the single-process
# run: journal the quick grid through one whole-grid shard and through a
# three-shard fleet, merge both ledgers, and require identical snapshot
# bytes. The status dashboard must see the finished fleet.
if [ "$QUICK" != "quick" ]; then
  SWEEP="$(mktemp -d)"
  trap 'rm -rf "${SMOKE:-}" "${SYNTH:-}" "${EXH:-}" "${ANA:-}" "${NATIVE:-}" "${SWEEP:-}"' EXIT
  ASF_PROGRESS=0 ASF_TELEMETRY_DETERMINISTIC=1 \
    target/release/sweep run --ledger "$SWEEP/single" --quick --jobs 2 \
      --metrics "$SWEEP/single-metrics.json"
  for id in 0 1 2; do
    ASF_PROGRESS=0 ASF_TELEMETRY_DETERMINISTIC=1 \
      target/release/sweep run --ledger "$SWEEP/sharded" \
        --shards 3 --shard-id $id --quick --jobs 2
  done
  target/release/sweep status --ledger "$SWEEP/sharded" > "$SWEEP/status.txt"
  grep -q "fleet: 56/56 cells (100%)" "$SWEEP/status.txt"
  mkdir -p "$SWEEP/merged"
  target/release/sweep merge --ledger "$SWEEP/sharded" \
    --out "$SWEEP/merged/single-metrics.json"
  diff -u "$SWEEP/single-metrics.json" "$SWEEP/merged/single-metrics.json"

  echo "== sweep crash recovery (SIGKILL a shard, resume, byte-identical merge) =="
  # Kill shard 0 mid-grid (ASF_SWEEP_CELL_DELAY_MS stretches the run and
  # shrinks the journal chunk to one cell, so the kill lands between
  # durable records), run shard 1 to completion, resume shard 0 from its
  # torn ledger, and require the re-merged snapshot to match the
  # single-process bytes exactly.
  ASF_PROGRESS=0 ASF_TELEMETRY_DETERMINISTIC=1 ASF_SWEEP_CELL_DELAY_MS=80 \
    target/release/sweep run --ledger "$SWEEP/kill" \
      --shards 2 --shard-id 0 --quick --jobs 2 &
  VICTIM=$!
  sleep 1.2
  kill -9 "$VICTIM" 2>/dev/null || true
  wait "$VICTIM" 2>/dev/null || true
  ASF_PROGRESS=0 ASF_TELEMETRY_DETERMINISTIC=1 \
    target/release/sweep run --ledger "$SWEEP/kill" \
      --shards 2 --shard-id 1 --quick --jobs 2
  ASF_PROGRESS=0 ASF_TELEMETRY_DETERMINISTIC=1 \
    target/release/sweep run --ledger "$SWEEP/kill" \
      --shards 2 --shard-id 0 --quick --jobs 2
  mkdir -p "$SWEEP/recovered"
  target/release/sweep merge --ledger "$SWEEP/kill" \
    --out "$SWEEP/recovered/single-metrics.json"
  diff -u "$SWEEP/single-metrics.json" "$SWEEP/recovered/single-metrics.json"
fi

echo "== synthesis smoke (--quick, jobs=2 == jobs=1, byte-for-byte) =="
# The fence-assignment search must be deterministic at any worker count:
# run the quick synthesis report serially and with two workers and diff
# stdout and the emitted CSVs.
if [ "$QUICK" != "quick" ]; then
  SYNTH="$(mktemp -d)"
  trap 'rm -rf "${SMOKE:-}" "${SYNTH:-}" "${EXH:-}" "${ANA:-}" "${NATIVE:-}" "${SWEEP:-}"' EXIT
  for jobs in 1 2; do
    mkdir -p "$SYNTH/j$jobs"
    ( cd "$SYNTH/j$jobs" && \
      ASF_PROGRESS=0 "$OLDPWD/target/release/synth" --quick --jobs $jobs \
        > stdout.txt )
  done
  diff -u "$SYNTH/j1/stdout.txt" "$SYNTH/j2/stdout.txt"
  diff -r "$SYNTH/j1/results" "$SYNTH/j2/results"
fi

echo "== inference smoke (analyze --quick, jobs=2 == jobs=1, byte-for-byte) =="
# Whole-program fence inference must be deterministic at any worker
# count, and the zero-annotation Peterson placement must come out
# oracle-valid under every searched design.
if [ "$QUICK" != "quick" ]; then
  ANA="$(mktemp -d)"
  trap 'rm -rf "${SMOKE:-}" "${SYNTH:-}" "${EXH:-}" "${ANA:-}" "${NATIVE:-}" "${SWEEP:-}"' EXIT
  for jobs in 1 2; do
    mkdir -p "$ANA/j$jobs"
    ( cd "$ANA/j$jobs" && \
      ASF_PROGRESS=0 "$OLDPWD/target/release/analyze" --quick --jobs $jobs \
        > stdout.txt )
  done
  diff -u "$ANA/j1/stdout.txt" "$ANA/j2/stdout.txt"
  diff -r "$ANA/j1/results" "$ANA/j2/results"
  grep -q "placement peterson: oracle-valid" "$ANA/j1/stdout.txt"
fi

echo "== exhaustive exploration smoke (DPOR, jobs=2 == jobs=1, byte-for-byte) =="
# The bounded-exhaustive walk over the litmus corpus must be
# byte-identical at any worker count. The corpus contains known-violating
# scenarios, so a nonzero exit from the corpus pass is expected — the
# checks are the diff and the convictions below.
if [ "$QUICK" != "quick" ]; then
  EXH="$(mktemp -d)"
  trap 'rm -rf "${SMOKE:-}" "${SYNTH:-}" "${EXH:-}" "${ANA:-}" "${NATIVE:-}" "${SWEEP:-}"' EXIT
  for jobs in 1 2; do
    ASF_PROGRESS=0 target/release/explore --scenario corpus --design all \
      --exhaustive --quick --jobs $jobs > "$EXH/j$jobs.txt" || true
  done
  diff -u "$EXH/j1.txt" "$EXH/j2.txt"
  grep -q "sb-unfenced/SPlus: VIOLATION" "$EXH/j1.txt"
  grep -q "sb-fenced/SPlus: clean" "$EXH/j1.txt"
  # The SW+ blind spot: the all-weak Dekker must be convicted by the
  # bound-1 walk (the known violation the design taxonomy predicts).
  if ASF_PROGRESS=0 target/release/explore --scenario sb-allweak --design SW+ \
      --exhaustive --bound 1 > "$EXH/allweak.txt"; then
    echo "FATAL: all-weak Dekker passed exhaustive exploration under SW+" >&2
    exit 1
  fi
  grep -q "VIOLATION" "$EXH/allweak.txt"
fi

echo "== native runtime (litmus hammer + native_bench smoke) =="
# The native asymmetric-fence runtime must hold SC on real threads under
# hard hammering, on whichever backend the kernel offers AND on the
# portable seqcst fallback (ASF_NATIVE_BACKEND=fallback forces it, so
# the stage also passes in containers without membarrier). native_bench
# prints the probed backend and self-checks every kernel.
if [ "$QUICK" != "quick" ]; then
  ASF_NATIVE_ITERS=40000 cargo test -q --offline --test native_litmus
  ASF_NATIVE_ITERS=40000 ASF_NATIVE_BACKEND=fallback \
    cargo test -q --offline --test native_litmus
  NATIVE="$(mktemp -d)"
  trap 'rm -rf "${SMOKE:-}" "${SYNTH:-}" "${EXH:-}" "${ANA:-}" "${NATIVE:-}" "${SWEEP:-}"' EXIT
  target/release/native_bench --quick --crossval \
    --metrics "$NATIVE/native.json" | tee "$NATIVE/stdout.txt"
  grep -q "^backend: " "$NATIVE/stdout.txt"
  grep -q "sim-vs-silicon" "$NATIVE/stdout.txt"
  # The fallback path must probe, print, and self-check cleanly too.
  ASF_NATIVE_BACKEND=fallback target/release/native_bench --quick \
    > "$NATIVE/fallback.txt"
  grep -q "^backend: seqcst-fallback" "$NATIVE/fallback.txt"
fi

echo "== explorer smoke sweep =="
# Known-bad must be caught (exit 1 from the sweep is the expected result)...
if cargo run -q --release --offline -p asymfence-explore --bin explore -- \
    --scenario sb-unfenced --design S+ --seeds 64; then
  echo "FATAL: unfenced store-buffering passed the sweep" >&2
  exit 1
fi
# ...and known-good must sweep clean under every design (with the
# parallel seed sweep exercised).
cargo run -q --release --offline -p asymfence-explore --bin explore -- \
  --scenario sb-fenced --design all --seeds 256 --jobs 2
cargo run -q --release --offline -p asymfence-explore --bin explore -- \
  --scenario 3cycle --design all --seeds 64

echo "== benches compile (offline) =="
cargo build --offline --benches --workspace

echo "CI OK"
