//! Property tests of the headline guarantee: for arbitrary small fenced
//! programs, every fence design preserves sequential consistency (the
//! Shasha–Snir checker finds no cycle), no design deadlocks on asymmetric
//! groups, and runs are deterministic.

use proptest::prelude::*;

use asymfence_suite::prelude::*;

/// A generated thread: interleaved stores/loads over a tiny address pool
/// with a fence inserted after every store (the conservative placement a
/// compiler enforcing SC would use; Shasha–Snir delay-set placement would
/// only remove fences).
#[derive(Clone, Debug)]
struct GenThread {
    ops: Vec<(bool, u8)>, // (is_store, slot)
}

fn gen_thread(max_ops: usize) -> impl Strategy<Value = GenThread> {
    prop::collection::vec((prop::bool::ANY, 0u8..4), 1..max_ops)
        .prop_map(|ops| GenThread { ops })
}

fn slot_addr(slot: u8) -> Addr {
    // Slots 0/1 share a line with 2/3's neighbours? No: separate lines to
    // keep the SC argument clean; false sharing is tested elsewhere.
    Addr::new(0x40 * slot as u64)
}

fn build_program(t: &GenThread, role: FenceRole, salt: u64) -> (ScriptProgram, Registers) {
    let mut instrs = Vec::new();
    let mut tag = 1;
    for (i, (is_store, slot)) in t.ops.iter().enumerate() {
        if *is_store {
            instrs.push(Instr::Store {
                addr: slot_addr(*slot),
                value: salt * 1000 + i as u64 + 1,
            });
            instrs.push(Instr::Fence { role });
        } else {
            instrs.push(Instr::Load {
                addr: slot_addr(*slot),
                tag: Some(tag),
            });
            tag += 1;
        }
    }
    ScriptProgram::new(instrs)
}

fn run_design(design: FenceDesign, threads: &[GenThread], roles: &[FenceRole]) -> MachineStats {
    let cfg = MachineConfig::builder()
        .cores(threads.len().max(2))
        .fence_design(design)
        .record_scv_log(true)
        .watchdog_cycles(50_000)
        .build();
    let mut m = Machine::new(&cfg);
    for (i, t) in threads.iter().enumerate() {
        let (p, _regs) = build_program(t, roles[i], i as u64 + 1);
        m.add_thread(Box::new(p));
    }
    let outcome = m.run(30_000_000);
    assert_eq!(outcome, RunOutcome::Finished, "{design} must not deadlock");
    let log = m.scv_log().expect("log on");
    if let Some(c) = scv::find_cycle(log) {
        panic!(
            "{design} violated SC:\n{}",
            scv::describe_cycle(log, &c)
        );
    }
    m.stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two fully-fenced threads stay SC under every design; roles follow
    /// each design's grouping assumption (WS+: at most one critical).
    #[test]
    fn two_threads_fenced_is_sc(
        a in gen_thread(8),
        b in gen_thread(8),
    ) {
        use FenceRole::{Critical, NonCritical};
        let threads = [a, b];
        run_design(FenceDesign::SPlus, &threads, &[NonCritical, NonCritical]);
        run_design(FenceDesign::WsPlus, &threads, &[Critical, NonCritical]);
        run_design(FenceDesign::SwPlus, &threads, &[Critical, Critical]);
        run_design(FenceDesign::WPlus, &threads, &[Critical, Critical]);
        run_design(FenceDesign::Wee, &threads, &[Critical, Critical]);
    }

    /// Three threads, any asymmetric grouping for SW+/W+/Wee.
    #[test]
    fn three_threads_fenced_is_sc(
        a in gen_thread(6),
        b in gen_thread(6),
        c in gen_thread(6),
    ) {
        use FenceRole::{Critical, NonCritical};
        let threads = [a, b, c];
        run_design(FenceDesign::WsPlus, &threads, &[Critical, NonCritical, NonCritical]);
        run_design(FenceDesign::SwPlus, &threads, &[Critical, Critical, NonCritical]);
        run_design(FenceDesign::WPlus, &threads, &[Critical, Critical, Critical]);
        run_design(FenceDesign::Wee, &threads, &[Critical, Critical, Critical]);
    }

    /// Cycle-exact determinism for arbitrary programs.
    #[test]
    fn runs_are_deterministic(a in gen_thread(8), b in gen_thread(8)) {
        use FenceRole::Critical;
        let threads = [a, b];
        let s1 = run_design(FenceDesign::WPlus, &threads, &[Critical, Critical]);
        let s2 = run_design(FenceDesign::WPlus, &threads, &[Critical, Critical]);
        prop_assert_eq!(s1, s2);
    }

    /// The memory image after a run holds, for each slot, the value of
    /// some store that targeted it (no corruption, no lost lines).
    #[test]
    fn final_memory_is_one_of_the_written_values(
        a in gen_thread(8),
        b in gen_thread(8),
    ) {
        use FenceRole::{Critical, NonCritical};
        let threads = [a, b];
        let cfg = MachineConfig::builder()
            .cores(2)
            .fence_design(FenceDesign::WsPlus)
            .build();
        let mut m = Machine::new(&cfg);
        let mut candidates: Vec<Vec<u64>> = vec![vec![0]; 4];
        for (i, t) in threads.iter().enumerate() {
            let role = if i == 0 { Critical } else { NonCritical };
            let (p, _) = build_program(t, role, i as u64 + 1);
            m.add_thread(Box::new(p));
            for (j, (is_store, slot)) in t.ops.iter().enumerate() {
                if *is_store {
                    candidates[*slot as usize].push((i as u64 + 1) * 1000 + j as u64 + 1);
                }
            }
        }
        prop_assert_eq!(m.run(30_000_000), RunOutcome::Finished);
        for slot in 0..4u8 {
            let v = m.read_memory(slot_addr(slot));
            prop_assert!(
                candidates[slot as usize].contains(&v),
                "slot {} = {} not in {:?}", slot, v, candidates[slot as usize]
            );
        }
    }
}
