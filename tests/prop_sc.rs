//! Property tests of the headline guarantee: for arbitrary small fenced
//! programs, every fence design preserves sequential consistency (the
//! Shasha–Snir checker finds no cycle), no design deadlocks on asymmetric
//! groups, and runs are deterministic.
//!
//! Runs on the in-repo property harness (`asymfence_common::prop`):
//! failing case seeds persist to `tests/regressions/prop_sc.seeds` and
//! replay before fresh cases on every run. `ASF_PROP_CASES` /
//! `ASF_PROP_SEED` override the budget and base seed.

use asymfence_common::prop::{
    bools, check, pairs, triples, u8s, vecs, BoolGen, Config, PairGen, U8Range, VecGen,
};
use asymfence_suite::prelude::*;

/// A generated thread: interleaved `(is_store, slot)` ops over a tiny
/// address pool, with a fence inserted after every store when built (the
/// conservative placement a compiler enforcing SC would use; Shasha–Snir
/// delay-set placement would only remove fences).
type GenThread = Vec<(bool, u8)>;

fn gen_thread(max_ops: usize) -> VecGen<PairGen<BoolGen, U8Range>> {
    vecs(pairs(bools(), u8s(0, 3)), 1, max_ops)
}

fn cfg() -> Config {
    Config::from_env(16).regressions("tests/regressions/prop_sc.seeds")
}

fn slot_addr(slot: u8) -> Addr {
    // Separate lines per slot to keep the SC argument clean; false
    // sharing is tested elsewhere.
    Addr::new(0x40 * slot as u64)
}

fn build_program(t: &GenThread, role: FenceRole, salt: u64) -> (ScriptProgram, Registers) {
    let mut instrs = Vec::new();
    let mut tag = 1;
    for (i, (is_store, slot)) in t.iter().enumerate() {
        if *is_store {
            instrs.push(Instr::Store {
                addr: slot_addr(*slot),
                value: salt * 1000 + i as u64 + 1,
            });
            instrs.push(Instr::fence(role));
        } else {
            instrs.push(Instr::Load {
                addr: slot_addr(*slot),
                tag: Some(tag),
            });
            tag += 1;
        }
    }
    ScriptProgram::new(instrs)
}

fn run_design(
    design: FenceDesign,
    threads: &[GenThread],
    roles: &[FenceRole],
) -> Result<MachineStats, String> {
    let cfg = MachineConfig::builder()
        .cores(threads.len().max(2))
        .fence_design(design)
        .record_scv_log(true)
        .watchdog_cycles(50_000)
        .build();
    let mut m = Machine::new(&cfg);
    for (i, t) in threads.iter().enumerate() {
        let (p, _regs) = build_program(t, roles[i], i as u64 + 1);
        m.add_thread(Box::new(p));
    }
    let outcome = m.run(30_000_000);
    if outcome != RunOutcome::Finished {
        return Err(format!("{design} must not deadlock, got {outcome:?}"));
    }
    let log = m.scv_log().expect("log on");
    if let Some(c) = scv::find_cycle(log) {
        return Err(format!(
            "{design} violated SC:\n{}",
            scv::describe_cycle(log, &c)
        ));
    }
    Ok(m.stats())
}

/// Two fully-fenced threads stay SC under every design; roles follow each
/// design's grouping assumption: WS+ takes at most one weak fence, SW+
/// takes any *asymmetric* group (one fence stays strong — an all-weak
/// group is W+/Wee-only, and the schedule explorer shows SW+ can mutually
/// bounce an all-weak Dekker's pre-sets forever), W+/Wee take any group.
#[test]
fn two_threads_fenced_is_sc() {
    use FenceRole::{Critical, NonCritical};
    check("two_threads_fenced_is_sc", &cfg(), &pairs(gen_thread(8), gen_thread(8)), |(a, b)| {
        let threads = [a.clone(), b.clone()];
        run_design(FenceDesign::SPlus, &threads, &[NonCritical, NonCritical])?;
        run_design(FenceDesign::WsPlus, &threads, &[Critical, NonCritical])?;
        run_design(FenceDesign::SwPlus, &threads, &[Critical, NonCritical])?;
        run_design(FenceDesign::WPlus, &threads, &[Critical, Critical])?;
        run_design(FenceDesign::Wee, &threads, &[Critical, Critical])?;
        Ok(())
    });
}

/// Three threads, any asymmetric grouping for SW+, all-weak for W+/Wee.
#[test]
fn three_threads_fenced_is_sc() {
    use FenceRole::{Critical, NonCritical};
    check(
        "three_threads_fenced_is_sc",
        &cfg(),
        &triples(gen_thread(6), gen_thread(6), gen_thread(6)),
        |(a, b, c)| {
            let threads = [a.clone(), b.clone(), c.clone()];
            run_design(
                FenceDesign::WsPlus,
                &threads,
                &[Critical, NonCritical, NonCritical],
            )?;
            run_design(
                FenceDesign::SwPlus,
                &threads,
                &[Critical, Critical, NonCritical],
            )?;
            run_design(FenceDesign::WPlus, &threads, &[Critical, Critical, Critical])?;
            run_design(FenceDesign::Wee, &threads, &[Critical, Critical, Critical])?;
            Ok(())
        },
    );
}

/// Cycle-exact determinism for arbitrary programs.
#[test]
fn runs_are_deterministic() {
    use FenceRole::Critical;
    check(
        "runs_are_deterministic",
        &cfg(),
        &pairs(gen_thread(8), gen_thread(8)),
        |(a, b)| {
            let threads = [a.clone(), b.clone()];
            let s1 = run_design(FenceDesign::WPlus, &threads, &[Critical, Critical])?;
            let s2 = run_design(FenceDesign::WPlus, &threads, &[Critical, Critical])?;
            if s1 != s2 {
                return Err(format!("non-deterministic stats:\n{s1:?}\n{s2:?}"));
            }
            Ok(())
        },
    );
}

/// The memory image after a run holds, for each slot, the value of some
/// store that targeted it (no corruption, no lost lines).
#[test]
fn final_memory_is_one_of_the_written_values() {
    use FenceRole::{Critical, NonCritical};
    check(
        "final_memory_is_one_of_the_written_values",
        &cfg(),
        &pairs(gen_thread(8), gen_thread(8)),
        |(a, b)| {
            let threads = [a.clone(), b.clone()];
            let cfg = MachineConfig::builder()
                .cores(2)
                .fence_design(FenceDesign::WsPlus)
                .build();
            let mut m = Machine::new(&cfg);
            let mut candidates: Vec<Vec<u64>> = vec![vec![0]; 4];
            for (i, t) in threads.iter().enumerate() {
                let role = if i == 0 { Critical } else { NonCritical };
                let (p, _) = build_program(t, role, i as u64 + 1);
                m.add_thread(Box::new(p));
                for (j, (is_store, slot)) in t.iter().enumerate() {
                    if *is_store {
                        candidates[*slot as usize].push((i as u64 + 1) * 1000 + j as u64 + 1);
                    }
                }
            }
            if m.run(30_000_000) != RunOutcome::Finished {
                return Err("run did not finish".into());
            }
            for slot in 0..4u8 {
                let v = m.read_memory(slot_addr(slot));
                if !candidates[slot as usize].contains(&v) {
                    return Err(format!(
                        "slot {} = {} not in {:?}",
                        slot, v, candidates[slot as usize]
                    ));
                }
            }
            Ok(())
        },
    );
}

/// Pinned regression carried over from the proptest era
/// (`tests/prop_sc.proptest-regressions`): proptest shrank a two-thread
/// failure to `a = [(true, 0)]`, `b = [(true, 0), (true, 0), (false, 0)]`.
/// Kept as a hard case across every design's legal grouping.
#[test]
fn pinned_regression_store_store_load() {
    use FenceRole::{Critical, NonCritical};
    let a: GenThread = vec![(true, 0)];
    let b: GenThread = vec![(true, 0), (true, 0), (false, 0)];
    let threads = [a, b];
    run_design(FenceDesign::SPlus, &threads, &[NonCritical, NonCritical]).unwrap();
    run_design(FenceDesign::WsPlus, &threads, &[Critical, NonCritical]).unwrap();
    run_design(FenceDesign::SwPlus, &threads, &[Critical, NonCritical]).unwrap();
    run_design(FenceDesign::WPlus, &threads, &[Critical, Critical]).unwrap();
    run_design(FenceDesign::Wee, &threads, &[Critical, Critical]).unwrap();
}
