//! Tier-1 litmus corpus: every canned litmus scenario, explored
//! bounded-exhaustively under every safe fence design, must land on the
//! verdict the design taxonomy guarantees.
//!
//! The corpus covers the classic shapes — store buffering (unfenced,
//! fenced, half-fenced, double-fenced), message passing, load buffering,
//! IRIW, the paper's three-thread fence cycle — and the walk runs at
//! reorder bound 2, the smallest bound at which every expected violation
//! (notably half-fenced SB, which needs two cooperating delays) is
//! reachable. A clean *complete* walk is a proof of SC up to the bound,
//! not a sampling claim.

use asymfence::prelude::FenceDesign;
use asymfence_explore::{DporConfig, Explorer, Failure, Scenario, ALL_DESIGNS};

fn dcfg(bound: usize) -> DporConfig {
    DporConfig::from_explore(&Explorer::default().cfg, bound)
}

/// Every (scenario, design) pair in the corpus matches its expected SC
/// verdict at bound 2, and every walk covers the whole bounded tree (so
/// the clean rows are proofs, not lucky samples).
#[test]
fn corpus_verdicts_match_design_guarantees() {
    let ex = Explorer::default();
    let dcfg = dcfg(2);
    for (sc, expect_sc) in Scenario::litmus_corpus() {
        for &design in &ALL_DESIGNS {
            let rep = ex.explore_exhaustive(&sc.clone().with_roles_for(design), design, &dcfg);
            assert!(
                rep.complete,
                "{}/{design:?}: walk did not cover the bounded tree",
                sc.name
            );
            assert_eq!(
                rep.clean(),
                expect_sc,
                "{}/{design:?}: expected {} at bound {}, got {}{}",
                sc.name,
                if expect_sc { "SC (proof)" } else { "a violation" },
                rep.bound,
                if rep.clean() { "clean" } else { "a violation" },
                rep.violation
                    .as_ref()
                    .map(|v| format!(":\n{v}"))
                    .unwrap_or_default()
            );
        }
    }
}

/// ISSUE acceptance criterion: the all-weak Dekker that SW+ cannot
/// protect (both fences weak, so neither side's pre-set is enforced) is
/// reproduced by the exhaustive walk — already at bound 1, with a
/// replayable scripted schedule attached.
#[test]
fn all_weak_dekker_violates_under_sw_plus() {
    let ex = Explorer::default();
    let rep = ex.explore_exhaustive(
        &Scenario::store_buffering_all_weak(),
        FenceDesign::SwPlus,
        &dcfg(1),
    );
    let cex = rep
        .violation
        .expect("all-weak Dekker must violate under SW+ at bound 1");
    assert!(matches!(cex.failure, Failure::Scv { .. }), "{:?}", cex.failure);
    let script = cex.schedule.expect("exhaustive counterexamples carry a script");
    assert!(
        script.cost() >= 1,
        "the violation needs at least one delayed choice"
    );
    // The reported schedule really does reproduce the failure.
    assert!(ex
        .run_script(&cex.scenario, FenceDesign::SwPlus, &script)
        .failure
        .is_some());
}

/// The same all-weak grouping is exactly what W+ and Wee are built for:
/// the walk that convicts SW+ proves them SC up to the bound.
#[test]
fn all_weak_dekker_is_proven_sc_under_w_plus_and_wee() {
    let ex = Explorer::default();
    for design in [FenceDesign::WPlus, FenceDesign::Wee] {
        let rep = ex.explore_exhaustive(&Scenario::store_buffering_all_weak(), design, &dcfg(2));
        assert!(
            rep.proven(),
            "{design:?} must prove the all-weak Dekker SC up to bound 2{}",
            rep.violation
                .as_ref()
                .map(|v| format!(":\n{v}"))
                .unwrap_or_default()
        );
    }
}
