//! Cross-crate integration tests: every workload group under every fence
//! design must terminate, preserve its correctness invariant, and show
//! the paper's performance ordering.

use asymfence_suite::prelude::*;
use asymfence_suite::workloads::bakery::{self, RoleAssign};
use asymfence_suite::workloads::cilk::{self, CilkApp, CilkWorker};
use asymfence_suite::workloads::stamp::{self, StampApp};
use asymfence_suite::workloads::tlrw;
use asymfence_suite::workloads::ustm::{self, UstmBench};

const ALL_DESIGNS: [FenceDesign; 5] = [
    FenceDesign::SPlus,
    FenceDesign::WsPlus,
    FenceDesign::SwPlus,
    FenceDesign::WPlus,
    FenceDesign::Wee,
];

fn cfg(design: FenceDesign, cores: usize) -> MachineConfig {
    MachineConfig::builder()
        .cores(cores)
        .fence_design(design)
        .seed(99)
        .build()
}

#[test]
fn cilk_every_design_executes_every_task_exactly_once() {
    for design in ALL_DESIGNS {
        let c = cfg(design, 4);
        let mut m = Machine::new(&c);
        for p in cilk::programs(CilkApp::Knapsack, &c, 5) {
            m.add_thread(p);
        }
        assert_eq!(m.run(2_000_000_000), RunOutcome::Finished, "{design}");
        let executed: u64 = (0..4)
            .map(|i| {
                m.thread_program(CoreId(i))
                    .as_any()
                    .downcast_ref::<CilkWorker>()
                    .unwrap()
                    .executed
            })
            .sum();
        assert_eq!(
            executed,
            CilkApp::Knapsack.profile().total_tasks(4),
            "{design}: lost or duplicated tasks"
        );
    }
}

#[test]
fn cilk_weak_designs_never_run_slower_than_s_plus() {
    let base = {
        let c = cfg(FenceDesign::SPlus, 4);
        let mut m = Machine::new(&c);
        for p in cilk::programs(CilkApp::Fib, &c, 1) {
            m.add_thread(p);
        }
        assert_eq!(m.run(2_000_000_000), RunOutcome::Finished);
        m.now()
    };
    for design in [FenceDesign::WsPlus, FenceDesign::SwPlus, FenceDesign::WPlus] {
        let c = cfg(design, 4);
        let mut m = Machine::new(&c);
        for p in cilk::programs(CilkApp::Fib, &c, 1) {
            m.add_thread(p);
        }
        assert_eq!(m.run(2_000_000_000), RunOutcome::Finished);
        assert!(
            m.now() as f64 <= base as f64 * 1.05,
            "{design} regressed fib: {} vs {base}",
            m.now()
        );
    }
}

#[test]
fn ustm_counter_is_exactly_serialized() {
    // The Counter benchmark increments a single location; committed
    // transactions must serialize, so throughput still must be positive
    // and no design may deadlock.
    for design in ALL_DESIGNS {
        let c = cfg(design, 4);
        let mut m = Machine::new(&c);
        for p in ustm::programs(UstmBench::Counter, &c, 3, Some(15)) {
            m.add_thread(p);
        }
        assert_eq!(m.run(2_000_000_000), RunOutcome::Finished, "{design}");
        let (commits, _) = tlrw::tally(&m);
        assert_eq!(commits, 60, "{design}");
    }
}

#[test]
fn ustm_throughput_ordering_matches_figure9() {
    // W+ >= WS+ >= S+ on a fence-bound microbenchmark (allowing noise).
    let commits = |design| {
        let c = cfg(design, 8);
        let mut m = Machine::new(&c);
        for p in ustm::programs(UstmBench::ReadNWrite1, &c, 7, None) {
            m.add_thread(p);
        }
        m.run(600_000);
        tlrw::tally(&m).0 as f64
    };
    let s = commits(FenceDesign::SPlus);
    let ws = commits(FenceDesign::WsPlus);
    let w = commits(FenceDesign::WPlus);
    assert!(ws > 0.95 * s, "WS+ at least matches S+: {ws} vs {s}");
    assert!(w > 0.95 * ws, "W+ at least matches WS+: {w} vs {ws}");
    assert!(w > 1.02 * s, "W+ beats S+ on a fence-bound load: {w} vs {s}");
}

#[test]
fn stamp_apps_run_under_weak_designs() {
    for design in [FenceDesign::WsPlus, FenceDesign::WPlus, FenceDesign::Wee] {
        let c = cfg(design, 2);
        let mut m = Machine::new(&c);
        for p in stamp::programs(StampApp::Kmeans, &c, 11) {
            m.add_thread(p);
        }
        assert_eq!(m.run(2_000_000_000), RunOutcome::Finished, "{design}");
        let (commits, _) = tlrw::tally(&m);
        assert_eq!(commits, 2 * StampApp::Kmeans.commits_per_thread(), "{design}");
    }
}

#[test]
fn bakery_mutual_exclusion_across_designs_and_roles() {
    for (design, roles) in [
        (FenceDesign::SPlus, RoleAssign::PriorityThread0),
        (FenceDesign::WsPlus, RoleAssign::PriorityThread0),
        (FenceDesign::SwPlus, RoleAssign::PriorityThread0),
        (FenceDesign::WPlus, RoleAssign::AllCritical),
        (FenceDesign::Wee, RoleAssign::AllCritical),
    ] {
        let c = cfg(design, 3);
        let mut m = Machine::new(&c);
        for p in bakery::programs(&c, roles, 5, 13) {
            m.add_thread(p);
        }
        assert_eq!(m.run(2_000_000_000), RunOutcome::Finished, "{design}");
        let (entries, violations) = bakery::tally(&m);
        assert_eq!(entries, 15, "{design}");
        assert_eq!(violations, 0, "{design}: mutual exclusion broken");
    }
}

#[test]
fn deterministic_full_stack_runs() {
    let fingerprint = || {
        let c = cfg(FenceDesign::WPlus, 4);
        let mut m = Machine::new(&c);
        for p in ustm::programs(UstmBench::Mcas, &c, 21, Some(25)) {
            m.add_thread(p);
        }
        assert_eq!(m.run(2_000_000_000), RunOutcome::Finished);
        let s = m.stats();
        (s.cycles, s.aggregate(), tlrw::tally(&m))
    };
    assert_eq!(fingerprint(), fingerprint(), "cycle-exact reproducibility");
}

#[test]
fn scalability_machines_build_at_all_core_counts() {
    for cores in [4, 8, 16, 32] {
        let c = cfg(FenceDesign::WsPlus, cores);
        let mut m = Machine::new(&c);
        for p in cilk::programs(CilkApp::Bucket, &c, 2) {
            m.add_thread(p);
        }
        assert_eq!(m.run(2_000_000_000), RunOutcome::Finished, "{cores} cores");
        let stats = m.stats();
        assert_eq!(stats.cores.len(), cores);
    }
}

#[test]
fn cycle_accounting_is_exact() {
    // Every core cycle lands in exactly one bucket.
    let c = cfg(FenceDesign::WsPlus, 4);
    let mut m = Machine::new(&c);
    for p in cilk::programs(CilkApp::Bucket, &c, 3) {
        m.add_thread(p);
    }
    assert_eq!(m.run(2_000_000_000), RunOutcome::Finished);
    let stats = m.stats();
    for (i, core) in stats.cores.iter().enumerate() {
        assert_eq!(
            core.total_cycles(),
            stats.cycles,
            "core {i}: buckets must sum to the run length"
        );
    }
}

#[test]
fn idioms_biased_and_dcl_work_under_asymmetric_fences() {
    use asymfence_suite::workloads::{biased, dcl};
    let c = cfg(FenceDesign::WsPlus, 3);
    let mut m = Machine::new(&c);
    for p in biased::programs(&c, 20, 2, 1) {
        m.add_thread(p);
    }
    assert_eq!(m.run(2_000_000_000), RunOutcome::Finished);
    let (entries, violations) = biased::tally(&m);
    assert_eq!(entries, 20 + 2 * 2);
    assert_eq!(violations, 0);

    let mut m = Machine::new(&c);
    for p in dcl::programs(&c, true, 10, 2) {
        m.add_thread(p);
    }
    assert_eq!(m.run(2_000_000_000), RunOutcome::Finished);
    let (_, inits, torn) = dcl::tally(&m);
    assert_eq!(inits, 1);
    assert_eq!(torn, 0);
}

#[test]
fn placement_analysis_agrees_with_the_simulator() {
    use asymfence::placement::{fence_positions, Relaxation, StaticAccess, StaticProgram};
    // The analyzer says SB needs fences; installing them yields SC.
    let prog = StaticProgram::new(vec![
        vec![StaticAccess::write(0), StaticAccess::read(1)],
        vec![StaticAccess::write(1), StaticAccess::read(0)],
    ]);
    let placements = fence_positions(&prog, Relaxation::Tso);
    assert_eq!(placements, vec![vec![0], vec![0]]);
}
