//! Native litmus hammering: the store-buffering and message-passing
//! shapes the simulator proves bounded-exhaustively, re-run on real
//! threads under the native fence pairs.
//!
//! These are loom-shaped stress tests, not proofs: each kernel races
//! its two threads through thousands of fresh rounds and asserts the
//! forbidden outcome never surfaces. With the asymmetric pair the heavy
//! side (membarrier, or `fence(SeqCst)` on the fallback backend) is the
//! only hardware fence in the race — exactly the paper's claim that the
//! hot side needs none.
//!
//! Iteration count: `ASF_NATIVE_ITERS` (default 4000; CI raises it).

use asymfence_native::{
    backend, dekker, mp_hammer, sb_hammer, AllHeavy, Asymmetric, FencePair, HwSeqCst, TheDeque,
    TlrwStm,
};

fn iters() -> u64 {
    std::env::var("ASF_NATIVE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4_000)
}

fn sb_clean<P: FencePair>(pair: P) {
    let r = sb_hammer(pair, iters());
    assert_eq!(
        r.violations,
        0,
        "SB both-read-0 observed under {} on backend {}",
        pair.name(),
        backend().label()
    );
    assert_eq!(r.ops, iters());
}

fn mp_clean<P: FencePair>(pair: P) {
    let r = mp_hammer(pair, iters());
    assert_eq!(
        r.violations,
        0,
        "MP stale data observed under {} on backend {}",
        pair.name(),
        backend().label()
    );
}

/// SB with the asymmetric pair: thread 0's fence is a compiler fence
/// under the membarrier backend, thread 1's is the heavy side. The
/// paper's headline litmus.
#[test]
fn sb_asymmetric_never_violates() {
    sb_clean(Asymmetric);
}

/// SB with both sides heavy (S+ analogue).
#[test]
fn sb_all_heavy_never_violates() {
    sb_clean(AllHeavy);
}

/// SB with the portable `fence(SeqCst)` control.
#[test]
fn sb_seqcst_never_violates() {
    sb_clean(HwSeqCst);
}

/// MP with the asymmetric pair: the writer pays the heavy fence, the
/// reader's fence is compiler-only under membarrier.
#[test]
fn mp_asymmetric_never_violates() {
    mp_clean(Asymmetric);
}

/// MP with both sides heavy.
#[test]
fn mp_all_heavy_never_violates() {
    mp_clean(AllHeavy);
}

/// Dekker mutual exclusion holds under the asymmetric pair: the CS
/// witness never sees a second occupant across `iters` entries/thread.
#[test]
fn dekker_asymmetric_mutual_exclusion() {
    let r = dekker(Asymmetric, iters());
    assert_eq!(r.violations, 0, "on backend {}", backend().label());
    assert_eq!(r.ops, 2 * iters());
}

/// The THE deque conserves tasks under an owner/thief race with the
/// asymmetric pair (no task lost to the take/steal fence window, none
/// handed out twice).
#[test]
fn deque_conserves_tasks_asymmetric() {
    let tasks = iters();
    let q = TheDeque::new(128, Asymmetric);
    let done = std::sync::atomic::AtomicBool::new(false);
    use std::sync::atomic::Ordering;
    let (owner_sum, thief_sum) = std::thread::scope(|s| {
        let thief = s.spawn(|| {
            let mut sum = 0u64;
            while !done.load(Ordering::Acquire) {
                match q.steal() {
                    Some(v) => sum += v,
                    None => std::thread::yield_now(),
                }
            }
            while let Some(v) = q.steal() {
                sum += v;
            }
            sum
        });
        let mut sum = 0u64;
        for task in 1..=tasks {
            while !q.push(task) {
                if let Some(v) = q.take() {
                    sum += v;
                }
            }
            if task % 3 == 0 {
                if let Some(v) = q.take() {
                    sum += v;
                }
            }
        }
        while let Some(v) = q.take() {
            sum += v;
        }
        done.store(true, Ordering::Release);
        (sum, thief.join().unwrap())
    });
    assert_eq!(owner_sum + thief_sum, tasks * (tasks + 1) / 2);
}

/// Builds a native [`asymfence_native::C11Pair`] by running the whole
/// inference pipeline on an *unannotated* kernel: recover footprints,
/// place fences, synthesize WS+ strengths (8-seed oracle), lower to
/// C11, and parse the per-site labels back into real fences. Thread 0's
/// site fills the `critical` slot, thread 1's the `noncritical` one —
/// the same wiring the native kernels use.
fn analyzer_lowered_pair(
    kernel: asymfence_workloads::unannot::InferredKernel,
) -> (asymfence_native::C11Pair, bool) {
    use asymfence::prelude::FenceDesign;
    use asymfence_explore::{ExploreConfig, Explorer};

    let a = asymfence_analyze::analyze(kernel, asymfence_bench::SEED);
    let explorer = Explorer::new(ExploreConfig {
        seeds: 8,
        ..Default::default()
    });
    let runner = asymfence_bench::Runner::with_jobs(2).progress(false);
    let mut synth = asymfence_synth::Synthesizer::new(explorer, runner, asymfence_bench::SEED);
    let r = synth.synthesize_inferred(a.kernel, &a.placement, FenceDesign::WsPlus, None);
    let best = r.best.expect("inferred placement must be oracle-valid under WS+");
    let lowering = asymfence_analyze::lower(&a.placement, &r.groups, best.mask);

    let fence_of = |thread: usize| {
        let i = a
            .placement
            .fences
            .iter()
            .position(|f| f.thread == thread)
            .expect("one site per thread");
        asymfence_native::C11Fence::from_label(lowering.fences[i].lower.label())
            .expect("lowering labels parse")
    };
    (
        asymfence_native::C11Pair {
            critical: fence_of(0),
            noncritical: fence_of(1),
        },
        lowering.asymmetric,
    )
}

/// The tentpole end-to-end: the analyzer's zero-annotation Peterson
/// placement, synthesized and lowered to C11, holds mutual exclusion on
/// real threads. Run under both backends in CI (the default and
/// `ASF_NATIVE_BACKEND=fallback`).
#[test]
fn peterson_analyzer_lowered_c11_mutual_exclusion() {
    let (pair, asymmetric) = analyzer_lowered_pair(
        asymfence_workloads::unannot::InferredKernel::Peterson,
    );
    assert!(asymmetric, "peterson's WS+ lowering should be light/heavy");
    let r = asymfence_native::peterson(pair, iters());
    assert_eq!(
        r.violations,
        0,
        "analyzer-lowered Peterson violated mutual exclusion under {:?} on backend {}",
        pair,
        backend().label()
    );
    assert_eq!(r.ops, 2 * iters());
}

/// Same pipeline on the store-buffering kernel: the inferred WS+
/// lowering (heavy on thread 0, light on thread 1) forbids the
/// both-read-0 outcome on silicon.
#[test]
fn sb_analyzer_lowered_c11_never_violates() {
    let (pair, asymmetric) =
        analyzer_lowered_pair(asymfence_workloads::unannot::InferredKernel::Sb);
    assert!(asymmetric, "sb's WS+ lowering should be light/heavy");
    let r = sb_hammer(pair, iters());
    assert_eq!(
        r.violations,
        0,
        "analyzer-lowered SB observed both-read-0 under {:?} on backend {}",
        pair,
        backend().label()
    );
}

/// TLRW loses no increments on a hot counter under the asymmetric pair
/// (the read barrier's store→load window is the racy part).
#[test]
fn tlrw_counter_exact_asymmetric() {
    let per_thread = iters().min(10_000);
    let stm = TlrwStm::new(2, 2, Asymmetric);
    std::thread::scope(|s| {
        for tid in 0..2 {
            let stm = &stm;
            s.spawn(move || {
                for _ in 0..per_thread {
                    stm.run(tid, |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    });
                }
            });
        }
    });
    assert_eq!(stm.peek(0), 2 * per_thread);
}
