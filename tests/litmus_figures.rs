//! Integration tests reproducing the paper's figures 1, 3 and 4 across
//! the whole stack (machine + coherence + fence designs + SCV checker).

use asymfence_suite::prelude::*;
use asymfence_suite::workloads::litmus::{self, observed, LitmusSetup};
use FenceRole::{Critical, NonCritical};

fn machine_for(setup: &LitmusSetup, design: FenceDesign) -> MachineConfig {
    MachineConfig::builder()
        .cores(setup.0.len().max(2))
        .fence_design(design)
        .watchdog_cycles(30_000)
        .record_scv_log(true)
        .build()
}

fn run(design: FenceDesign, setup: LitmusSetup, max: u64) -> (RunOutcome, Vec<u64>, bool) {
    let cfg = machine_for(&setup, design);
    let mut m = Machine::new(&cfg);
    let (progs, regs) = setup;
    for p in progs {
        m.add_thread(p);
    }
    let outcome = m.run(max);
    let scv = m.scv_log().map(scv::has_violation).unwrap_or(false);
    (outcome, regs.iter().map(observed).collect(), scv)
}

#[test]
fn fig1b_unfenced_store_buffering_is_an_scv() {
    let (outcome, vals, scv) = run(FenceDesign::SPlus, litmus::store_buffering(None), 10_000_000);
    assert_eq!(outcome, RunOutcome::Finished);
    assert_eq!(vals, vec![0, 0], "TSO reorders the unfenced SB pattern");
    assert!(scv, "the checker must report the Shasha-Snir cycle");
}

#[test]
fn fig1d_fenced_store_buffering_is_sc_under_every_design() {
    for design in [
        FenceDesign::SPlus,
        FenceDesign::WsPlus,
        FenceDesign::SwPlus,
        FenceDesign::WPlus,
        FenceDesign::Wee,
    ] {
        let (outcome, vals, scv) = run(
            design,
            litmus::store_buffering(Some((Critical, NonCritical))),
            30_000_000,
        );
        assert_eq!(outcome, RunOutcome::Finished, "{design}");
        assert_ne!(vals, vec![0, 0], "{design}");
        assert!(!scv, "{design} preserved SC");
    }
}

#[test]
fn fig1f_three_fences_prevent_the_three_thread_cycle() {
    for (design, roles) in [
        (FenceDesign::SPlus, [NonCritical; 3]),
        (FenceDesign::WsPlus, [Critical, NonCritical, NonCritical]),
        (FenceDesign::SwPlus, [Critical, Critical, NonCritical]),
        (FenceDesign::WPlus, [Critical; 3]),
        (FenceDesign::Wee, [Critical; 3]),
    ] {
        let (outcome, vals, scv) = run(design, litmus::three_thread_cycle(roles), 60_000_000);
        assert_eq!(outcome, RunOutcome::Finished, "{design}");
        assert_ne!(vals, vec![0, 0, 0], "{design}");
        assert!(!scv, "{design}");
    }
}

#[test]
fn fig3a_unprotected_weak_fences_deadlock() {
    let (outcome, _, _) = run(
        FenceDesign::WfOnlyUnsafe,
        litmus::store_buffering(Some((Critical, Critical))),
        10_000_000,
    );
    assert_eq!(outcome, RunOutcome::Deadlocked);
}

#[test]
fn fig3b_one_conventional_fence_avoids_the_deadlock() {
    // Same crossed pattern, but one side uses a strong fence: under
    // WS+/SW+ the group is asymmetric and must complete.
    for design in [FenceDesign::WsPlus, FenceDesign::SwPlus] {
        let (outcome, vals, scv) = run(
            design,
            litmus::store_buffering(Some((Critical, NonCritical))),
            30_000_000,
        );
        assert_eq!(outcome, RunOutcome::Finished, "{design}");
        assert!(!scv);
        assert_ne!(vals, vec![0, 0]);
    }
}

#[test]
fn fig4b_false_sharing_cycle_is_resolved_without_deadlock() {
    for design in [FenceDesign::WsPlus, FenceDesign::SwPlus, FenceDesign::WPlus] {
        let (outcome, _, scv) = run(
            design,
            litmus::false_sharing_pair(Critical, Critical),
            60_000_000,
        );
        assert_eq!(outcome, RunOutcome::Finished, "{design}");
        assert!(!scv, "{design}: false sharing is not an SCV");
    }
}

#[test]
fn w_plus_recovery_counts_are_visible_in_stats() {
    let setup = litmus::store_buffering(Some((Critical, Critical)));
    let cfg = machine_for(&setup, FenceDesign::WPlus);
    let mut m = Machine::new(&cfg);
    let (progs, regs) = setup;
    for p in progs {
        m.add_thread(p);
    }
    assert_eq!(m.run(30_000_000), RunOutcome::Finished);
    let stats = m.stats();
    assert!(
        stats.aggregate().recoveries >= 1,
        "the all-weak SB group forces at least one rollback"
    );
    assert_ne!(
        regs.iter().map(observed).collect::<Vec<_>>(),
        vec![0, 0],
        "recovery preserves SC"
    );
}

#[test]
fn message_passing_needs_no_fence_under_tso() {
    let (progs, regs) = litmus::message_passing();
    let cfg = MachineConfig::builder().cores(2).build();
    let mut m = Machine::new(&cfg);
    for p in progs {
        m.add_thread(p);
    }
    assert_eq!(m.run(10_000_000), RunOutcome::Finished);
    let flag = *regs[1].borrow().get(&2).unwrap();
    if flag == 1 {
        assert_eq!(observed(&regs[1]), 1, "no store-store reordering under TSO");
    }
}
