//! The synthesized-vs-paper report and the `synth` binary's driver.
//!
//! One row per (workload, design): the paper's hand annotation (its
//! mask, oracle verdict and cycles) next to the best synthesized
//! assignment, with the cycle delta. Two findings are called out beneath
//! the table: any synthesized assignment strictly faster than the
//! paper's, and any paper annotation the oracle rejects. Output flows
//! through the bench [`ReportSink`], so the markdown and the
//! `results/synth_assignments.csv` bytes are identical at any `--jobs`.

use asymfence::prelude::{FenceDesign, MachineConfig, TraceSink};
use asymfence_bench::cli::Opts;
use asymfence_bench::{ReportSink, Runner, Table};
use asymfence_common::assign::SearchStats;
use asymfence_explore::{ExploreConfig, Explorer};
use asymfence_workloads::sites::SiteBench;

use crate::search::{mask_label, Synthesizer};

/// Designs the synthesis report covers by default: the paper's four
/// safe asymmetric-capable points plus the S+ baseline. (`Wee` behaves
/// like W+ for admissibility; pass `--designs` to include it.)
pub const SYNTH_DESIGNS: [FenceDesign; 4] = [
    FenceDesign::SPlus,
    FenceDesign::WsPlus,
    FenceDesign::SwPlus,
    FenceDesign::WPlus,
];

/// Oracle seed budget: `--quick` trades sweep depth for wall time.
pub fn seed_budget(quick: bool) -> u64 {
    if quick {
        8
    } else {
        48
    }
}

/// Runs the full synthesis report into `sink`. Returns the merged
/// search statistics (serial-equivalent, jobs-independent).
pub fn run(runner: &Runner, opts: &Opts, sink: &mut ReportSink) -> SearchStats {
    run_with(runner, opts, None, sink)
}

/// Like [`run`], with an optional bounded-exhaustive oracle: when
/// `exhaustive` carries a reorder bound, survivors are validated by the
/// DPOR walk instead of the perturbation sweep and every accepted
/// assignment is a proof of SC up to that bound.
pub fn run_with(
    runner: &Runner,
    opts: &Opts,
    exhaustive: Option<usize>,
    sink: &mut ReportSink,
) -> SearchStats {
    runner.begin_section("synth");
    let designs: Vec<FenceDesign> = match &opts.designs {
        None => SYNTH_DESIGNS.to_vec(),
        Some(ds) => ds.clone(),
    };
    let benches: Vec<SiteBench> = SiteBench::ALL
        .into_iter()
        .filter(|b| opts.keep(b.name()))
        .collect();

    let explorer = Explorer::new(ExploreConfig {
        seeds: seed_budget(opts.quick),
        ..Default::default()
    });
    // ASF_SHARDS/ASF_SHARD_ID partition the *mask* space across fleet
    // processes; the oracle explorer above stays whole so each owned
    // mask is still validated over every seed.
    let mut synth = Synthesizer::new(explorer, runner.clone(), asymfence_bench::SEED)
        .with_shard(asymfence_common::par::Shard::from_env());
    if let Some(bound) = exhaustive {
        synth = synth.with_exhaustive(bound);
    }
    let mut trace = opts
        .trace
        .as_ref()
        .map(|_| TraceSink::new(FenceDesign::SPlus));

    sink.line("## Synthesized fence assignments vs paper annotations");
    match exhaustive {
        Some(bound) => sink.line(format!(
            "(oracle: Shasha-Snir over bounded-exhaustive DPOR exploration at reorder bound {bound} \
             — accepted assignments are proofs up to the bound; scoring: simulated cycles at the \
             natural schedule)"
        )),
        None => sink.line(format!(
            "(oracle: Shasha-Snir over {} perturbation seeds; scoring: simulated cycles at the natural schedule)",
            synth.explorer.cfg.seeds
        )),
    }
    sink.blank();

    let mut table = Table::new(vec![
        "workload", "design", "sites", "groups", "paper", "paper ok", "paper cycles",
        "synthesized", "cycles", "delta",
    ]);
    let mut faster: Vec<String> = Vec::new();
    let mut rejected: Vec<String> = Vec::new();
    let mut stats = SearchStats::default();

    for &bench in &benches {
        let cfg = MachineConfig::builder().cores(bench.cores()).build();
        let sites = bench.sites(&cfg);
        for &design in &designs {
            let r = synth.synthesize(bench, design, trace.as_mut());
            let paper = r.paper.expect("hand benches carry a paper verdict");
            stats.merge(&r.stats);
            let groups_cell = r
                .groups
                .iter()
                .map(|g| {
                    let names: Vec<&str> = g.iter().map(|&i| sites[i].label).collect();
                    format!("{{{}}}", names.join(" "))
                })
                .collect::<Vec<_>>()
                .join(" ");
            let best_label = r
                .best
                .map(|b| mask_label(&sites, b.mask))
                .unwrap_or_else(|| "-".into());
            let best_cycles = r.best.map(|b| b.cycles.to_string()).unwrap_or_else(|| "-".into());
            let delta = match (paper.cycles, r.best) {
                (Some(p), Some(b)) => format!("{:+}", b.cycles as i64 - p as i64),
                _ => "-".into(),
            };
            table.row(vec![
                bench.name().to_string(),
                design.label().to_string(),
                r.n_sites.to_string(),
                if groups_cell.is_empty() { "-".into() } else { groups_cell },
                mask_label(&sites, paper.mask),
                if paper.valid { "yes".into() } else { "NO".into() },
                paper
                    .cycles
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "-".into()),
                best_label.clone(),
                best_cycles,
                delta,
            ]);
            if let (Some(p), Some(b)) = (paper.cycles, r.best) {
                if b.cycles < p {
                    faster.push(format!(
                        "{}/{}: {} finishes in {} cycles vs the paper's {} ({} saved)",
                        bench.name(),
                        design.label(),
                        best_label,
                        b.cycles,
                        p,
                        p - b.cycles
                    ));
                }
            }
            if !paper.valid {
                rejected.push(format!(
                    "{}/{}: paper annotation {} fails the oracle",
                    bench.name(),
                    design.label(),
                    mask_label(&sites, paper.mask)
                ));
            }
        }
    }

    sink.table("synth_assignments", &table);
    if !faster.is_empty() {
        sink.line("Synthesized assignments strictly faster than the paper's:");
        for f in &faster {
            sink.line(format!("  - {f}"));
        }
        sink.blank();
    }
    if !rejected.is_empty() {
        sink.line("Paper annotations REJECTED by the oracle:");
        for f in &rejected {
            sink.line(format!("  - {f}"));
        }
        sink.blank();
    }
    sink.line(format!(
        "search: {} enumerated, {} pruned structurally, {} oracle-rejected, {} valid, \
         {} memo hits, {} simulator runs",
        stats.enumerated,
        stats.pruned,
        stats.oracle_rejected,
        stats.valid,
        stats.memo_hits,
        stats.runs
    ));

    if let (Some(path), Some(sink)) = (opts.trace.as_deref(), trace) {
        std::fs::write(path, sink.chrome_json())
            .unwrap_or_else(|e| panic!("cannot write trace file {path}: {e}"));
        eprintln!(
            "== synthesis trace -> {path} ({} decisions) ==",
            sink.recorded()
        );
    }
    stats
}

/// The `synth` binary's entry point: parse shared flags, run the report
/// to stdout + `results/`, and write the `--metrics` telemetry snapshot
/// if one was requested (the scoring batches all flow through the
/// runner, so the collector sees every charged simulator run).
pub fn run_cli(runner: &Runner, opts: &Opts) {
    run_cli_with(runner, opts, None);
}

/// [`run_cli`] with the `--exhaustive`/`--bound` opt-in: `exhaustive`
/// carries the reorder bound when the flag was given.
pub fn run_cli_with(runner: &Runner, opts: &Opts, exhaustive: Option<usize>) {
    let mut sink = ReportSink::stdout();
    run_with(runner, opts, exhaustive, &mut sink);
    asymfence_bench::metrics::write_if_requested(runner, opts);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(filter: &str) -> Opts {
        Opts {
            quick: true,
            filter: Some(filter.to_string()),
            ..Default::default()
        }
    }

    #[test]
    fn report_bytes_are_identical_at_any_job_count() {
        let opts = quick_opts("sb");
        let mut a = ReportSink::capture();
        let mut b = ReportSink::capture();
        let sa = run(&Runner::with_jobs(1).progress(false), &opts, &mut a);
        let sb = run(&Runner::with_jobs(2).progress(false), &opts, &mut b);
        assert_eq!(a.captured(), b.captured());
        assert_eq!(a.csv("synth_assignments"), b.csv("synth_assignments"));
        assert_eq!(sa, sb, "charged stats must be jobs-independent");
    }

    #[test]
    fn report_covers_paper_and_synthesized_columns() {
        let opts = quick_opts("wsq");
        let mut sink = ReportSink::capture();
        run(&Runner::with_jobs(2).progress(false), &opts, &mut sink);
        let csv = sink.csv("synth_assignments").unwrap();
        assert!(csv.contains("wsq,S+"));
        assert!(csv.contains("wsq,WS+"));
        assert!(csv.contains("{owner.take thief.steal}"), "{csv}");
    }
}
