//! Fence-assignment synthesis for the asymmetric-fence designs.
//!
//! The paper hand-annotates each kernel's fences with roles (critical /
//! non-critical) and maps roles to hardware strengths per design. This
//! crate closes the loop the other way: given a workload whose static
//! fences carry [`FenceSite`](asymfence::prelude::FenceSite) ids and
//! a [`FenceDesign`](asymfence::prelude::FenceDesign), it **searches**
//! the per-site wf/sf assignment space and returns the fastest
//! assignment that is both structurally admissible and provably SC over
//! a perturbation-seed sweep:
//!
//! * [`groups`] — fence-group discovery from static conflict footprints
//!   and the per-design structural pruning rules.
//! * [`search`] — the enumerate → prune → oracle-validate → score →
//!   rank engine, memoized by assignment hash and deterministic at any
//!   worker count.
//! * [`report`] — the synthesized-vs-paper comparison table emitted by
//!   the `synth` binary.
//!
//! The `synth` binary shares the bench harness's flags
//! (`--jobs/--designs/--filter/--quick/--trace`); `--trace` writes a
//! Perfetto-loadable timeline of every accept/reject decision.

#![deny(missing_docs)]

pub mod groups;
pub mod report;
pub mod search;

pub use report::{run_cli, run_cli_with};
pub use search::{Candidate, PaperVerdict, SynthResult, Synthesizer};
