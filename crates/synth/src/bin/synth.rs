//! `synth`: search per-site wf/sf fence assignments for the paper's
//! kernels, validate them with the schedule-exploration oracle, score
//! them on the simulator, and compare against the paper's hand
//! annotations. Shares the bench harness flags
//! (`--jobs/--designs/--filter/--quick/--trace`).

fn main() {
    let (runner, opts) = asymfence_bench::cli::parse("synth");
    asymfence_synth::run_cli(&runner, &opts);
}
