//! Fence-group discovery and per-design structural pruning.
//!
//! The paper's designs constrain the *weak* fences of a **fence group**:
//! the set of fences that can participate in one Shasha–Snir cycle. Two
//! sites interact when one thread's post-fence reads conflict (same
//! cache line) with another thread's pre-fence writes — that is exactly
//! the `st → FENCE → ld` pattern whose reordering the fence exists to
//! forbid. We build that conflict digraph over the static footprints of
//! [`SiteSpec`]s and take its strongly connected components: an SCC of
//! size ≥ 2 is a fence group (a single site can never complete a cycle
//! by itself).
//!
//! With the groups in hand, a candidate weak-site mask can be rejected
//! *before* any simulation:
//!
//! * `S+` has no weak fence at all — any set bit is out.
//! * `WS+` allows **at most one** weak fence per group (Order protocol).
//! * `SW+` needs **at least one** strong fence per group (Conditional
//!   Order).
//! * `W+` and `Wee` accept any mask (rollback / GRT recovery).
//!
//! Sites outside every group are unconstrained under the asymmetric
//! designs: no cycle can pass through them, so their fence may always be
//! weak.

use asymfence::prelude::FenceDesign;
use asymfence_common::ids::Addr;
use asymfence_common::placement::PlacedFence;
use asymfence_workloads::sites::SiteSpec;

/// Two addresses conflict when they fall on the same cache line.
fn same_line(a: u64, b: u64, line_bytes: u64) -> bool {
    a / line_bytes == b / line_bytes
}

/// The static footprint of one fence site, however it was produced:
/// hand-annotated [`SiteSpec`]s and analyzer-placed
/// [`PlacedFence`]s group identically through this lens.
pub trait Footprint {
    /// Thread (program index) the fence executes on.
    fn thread(&self) -> usize;
    /// Word addresses written before the fence.
    fn pre_writes(&self) -> &[Addr];
    /// Word addresses read at/after the fence.
    fn post_reads(&self) -> &[Addr];
}

impl Footprint for SiteSpec {
    fn thread(&self) -> usize {
        self.thread
    }
    fn pre_writes(&self) -> &[Addr] {
        &self.pre_writes
    }
    fn post_reads(&self) -> &[Addr] {
        &self.post_reads
    }
}

impl Footprint for PlacedFence {
    fn thread(&self) -> usize {
        self.thread
    }
    fn pre_writes(&self) -> &[Addr] {
        &self.pre_writes
    }
    fn post_reads(&self) -> &[Addr] {
        &self.post_reads
    }
}

/// The conflict digraph over arbitrary footprints: `adj[i]` holds every
/// `j` with an edge `i → j`, meaning a post-fence read of site `i` may
/// observe (or race with) a pre-fence write of site `j` on another
/// thread.
pub fn conflict_edges_of<F: Footprint>(sites: &[F], line_bytes: u64) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); sites.len()];
    for (i, a) in sites.iter().enumerate() {
        for (j, b) in sites.iter().enumerate() {
            if a.thread() == b.thread() {
                continue;
            }
            let hit = a.post_reads().iter().any(|r| {
                b.pre_writes()
                    .iter()
                    .any(|w| same_line(r.raw(), w.raw(), line_bytes))
            });
            if hit {
                adj[i].push(j);
            }
        }
    }
    adj
}

/// [`conflict_edges_of`] over hand-annotated sites.
pub fn conflict_edges(sites: &[SiteSpec], line_bytes: u64) -> Vec<Vec<usize>> {
    conflict_edges_of(sites, line_bytes)
}

/// Strongly connected components of `adj` (Kosaraju), smallest member
/// first inside each component, components ordered by smallest member.
/// Deterministic for a given graph.
pub fn sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    // Pass 1: finish-order DFS (iterative, explicit stack).
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        seen[start] = true;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < adj[v].len() {
                let w = adj[v][*next];
                *next += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    // Pass 2: reverse graph, peel components in reverse finish order.
    let mut radj = vec![Vec::new(); n];
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            radj[w].push(v);
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut n_comp = 0;
    for &root in order.iter().rev() {
        if comp[root] != usize::MAX {
            continue;
        }
        let mut stack = vec![root];
        comp[root] = n_comp;
        while let Some(v) = stack.pop() {
            for &w in &radj[v] {
                if comp[w] == usize::MAX {
                    comp[w] = n_comp;
                    stack.push(w);
                }
            }
        }
        n_comp += 1;
    }
    let mut groups = vec![Vec::new(); n_comp];
    for (v, &c) in comp.iter().enumerate() {
        groups[c].push(v);
    }
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort_unstable();
    groups
}

/// Fence groups of arbitrary footprints: SCCs of the conflict digraph
/// with at least two members, each sorted ascending, ordered by
/// smallest member.
pub fn fence_groups_of<F: Footprint>(sites: &[F], line_bytes: u64) -> Vec<Vec<usize>> {
    sccs(&conflict_edges_of(sites, line_bytes))
        .into_iter()
        .filter(|g| g.len() >= 2)
        .collect()
}

/// [`fence_groups_of`] over hand-annotated sites.
pub fn fence_groups(sites: &[SiteSpec], line_bytes: u64) -> Vec<Vec<usize>> {
    fence_groups_of(sites, line_bytes)
}

/// Checks a weak-site mask against a design's structural constraint.
/// Bit `i` of `weak_mask` refers to `sites[i]` (the index the groups use,
/// not the site id). Returns the static reject reason, or `None` when
/// the candidate is structurally admissible.
pub fn structural_reject(
    design: FenceDesign,
    groups: &[Vec<usize>],
    weak_mask: u64,
) -> Option<&'static str> {
    match design {
        FenceDesign::SPlus => (weak_mask != 0).then_some("s+:wf"),
        FenceDesign::WsPlus => groups
            .iter()
            .any(|g| g.iter().filter(|&&i| weak_mask & (1 << i) != 0).count() > 1)
            .then_some("ws+:>1wf"),
        FenceDesign::SwPlus => groups
            .iter()
            .any(|g| g.iter().all(|&i| weak_mask & (1 << i) != 0))
            .then_some("sw+:0sf"),
        FenceDesign::WPlus | FenceDesign::Wee | FenceDesign::WfOnlyUnsafe => None,
    }
}

/// The paper's hand annotation as a weak-site mask for `design`: the
/// role-to-strength mapping the simulator applies when no per-site
/// assignment is installed.
pub fn paper_mask(sites: &[SiteSpec], design: FenceDesign) -> u64 {
    let mut mask = 0;
    for (i, s) in sites.iter().enumerate() {
        let weak = match s.paper_role {
            asymfence::prelude::FenceRole::Critical => design.critical_is_weak(),
            asymfence::prelude::FenceRole::NonCritical => design.noncritical_is_weak(),
        };
        if weak {
            mask |= 1 << i;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::MachineConfig;
    use asymfence_workloads::sites::SiteBench;

    fn groups_of(bench: SiteBench) -> Vec<Vec<usize>> {
        let cfg = MachineConfig::builder().cores(bench.cores()).build();
        fence_groups(&bench.sites(&cfg), cfg.line_bytes)
    }

    #[test]
    fn sb_sites_form_one_pair_group() {
        assert_eq!(groups_of(SiteBench::Sb), vec![vec![0, 1]]);
    }

    #[test]
    fn dekker_fences_form_one_group() {
        // The two entry fences close the paper's Figure 1a cycle through
        // the flags; the backoff fences join the same group through the
        // turn word (retraction store vs turn-wait loads).
        assert_eq!(groups_of(SiteBench::Dekker), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn wsq_owner_and_thief_form_one_pair_group() {
        assert_eq!(groups_of(SiteBench::Wsq), vec![vec![0, 1]]);
    }

    #[test]
    fn bakery_fences_form_one_all_thread_group() {
        // Figure 6: every participant's doorway and ticket fence falls in
        // one group — doorways reach tickets through N[j], tickets reach
        // doorways through E[j].
        assert_eq!(groups_of(SiteBench::Bakery), vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn dcl_groups_only_the_init_fences() {
        // Reader fences have no pre-fence store on their path, so under
        // TSO they can anchor no st→ld cycle: only the two initializer
        // fences (site indices 1 and 3 in ascending site order) group.
        assert_eq!(groups_of(SiteBench::Dcl), vec![vec![1, 3]]);
    }

    #[test]
    fn sccs_handle_chains_and_self_contained_cycles() {
        // 0 → 1 → 2 → 0 is one SCC; 3 → 0 is a lone node.
        let adj = vec![vec![1], vec![2], vec![0], vec![0]];
        assert_eq!(sccs(&adj), vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn structural_rules_match_the_designs() {
        let groups = vec![vec![0, 1], vec![2, 3]];
        // S+ admits only the all-strong mask.
        assert_eq!(structural_reject(FenceDesign::SPlus, &groups, 0), None);
        assert!(structural_reject(FenceDesign::SPlus, &groups, 0b0001).is_some());
        // WS+: at most one weak per group; ungrouped bits are free.
        assert_eq!(structural_reject(FenceDesign::WsPlus, &groups, 0b0101), None);
        assert!(structural_reject(FenceDesign::WsPlus, &groups, 0b0011).is_some());
        assert_eq!(
            structural_reject(FenceDesign::WsPlus, &[vec![0, 1]], 0b1100),
            None,
            "sites outside every group are unconstrained"
        );
        // SW+: at least one strong per group.
        assert_eq!(structural_reject(FenceDesign::SwPlus, &groups, 0b0101), None);
        assert!(structural_reject(FenceDesign::SwPlus, &groups, 0b0011).is_some());
        // W+ and Wee admit everything.
        assert_eq!(structural_reject(FenceDesign::WPlus, &groups, 0b1111), None);
        assert_eq!(structural_reject(FenceDesign::Wee, &groups, 0b1111), None);
    }
}
