//! The assignment search: enumerate → prune → validate → score → rank.
//!
//! For one ([`SiteBench`], [`FenceDesign`]) pair the search walks every
//! weak-site mask in `0..2^sites` in ascending order:
//!
//! 1. **Prune** masks that violate the design's structural constraint
//!    over the discovered fence groups ([`crate::groups`]) — no
//!    simulation is spent on them.
//! 2. **Validate** survivors with the schedule-exploration oracle
//!    ([`Explorer::sweep_builder`]): a perturbation-seed sweep whose
//!    every run is checked by the Shasha–Snir cycle finder, with
//!    deadlock and cycle-budget exhaustion also counting as failures.
//! 3. **Score** oracle-valid candidates by simulated cycles through the
//!    shared [`RunSpec`] → [`Runner`] engine (one batch, fanned out over
//!    the runner's worker pool, order-preserving).
//! 4. **Rank** deterministically: minimum `(cycles, mask)`.
//!
//! Scores are memoized by `(design, bench, FenceAssignment::key())`, so
//! re-scoring the paper's own assignment (which the report always
//! evaluates) is free when the search already visited its mask.
//! Everything — including the charged [`SearchStats`] — is a pure
//! function of the inputs, independent of `--jobs`.

use std::collections::HashMap;

use asymfence::cpu::insert::FencedProgram;
use asymfence::prelude::{FenceDesign, FenceRole, Machine, MachineConfig, RunOutcome, TraceSink};
use asymfence_bench::{RunSpec, Runner, SiteMask};
use asymfence_common::assign::SearchStats;
use asymfence_common::ids::CoreId;
use asymfence_common::placement::{Placement, PlacementSpec};
use asymfence_common::schedule::{SchedulePlan, ScheduleScript};
use asymfence_common::trace::TraceKind;
use asymfence_common::trace_event;
use asymfence_explore::{DporConfig, Explorer};
use asymfence_workloads::sites::SiteBench;
use asymfence_workloads::unannot::InferredKernel;

use crate::groups;

/// What one search run synthesizes over: a hand-annotated benchmark's
/// numbered sites, or an analyzer placement's synthetic sites injected
/// into an unannotated kernel. Both expose the same mask space.
// The inline `PlacementSpec` keeps the target (and the `RunSpec`s built
// from it) plain `Copy` data; see `Workload::Inferred` in the runner.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, Debug)]
enum Target {
    Hand(SiteBench),
    Inferred(InferredKernel, PlacementSpec),
}

impl Target {
    fn cores(self) -> usize {
        match self {
            Target::Hand(b) => b.cores(),
            Target::Inferred(k, _) => k.cores(),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Target::Hand(b) => b.name(),
            Target::Inferred(k, _) => k.name(),
        }
    }

    /// The candidate mask over this target's site-id range. Hand and
    /// inferred masks can never alias in the score memo: the assignment
    /// key hashes the site ids, and the synthetic range is disjoint.
    fn mask(self, n_sites: u32, weak: u64) -> SiteMask {
        match self {
            Target::Hand(_) => SiteMask::hand(n_sites, weak),
            Target::Inferred(..) => SiteMask::synthetic(n_sites, weak),
        }
    }

    /// The scoring spec for one candidate mask.
    fn spec(self, design: FenceDesign, seed: u64, n_sites: u32, weak: u64) -> RunSpec {
        let spec = match self {
            Target::Hand(b) => RunSpec::sites(b, design, seed),
            Target::Inferred(k, p) => RunSpec::inferred(k, p, design, seed),
        };
        spec.with_assignment(self.mask(n_sites, weak))
    }

    /// Adds the target's threads to an oracle machine.
    fn add_threads(self, m: &mut Machine, seed: u64) {
        match self {
            Target::Hand(b) => {
                for p in b.programs(m.config(), seed) {
                    m.add_thread(p);
                }
            }
            Target::Inferred(k, placement) => {
                let line_bytes = m.config().line_bytes;
                let progs = k.programs(m.config(), seed);
                for (tid, p) in progs.into_iter().enumerate() {
                    m.add_thread(Box::new(FencedProgram::new(
                        p,
                        tid,
                        placement,
                        line_bytes,
                        FenceRole::NonCritical,
                    )));
                }
            }
        }
    }
}

/// One oracle-valid, scored candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// Weak-site mask (bit `i` = `sites[i]` weak).
    pub mask: u64,
    /// Simulated cycles of the scoring run.
    pub cycles: u64,
}

/// How the paper's hand annotation fared under the same oracle + scorer.
#[derive(Clone, Copy, Debug)]
pub struct PaperVerdict {
    /// The annotation as a weak-site mask.
    pub mask: u64,
    /// Whether the oracle accepted it (a `false` here is a finding: the
    /// hand annotation is unsafe under this design).
    pub valid: bool,
    /// Scoring cycles when valid.
    pub cycles: Option<u64>,
}

/// The full outcome of synthesizing one (workload, design) pair.
#[derive(Clone, Debug)]
pub struct SynthResult {
    /// The workload searched (bench name, or kernel name for inferred
    /// placements).
    pub name: &'static str,
    /// The design searched under.
    pub design: FenceDesign,
    /// Number of fence sites (the search space is `2^n_sites`).
    pub n_sites: u32,
    /// Discovered fence groups, as indices into the site list.
    pub groups: Vec<Vec<usize>>,
    /// Best valid candidate (min cycles, ties to the smaller mask).
    /// `None` only if every mask failed — which no safe design produces,
    /// since the all-strong mask is always admissible and SC.
    pub best: Option<Candidate>,
    /// The paper annotation's verdict. `None` for inferred placements,
    /// which have no hand annotation to compare against.
    pub paper: Option<PaperVerdict>,
    /// Search accounting (serial-equivalent, jobs-independent).
    pub stats: SearchStats,
}

impl SynthResult {
    /// Cycles saved by the best synthesized assignment relative to the
    /// paper's (negative = synthesized is slower; `None` when either
    /// side is missing).
    pub fn delta_vs_paper(&self) -> Option<i64> {
        Some(self.paper?.cycles? as i64 - self.best?.cycles as i64)
    }
}

/// The synthesis engine: owns the oracle budgets, the scoring runner and
/// the cross-call score memo.
pub struct Synthesizer {
    /// Oracle (perturbation-sweep) engine. Its `jobs` field is set from
    /// the runner so one `--jobs` governs both layers.
    pub explorer: Explorer,
    /// Scoring engine.
    pub runner: Runner,
    /// Workload seed for both the oracle machines and the scoring runs.
    pub seed: u64,
    /// When set, survivors are validated by bounded-exhaustive DPOR
    /// exploration ([`Explorer::explore_exhaustive_builder`]) instead of
    /// the perturbation-seed sweep: every accepted assignment is then a
    /// *proof* of SC up to the configured reorder bound. `None` (the
    /// default) keeps the sampled oracle byte-identical to earlier
    /// releases.
    pub exhaustive: Option<DporConfig>,
    /// Mask-space partition for sharded sweeps: only masks this shard
    /// owns (round-robin by mask value) are enumerated, and the charged
    /// [`SearchStats`] count only the owned work — shard stats sum to
    /// the single-process totals. The oracle explorer inside stays
    /// *whole* regardless (each owned mask is validated over the full
    /// seed budget; sharding both layers would skip seeds). Defaults to
    /// the whole space.
    pub shard: asymfence_common::par::Shard,
    memo: HashMap<(FenceDesign, &'static str, u64), u64>,
}

impl Synthesizer {
    /// Creates an engine; `explorer.jobs` is aligned to the runner's
    /// worker count.
    pub fn new(explorer: Explorer, runner: Runner, seed: u64) -> Self {
        let explorer = explorer.with_jobs(runner.jobs());
        Synthesizer {
            explorer,
            runner,
            seed,
            exhaustive: None,
            shard: asymfence_common::par::Shard::whole(),
            memo: HashMap::new(),
        }
    }

    /// Restricts the search to the masks `shard` owns (see the `shard`
    /// field); merging the per-shard bests by `(cycles, mask)` and
    /// summing the per-shard stats reproduces the whole-space search.
    #[must_use]
    pub fn with_shard(mut self, shard: asymfence_common::par::Shard) -> Self {
        self.shard = shard;
        self
    }

    /// Switches oracle validation to bounded-exhaustive exploration at
    /// the given reorder bound (derived from the explorer's perturbation
    /// magnitudes, like `explore --exhaustive`).
    #[must_use]
    pub fn with_exhaustive(mut self, bound: usize) -> Self {
        self.exhaustive = Some(DporConfig::from_explore(&self.explorer.cfg, bound));
        self
    }

    /// Builds one oracle machine for a candidate mask: SCV log on,
    /// explorer watchdog, the given perturbation, and the candidate's
    /// per-site assignment installed over the role mapping.
    fn oracle_machine(
        &self,
        target: Target,
        design: FenceDesign,
        n_sites: u32,
        mask: u64,
        perturb: asymfence::prelude::Perturbation,
    ) -> Machine {
        let mut cfg = MachineConfig::builder()
            .cores(target.cores())
            .fence_design(design)
            .seed(self.seed)
            .record_scv_log(true)
            .watchdog_cycles(self.explorer.cfg.watchdog_cycles)
            .perturb(perturb)
            .build();
        cfg.fence_assignment = Some(target.mask(n_sites, mask).to_assignment());
        let mut m = Machine::new(&cfg);
        target.add_threads(&mut m, self.seed);
        m
    }

    /// Builds one oracle machine for a candidate mask driven by a
    /// scripted schedule instead of a perturbation — the machine the
    /// exhaustive validation path hands to the DPOR walk.
    fn oracle_machine_scripted(
        &self,
        target: Target,
        design: FenceDesign,
        n_sites: u32,
        mask: u64,
        script: ScheduleScript,
    ) -> Machine {
        let mut cfg = MachineConfig::builder()
            .cores(target.cores())
            .fence_design(design)
            .seed(self.seed)
            .record_scv_log(true)
            .watchdog_cycles(self.explorer.cfg.watchdog_cycles)
            .schedule(SchedulePlan::Scripted(script))
            .build();
        cfg.fence_assignment = Some(target.mask(n_sites, mask).to_assignment());
        let mut m = Machine::new(&cfg);
        target.add_threads(&mut m, self.seed);
        m
    }

    /// Scores a batch of oracle-valid masks through the `RunSpec` →
    /// `Runner` engine, consulting and filling the memo. Returns
    /// `(mask, cycles, finished)` per input mask, in input order.
    fn score(
        &mut self,
        target: Target,
        design: FenceDesign,
        n_sites: u32,
        masks: &[u64],
        stats: &mut SearchStats,
    ) -> Vec<(u64, u64, bool)> {
        let key = |mask: u64| {
            let a = target.mask(n_sites, mask).to_assignment();
            (design, target.name(), a.key())
        };
        let fresh: Vec<u64> = masks
            .iter()
            .copied()
            .filter(|&m| !self.memo.contains_key(&key(m)))
            .collect();
        stats.memo_hits += (masks.len() - fresh.len()) as u64;
        let specs: Vec<RunSpec> = fresh
            .iter()
            .map(|&m| target.spec(design, self.seed, n_sites, m))
            .collect();
        let results = self.runner.run(&specs);
        stats.runs += results.len() as u64;
        for (&m, r) in fresh.iter().zip(&results) {
            // A non-finishing scoring run is recorded as u64::MAX cycles
            // so it can never win the ranking; `finished` reports it.
            let cycles = if r.outcome == RunOutcome::Finished {
                r.cycles
            } else {
                u64::MAX
            };
            self.memo.insert(key(m), cycles);
        }
        masks
            .iter()
            .map(|&m| {
                let c = self.memo[&key(m)];
                (m, c, c != u64::MAX)
            })
            .collect()
    }

    /// The shared enumerate → prune → validate → score core. Returns the
    /// oracle survivors, the scored `(mask, cycles, finished)` triples,
    /// the ranked best, and the charged stats; emits the per-mask trace
    /// events in mask order on the caller's thread.
    #[allow(clippy::type_complexity)]
    fn search_masks(
        &mut self,
        target: Target,
        design: FenceDesign,
        n_sites: u32,
        groups: &[Vec<usize>],
        mut trace: Option<&mut TraceSink>,
    ) -> (Vec<u64>, Vec<(u64, u64, bool)>, Option<Candidate>, SearchStats) {
        assert!(n_sites <= 16, "mask enumeration is meant for small kernels");
        let mut stats = SearchStats::default();
        let mut step: u64 = 0;
        let mut rejected: Vec<(u64, &'static str)> = Vec::new();
        let mut survivors: Vec<u64> = Vec::new();

        // Phase 1+2: enumerate, prune, oracle-validate (ascending mask
        // order keeps every downstream artifact deterministic).
        for mask in 0..(1u64 << n_sites) {
            // Sharded search: masks another shard owns are skipped before
            // any accounting, so per-shard stats sum to the whole-space
            // totals.
            if !self.shard.owns(mask) {
                continue;
            }
            stats.enumerated += 1;
            if let Some(reason) = groups::structural_reject(design, groups, mask) {
                stats.pruned += 1;
                rejected.push((mask, reason));
                continue;
            }
            let (charged, violation) = match &self.exhaustive {
                Some(dcfg) => {
                    let out = self.explorer.explore_exhaustive_builder(dcfg, |script| {
                        self.oracle_machine_scripted(target, design, n_sites, mask, script)
                    });
                    (out.executed, out.violation.map(|(_, failure)| failure))
                }
                None => {
                    let report = self.explorer.sweep_builder(|perturb| {
                        self.oracle_machine(target, design, n_sites, mask, perturb)
                    });
                    (report.runs, report.violation.map(|(_, failure)| failure))
                }
            };
            stats.runs += charged;
            match violation {
                Some(failure) => {
                    stats.oracle_rejected += 1;
                    rejected.push((mask, oracle_reason(&failure)));
                }
                None => {
                    stats.valid += 1;
                    survivors.push(mask);
                }
            }
        }

        // Phase 3: score the survivors in one parallel batch.
        let scored = self.score(target, design, n_sites, &survivors, &mut stats);
        let best = scored
            .iter()
            .filter(|&&(_, _, finished)| finished)
            .map(|&(mask, cycles, _)| Candidate { mask, cycles })
            .min_by_key(|c| (c.cycles, c.mask));

        // Trace: replay the per-mask decisions in mask order.
        if trace.is_some() {
            let mut events: Vec<(u64, TraceKind)> = rejected
                .iter()
                .map(|&(mask, reason)| (mask, TraceKind::SynthReject { mask, reason }))
                .collect();
            for &(mask, cycles, finished) in &scored {
                events.push((
                    mask,
                    if finished {
                        TraceKind::SynthAccept { mask, cycles }
                    } else {
                        TraceKind::SynthReject {
                            mask,
                            reason: "score:no-finish",
                        }
                    },
                ));
            }
            events.sort_by_key(|&(mask, _)| mask);
            for (mask, kind) in events {
                trace_event!(
                    trace.as_deref_mut(),
                    step,
                    CoreId(mask.count_ones() as usize),
                    kind
                );
                step += 1;
            }
        }

        (survivors, scored, best, stats)
    }

    /// Synthesizes the best per-site assignment for one (bench, design)
    /// pair. `trace` (when given) receives one `SynthReject` /
    /// `SynthAccept` event per mask, in mask order, with the search step
    /// as the timestamp and the mask's popcount as the track — emitted
    /// on the caller's thread, so the trace too is jobs-independent.
    pub fn synthesize(
        &mut self,
        bench: SiteBench,
        design: FenceDesign,
        trace: Option<&mut TraceSink>,
    ) -> SynthResult {
        let cfg = MachineConfig::builder().cores(bench.cores()).build();
        let sites = bench.sites(&cfg);
        let n_sites = sites.len() as u32;
        let groups = groups::fence_groups(&sites, cfg.line_bytes);
        let paper_mask = groups::paper_mask(&sites, design);

        let target = Target::Hand(bench);
        let (survivors, scored, best, stats) =
            self.search_masks(target, design, n_sites, &groups, trace);

        // The paper's own annotation, judged by the same oracle + scorer.
        let paper = if groups::structural_reject(design, &groups, paper_mask).is_some() {
            // Can only happen for a design/annotation mismatch; recorded,
            // not panicked on, since that mismatch IS the finding.
            PaperVerdict {
                mask: paper_mask,
                valid: false,
                cycles: None,
            }
        } else if survivors.contains(&paper_mask) {
            let cycles = scored
                .iter()
                .find(|&&(m, _, finished)| m == paper_mask && finished)
                .map(|&(_, c, _)| c);
            PaperVerdict {
                mask: paper_mask,
                valid: true,
                cycles,
            }
        } else {
            PaperVerdict {
                mask: paper_mask,
                valid: false,
                cycles: None,
            }
        };

        SynthResult {
            name: bench.name(),
            design,
            n_sites,
            groups,
            best,
            paper: Some(paper),
            stats,
        }
    }

    /// Synthesizes the best per-site strength assignment for an
    /// analyzer-inferred [`Placement`] over an unannotated kernel. The
    /// placement's fences become synthetic sites
    /// ([`SiteMask::synthetic`]); the kernel's programs run wrapped in
    /// [`FencedProgram`] decorators that inject a fence exactly at each
    /// placed window, so the oracle and the scorer exercise the same
    /// machine the analyzer's report describes. No paper verdict: there
    /// is no hand annotation to compare against.
    pub fn synthesize_inferred(
        &mut self,
        kernel: InferredKernel,
        placement: &Placement,
        design: FenceDesign,
        trace: Option<&mut TraceSink>,
    ) -> SynthResult {
        let n_sites = placement.len() as u32;
        let cfg = MachineConfig::builder().cores(kernel.cores()).build();
        let groups = groups::fence_groups_of(&placement.fences, cfg.line_bytes);

        let target = Target::Inferred(kernel, placement.spec());
        let (_, _, best, stats) = self.search_masks(target, design, n_sites, &groups, trace);

        SynthResult {
            name: kernel.name(),
            design,
            n_sites,
            groups,
            best,
            paper: None,
            stats,
        }
    }
}

/// Static reason label for an oracle failure.
fn oracle_reason(f: &asymfence_explore::Failure) -> &'static str {
    match f {
        asymfence_explore::Failure::Scv { .. } => "oracle:scv",
        asymfence_explore::Failure::Deadlock => "oracle:deadlock",
        asymfence_explore::Failure::CycleLimit => "oracle:cycle-limit",
    }
}

/// Renders a mask as the site-label list (`wf{owner.take}` style), or
/// `all-sf` for the empty mask.
pub fn mask_label(sites: &[asymfence_workloads::sites::SiteSpec], mask: u64) -> String {
    if mask == 0 {
        return "all-sf".into();
    }
    let labels: Vec<&str> = sites
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask & (1 << i) != 0)
        .map(|(_, s)| s.label)
        .collect();
    format!("wf{{{}}}", labels.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence_explore::ExploreConfig;

    fn quick_synth(jobs: usize) -> Synthesizer {
        let cfg = ExploreConfig {
            seeds: 6,
            ..Default::default()
        };
        Synthesizer::new(
            Explorer::new(cfg),
            Runner::with_jobs(jobs).progress(false),
            asymfence_bench::SEED,
        )
    }

    #[test]
    fn sb_under_ws_plus_accepts_one_weak_fence() {
        let mut s = quick_synth(2);
        let r = s.synthesize(SiteBench::Sb, FenceDesign::WsPlus, None);
        assert_eq!(r.groups, vec![vec![0, 1]]);
        let best = r.best.expect("all-sf is always valid");
        // WS+ admits masks 00, 01, 10; a weak fence is never slower than
        // the strong one it replaces.
        assert!(best.mask.count_ones() <= 1);
        let paper = r.paper.expect("hand benches carry a paper verdict");
        assert!(paper.valid, "paper annotation must pass the oracle");
        assert!(best.cycles <= paper.cycles.unwrap());
        assert_eq!(r.stats.pruned, 1, "only the all-weak mask is pruned");
    }

    #[test]
    fn s_plus_admits_only_the_all_strong_mask() {
        let mut s = quick_synth(1);
        let r = s.synthesize(SiteBench::Sb, FenceDesign::SPlus, None);
        assert_eq!(r.best.map(|b| b.mask), Some(0));
        assert_eq!(r.stats.pruned, 3);
        assert_eq!(r.stats.valid, 1);
    }

    #[test]
    fn memo_dedupes_repeat_scoring() {
        let mut s = quick_synth(1);
        let a = s.synthesize(SiteBench::Sb, FenceDesign::WsPlus, None);
        assert_eq!(a.stats.memo_hits, 0);
        let b = s.synthesize(SiteBench::Sb, FenceDesign::WsPlus, None);
        assert_eq!(b.best, a.best);
        assert_eq!(
            b.stats.memo_hits, b.stats.valid,
            "second pass scores entirely from the memo"
        );
    }

    #[test]
    fn results_are_identical_at_any_job_count() {
        for bench in [SiteBench::Sb, SiteBench::Wsq] {
            let r1 = quick_synth(1).synthesize(bench, FenceDesign::WsPlus, None);
            let r2 = quick_synth(3).synthesize(bench, FenceDesign::WsPlus, None);
            assert_eq!(r1.best, r2.best, "{}", bench.name());
            assert_eq!(r1.stats, r2.stats, "{}", bench.name());
        }
    }

    #[test]
    fn exhaustive_validation_agrees_with_the_sampled_oracle() {
        let sampled = quick_synth(2).synthesize(SiteBench::Sb, FenceDesign::WsPlus, None);
        let mut ex = quick_synth(2).with_exhaustive(1);
        let proven = ex.synthesize(SiteBench::Sb, FenceDesign::WsPlus, None);
        // Same admissible space, same verdicts: every sampled survivor is
        // now proven SC up to the bound, and nothing new is rejected.
        assert_eq!(proven.stats.valid, sampled.stats.valid);
        assert_eq!(proven.stats.oracle_rejected, sampled.stats.oracle_rejected);
        assert_eq!(proven.best.map(|b| b.mask), sampled.best.map(|b| b.mask));
        assert!(proven.paper.unwrap().valid);
    }

    #[test]
    fn exhaustive_validation_is_identical_at_any_job_count() {
        let r1 = quick_synth(1)
            .with_exhaustive(1)
            .synthesize(SiteBench::Sb, FenceDesign::WsPlus, None);
        let r2 = quick_synth(3)
            .with_exhaustive(1)
            .synthesize(SiteBench::Sb, FenceDesign::WsPlus, None);
        assert_eq!(r1.best, r2.best);
        assert_eq!(r1.stats, r2.stats);
    }
}
