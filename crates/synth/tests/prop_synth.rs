//! Property tests of the synthesis engine's static half: fence-group
//! discovery (SCCs of the conflict digraph) and the per-design
//! structural pruning rules.
//!
//! Runs on the in-repo property harness (`asymfence_common::prop`):
//! failing case seeds persist to `tests/regressions/prop_synth.seeds`
//! and replay before fresh cases. `ASF_PROP_CASES` / `ASF_PROP_SEED`
//! override the budget and base seed.

use asymfence::prelude::FenceDesign;
use asymfence_common::prop::{check, pairs, u64s, usizes, vecs, Config};
use asymfence_synth::groups::{sccs, structural_reject};

fn prop_cfg(cases: u32) -> Config {
    Config::from_env(cases).regressions("tests/regressions/prop_synth.seeds")
}

/// Builds a digraph on `n` nodes from raw edge pairs (reduced mod `n`).
fn digraph(n: usize, raw_edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in raw_edges {
        let (a, b) = (a % n, b % n);
        if a != b && !adj[a].contains(&b) {
            adj[a].push(b);
        }
    }
    adj
}

/// Brute-force transitive closure of `adj`.
fn reach(adj: &[Vec<usize>]) -> Vec<Vec<bool>> {
    let n = adj.len();
    let mut r = vec![vec![false; n]; n];
    for (v, outs) in adj.iter().enumerate() {
        r[v][v] = true;
        for &w in outs {
            r[v][w] = true;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                r[i][j] |= r[i][k] && r[k][j];
            }
        }
    }
    r
}

/// The Kosaraju SCCs agree with the definition: two nodes share a
/// component exactly when each reaches the other, and the output is a
/// partition in canonical order.
#[test]
fn sccs_match_brute_force_mutual_reachability() {
    let gen = pairs(
        usizes(1, 8),
        vecs(pairs(usizes(0, 63), usizes(0, 63)), 0, 28),
    );
    check(
        "sccs_match_brute_force_mutual_reachability",
        &prop_cfg(64),
        &gen,
        |(n, raw_edges)| {
            let adj = digraph(*n, raw_edges);
            let groups = sccs(&adj);
            let r = reach(&adj);

            let mut comp = vec![usize::MAX; *n];
            for (c, g) in groups.iter().enumerate() {
                for w in g.windows(2) {
                    if w[0] >= w[1] {
                        return Err(format!("group {g:?} not ascending"));
                    }
                }
                for &v in g {
                    if comp[v] != usize::MAX {
                        return Err(format!("node {v} in two groups"));
                    }
                    comp[v] = c;
                }
            }
            if comp.contains(&usize::MAX) {
                return Err("not a partition: node missing".into());
            }
            for i in 0..*n {
                for j in 0..*n {
                    let together = comp[i] == comp[j];
                    let mutual = r[i][j] && r[j][i];
                    if together != mutual {
                        return Err(format!(
                            "nodes {i},{j}: same-scc={together} mutual-reach={mutual}"
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}

/// WS+ admits a mask exactly when every fence group carries at most one
/// weak fence, and weakening is monotone: clearing any bit of an
/// admissible mask stays admissible.
#[test]
fn ws_plus_prunes_exactly_masks_with_two_weak_in_a_group() {
    let gen = pairs(
        pairs(usizes(1, 6), vecs(pairs(usizes(0, 63), usizes(0, 63)), 0, 18)),
        u64s(0, u64::MAX),
    );
    check(
        "ws_plus_prunes_exactly_masks_with_two_weak_in_a_group",
        &prop_cfg(64),
        &gen,
        |((n, raw_edges), mask_bits)| {
            let adj = digraph(*n, raw_edges);
            let groups: Vec<Vec<usize>> = sccs(&adj).into_iter().filter(|g| g.len() >= 2).collect();
            let mask = mask_bits & ((1u64 << *n) - 1);

            let over = groups
                .iter()
                .any(|g| g.iter().filter(|&&i| mask & (1 << i) != 0).count() > 1);
            let rejected = structural_reject(FenceDesign::WsPlus, &groups, mask).is_some();
            if rejected != over {
                return Err(format!(
                    "WS+ mask {mask:#b} over groups {groups:?}: rejected={rejected}, >1wf={over}"
                ));
            }
            if !rejected {
                for bit in 0..*n {
                    let sub = mask & !(1u64 << bit);
                    if structural_reject(FenceDesign::WsPlus, &groups, sub).is_some() {
                        return Err(format!(
                            "WS+ not monotone: {mask:#b} ok but submask {sub:#b} rejected"
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}

/// The remaining designs' rules, against their definitions on the same
/// random groups: S+ admits only the empty mask, SW+ admits a mask
/// exactly when every group keeps a strong member, W+/Wee admit all.
#[test]
fn remaining_designs_prune_per_their_definitions() {
    let gen = pairs(
        pairs(usizes(1, 6), vecs(pairs(usizes(0, 63), usizes(0, 63)), 0, 18)),
        u64s(0, u64::MAX),
    );
    check(
        "remaining_designs_prune_per_their_definitions",
        &prop_cfg(64),
        &gen,
        |((n, raw_edges), mask_bits)| {
            let adj = digraph(*n, raw_edges);
            let groups: Vec<Vec<usize>> = sccs(&adj).into_iter().filter(|g| g.len() >= 2).collect();
            let mask = mask_bits & ((1u64 << *n) - 1);

            let s_plus = structural_reject(FenceDesign::SPlus, &groups, mask).is_some();
            if s_plus != (mask != 0) {
                return Err(format!("S+ mask {mask:#b}: rejected={s_plus}"));
            }
            let all_weak = groups
                .iter()
                .any(|g| g.iter().all(|&i| mask & (1 << i) != 0));
            let sw_plus = structural_reject(FenceDesign::SwPlus, &groups, mask).is_some();
            if sw_plus != all_weak {
                return Err(format!(
                    "SW+ mask {mask:#b} over {groups:?}: rejected={sw_plus}, all-weak-group={all_weak}"
                ));
            }
            for free in [FenceDesign::WPlus, FenceDesign::Wee] {
                if structural_reject(free, &groups, mask).is_some() {
                    return Err(format!("{free:?} must admit every mask, rejected {mask:#b}"));
                }
            }
            Ok(())
        },
    );
}
