//! The interface between workloads and the simulated core.
//!
//! A workload is a [`ThreadProgram`]: a deterministic state machine that
//! the core's front end *fetches* dynamic instructions from. Loads (and
//! RMWs) may carry a *tag*; tagged values are delivered back to the
//! program when the instruction retires — possibly **early**, before a
//! preceding weak fence completes, which is exactly the reordering the
//! paper studies. While a tagged instruction is outstanding the front end
//! stalls (the program's next instruction depends on the value, like a
//! branch).
//!
//! Programs must be snapshottable ([`ThreadProgram::snapshot`]) so the W+
//! design can checkpoint at a weak fence and re-execute after a deadlock
//! rollback.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use asymfence_common::ids::Addr;
use asymfence_coherence::RmwKind;

/// Whether a fence sits on a performance-critical code path.
///
/// Workloads tag fences with roles; the machine's
/// [`FenceDesign`](asymfence_common::config::FenceDesign) maps roles to
/// strong or weak hardware fences (e.g. WS+ maps `Critical` to a weak
/// fence and `NonCritical` to a strong one).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FenceRole {
    /// The hot thread of a fence group (work-stealing owner, STM reader).
    Critical,
    /// The rare thread (thief, STM writer).
    NonCritical,
}

/// Identity of one *static* fence site within a workload.
///
/// Every dynamic execution of the same program-text fence carries the
/// same site id, so a per-site
/// [`FenceAssignment`](asymfence_common::assign::FenceAssignment) can
/// override the role-based strength mapping fence by fence (the
/// synthesis engine searches that space). Fences nobody needs to address
/// use [`FenceSite::ANON`], which no assignment matches — role mapping
/// remains the default and unannotated workloads behave exactly as
/// before.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FenceSite(pub u32);

impl FenceSite {
    /// The anonymous site: never matched by an assignment.
    pub const ANON: FenceSite = FenceSite(u32::MAX);

    /// Raw site id (the key used in assignment encodings).
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Whether this is the anonymous (unaddressable) site.
    pub const fn is_anon(self) -> bool {
        self.0 == u32::MAX
    }
}

impl std::fmt::Display for FenceSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_anon() {
            write!(f, "s?")
        } else if asymfence_common::assign::is_synthetic(self.0) {
            // Analyzer-placed (synthetic) sites print their placement
            // index, not the raw offset id.
            write!(f, "p{}", self.0 - asymfence_common::assign::SYNTHETIC_BASE)
        } else {
            write!(f, "s{}", self.0)
        }
    }
}

/// One dynamic instruction.
#[derive(Clone, Debug)]
pub enum Instr {
    /// A load; if `tag` is set, the value is delivered to the program at
    /// retirement and fetch stalls until then.
    Load {
        /// Byte address.
        addr: Addr,
        /// Delivery tag, if the program consumes the value.
        tag: Option<u64>,
    },
    /// A store of `value`.
    Store {
        /// Byte address.
        addr: Addr,
        /// Stored value.
        value: u64,
    },
    /// An atomic read-modify-write; always tagged (the old value is
    /// delivered at completion). Acts as a full fence, like x86 `lock`.
    Rmw {
        /// Byte address.
        addr: Addr,
        /// The operation.
        op: RmwKind,
        /// Delivery tag for the old value.
        tag: u64,
    },
    /// A memory fence with a workload-assigned role and static site id.
    Fence {
        /// Role in its fence group.
        role: FenceRole,
        /// Static site identity (or [`FenceSite::ANON`]).
        site: FenceSite,
    },
    /// `cycles` units of non-memory work (retires at the issue width).
    Compute {
        /// Units of work.
        cycles: u64,
    },
}

impl Instr {
    /// An anonymous fence: strength comes from the design's role mapping.
    pub const fn fence(role: FenceRole) -> Instr {
        Instr::Fence {
            role,
            site: FenceSite::ANON,
        }
    }

    /// A fence at an addressable site; a
    /// [`FenceAssignment`](asymfence_common::assign::FenceAssignment) in
    /// the machine config may override its strength.
    pub const fn fence_at(site: FenceSite, role: FenceRole) -> Instr {
        Instr::Fence { role, site }
    }
}

/// What the front end got from the program this fetch.
#[derive(Debug)]
pub enum Fetch {
    /// An instruction to dispatch.
    Instr(Instr),
    /// Nothing right now (waiting on a tagged value or an internal
    /// condition); try again next cycle.
    Await,
    /// The program has finished.
    Done,
}

/// A deterministic workload state machine executed by one core.
pub trait ThreadProgram {
    /// Produces the next dynamic instruction, `Await` while blocked on a
    /// tagged delivery, or `Done`.
    fn fetch(&mut self) -> Fetch;

    /// Delivers the value of a tagged load/RMW at its retirement.
    fn deliver(&mut self, tag: u64, value: u64);

    /// Clones the program state (the W+ checkpoint). Called at weak-fence
    /// dispatch, when no tagged delivery is outstanding.
    fn snapshot(&self) -> Box<dyn ThreadProgram>;

    /// Debug name.
    fn name(&self) -> &str {
        "program"
    }

    /// Downcasting access, so harnesses can read results (e.g. commit
    /// counts) out of a finished program.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Shared observation cell for [`ScriptProgram`] results (litmus tests
/// read the final register values through it).
pub type Registers = Rc<RefCell<HashMap<u64, u64>>>;

/// A straight-line program from a fixed instruction list, with a shared
/// register file recording every tagged delivery. The workhorse of the
/// litmus tests.
///
/// # Examples
///
/// ```
/// use asymfence_cpu::program::{Fetch, Instr, ScriptProgram, ThreadProgram};
/// use asymfence_common::ids::Addr;
///
/// let (mut p, regs) = ScriptProgram::new(vec![
///     Instr::Store { addr: Addr::new(0), value: 1 },
///     Instr::Load { addr: Addr::new(8), tag: Some(1) },
/// ]);
/// assert!(matches!(p.fetch(), Fetch::Instr(Instr::Store { .. })));
/// assert!(matches!(p.fetch(), Fetch::Instr(Instr::Load { .. })));
/// assert!(matches!(p.fetch(), Fetch::Await), "blocked on tag 1");
/// p.deliver(1, 42);
/// assert!(matches!(p.fetch(), Fetch::Done));
/// assert_eq!(regs.borrow()[&1], 42);
/// ```
#[derive(Clone)]
pub struct ScriptProgram {
    instrs: Vec<Instr>,
    pc: usize,
    waiting_on: Option<u64>,
    regs: Registers,
}

impl ScriptProgram {
    /// Creates a script program and returns its shared register file.
    pub fn new(instrs: Vec<Instr>) -> (Self, Registers) {
        let regs: Registers = Rc::new(RefCell::new(HashMap::new()));
        (
            ScriptProgram {
                instrs,
                pc: 0,
                waiting_on: None,
                regs: Rc::clone(&regs),
            },
            regs,
        )
    }
}

impl std::fmt::Debug for ScriptProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptProgram")
            .field("pc", &self.pc)
            .field("len", &self.instrs.len())
            .field("waiting_on", &self.waiting_on)
            .finish()
    }
}

impl ThreadProgram for ScriptProgram {
    fn fetch(&mut self) -> Fetch {
        if self.waiting_on.is_some() {
            return Fetch::Await;
        }
        let Some(instr) = self.instrs.get(self.pc) else {
            return Fetch::Done;
        };
        self.pc += 1;
        match instr {
            Instr::Load { tag: Some(t), .. } | Instr::Rmw { tag: t, .. } => {
                self.waiting_on = Some(*t);
            }
            _ => {}
        }
        Fetch::Instr(instr.clone())
    }

    fn deliver(&mut self, tag: u64, value: u64) {
        self.regs.borrow_mut().insert(tag, value);
        if self.waiting_on == Some(tag) {
            self.waiting_on = None;
        }
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "script"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_runs_in_order() {
        let (mut p, _regs) = ScriptProgram::new(vec![
            Instr::Compute { cycles: 3 },
            Instr::Store {
                addr: Addr::new(0),
                value: 9,
            },
        ]);
        assert!(matches!(p.fetch(), Fetch::Instr(Instr::Compute { cycles: 3 })));
        assert!(matches!(
            p.fetch(),
            Fetch::Instr(Instr::Store { value: 9, .. })
        ));
        assert!(matches!(p.fetch(), Fetch::Done));
        assert!(matches!(p.fetch(), Fetch::Done));
    }

    #[test]
    fn tagged_load_blocks_until_delivery() {
        let (mut p, regs) = ScriptProgram::new(vec![
            Instr::Load {
                addr: Addr::new(0),
                tag: Some(7),
            },
            Instr::Compute { cycles: 1 },
        ]);
        assert!(matches!(p.fetch(), Fetch::Instr(Instr::Load { .. })));
        assert!(matches!(p.fetch(), Fetch::Await));
        assert!(matches!(p.fetch(), Fetch::Await));
        p.deliver(7, 123);
        assert!(matches!(p.fetch(), Fetch::Instr(Instr::Compute { .. })));
        assert_eq!(regs.borrow()[&7], 123);
    }

    #[test]
    fn untagged_load_does_not_block() {
        let (mut p, _) = ScriptProgram::new(vec![
            Instr::Load {
                addr: Addr::new(0),
                tag: None,
            },
            Instr::Compute { cycles: 1 },
        ]);
        assert!(matches!(p.fetch(), Fetch::Instr(Instr::Load { .. })));
        assert!(matches!(p.fetch(), Fetch::Instr(Instr::Compute { .. })));
    }

    #[test]
    fn snapshot_restores_fetch_position() {
        let (mut p, regs) = ScriptProgram::new(vec![
            Instr::fence(FenceRole::Critical),
            Instr::Load {
                addr: Addr::new(0),
                tag: Some(1),
            },
        ]);
        assert!(matches!(p.fetch(), Fetch::Instr(Instr::Fence { .. })));
        let snap = p.snapshot();
        assert!(matches!(p.fetch(), Fetch::Instr(Instr::Load { .. })));
        assert!(matches!(p.fetch(), Fetch::Await));
        // Roll back: the load is re-fetched.
        let mut p2 = snap;
        assert!(matches!(p2.fetch(), Fetch::Instr(Instr::Load { .. })));
        p2.deliver(1, 5);
        assert_eq!(regs.borrow()[&1], 5, "registers are shared across snapshots");
    }

    #[test]
    fn rmw_blocks_like_tagged_load() {
        let (mut p, _) = ScriptProgram::new(vec![
            Instr::Rmw {
                addr: Addr::new(0),
                op: RmwKind::Add(1),
                tag: 3,
            },
            Instr::Compute { cycles: 1 },
        ]);
        assert!(matches!(p.fetch(), Fetch::Instr(Instr::Rmw { .. })));
        assert!(matches!(p.fetch(), Fetch::Await));
        p.deliver(3, 0);
        assert!(matches!(p.fetch(), Fetch::Instr(Instr::Compute { .. })));
    }
}
