//! Core-model tests: retirement rules, fence semantics per design,
//! store-buffering litmus outcomes, W+ deadlock recovery, Wee demotion.

use asymfence_coherence::MemSystem;
use asymfence_common::config::{FenceDesign, MachineConfig};
use asymfence_common::ids::{Addr, CoreId};

use crate::core::Core;
use crate::program::{FenceRole, Instr, Registers, ScriptProgram, ThreadProgram};

fn cfg(design: FenceDesign) -> MachineConfig {
    MachineConfig::builder().cores(2).fence_design(design).build()
}

/// Runs cores to completion (or `max` cycles); returns whether all
/// finished.
fn run(cfg: &MachineConfig, programs: Vec<Box<dyn ThreadProgram>>, max: u64) -> (Vec<Core>, MemSystem, bool) {
    let mut mem = MemSystem::new(cfg);
    let mut cores: Vec<Core> = programs
        .into_iter()
        .enumerate()
        .map(|(i, p)| Core::new(CoreId(i), cfg, p))
        .collect();
    for t in 0..max {
        for c in cores.iter_mut() {
            c.tick(t, &mut mem, None);
        }
        mem.tick(t);
        if cores.iter().all(|c| c.is_done()) && mem.is_idle() {
            return (cores, mem, true);
        }
    }
    let done = cores.iter().all(|c| c.is_done());
    (cores, mem, done)
}

const X: Addr = Addr::new(0x00);
const Y: Addr = Addr::new(0x40);

/// One side of the store-buffering litmus, made timing-robust:
///
/// * a warming load so the final load is an L1 hit (retires fast),
/// * a compute pause so both cores' warm fills settle,
/// * a cold *dummy* store that occupies the write buffer for ~200 cycles,
///   so the conflicting store's invalidation arrives long after the
///   post-fence load has retired.
fn sb_side(mine: Addr, other: Addr, dummy: Addr, fence: Option<FenceRole>) -> Vec<Instr> {
    let mut v = vec![
        Instr::Load { addr: other, tag: None },
        Instr::Compute { cycles: 1600 },
        Instr::Store { addr: dummy, value: 1 },
        Instr::Store { addr: mine, value: 1 },
    ];
    if let Some(role) = fence {
        v.push(Instr::fence(role));
    }
    v.push(Instr::Load { addr: other, tag: Some(1) });
    v
}

const DUMMY_A: Addr = Addr::new(0x1000);
const DUMMY_B: Addr = Addr::new(0x1100);

/// Dekker / store-buffering litmus: each thread stores its flag, fences,
/// then reads the other's flag.
fn sb_programs(fenced: bool, role_a: FenceRole, role_b: FenceRole) -> (Vec<Box<dyn ThreadProgram>>, Registers, Registers) {
    let fa = fenced.then_some(role_a);
    let fb = fenced.then_some(role_b);
    let (pa, ra) = ScriptProgram::new(sb_side(X, Y, DUMMY_A, fa));
    let (pb, rb) = ScriptProgram::new(sb_side(Y, X, DUMMY_B, fb));
    (vec![Box::new(pa), Box::new(pb)], ra, rb)
}

fn sb_outcome(design: FenceDesign, fenced: bool) -> (u64, u64, Vec<Core>) {
    let c = cfg(design);
    let (progs, ra, rb) = sb_programs(fenced, FenceRole::Critical, FenceRole::NonCritical);
    let (cores, _, done) = run(&c, progs, 2_000_000);
    assert!(done, "SB litmus must terminate under {design}");
    let r1 = ra.borrow()[&1];
    let r2 = rb.borrow()[&1];
    (r1, r2, cores)
}

#[test]
fn sb_without_fences_exposes_tso_reordering() {
    let (r1, r2, _) = sb_outcome(FenceDesign::SPlus, false);
    assert_eq!((r1, r2), (0, 0), "store buffering must reorder");
}

#[test]
fn sb_with_strong_fences_is_sc() {
    let (r1, r2, _) = sb_outcome(FenceDesign::SPlus, true);
    assert_ne!((r1, r2), (0, 0), "S+ forbids the non-SC outcome");
}

#[test]
fn sb_with_ws_plus_is_sc_and_uses_weak_fence() {
    let (r1, r2, cores) = sb_outcome(FenceDesign::WsPlus, true);
    assert_ne!((r1, r2), (0, 0), "WS+ forbids the non-SC outcome");
    let wf: u64 = cores.iter().map(|c| c.stats().wf_count).sum();
    let sf: u64 = cores.iter().map(|c| c.stats().sf_count).sum();
    assert_eq!(wf, 1, "the critical thread used a weak fence");
    assert_eq!(sf, 1, "the other thread used a strong fence");
}

#[test]
fn sb_with_sw_plus_is_sc() {
    let (r1, r2, _) = sb_outcome(FenceDesign::SwPlus, true);
    assert_ne!((r1, r2), (0, 0));
}

#[test]
fn sb_with_w_plus_is_sc() {
    let (r1, r2, cores) = sb_outcome(FenceDesign::WPlus, true);
    assert_ne!((r1, r2), (0, 0), "W+ forbids the non-SC outcome");
    let wf: u64 = cores.iter().map(|c| c.stats().wf_count).sum();
    assert_eq!(wf, 2, "W+ uses weak fences everywhere");
}

#[test]
fn sb_with_wee_is_sc() {
    let (r1, r2, _) = sb_outcome(FenceDesign::Wee, true);
    assert_ne!((r1, r2), (0, 0));
}

#[test]
fn compute_retires_at_issue_width() {
    let c = MachineConfig::builder().cores(1).build();
    let (p, _) = ScriptProgram::new(vec![Instr::Compute { cycles: 8 }]);
    let (cores, _, done) = run(&c, vec![Box::new(p)], 100);
    assert!(done);
    let s = cores[0].stats();
    assert_eq!(s.instrs_retired, 8);
    assert_eq!(s.busy_cycles, 2, "8 units at width 4 = 2 cycles");
}

#[test]
fn strong_fence_stalls_post_fence_load() {
    // St X; sf; Ld Y — the load cannot retire until the store merges.
    let c = MachineConfig::builder().cores(1).build();
    let (p, regs) = ScriptProgram::new(vec![
        Instr::Store { addr: X, value: 3 },
        Instr::fence(FenceRole::Critical),
        Instr::Load { addr: Y, tag: Some(1) },
    ]);
    let (cores, _, done) = run(&c, vec![Box::new(p)], 100_000);
    assert!(done);
    let s = cores[0].stats();
    assert_eq!(s.sf_count, 1);
    assert_eq!(s.early_retired_loads, 0);
    assert!(
        s.fence_stall_cycles > 50,
        "cold store miss (~200 cycles) must show up as fence stall, got {}",
        s.fence_stall_cycles
    );
    assert_eq!(regs.borrow()[&1], 0);
}

#[test]
fn weak_fence_lets_post_fence_load_retire_early() {
    let c = MachineConfig::builder()
        .cores(1)
        .fence_design(FenceDesign::WsPlus)
        .build();
    let (p, regs) = ScriptProgram::new(vec![
        Instr::Store { addr: X, value: 3 },
        Instr::fence(FenceRole::Critical),
        Instr::Load { addr: Y, tag: Some(1) },
    ]);
    let (cores, _, done) = run(&c, vec![Box::new(p)], 100_000);
    assert!(done);
    let s = cores[0].stats();
    assert_eq!(s.wf_count, 1);
    assert_eq!(s.early_retired_loads, 1, "the load completed past the fence");
    assert!(
        s.fence_stall_cycles < 20,
        "weak fence hides the store's miss, stall = {}",
        s.fence_stall_cycles
    );
    assert!(s.bs_lines_sum >= 1, "BS held the early load's line");
    assert_eq!(regs.borrow()[&1], 0);
}

#[test]
fn forwarded_load_ignores_fences() {
    // St X; sf; Ld X — forwarding makes the load free.
    let c = MachineConfig::builder().cores(1).build();
    let (p, regs) = ScriptProgram::new(vec![
        Instr::Store { addr: X, value: 9 },
        Instr::fence(FenceRole::Critical),
        Instr::Load { addr: X, tag: Some(1) },
    ]);
    let (_, _, done) = run(&c, vec![Box::new(p)], 100_000);
    assert!(done);
    assert_eq!(regs.borrow()[&1], 9, "load sees its own store");
}

/// Builds the Figure 3a scenario (the robust variant of [`sb_side`]):
/// both cores run `St; wf; Ld` with crossed addresses, which deadlocks
/// any unprotected all-weak design.
fn crossed_wf_programs() -> (Vec<Box<dyn ThreadProgram>>, Registers, Registers) {
    let (pa, ra) = ScriptProgram::new(sb_side(X, Y, DUMMY_A, Some(FenceRole::Critical)));
    let (pb, rb) = ScriptProgram::new(sb_side(Y, X, DUMMY_B, Some(FenceRole::Critical)));
    (vec![Box::new(pa), Box::new(pb)], ra, rb)
}

#[test]
fn unprotected_weak_fences_deadlock() {
    let c = cfg(FenceDesign::WfOnlyUnsafe);
    let (progs, _, _) = crossed_wf_programs();
    let (cores, _, done) = run(&c, progs, 100_000);
    assert!(!done, "Figure 3a: all-wf groups with no protection deadlock");
    // Both cores executed their weak fences and then got stuck waiting
    // on them (no recovery mechanism in the unprotected design).
    assert!(cores.iter().all(|c| c.stats().wf_count == 1));
    assert!(cores.iter().all(|c| c.stats().recoveries == 0));
}

#[test]
fn w_plus_recovers_from_deadlock_by_rollback() {
    let c = cfg(FenceDesign::WPlus);
    let (progs, ra, rb) = crossed_wf_programs();
    let (cores, mem, done) = run(&c, progs, 2_000_000);
    assert!(done, "W+ must escape the deadlock");
    let recoveries: u64 = cores.iter().map(|c| c.stats().recoveries).sum();
    assert!(recoveries >= 1, "at least one rollback happened");
    // SC outcome: at least one thread saw the other's store.
    let (r1, r2) = (ra.borrow()[&1], rb.borrow()[&1]);
    assert_ne!((r1, r2), (0, 0), "no SC violation after recovery");
    assert_eq!(mem.backdoor_read(X), 1);
    assert_eq!(mem.backdoor_read(Y), 1);
}

#[test]
fn ws_plus_resolves_false_sharing_with_order_op() {
    // Figure 4b: two *unrelated* weak fences whose accesses falsely share
    // lines. X2/Y2 share lines with X/Y respectively (different words).
    let x2 = X.offset(8);
    let y2 = Y.offset(8);
    let (pa, _) = ScriptProgram::new(sb_side(X, y2, DUMMY_A, Some(FenceRole::Critical)));
    let (pb, _) = ScriptProgram::new(sb_side(Y, x2, DUMMY_B, Some(FenceRole::Critical)));
    let c = cfg(FenceDesign::WsPlus);
    let (cores, _, done) = run(&c, vec![Box::new(pa), Box::new(pb)], 2_000_000);
    assert!(done, "WS+ Order operation must break the false-sharing cycle");
    let orders: u64 = cores.iter().map(|c| c.stats().order_ops).sum();
    let _ = orders; // order_ops are merged by the machine layer; just a liveness check here.
}

#[test]
fn sw_plus_resolves_false_sharing_with_conditional_order() {
    let x2 = X.offset(8);
    let y2 = Y.offset(8);
    let (pa, _) = ScriptProgram::new(sb_side(X, y2, DUMMY_A, Some(FenceRole::Critical)));
    let (pb, _) = ScriptProgram::new(sb_side(Y, x2, DUMMY_B, Some(FenceRole::Critical)));
    let c = cfg(FenceDesign::SwPlus);
    let (_, _, done) = run(&c, vec![Box::new(pa), Box::new(pb)], 2_000_000);
    assert!(done, "SW+ Conditional Order completes on false sharing");
}

#[test]
fn wee_fence_demotes_when_pending_set_spans_banks() {
    // Two stores to lines homed at different banks, then a Wee fence.
    let c = MachineConfig::builder()
        .cores(2)
        .fence_design(FenceDesign::Wee)
        .build();
    let (p, _) = ScriptProgram::new(vec![
        Instr::Store { addr: Addr::new(0x00), value: 1 }, // chunk 0 -> bank 0
        Instr::Store { addr: Addr::new(0x20000), value: 2 }, // chunk 1 -> bank 1
        Instr::fence(FenceRole::Critical),
        Instr::Load {
            addr: Addr::new(0x100),
            tag: Some(1),
        },
    ]);
    let (cores, _, done) = run(&c, vec![Box::new(p)], 100_000);
    assert!(done);
    let s = cores[0].stats();
    assert_eq!(s.wee_demotions, 1);
    assert_eq!(s.sf_count, 1, "demoted fence counted as strong");
    assert_eq!(s.wf_count, 0);
    assert_eq!(s.early_retired_loads, 0);
}

#[test]
fn wee_fence_stays_weak_on_single_bank_and_retires_loads_early() {
    let c = MachineConfig::builder()
        .cores(2)
        .fence_design(FenceDesign::Wee)
        .build();
    // Lines 0 and 2 share the first interleave chunk (bank 0).
    let (p, _) = ScriptProgram::new(vec![
        Instr::Store { addr: Addr::new(0x00), value: 1 }, // chunk 0 -> bank 0
        Instr::fence(FenceRole::Critical),
        Instr::Load {
            addr: Addr::new(0x40), // same chunk -> bank 0
            tag: Some(1),
        },
    ]);
    let (cores, _, done) = run(&c, vec![Box::new(p)], 100_000);
    assert!(done);
    let s = cores[0].stats();
    assert_eq!(s.wee_demotions, 0);
    assert_eq!(s.wf_count, 1);
    assert_eq!(s.early_retired_loads, 1, "armed Wee fence lets the load go");
}

#[test]
fn wee_post_fence_load_to_foreign_bank_retires_early_after_broadcast() {
    // With the two-phase GRT arming (deposit, then read every bank), a
    // post-fence load may complete early regardless of its home bank, as
    // long as it misses the collected RemotePS.
    let c = MachineConfig::builder()
        .cores(2)
        .fence_design(FenceDesign::Wee)
        .build();
    let (p, _) = ScriptProgram::new(vec![
        Instr::Load { addr: Addr::new(0x20), tag: None }, // warm the target
        Instr::Compute { cycles: 1600 },
        Instr::Store { addr: Addr::new(0x00), value: 1 }, // bank 0
        Instr::fence(FenceRole::Critical),
        Instr::Load {
            addr: Addr::new(0x20), // line 1 -> bank 1 (foreign, no PS hit)
            tag: Some(1),
        },
    ]);
    let (cores, _, done) = run(&c, vec![Box::new(p)], 100_000);
    assert!(done);
    let s = cores[0].stats();
    assert_eq!(s.early_retired_loads, 1, "armed Wee fence lets it through");
    assert_eq!(s.remote_ps_stalls, 0);
}

#[test]
fn wee_remote_ps_hit_stalls_post_fence_load() {
    // Crossed SB under Wee with every line homed at bank 0: both fences
    // register at the same GRT bank, so (at least) the later one sees the
    // other's Pending Set and must hold its post-fence load back.
    let c = cfg(FenceDesign::Wee);
    let (progs, ra, rb) = crossed_wf_programs();
    let (cores, _, done) = run(&c, progs, 2_000_000);
    assert!(done, "Wee resolves the SB group");
    assert_ne!((ra.borrow()[&1], rb.borrow()[&1]), (0, 0), "SC preserved");
    let stalls: u64 = cores.iter().map(|c| c.stats().remote_ps_stalls).sum();
    assert!(stalls > 0, "at least one side stalled on the RemotePS");
}

#[test]
fn rmw_acts_as_full_fence_and_returns_old_value() {
    let c = MachineConfig::builder().cores(1).build();
    let (p, regs) = ScriptProgram::new(vec![
        Instr::Store { addr: X, value: 5 },
        Instr::Rmw {
            addr: X,
            op: asymfence_coherence::RmwKind::Swap(7),
            tag: 1,
        },
        Instr::Load { addr: X, tag: Some(2) },
    ]);
    let (cores, mem, done) = run(&c, vec![Box::new(p)], 100_000);
    assert!(done);
    assert_eq!(regs.borrow()[&1], 5, "RMW returned the stored value");
    assert_eq!(regs.borrow()[&2], 7);
    assert_eq!(mem.backdoor_read(X), 7);
    assert_eq!(cores[0].stats().rmws, 1);
}

#[test]
fn deterministic_across_runs() {
    let c = cfg(FenceDesign::WPlus);
    let snap = |(cores, _, done): (Vec<Core>, MemSystem, bool)| {
        assert!(done);
        cores
            .iter()
            .map(|c| (*c.stats(),))
            .collect::<Vec<_>>()
    };
    let (p1, _, _) = crossed_wf_programs();
    let (p2, _, _) = crossed_wf_programs();
    let a = snap(run(&c, p1, 2_000_000));
    let b = snap(run(&c, p2, 2_000_000));
    assert_eq!(a, b, "same program, same cycle-exact stats");
}

#[test]
fn bypass_set_overflow_degrades_to_stall() {
    // BS capacity 1: the second early-retiring post-fence load must wait.
    let c = MachineConfig::builder()
        .cores(1)
        .fence_design(FenceDesign::WsPlus)
        .bs_entries(1)
        .build();
    let (p, _) = ScriptProgram::new(vec![
        Instr::Store { addr: X, value: 1 },
        Instr::fence(FenceRole::Critical),
        Instr::Load { addr: Y, tag: None },
        Instr::Load {
            addr: Addr::new(0x80),
            tag: None,
        },
        Instr::Load {
            addr: Addr::new(0xc0),
            tag: Some(1),
        },
    ]);
    let (cores, _, done) = run(&c, vec![Box::new(p)], 100_000);
    assert!(done);
    let s = cores[0].stats();
    assert!(s.bs_overflows > 0, "second load overflowed the 1-entry BS");
    assert!(
        s.early_retired_loads >= 1,
        "the first load still went early"
    );
}

#[test]
fn write_buffer_capacity_throttles_stores() {
    // A tiny write buffer forces store retirement to stall ("other").
    let c = MachineConfig::builder().cores(1).wb_entries(2).build();
    let mut instrs = Vec::new();
    for i in 0..24u64 {
        instrs.push(Instr::Store {
            addr: Addr::new(0x40 * i),
            value: i,
        });
    }
    let (p, _) = ScriptProgram::new(instrs);
    let (cores, mem, done) = run(&c, vec![Box::new(p)], 1_000_000);
    assert!(done);
    assert!(cores[0].stats().other_stall_cycles > 100, "WB-full stalls");
    for i in 0..24u64 {
        assert_eq!(mem.backdoor_read(Addr::new(0x40 * i)), i);
    }
}

#[test]
fn rob_capacity_limits_dispatch() {
    let c = MachineConfig::builder().cores(1).rob_entries(4).build();
    let mut instrs = Vec::new();
    for i in 0..40u64 {
        instrs.push(Instr::Load {
            addr: Addr::new(0x40 * (i % 4)),
            tag: None,
        });
    }
    instrs.push(Instr::Compute { cycles: 4 });
    let (p, _) = ScriptProgram::new(instrs);
    let (cores, _, done) = run(&c, vec![Box::new(p)], 1_000_000);
    assert!(done, "tiny ROB still drains");
    assert_eq!(cores[0].stats().loads, 40);
}

#[test]
fn back_to_back_weak_fences_nest() {
    // Two wfs with pending stores; post-fence loads of both retire early
    // and every BS entry clears when its fence completes.
    let c = MachineConfig::builder()
        .cores(1)
        .fence_design(FenceDesign::WPlus)
        .build();
    let (p, regs) = ScriptProgram::new(vec![
        Instr::Store { addr: X, value: 1 },
        Instr::fence(FenceRole::Critical),
        Instr::Store { addr: Y, value: 2 },
        Instr::fence(FenceRole::Critical),
        Instr::Load {
            addr: Addr::new(0x80),
            tag: Some(1),
        },
    ]);
    let (cores, mem, done) = run(&c, vec![Box::new(p)], 200_000);
    assert!(done);
    assert_eq!(cores[0].stats().wf_count, 2);
    assert_eq!(regs.borrow()[&1], 0);
    assert_eq!(mem.backdoor_read(X), 1);
    assert_eq!(mem.backdoor_read(Y), 2);
    assert_eq!(mem.bs_len(CoreId(0)), 0, "BS cleared after completion");
}

#[test]
fn order_mode_clears_after_fences_complete() {
    // After a WS+ wf completes, the core's bounced stores must no longer
    // carry the Order bit — verified indirectly: a later store into a
    // remote BS bounces (no Order escape) until that BS clears.
    let c = cfg(FenceDesign::WsPlus);
    let (pa, _) = ScriptProgram::new(vec![
        Instr::Store { addr: X, value: 1 },
        Instr::fence(FenceRole::Critical),
        Instr::Load { addr: Y, tag: Some(1) },
    ]);
    let (progs, _, _) = (vec![Box::new(pa) as Box<dyn ThreadProgram>], 0, 0);
    let (cores, _, done) = run(&c, progs, 200_000);
    assert!(done);
    assert_eq!(cores[0].stats().wf_count, 1);
}

#[test]
fn idle_cycles_accrue_after_done()
{
    let c = MachineConfig::builder().cores(1).build();
    let (p, _) = ScriptProgram::new(vec![Instr::Compute { cycles: 4 }]);
    let mut mem = MemSystem::new(&c);
    let mut core = Core::new(CoreId(0), &c, Box::new(p));
    for t in 0..50 {
        core.tick(t, &mut mem, None);
        mem.tick(t);
    }
    assert!(core.is_done());
    let s = core.stats();
    assert!(s.idle_cycles > 30);
    assert_eq!(
        s.busy_cycles + s.fence_stall_cycles + s.other_stall_cycles + s.idle_cycles,
        50,
        "every cycle is accounted exactly once"
    );
}

#[test]
fn wider_merge_width_hides_store_drain() {
    // Motivation experiment (paper §2.1): under TSO one store merges at a
    // time, so a fence behind several misses stalls ~N x miss latency; an
    // RC-flavoured drain overlaps them.
    let run_width = |w: usize| {
        let c = MachineConfig::builder()
            .cores(1)
            .wb_merge_width(w)
            .build();
        let mut instrs: Vec<Instr> = (0..6u64)
            .map(|i| Instr::Store {
                addr: Addr::new(0x1000 + 0x40 * i),
                value: i,
            })
            .collect();
        instrs.push(Instr::fence(FenceRole::Critical));
        instrs.push(Instr::Load { addr: Y, tag: Some(1) });
        let (p, _) = ScriptProgram::new(instrs);
        let (cores, mem, done) = run(&c, vec![Box::new(p)], 1_000_000);
        assert!(done);
        for i in 0..6u64 {
            assert_eq!(mem.backdoor_read(Addr::new(0x1000 + 0x40 * i)), i);
        }
        cores[0].stats().fence_stall_cycles
    };
    let tso = run_width(1);
    let wide = run_width(8);
    assert!(
        wide * 2 < tso,
        "concurrent merging must at least halve the drain: {wide} vs {tso}"
    );
}

#[test]
fn merge_width_preserves_per_line_store_order() {
    // Two stores to the same word must still apply in program order even
    // when the drain is concurrent.
    let c = MachineConfig::builder()
        .cores(1)
        .wb_merge_width(8)
        .build();
    let (p, _) = ScriptProgram::new(vec![
        Instr::Store { addr: X, value: 1 },
        Instr::Store {
            addr: Addr::new(0x1000),
            value: 9,
        },
        Instr::Store { addr: X, value: 2 },
    ]);
    let (_, mem, done) = run(&c, vec![Box::new(p)], 1_000_000);
    assert!(done);
    assert_eq!(mem.backdoor_read(X), 2, "program order per line");
}

#[test]
fn merge_width_never_issues_past_an_incomplete_weak_fence() {
    // W+ rollback soundness: post-fence stores stay unissued while the
    // fence is incomplete even at width 8.
    let c = MachineConfig::builder()
        .cores(1)
        .fence_design(FenceDesign::WPlus)
        .wb_merge_width(8)
        .build();
    let (p, _) = ScriptProgram::new(vec![
        Instr::Store { addr: X, value: 1 },
        Instr::fence(FenceRole::Critical),
        Instr::Store { addr: Y, value: 2 },
        Instr::Load {
            addr: Addr::new(0x80),
            tag: Some(1),
        },
    ]);
    let (cores, mem, done) = run(&c, vec![Box::new(p)], 1_000_000);
    assert!(done);
    assert_eq!(mem.backdoor_read(X), 1);
    assert_eq!(mem.backdoor_read(Y), 2);
    assert_eq!(cores[0].stats().wf_count, 1);
}
