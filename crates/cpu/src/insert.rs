//! Fence insertion and removal decorators over [`ThreadProgram`]s.
//!
//! [`FencedProgram`] executes an *unannotated* program under an
//! analyzer-inferred [`PlacementSpec`]:
//! it tracks the cache lines the thread has stored to since its last
//! fence/RMW (the lines whose write-backs may still be buffered) and,
//! when the program is about to load from a line that some placed
//! window names as a store→load race against a *dirty* trigger line,
//! injects `Instr::fence_at(site, …)` first and replays the load on the
//! next fetch. Injected sites carry the analyzer's synthetic ids, so a
//! per-site [`FenceAssignment`](asymfence_common::assign::FenceAssignment)
//! steers their strength exactly like hand-annotated sites.
//!
//! [`StripFences`] is the inverse tool: it hides every fence an
//! annotated builder emits, producing the unannotated view the analyzer
//! starts from.

use asymfence_common::placement::PlacementSpec;

use crate::program::{Fetch, FenceRole, FenceSite, Instr, ThreadProgram};

/// Executes a program with fences injected at analyzer-placed sites.
///
/// # Examples
///
/// ```
/// use asymfence_common::assign::synthetic_site;
/// use asymfence_common::placement::{PlacedWindow, PlacementSpec};
/// use asymfence_cpu::insert::FencedProgram;
/// use asymfence_cpu::program::{Fetch, FenceRole, Instr, ScriptProgram, ThreadProgram};
/// use asymfence_common::ids::Addr;
///
/// // Store line 0, load line 1: the classic SB half.
/// let (inner, _regs) = ScriptProgram::new(vec![
///     Instr::Store { addr: Addr::new(0x00), value: 1 },
///     Instr::Load { addr: Addr::new(0x40), tag: None },
/// ]);
/// let spec = PlacementSpec::from_windows(&[PlacedWindow {
///     site: synthetic_site(0),
///     thread: 0,
///     store_line: 0,
///     load_line: 1,
/// }]);
/// let mut p = FencedProgram::new(Box::new(inner), 0, spec, 64, FenceRole::NonCritical);
/// assert!(matches!(p.fetch(), Fetch::Instr(Instr::Store { .. })));
/// assert!(matches!(p.fetch(), Fetch::Instr(Instr::Fence { .. })), "injected");
/// assert!(matches!(p.fetch(), Fetch::Instr(Instr::Load { .. })));
/// ```
pub struct FencedProgram {
    inner: Box<dyn ThreadProgram>,
    thread: u32,
    spec: PlacementSpec,
    line_bytes: u64,
    role: FenceRole,
    /// Lines stored to since the last (inner or injected) fence/RMW.
    dirty: Vec<u64>,
    /// A load held back while its guarding fence is emitted.
    pending: Option<Instr>,
    name: String,
}

impl FencedProgram {
    /// Wraps `inner` (thread index `thread` of the machine) so loads
    /// matching a placed window in `spec` are preceded by a fence at
    /// the window's synthetic site. `line_bytes` must match the machine
    /// config the spec was computed for; `role` is the fence role used
    /// when no assignment overrides the site.
    pub fn new(
        inner: Box<dyn ThreadProgram>,
        thread: usize,
        spec: PlacementSpec,
        line_bytes: u64,
        role: FenceRole,
    ) -> Self {
        let name = format!("fenced:{}", inner.name());
        FencedProgram {
            inner,
            thread: thread as u32,
            spec,
            line_bytes,
            role,
            dirty: Vec::new(),
            pending: None,
            name,
        }
    }

    /// Downcasting access to the wrapped program (result tallies live
    /// there).
    pub fn inner_any(&self) -> &dyn std::any::Any {
        self.inner.as_any()
    }

    fn mark_dirty(&mut self, line: u64) {
        if !self.dirty.contains(&line) {
            self.dirty.push(line);
        }
    }

    /// The placed site armed for a load of `line`, if any trigger store
    /// line is dirty.
    fn armed_site(&self, line: u64) -> Option<u32> {
        self.spec
            .windows()
            .iter()
            .find(|w| {
                w.thread == self.thread && w.load_line == line && self.dirty.contains(&w.store_line)
            })
            .map(|w| w.site)
    }
}

impl ThreadProgram for FencedProgram {
    fn fetch(&mut self) -> Fetch {
        if let Some(load) = self.pending.take() {
            return Fetch::Instr(load);
        }
        match self.inner.fetch() {
            Fetch::Instr(instr) => {
                match &instr {
                    Instr::Load { addr, .. } => {
                        let line = addr.raw() / self.line_bytes;
                        if let Some(site) = self.armed_site(line) {
                            // Emit the fence now, the load next fetch.
                            // The fence drains the write buffer, so
                            // every dirty line is clean after it.
                            self.pending = Some(instr);
                            self.dirty.clear();
                            return Fetch::Instr(Instr::fence_at(FenceSite(site), self.role));
                        }
                    }
                    Instr::Store { addr, .. } => {
                        let line = addr.raw() / self.line_bytes;
                        self.mark_dirty(line);
                    }
                    // RMWs act as full fences (like x86 `lock`), and the
                    // program's own fences drain the write buffer too.
                    Instr::Rmw { .. } | Instr::Fence { .. } => self.dirty.clear(),
                    Instr::Compute { .. } => {}
                }
                Fetch::Instr(instr)
            }
            other => other,
        }
    }

    fn deliver(&mut self, tag: u64, value: u64) {
        self.inner.deliver(tag, value);
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(FencedProgram {
            inner: self.inner.snapshot(),
            thread: self.thread,
            spec: self.spec,
            line_bytes: self.line_bytes,
            role: self.role,
            dirty: self.dirty.clone(),
            pending: self.pending.clone(),
            name: self.name.clone(),
        })
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Hides every fence the wrapped program emits: the unannotated view of
/// an annotated workload builder.
///
/// # Examples
///
/// ```
/// use asymfence_cpu::insert::StripFences;
/// use asymfence_cpu::program::{Fetch, FenceRole, Instr, ScriptProgram, ThreadProgram};
/// use asymfence_common::ids::Addr;
///
/// let (inner, _) = ScriptProgram::new(vec![
///     Instr::fence(FenceRole::Critical),
///     Instr::Store { addr: Addr::new(0), value: 1 },
/// ]);
/// let mut p = StripFences::new(Box::new(inner));
/// assert!(matches!(p.fetch(), Fetch::Instr(Instr::Store { .. })));
/// ```
pub struct StripFences {
    inner: Box<dyn ThreadProgram>,
    name: String,
}

impl StripFences {
    /// Wraps `inner`, dropping its fences from the fetch stream.
    pub fn new(inner: Box<dyn ThreadProgram>) -> Self {
        let name = format!("nofence:{}", inner.name());
        StripFences { inner, name }
    }

    /// Downcasting access to the wrapped program (result tallies live
    /// there).
    pub fn inner_any(&self) -> &dyn std::any::Any {
        self.inner.as_any()
    }
}

impl ThreadProgram for StripFences {
    fn fetch(&mut self) -> Fetch {
        loop {
            match self.inner.fetch() {
                Fetch::Instr(Instr::Fence { .. }) => continue,
                other => return other,
            }
        }
    }

    fn deliver(&mut self, tag: u64, value: u64) {
        self.inner.deliver(tag, value);
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(StripFences {
            inner: self.inner.snapshot(),
            name: self.name.clone(),
        })
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence_common::assign::synthetic_site;
    use asymfence_common::ids::Addr;
    use asymfence_common::placement::PlacedWindow;
    use asymfence_coherence::RmwKind;

    use crate::program::ScriptProgram;

    fn sb_spec() -> PlacementSpec {
        PlacementSpec::from_windows(&[PlacedWindow {
            site: synthetic_site(0),
            thread: 0,
            store_line: 0,
            load_line: 1,
        }])
    }

    fn st(addr: u64) -> Instr {
        Instr::Store {
            addr: Addr::new(addr),
            value: 1,
        }
    }

    fn ld(addr: u64) -> Instr {
        Instr::Load {
            addr: Addr::new(addr),
            tag: None,
        }
    }

    fn fetch_kinds(p: &mut dyn ThreadProgram) -> Vec<&'static str> {
        let mut out = Vec::new();
        loop {
            match p.fetch() {
                Fetch::Instr(Instr::Load { .. }) => out.push("ld"),
                Fetch::Instr(Instr::Store { .. }) => out.push("st"),
                Fetch::Instr(Instr::Fence { .. }) => out.push("fence"),
                Fetch::Instr(Instr::Rmw { .. }) => out.push("rmw"),
                Fetch::Instr(Instr::Compute { .. }) => out.push("cp"),
                Fetch::Await => out.push("await"),
                Fetch::Done => break,
            }
            if out.len() > 64 {
                panic!("runaway fetch stream: {out:?}");
            }
        }
        out
    }

    #[test]
    fn injects_fence_between_racing_store_and_load() {
        let (inner, _) = ScriptProgram::new(vec![st(0x00), ld(0x40)]);
        let mut p = FencedProgram::new(Box::new(inner), 0, sb_spec(), 64, FenceRole::NonCritical);
        assert_eq!(fetch_kinds(&mut p), vec!["st", "fence", "ld"]);
    }

    #[test]
    fn no_fence_without_dirty_trigger() {
        // Load first: nothing buffered, no fence. Store to an
        // untracked line: still no fence.
        let (inner, _) = ScriptProgram::new(vec![ld(0x40), st(0x80), ld(0x40)]);
        let mut p = FencedProgram::new(Box::new(inner), 0, sb_spec(), 64, FenceRole::NonCritical);
        assert_eq!(fetch_kinds(&mut p), vec!["ld", "st", "ld"]);
    }

    #[test]
    fn fence_covers_later_loads_until_redirtied() {
        let (inner, _) = ScriptProgram::new(vec![st(0x00), ld(0x40), ld(0x40), st(0x00), ld(0x40)]);
        let mut p = FencedProgram::new(Box::new(inner), 0, sb_spec(), 64, FenceRole::NonCritical);
        assert_eq!(
            fetch_kinds(&mut p),
            vec!["st", "fence", "ld", "ld", "st", "fence", "ld"]
        );
    }

    #[test]
    fn rmw_and_own_fences_clean_the_window() {
        let (inner, _) = ScriptProgram::new(vec![
            st(0x00),
            Instr::Rmw {
                addr: Addr::new(0x80),
                op: RmwKind::Add(1),
                tag: 9,
            },
            ld(0x40),
        ]);
        let mut p = FencedProgram::new(Box::new(inner), 0, sb_spec(), 64, FenceRole::NonCritical);
        assert!(matches!(p.fetch(), Fetch::Instr(Instr::Store { .. })));
        assert!(matches!(p.fetch(), Fetch::Instr(Instr::Rmw { .. })));
        assert!(matches!(p.fetch(), Fetch::Await));
        p.deliver(9, 0);
        assert!(
            matches!(p.fetch(), Fetch::Instr(Instr::Load { .. })),
            "RMW already ordered the store; no fence"
        );
    }

    #[test]
    fn wrong_thread_never_fires() {
        let (inner, _) = ScriptProgram::new(vec![st(0x00), ld(0x40)]);
        let mut p = FencedProgram::new(Box::new(inner), 1, sb_spec(), 64, FenceRole::NonCritical);
        assert_eq!(fetch_kinds(&mut p), vec!["st", "ld"]);
    }

    #[test]
    fn injected_site_is_synthetic_and_addressable() {
        let (inner, _) = ScriptProgram::new(vec![st(0x00), ld(0x40)]);
        let mut p = FencedProgram::new(Box::new(inner), 0, sb_spec(), 64, FenceRole::Critical);
        p.fetch();
        match p.fetch() {
            Fetch::Instr(Instr::Fence { role, site }) => {
                assert_eq!(site.raw(), synthetic_site(0));
                assert!(asymfence_common::assign::is_synthetic(site.raw()));
                assert!(matches!(role, FenceRole::Critical));
            }
            other => panic!("expected injected fence, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_replays_pending_load() {
        let (inner, regs) = ScriptProgram::new(vec![
            st(0x00),
            Instr::Load {
                addr: Addr::new(0x40),
                tag: Some(1),
            },
        ]);
        let mut p = FencedProgram::new(Box::new(inner), 0, sb_spec(), 64, FenceRole::NonCritical);
        assert!(matches!(p.fetch(), Fetch::Instr(Instr::Store { .. })));
        assert!(matches!(p.fetch(), Fetch::Instr(Instr::Fence { .. })));
        // Snapshot while the load is pending (the W+ checkpoint shape).
        let mut snap = p.snapshot();
        assert!(matches!(snap.fetch(), Fetch::Instr(Instr::Load { .. })));
        assert!(matches!(snap.fetch(), Fetch::Await));
        snap.deliver(1, 7);
        assert!(matches!(snap.fetch(), Fetch::Done));
        assert_eq!(regs.borrow()[&1], 7);
    }

    #[test]
    fn strip_fences_drops_all_fences() {
        let (inner, _) = ScriptProgram::new(vec![
            Instr::fence(FenceRole::Critical),
            st(0x00),
            Instr::fence_at(FenceSite(3), FenceRole::NonCritical),
            ld(0x40),
            Instr::fence(FenceRole::NonCritical),
        ]);
        let mut p = StripFences::new(Box::new(inner));
        assert_eq!(fetch_kinds(&mut p), vec!["st", "ld"]);
    }

    #[test]
    fn strip_fences_snapshot_keeps_position() {
        let (inner, _) = ScriptProgram::new(vec![st(0x00), Instr::fence(FenceRole::Critical), ld(0x40)]);
        let mut p = StripFences::new(Box::new(inner));
        assert!(matches!(p.fetch(), Fetch::Instr(Instr::Store { .. })));
        let mut snap = p.snapshot();
        assert_eq!(fetch_kinds(&mut *snap), vec!["ld"]);
    }
}
