//! Out-of-order core model for the `asymfence` simulator.
//!
//! [`core::Core`] models a 4-issue out-of-order core with a reorder
//! buffer, a TSO write buffer, speculative loads, and the five fence
//! microarchitectures of *Asymmetric Memory Fences* (ASPLOS 2015).
//! Workloads plug in through the [`program::ThreadProgram`] trait.
//!
//! # Examples
//!
//! Run one core to completion against a memory system:
//!
//! ```
//! use asymfence_coherence::MemSystem;
//! use asymfence_common::config::MachineConfig;
//! use asymfence_common::ids::{Addr, CoreId};
//! use asymfence_cpu::core::Core;
//! use asymfence_cpu::program::{Instr, ScriptProgram};
//!
//! let cfg = MachineConfig::builder().cores(1).build();
//! let mut mem = MemSystem::new(&cfg);
//! let (prog, regs) = ScriptProgram::new(vec![
//!     Instr::Store { addr: Addr::new(0), value: 5 },
//!     Instr::Load { addr: Addr::new(0), tag: Some(1) },
//! ]);
//! let mut core = Core::new(CoreId(0), &cfg, Box::new(prog));
//! for t in 0..10_000 {
//!     core.tick(t, &mut mem, None);
//!     mem.tick(t);
//!     if core.is_done() {
//!         break;
//!     }
//! }
//! assert!(core.is_done());
//! assert_eq!(regs.borrow()[&1], 5, "store-to-load forwarding");
//! ```

pub mod core;
pub mod insert;
pub mod program;

pub use crate::core::{Core, HwFence};
pub use insert::{FencedProgram, StripFences};
pub use program::{Fetch, FenceRole, Instr, Registers, ScriptProgram, ThreadProgram};

#[cfg(test)]
mod tests;
