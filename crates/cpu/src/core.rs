//! The out-of-order core model.
//!
//! A 4-issue core with a reorder buffer, a TSO write buffer that merges
//! one store at a time, speculative loads squashed by conflicting
//! invalidations, and the paper's five fence microarchitectures:
//!
//! * **Strong fence (`sf`)** — holds the ROB head until every pre-fence
//!   store has merged; post-fence loads execute speculatively but stall at
//!   retirement.
//! * **Weak fence (`wf`)** — retires immediately; post-fence loads retire
//!   and complete early, entering the Bypass Set, which bounces
//!   conflicting invalidations until the fence completes. WS+/SW+ arm the
//!   Order / Conditional-Order escape for the core's own bounced writes.
//! * **W+** — all fences weak; a checkpoint is taken at weak-fence
//!   dispatch, and a both-sides-bouncing timeout triggers rollback.
//! * **Wee** — weak fences with a GRT deposit + broadcast-read; a fence
//!   whose Pending Set spans several directory banks demotes to strong,
//!   and post-fence loads stall on RemotePS hits.
//!
//! Loads whose value is forwarded from the local write buffer (or an older
//! in-flight store) retire past fences freely: reading your own earlier
//! store never creates a Shasha–Snir cycle, so no Bypass-Set entry is
//! needed.

use std::collections::VecDeque;
use std::sync::Arc;

use asymfence_coherence::{MemEvent, MemSystem, OrderMode, RmwKind, Token};
use asymfence_common::assign::SiteStrength;
use asymfence_common::config::{FenceDesign, MachineConfig};
use asymfence_common::ids::{Addr, CoreId, Cycle, LineAddr};
use asymfence_common::scvlog::ScvLog;
use asymfence_common::stats::{CoreStats, StallKind};
use asymfence_common::trace::{FenceClass, TraceKind};
use asymfence_common::trace_event;

use crate::program::{Fetch, FenceRole, FenceSite, Instr, ThreadProgram};

/// Hardware fence kinds after the design has mapped a role.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HwFence {
    /// Conventional fence.
    Strong,
    /// Weak fence (WS+/SW+/W+ flavors differ only in surrounding policy).
    Weak,
    /// WeeFence: weak with the GRT protocol.
    WeeWeak,
}

#[derive(Clone, Debug)]
enum RobKind {
    Load {
        addr: Addr,
        line: LineAddr,
        word_mask: u32,
        token: Option<Token>,
        value: Option<u64>,
        tag: Option<u64>,
        forwarded: bool,
    },
    Store {
        addr: Addr,
        value: u64,
    },
    Rmw {
        addr: Addr,
        op: RmwKind,
        tag: u64,
        token: Option<Token>,
        result: Option<u64>,
    },
    Fence {
        kind: HwFence,
        serial: u64,
    },
    Compute {
        remaining: u64,
    },
}

#[derive(Clone, Debug)]
struct RobEntry {
    kind: RobKind,
    /// Program-order index.
    seq: u64,
    /// Serial of the youngest fence dispatched before this entry.
    fence_epoch: u64,
}

#[derive(Clone, Debug)]
struct WbEntry {
    addr: Addr,
    value: u64,
    serial: u64,
    seq: u64,
    /// Issued to the memory system (token of the transaction).
    issued: Option<Token>,
    /// Earliest cycle the entry may issue (schedule-exploration
    /// perturbation: a deterministic per-store drain stall; 0 when
    /// perturbation is off).
    ready_at: Cycle,
}

#[derive(Clone, Debug)]
struct ActiveFence {
    serial: u64,
    kind: HwFence,
    /// All stores with serial `<= watermark` must complete.
    watermark: u64,
    /// Wee: GRT reply received.
    armed: bool,
    /// Wee: remote Pending Sets to watch.
    remote_ps: Vec<LineAddr>,
    /// Wee: bank holding this fence's GRT state.
    grt_bank: Option<usize>,
}

struct Checkpoint {
    fence_serial: u64,
    /// Program-order index of the first post-fence instruction.
    seq: u64,
    program: Box<dyn ThreadProgram>,
}

/// One simulated core executing one [`ThreadProgram`].
pub struct Core {
    id: CoreId,
    cfg: Arc<MachineConfig>,
    design: FenceDesign,
    program: Box<dyn ThreadProgram>,
    program_done: bool,
    awaiting_tag: Option<u64>,

    rob: VecDeque<RobEntry>,
    wb: VecDeque<WbEntry>,
    /// Number of write-buffer entries issued to the memory system
    /// (cached count of `wb` entries with `issued.is_some()`, so the
    /// per-cycle drain and the scheduling hint never rescan the buffer).
    wb_inflight: usize,
    instr_seq: u64,

    next_store_serial: u64,
    /// All stores with serial <= this have completed (contiguous).
    completed_store_serial: u64,
    /// Out-of-order completions ahead of the contiguous frontier (a
    /// handful of entries at most — kept as a flat list so completions
    /// never touch the heap once the capacity is warm).
    completed_ahead: Vec<u64>,
    /// Tokens of in-flight stores that have been bounced (W+ trigger).
    bounced_inflight: Vec<Token>,
    /// Scratch for write-buffer drain candidates, reused across calls so
    /// issuing a store never allocates.
    issue_scratch: Vec<usize>,

    next_fence_serial: u64,
    last_fence_serial: u64,
    completed_fence_serial: u64,
    active_fences: Vec<ActiveFence>,
    orderable_wfs: u64,

    checkpoints: VecDeque<Checkpoint>,
    timeout_count: u64,
    head_store_bounced: bool,
    bs_bounced_flag: bool,
    post_recovery_drain: bool,

    stats: CoreStats,
}

impl Core {
    /// Creates a core running `program` under the machine's fence design.
    pub fn new(id: CoreId, cfg: &MachineConfig, program: Box<dyn ThreadProgram>) -> Self {
        Self::with_shared(id, Arc::new(cfg.clone()), program)
    }

    /// Like [`Core::new`], but sharing an already-counted configuration
    /// (the machine hands one `Arc` to every core instead of cloning the
    /// config per core).
    pub fn with_shared(
        id: CoreId,
        cfg: Arc<MachineConfig>,
        program: Box<dyn ThreadProgram>,
    ) -> Self {
        let design = cfg.fence_design;
        let rob = VecDeque::with_capacity(cfg.rob_entries);
        let wb = VecDeque::with_capacity(cfg.wb_entries);
        let wb_entries = cfg.wb_entries;
        Core {
            id,
            cfg,
            design,
            program,
            program_done: false,
            awaiting_tag: None,
            rob,
            wb,
            wb_inflight: 0,
            instr_seq: 0,
            next_store_serial: 1,
            completed_store_serial: 0,
            completed_ahead: Vec::new(),
            bounced_inflight: Vec::new(),
            issue_scratch: Vec::with_capacity(wb_entries),
            next_fence_serial: 1,
            last_fence_serial: 0,
            completed_fence_serial: 0,
            active_fences: Vec::new(),
            orderable_wfs: 0,
            checkpoints: VecDeque::new(),
            timeout_count: 0,
            head_store_bounced: false,
            bs_bounced_flag: false,
            post_recovery_drain: false,
            stats: CoreStats::default(),
        }
    }

    /// Restores the as-new state for machine reuse under `cfg`, running
    /// `program`. Every container keeps its allocation, so a pooled
    /// machine re-arms its cores without touching the heap.
    pub fn reset_with(&mut self, cfg: Arc<MachineConfig>, program: Box<dyn ThreadProgram>) {
        self.design = cfg.fence_design;
        self.cfg = cfg;
        self.program = program;
        self.program_done = false;
        self.awaiting_tag = None;
        self.rob.clear();
        self.wb.clear();
        self.wb_inflight = 0;
        self.instr_seq = 0;
        self.next_store_serial = 1;
        self.completed_store_serial = 0;
        self.completed_ahead.clear();
        self.bounced_inflight.clear();
        self.issue_scratch.clear();
        self.next_fence_serial = 1;
        self.last_fence_serial = 0;
        self.completed_fence_serial = 0;
        self.active_fences.clear();
        self.orderable_wfs = 0;
        self.checkpoints.clear();
        self.timeout_count = 0;
        self.head_store_bounced = false;
        self.bs_bounced_flag = false;
        self.post_recovery_drain = false;
        self.stats = CoreStats::default();
    }

    /// Installs `program` on a freshly built or reset core.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the core has already executed anything.
    pub fn set_program(&mut self, program: Box<dyn ThreadProgram>) {
        debug_assert!(
            self.instr_seq == 0 && self.rob.is_empty(),
            "programs install only on fresh cores"
        );
        self.program = program;
        self.program_done = false;
    }

    /// This core's identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Approximate bytes of heap capacity retained across resets (for
    /// pool telemetry): the ROB, write buffer, and checkpoint arrays.
    pub fn retained_bytes(&self) -> usize {
        self.rob.capacity() * std::mem::size_of::<RobEntry>()
            + self.wb.capacity() * std::mem::size_of::<WbEntry>()
            + self.checkpoints.capacity() * std::mem::size_of::<Checkpoint>()
            + self.completed_ahead.capacity() * std::mem::size_of::<u64>()
            + self.bounced_inflight.capacity() * std::mem::size_of::<Token>()
            + self.active_fences.capacity() * std::mem::size_of::<ActiveFence>()
            + self.issue_scratch.capacity() * std::mem::size_of::<usize>()
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Statistics with `pending` not-yet-flushed skipped cycles folded
    /// in, classified by the core's current (frozen) stall kind. The
    /// machine defers skip accounting to a per-core counter; this folds
    /// that counter at harvest time without mutating the core.
    pub fn stats_with_skips(&self, pending: u64) -> CoreStats {
        let mut s = self.stats;
        if pending > 0 {
            s.record_cycles(self.idle_kind(), pending);
        }
        s
    }

    /// The program this core runs.
    pub fn program(&self) -> &dyn ThreadProgram {
        self.program.as_ref()
    }

    /// Whether the program finished and every buffer drained.
    pub fn is_done(&self) -> bool {
        self.program_done
            && self.rob.is_empty()
            && self.wb.is_empty()
            && self.active_fences.is_empty()
            && !self.post_recovery_drain
    }

    /// Monotonic progress marker for the machine's deadlock watchdog.
    pub fn progress_marker(&self) -> u64 {
        self.stats.instrs_retired + self.completed_store_serial + self.stats.recoveries
    }

    fn resolve_fence(&self, role: FenceRole, site: FenceSite) -> HwFence {
        // An explicit per-site assignment (synthesis engine) takes
        // precedence over the design's role mapping; anonymous sites and
        // unmentioned sites always fall through to the role mapping.
        if !site.is_anon() {
            if let Some(assign) = &self.cfg.fence_assignment {
                if let Some(strength) = assign.strength(site.raw()) {
                    return match strength {
                        SiteStrength::Strong => HwFence::Strong,
                        SiteStrength::Weak if self.design == FenceDesign::Wee => HwFence::WeeWeak,
                        SiteStrength::Weak => HwFence::Weak,
                    };
                }
            }
        }
        match self.design {
            FenceDesign::SPlus => HwFence::Strong,
            FenceDesign::WsPlus | FenceDesign::SwPlus => match role {
                FenceRole::Critical => HwFence::Weak,
                FenceRole::NonCritical => HwFence::Strong,
            },
            FenceDesign::WPlus | FenceDesign::WfOnlyUnsafe => HwFence::Weak,
            FenceDesign::Wee => HwFence::WeeWeak,
        }
    }

    fn order_mode(&self) -> OrderMode {
        if self.orderable_wfs == 0 {
            return OrderMode::None;
        }
        match self.design {
            FenceDesign::WsPlus => OrderMode::Order,
            FenceDesign::SwPlus => OrderMode::CondOrder,
            _ => OrderMode::None,
        }
    }

    fn line_of(&self, addr: Addr) -> LineAddr {
        LineAddr::containing(addr, self.cfg.line_bytes)
    }

    fn word_mask_of(&self, addr: Addr) -> u32 {
        addr.word_in_line(self.cfg.line_bytes, self.cfg.word_bytes)
            .mask_bit()
    }

    fn word_addr(&self, addr: Addr) -> u64 {
        addr.raw() / self.cfg.word_bytes * self.cfg.word_bytes
    }

    // ------------------------------------------------------------------
    // Main per-cycle step
    // ------------------------------------------------------------------

    /// Advances the core by one cycle.
    pub fn tick(&mut self, now: Cycle, mem: &mut MemSystem, mut scv: Option<&mut ScvLog>) {
        self.drain_mem_events(now, mem, &mut scv);
        self.complete_fences(now, mem);
        let retired = self.retire(now, mem, &mut scv);
        self.drain_write_buffer(now, mem);
        self.check_w_timeout(now, mem, &mut scv);
        if !self.post_recovery_drain {
            self.fetch_dispatch(now, mem);
        } else if self.wb.is_empty() {
            self.post_recovery_drain = false;
        }
        self.account_cycle(retired);
    }

    // ------------------------------------------------------------------
    // Memory events
    // ------------------------------------------------------------------

    fn drain_mem_events(&mut self, now: Cycle, mem: &mut MemSystem, scv: &mut Option<&mut ScvLog>) {
        while let Some(ev) = mem.pop_event(self.id) {
            match ev {
                MemEvent::LoadDone { token, value } => {
                    for e in self.rob.iter_mut() {
                        if let RobKind::Load {
                            token: Some(t),
                            value: v,
                            ..
                        } = &mut e.kind
                        {
                            if *t == token {
                                *v = Some(value);
                                break;
                            }
                        }
                    }
                    // Unknown tokens are stale (squashed/rolled back loads).
                }
                MemEvent::StoreDone { token } => {
                    let hit = self
                        .wb
                        .iter()
                        .position(|w| w.issued == Some(token))
                        .map(|i| {
                            let w = self.wb[i].clone();
                            self.wb.remove(i);
                            self.wb_inflight -= 1;
                            w
                        });
                    if let Some(w) = hit {
                        self.completed_ahead.push(w.serial);
                        loop {
                            let next = self.completed_store_serial + 1;
                            let Some(pos) =
                                self.completed_ahead.iter().position(|&s| s == next)
                            else {
                                break;
                            };
                            self.completed_ahead.swap_remove(pos);
                            self.completed_store_serial = next;
                        }
                        if let Some(pos) =
                            self.bounced_inflight.iter().position(|&t| t == token)
                        {
                            self.bounced_inflight.swap_remove(pos);
                        }
                        self.head_store_bounced = !self.bounced_inflight.is_empty();
                        if let Some(log) = scv.as_deref_mut() {
                            log.record(self.id.0, self.word_addr(w.addr), true, w.seq);
                        }
                    }
                }
                MemEvent::RmwDone { token, old } => {
                    for e in self.rob.iter_mut() {
                        if let RobKind::Rmw {
                            token: Some(t),
                            result,
                            ..
                        } = &mut e.kind
                        {
                            if *t == token {
                                *result = Some(old);
                                break;
                            }
                        }
                    }
                }
                MemEvent::StoreBounced { token } => {
                    if self.wb.iter().any(|w| w.issued == Some(token)) {
                        if !self.bounced_inflight.contains(&token) {
                            self.bounced_inflight.push(token);
                        }
                        self.head_store_bounced = true;
                    }
                }
                MemEvent::InvSeen { line } => self.squash_speculative_loads(now, mem, line),
                MemEvent::WeeArmed {
                    fence_serial,
                    remote_ps,
                } => {
                    if let Some(f) = self
                        .active_fences
                        .iter_mut()
                        .find(|f| f.serial == fence_serial)
                    {
                        f.armed = true;
                        f.remote_ps = remote_ps;
                    }
                }
            }
        }
    }

    /// Squashes performed-but-unretired loads on an invalidated line: the
    /// value is discarded and the load reissued.
    fn squash_speculative_loads(&mut self, now: Cycle, mem: &mut MemSystem, line: LineAddr) {
        let id = self.id;
        let mut squashed = 0;
        for e in self.rob.iter_mut() {
            if let RobKind::Load {
                addr,
                line: l,
                value,
                token,
                forwarded,
                ..
            } = &mut e.kind
            {
                if *l == line && value.is_some() && !*forwarded {
                    *value = None;
                    *token = Some(mem.issue_load(now, id, *addr));
                    squashed += 1;
                }
            }
        }
        self.stats.load_squashes += squashed;
    }

    // ------------------------------------------------------------------
    // Fence completion
    // ------------------------------------------------------------------

    fn complete_fences(&mut self, now: Cycle, mem: &mut MemSystem) {
        while let Some(front) = self.active_fences.first() {
            if self.completed_store_serial < front.watermark {
                break;
            }
            let f = self.active_fences.remove(0);
            self.finish_fence(now, mem, f);
        }
    }

    fn finish_fence(&mut self, now: Cycle, mem: &mut MemSystem, f: ActiveFence) {
        self.stats.bs_lines_sum += mem.bs_distinct_lines(self.id) as u64;
        self.completed_fence_serial = f.serial;
        let bs_before = mem.bs_len(self.id) as u32;
        mem.bs_clear_completed(self.id, f.serial);
        let evicted = bs_before - mem.bs_len(self.id) as u32;
        if evicted > 0 {
            trace_event!(
                mem.trace_sink(),
                now,
                self.id,
                TraceKind::BsEvict { entries: evicted }
            );
        }
        trace_event!(
            mem.trace_sink(),
            now,
            self.id,
            TraceKind::FenceComplete { serial: f.serial }
        );
        if let Some(bank) = f.grt_bank {
            mem.wee_unregister(now, self.id, bank, f.serial);
        }
        if f.kind == HwFence::Weak
            && matches!(self.design, FenceDesign::WsPlus | FenceDesign::SwPlus)
        {
            self.orderable_wfs = self.orderable_wfs.saturating_sub(1);
            mem.set_order_mode(self.id, self.order_mode());
        }
        while self
            .checkpoints
            .front()
            .is_some_and(|c| c.fence_serial <= f.serial)
        {
            self.checkpoints.pop_front();
        }
        if self.checkpoints.is_empty() {
            self.timeout_count = 0;
        }
    }

    // ------------------------------------------------------------------
    // Retirement
    // ------------------------------------------------------------------

    /// Retires up to `issue_width` instructions; returns how many retired.
    fn retire(&mut self, now: Cycle, mem: &mut MemSystem, scv: &mut Option<&mut ScvLog>) -> u64 {
        let mut retired = 0u64;
        let width = self.cfg.issue_width as u64;
        while retired < width {
            let Some(head) = self.rob.front() else { break };
            let epoch = head.fence_epoch;
            let seq = head.seq;
            match &head.kind {
                RobKind::Load {
                    value: None, ..
                } => break, // not performed yet
                RobKind::Load {
                    value: Some(v),
                    tag,
                    line,
                    word_mask,
                    addr,
                    forwarded,
                    ..
                } => {
                    let v = *v;
                    let tag = *tag;
                    let line = *line;
                    let word_mask = *word_mask;
                    let addr = *addr;
                    let forwarded = *forwarded;
                    if !forwarded {
                        match self.load_retire_gate(mem, epoch, line) {
                            LoadGate::Free => {}
                            LoadGate::Early => {
                                if !mem.bs_insert(self.id, line, word_mask, epoch) {
                                    // Bypass Set full: hold until a fence
                                    // completes and space frees up.
                                    self.stats.bs_overflows += 1;
                                    break;
                                }
                                trace_event!(
                                    mem.trace_sink(),
                                    now,
                                    self.id,
                                    TraceKind::BsInsert { line }
                                );
                                self.stats.early_retired_loads += 1;
                            }
                            LoadGate::Stall => break,
                            LoadGate::RemotePsStall => {
                                self.stats.remote_ps_stalls += 1;
                                break;
                            }
                        }
                    }
                    self.rob.pop_front();
                    self.stats.loads += 1;
                    self.stats.instrs_retired += 1;
                    retired += 1;
                    // Forwarded loads are excluded from the SCV log: they
                    // read the core's own store and logically serialize
                    // right after it, but they *perform* early, which
                    // would fabricate reads-before-write edges. Dropping
                    // them only removes edges (never creates cycles).
                    if !forwarded {
                        if let Some(log) = scv.as_deref_mut() {
                            log.record(self.id.0, self.word_addr(addr), false, seq);
                        }
                    }
                    if let Some(t) = tag {
                        self.deliver(t, v);
                    }
                }
                RobKind::Store { addr, value } => {
                    if self.wb.len() >= self.cfg.wb_entries {
                        break; // write buffer full
                    }
                    let addr = *addr;
                    let value = *value;
                    self.rob.pop_front();
                    let serial = self.next_store_serial;
                    self.next_store_serial += 1;
                    let line = asymfence_common::ids::LineAddr::containing(
                        addr,
                        self.cfg.line_bytes,
                    );
                    let ready_at = now + mem.wb_drain_stall(self.id, serial, line);
                    self.wb.push_back(WbEntry {
                        addr,
                        value,
                        serial,
                        seq,
                        issued: None,
                        ready_at,
                    });
                    self.stats.stores += 1;
                    self.stats.instrs_retired += 1;
                    retired += 1;
                }
                RobKind::Rmw {
                    addr,
                    op,
                    tag,
                    token,
                    result,
                } => {
                    let addr = *addr;
                    let op = *op;
                    let tag = *tag;
                    match (token, result) {
                        (None, _) => {
                            // Full-fence semantics: drain the write buffer
                            // before grabbing the line.
                            if !self.wb.is_empty() {
                                break;
                            }
                            let tok = mem.issue_rmw(now, self.id, addr, op);
                            if let Some(RobEntry {
                                kind: RobKind::Rmw { token, .. },
                                ..
                            }) = self.rob.front_mut()
                            {
                                *token = Some(tok);
                            }
                            break;
                        }
                        (Some(_), None) => break, // waiting for completion
                        (Some(_), Some(old)) => {
                            let old = *old;
                            self.rob.pop_front();
                            self.stats.rmws += 1;
                            self.stats.instrs_retired += 1;
                            retired += 1;
                            if let Some(log) = scv.as_deref_mut() {
                                // An RMW is a read and (usually) a write.
                                log.record(self.id.0, self.word_addr(addr), true, seq);
                            }
                            self.deliver(tag, old);
                        }
                    }
                }
                RobKind::Fence { kind, serial } => {
                    let kind = *kind;
                    let serial = *serial;
                    match self.try_execute_fence(now, mem, kind, serial) {
                        FenceStep::Stall => break,
                        FenceStep::Demote => {
                            // Wee: Pending Set spans several directory
                            // banks; the fence becomes conventional.
                            self.stats.wee_demotions += 1;
                            trace_event!(
                                mem.trace_sink(),
                                now,
                                self.id,
                                TraceKind::FenceDemote { serial }
                            );
                            if let Some(RobEntry {
                                kind: RobKind::Fence { kind, .. },
                                ..
                            }) = self.rob.front_mut()
                            {
                                *kind = HwFence::Strong;
                            }
                            break;
                        }
                        FenceStep::Retire => {
                            self.rob.pop_front();
                            self.stats.instrs_retired += 1;
                            retired += 1;
                        }
                    }
                }
                RobKind::Compute { remaining } => {
                    let take = (*remaining).min(width - retired);
                    retired += take;
                    self.stats.instrs_retired += take;
                    if let Some(RobEntry {
                        kind: RobKind::Compute { remaining },
                        ..
                    }) = self.rob.front_mut()
                    {
                        *remaining -= take;
                        if *remaining == 0 {
                            self.rob.pop_front();
                        } else {
                            break; // still occupying the head this cycle
                        }
                    }
                }
            }
        }
        retired
    }

    fn deliver(&mut self, tag: u64, value: u64) {
        self.program.deliver(tag, value);
        if self.awaiting_tag == Some(tag) {
            self.awaiting_tag = None;
        }
    }

    /// Executes a fence at the ROB head.
    fn try_execute_fence(
        &mut self,
        now: Cycle,
        mem: &mut MemSystem,
        kind: HwFence,
        serial: u64,
    ) -> FenceStep {
        match kind {
            HwFence::Strong => {
                if !self.wb.is_empty() {
                    return FenceStep::Stall;
                }
                self.stats.sf_count += 1;
                self.completed_fence_serial = serial;
                trace_event!(
                    mem.trace_sink(),
                    now,
                    self.id,
                    TraceKind::FenceComplete { serial }
                );
                FenceStep::Retire
            }
            HwFence::Weak => {
                self.stats.wf_count += 1;
                self.activate_weak_fence(now, mem, serial, None);
                FenceStep::Retire
            }
            HwFence::WeeWeak => {
                // Pending Set: lines of every buffered (and in-flight)
                // pre-fence store.
                let mut ps: Vec<LineAddr> =
                    self.wb.iter().map(|w| self.line_of(w.addr)).collect();
                ps.sort_unstable();
                ps.dedup();
                let mut banks: Vec<usize> = ps.iter().map(|l| mem.home_bank(*l)).collect();
                banks.sort_unstable();
                banks.dedup();
                if banks.len() > 1 {
                    // Paper §2.3: state spans several directory modules —
                    // the fence turns into a conventional one.
                    return FenceStep::Demote;
                }
                self.stats.wf_count += 1;
                if ps.is_empty() {
                    // Nothing pending: completes immediately, stays weak.
                    self.completed_fence_serial = serial;
                    trace_event!(
                        mem.trace_sink(),
                        now,
                        self.id,
                        TraceKind::FenceComplete { serial }
                    );
                    return FenceStep::Retire;
                }
                let bank = banks[0];
                mem.wee_register(now, self.id, bank, serial, ps);
                self.activate_weak_fence(now, mem, serial, Some(bank));
                FenceStep::Retire
            }
        }
    }

    fn activate_weak_fence(
        &mut self,
        now: Cycle,
        mem: &mut MemSystem,
        serial: u64,
        grt_bank: Option<usize>,
    ) {
        let watermark = self.next_store_serial - 1;
        if self.completed_store_serial >= watermark && grt_bank.is_none() {
            // No pending pre-fence stores: already complete.
            self.completed_fence_serial = serial;
            trace_event!(
                mem.trace_sink(),
                now,
                self.id,
                TraceKind::FenceComplete { serial }
            );
            if matches!(self.design, FenceDesign::WsPlus | FenceDesign::SwPlus) {
                self.orderable_wfs = self.orderable_wfs.saturating_sub(1);
                mem.set_order_mode(self.id, self.order_mode());
            }
            while self
                .checkpoints
                .front()
                .is_some_and(|c| c.fence_serial <= serial)
            {
                self.checkpoints.pop_front();
            }
            return;
        }
        self.active_fences.push(ActiveFence {
            serial,
            kind: if grt_bank.is_some() {
                HwFence::WeeWeak
            } else {
                HwFence::Weak
            },
            watermark,
            armed: grt_bank.is_none(),
            remote_ps: Vec::new(),
            grt_bank,
        });
    }

    /// Decides how a performed load at the ROB head may retire given the
    /// incomplete fences that precede it.
    fn load_retire_gate(&self, _mem: &MemSystem, epoch: u64, line: LineAddr) -> LoadGate {
        let mut gate = LoadGate::Free;
        for f in &self.active_fences {
            if f.serial > epoch {
                continue;
            }
            match f.kind {
                HwFence::Strong => return LoadGate::Stall,
                HwFence::Weak => gate = LoadGate::Early,
                HwFence::WeeWeak => {
                    if !f.armed {
                        return LoadGate::Stall;
                    }
                    if f.remote_ps.contains(&line) {
                        return LoadGate::RemotePsStall;
                    }
                    gate = LoadGate::Early;
                }
            }
        }
        gate
    }

    // ------------------------------------------------------------------
    // Write buffer
    // ------------------------------------------------------------------

    fn drain_write_buffer(&mut self, now: Cycle, mem: &mut MemSystem) {
        if self.wb.is_empty() {
            return;
        }
        let width = self.cfg.wb_merge_width;
        let inflight = self.wb_inflight;
        if inflight >= width {
            return;
        }
        // Fences order stores: never issue a store past the oldest
        // incomplete fence's watermark (under TSO's width of 1 this is
        // automatic from FIFO order; wider merge widths need the gate —
        // and it also keeps W+ rollback sound, since no post-fence store
        // can be in flight while its fence is incomplete).
        let bound = self
            .active_fences
            .first()
            .map(|f| f.watermark)
            .unwrap_or(u64::MAX);
        let mut slots = width - inflight;
        let id = self.id;
        let line_bytes = self.cfg.line_bytes;
        let mut issue_list = std::mem::take(&mut self.issue_scratch);
        issue_list.clear();
        for (i, w) in self.wb.iter().enumerate() {
            if slots == 0 {
                break;
            }
            if w.issued.is_some() {
                continue;
            }
            if w.serial > bound {
                break;
            }
            if now < w.ready_at {
                // Perturbation drain stall: TSO (width 1) keeps FIFO
                // order, so younger stores wait behind the stalled head.
                if width == 1 {
                    break;
                }
                continue;
            }
            let line = LineAddr::containing(w.addr, line_bytes);
            // Per-line order: wait for any older same-line store.
            let line_busy = mem.store_pending_on(id, line)
                || self.wb.iter().take(i).any(|p| {
                    p.issued.is_none() && LineAddr::containing(p.addr, line_bytes) == line
                });
            if line_busy {
                if width == 1 {
                    break;
                }
                continue;
            }
            issue_list.push(i);
            slots -= 1;
            if width == 1 {
                break;
            }
        }
        for i in issue_list.drain(..) {
            let (addr, value) = (self.wb[i].addr, self.wb[i].value);
            let token = mem.issue_store(now, id, addr, value);
            self.wb[i].issued = Some(token);
            self.wb_inflight += 1;
        }
        self.issue_scratch = issue_list;
    }

    // ------------------------------------------------------------------
    // W+ timeout and rollback
    // ------------------------------------------------------------------

    fn check_w_timeout(&mut self, now: Cycle, mem: &mut MemSystem, scv: &mut Option<&mut ScvLog>) {
        if self.design != FenceDesign::WPlus {
            return;
        }
        if self.active_fences.is_empty() {
            self.bs_bounced_flag = false;
            self.timeout_count = 0;
            return;
        }
        if mem.bs_take_bounced_flag(self.id) {
            self.bs_bounced_flag = true;
        }
        // Paper: the timeout runs while (1) a pre-fence write is being
        // bounced and (2) the local BS has bounced external requests.
        let suspect =
            self.head_store_bounced && self.bs_bounced_flag && !self.checkpoints.is_empty();
        if suspect {
            self.timeout_count += 1;
            if self.timeout_count >= self.cfg.w_timeout_cycles {
                self.rollback(now, mem, scv);
            }
        } else {
            self.timeout_count = 0;
        }
    }

    fn rollback(&mut self, now: Cycle, mem: &mut MemSystem, scv: &mut Option<&mut ScvLog>) {
        let cp = self.checkpoints.pop_front().expect("checkpoint present");
        self.stats.recoveries += 1;
        trace_event!(
            mem.trace_sink(),
            now,
            self.id,
            TraceKind::Rollback { serial: cp.fence_serial }
        );
        // The rolled-back accesses architecturally never happened.
        if let Some(log) = scv.as_deref_mut() {
            log.retract(self.id.0, cp.seq);
        }
        self.instr_seq = cp.seq;
        self.program = cp.program;
        self.program_done = false;
        self.awaiting_tag = None;
        self.checkpoints.clear();
        self.rob.clear();
        // Drop post-fence stores that retired into the write buffer but
        // have not merged (they are behind the incomplete pre-fence ones).
        let watermark = self
            .active_fences
            .iter()
            .find(|f| f.serial >= cp.fence_serial)
            .map(|f| f.watermark)
            .unwrap_or(self.next_store_serial - 1);
        self.wb.retain(|w| w.serial <= watermark);
        self.wb_inflight = self.wb.iter().filter(|w| w.issued.is_some()).count();
        self.next_store_serial = watermark + 1;
        self.completed_ahead.retain(|s| *s <= watermark);
        self.bounced_inflight.clear();
        self.active_fences.clear();
        mem.bs_clear_all(self.id);
        self.timeout_count = 0;
        self.head_store_bounced = false;
        self.bs_bounced_flag = false;
        // Resume only after all pre-fence stores drain: the same deadlock
        // cannot recur.
        self.post_recovery_drain = true;
    }

    // ------------------------------------------------------------------
    // Fetch / dispatch
    // ------------------------------------------------------------------

    fn fetch_dispatch(&mut self, now: Cycle, mem: &mut MemSystem) {
        for _ in 0..self.cfg.issue_width {
            if self.program_done || self.awaiting_tag.is_some() {
                return;
            }
            if self.rob.len() >= self.cfg.rob_entries {
                return;
            }
            match self.program.fetch() {
                Fetch::Done => {
                    self.program_done = true;
                    return;
                }
                Fetch::Await => return,
                Fetch::Instr(instr) => self.dispatch(now, mem, instr),
            }
        }
    }

    fn dispatch(&mut self, now: Cycle, mem: &mut MemSystem, instr: Instr) {
        let seq = self.instr_seq;
        self.instr_seq += 1;
        let epoch = self.last_fence_serial;
        let kind = match instr {
            Instr::Load { addr, tag } => {
                if tag.is_some() {
                    self.awaiting_tag = tag;
                }
                let line = self.line_of(addr);
                let word_mask = self.word_mask_of(addr);
                // Store-to-load forwarding from the WB / in-flight store /
                // older ROB stores (same word).
                let fwd = self.forward_value(addr);
                let (token, value, forwarded) = match fwd {
                    Some(v) => (None, Some(v), true),
                    None => (Some(mem.issue_load(now, self.id, addr)), None, false),
                };
                RobKind::Load {
                    addr,
                    line,
                    word_mask,
                    token,
                    value,
                    tag,
                    forwarded,
                }
            }
            Instr::Store { addr, value } => RobKind::Store { addr, value },
            Instr::Rmw { addr, op, tag } => {
                self.awaiting_tag = Some(tag);
                RobKind::Rmw {
                    addr,
                    op,
                    tag,
                    token: None,
                    result: None,
                }
            }
            Instr::Fence { role, site } => {
                let kind = self.resolve_fence(role, site);
                let serial = self.next_fence_serial;
                self.next_fence_serial += 1;
                self.last_fence_serial = serial;
                let class = match kind {
                    HwFence::Strong => FenceClass::Strong,
                    HwFence::Weak => FenceClass::Weak,
                    HwFence::WeeWeak => FenceClass::WeeWeak,
                };
                trace_event!(
                    mem.trace_sink(),
                    now,
                    self.id,
                    TraceKind::FenceIssue { serial, class }
                );
                if kind == HwFence::Weak {
                    if matches!(self.design, FenceDesign::WsPlus | FenceDesign::SwPlus) {
                        // "If the core then executes a wf, set the O bit of
                        // its currently-bouncing requests."
                        self.orderable_wfs += 1;
                        mem.set_order_mode(self.id, self.order_mode());
                    }
                    if self.design == FenceDesign::WPlus {
                        self.checkpoints.push_back(Checkpoint {
                            fence_serial: serial,
                            seq: self.instr_seq,
                            program: self.program.snapshot(),
                        });
                        trace_event!(
                            mem.trace_sink(),
                            now,
                            self.id,
                            TraceKind::Checkpoint { serial }
                        );
                    }
                }
                RobKind::Fence { kind, serial }
            }
            Instr::Compute { cycles } => RobKind::Compute {
                remaining: cycles.max(1),
            },
        };
        self.rob.push_back(RobEntry {
            kind,
            seq,
            fence_epoch: epoch,
        });
    }

    /// Finds the youngest older store to the same word, if any.
    fn forward_value(&self, addr: Addr) -> Option<u64> {
        let word = self.word_addr(addr);
        // Younger ROB stores are later in the deque; search backwards.
        for e in self.rob.iter().rev() {
            if let RobKind::Store { addr: a, value } = &e.kind {
                if self.word_addr(*a) == word {
                    return Some(*value);
                }
            }
        }
        for w in self.wb.iter().rev() {
            if self.word_addr(w.addr) == word {
                return Some(w.value);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Cycle accounting
    // ------------------------------------------------------------------

    fn account_cycle(&mut self, retired: u64) {
        if retired > 0 {
            self.stats.record_cycle(StallKind::Busy);
        } else {
            self.stats.record_cycle(self.idle_kind());
        }
    }

    /// The stall classification an idle (nothing-retired) cycle of this
    /// core records. Pure, so skipped cycles can be accounted in bulk:
    /// while a core is skippable its architectural state is frozen, and
    /// with it this classification.
    fn idle_kind(&self) -> StallKind {
        if self.is_done() {
            return StallKind::Idle;
        }
        if self.post_recovery_drain {
            return StallKind::Fence;
        }
        match self.rob.front() {
            Some(e) => match &e.kind {
                RobKind::Load { value: Some(_), forwarded, .. } if !*forwarded => {
                    // Performed load blocked by the retire gate.
                    StallKind::Fence
                }
                RobKind::Load { .. } => StallKind::Other,
                RobKind::Store { .. } => StallKind::Other, // WB full
                // RMW costs (drain + round trip) are synchronization cost
                // the fence designs cannot remove; keep them out of the
                // fence-stall bucket the paper's figures break down.
                RobKind::Rmw { .. } => StallKind::Other,
                // Strong-fence drain or Wee demotion stall.
                RobKind::Fence { .. } => StallKind::Fence,
                // A Compute dispatched this very cycle (retirement ran
                // before fetch): nothing retired yet.
                RobKind::Compute { .. } => StallKind::Other,
            },
            None => StallKind::Other, // fetch-starved or draining
        }
    }

    // ------------------------------------------------------------------
    // Event-driven scheduling hints
    // ------------------------------------------------------------------

    /// The earliest cycle at or after `now` at which ticking this core
    /// could change anything — retire, issue, fetch, or complete a fence
    /// — assuming no memory event is pending for it and none arrives in
    /// the meantime. `Cycle::MAX` means "only a memory event can wake
    /// this core". The hint is recomputed from live architectural state
    /// on every query (nothing is cached), and it is exact: a tick at
    /// any cycle strictly before the returned value, with an empty event
    /// queue, is a no-op.
    pub fn next_interesting(&self, now: Cycle) -> Cycle {
        if self.is_done() {
            return Cycle::MAX;
        }
        // Incomplete fences. W+ consumes the Bypass-Set bounce flag and
        // runs its deadlock-suspicion timeout every cycle while a fence
        // is active — never skip it. For the other designs an active
        // fence changes state only when a pre-fence store completes,
        // and store completions are port events (which force a tick);
        // completion already due means the very next tick acts.
        if !self.active_fences.is_empty() {
            if self.design == FenceDesign::WPlus {
                return now;
            }
            if self.completed_store_serial >= self.active_fences[0].watermark {
                return now;
            }
        }
        if self.post_recovery_drain {
            return if self.wb.is_empty() {
                now // the drain flag clears this cycle
            } else {
                self.wb_wake(now)
            };
        }
        // Fetch/dispatch can make progress this cycle.
        if !self.program_done
            && self.awaiting_tag.is_none()
            && self.rob.len() < self.cfg.rob_entries
        {
            return now;
        }
        let head_wake = match self.rob.front().map(|e| &e.kind) {
            None => Cycle::MAX,
            Some(RobKind::Load { value: Some(_), .. }) => now,
            Some(RobKind::Load { value: None, .. }) => Cycle::MAX, // LoadDone event
            Some(RobKind::Store { .. }) => {
                if self.wb.len() < self.cfg.wb_entries {
                    now
                } else {
                    Cycle::MAX // a StoreDone event frees an entry
                }
            }
            Some(RobKind::Rmw { token: None, .. }) => {
                if self.wb.is_empty() {
                    now // ready to issue
                } else {
                    Cycle::MAX // write buffer drains via events / wb_wake
                }
            }
            Some(RobKind::Rmw { result: Some(_), .. }) => now,
            Some(RobKind::Rmw { .. }) => Cycle::MAX, // RmwDone event
            Some(RobKind::Fence {
                kind: HwFence::Strong,
                ..
            }) => {
                if self.wb.is_empty() {
                    now
                } else {
                    Cycle::MAX // drains via events / wb_wake
                }
            }
            Some(RobKind::Fence { .. }) => now,
            Some(RobKind::Compute { .. }) => now,
        };
        head_wake.min(self.wb_wake(now))
    }

    /// The earliest cycle a write-buffer drain attempt could issue a
    /// store, considering only timer state (the schedule oracle's
    /// per-store `ready_at` stalls). Entries blocked on in-flight
    /// transactions wake via memory events instead; an unissued entry
    /// already past its timer wakes `now` (the drain must run to
    /// re-evaluate line conflicts).
    fn wb_wake(&self, now: Cycle) -> Cycle {
        if self.wb.is_empty() {
            return Cycle::MAX;
        }
        let width = self.cfg.wb_merge_width;
        if self.wb_inflight >= width {
            return Cycle::MAX; // a StoreDone event frees the slot
        }
        // Mirror the drain's fence gate: stores younger than the oldest
        // incomplete fence's watermark cannot issue until that fence
        // completes, and completion rides on a port event.
        let bound = self
            .active_fences
            .first()
            .map(|f| f.watermark)
            .unwrap_or(u64::MAX);
        let mut wake = Cycle::MAX;
        for w in &self.wb {
            if w.issued.is_some() {
                continue;
            }
            if w.serial > bound {
                break; // the drain stops here too
            }
            wake = wake.min(w.ready_at.max(now));
            if width == 1 {
                break; // TSO: only the oldest unissued entry can issue
            }
        }
        wake
    }

    /// Whether a tick at `now` with no pending memory events would be a
    /// provable no-op for this core.
    pub fn tick_is_noop(&self, now: Cycle) -> bool {
        self.next_interesting(now) > now
    }

    /// Accounts `n` skipped no-op cycles in one bulk record (exact: the
    /// stall classification is frozen while the core is skippable).
    pub fn account_skipped(&mut self, n: u64) {
        self.stats.record_cycles(self.idle_kind(), n);
    }
}

/// Outcome of the load-retirement fence gate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LoadGate {
    /// No incomplete preceding fence: retire normally.
    Free,
    /// Weak fences precede: retire early, entering the Bypass Set.
    Early,
    /// Must wait (strong fence or unarmed Wee fence).
    Stall,
    /// Must wait because of a Wee RemotePS hit or foreign-bank address
    /// (counted separately in the statistics).
    RemotePsStall,
}

/// Outcome of executing a fence at the ROB head.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FenceStep {
    /// The fence retires this cycle.
    Retire,
    /// The fence stalls at the head.
    Stall,
    /// Wee only: the fence must be demoted to a strong fence.
    Demote,
}
