//! Property tests of the mesh: routing correctness and delivery-order
//! invariants on arbitrary geometries.
//!
//! Runs on the in-repo property harness (`asymfence_common::prop`):
//! failing case seeds persist to `tests/regressions/prop_noc.seeds` and
//! replay before fresh cases. `ASF_PROP_CASES` / `ASF_PROP_SEED`
//! override the budget and base seed.

use asymfence_common::prop::{check, pairs, triples, u64s, usizes, vecs, Config};
use asymfence_noc::{Mesh, Network};

fn prop_cfg(cases: u32) -> Config {
    Config::from_env(cases).regressions("tests/regressions/prop_noc.seeds")
}

/// Route length always equals the Manhattan distance, on any mesh.
#[test]
fn route_length_is_manhattan() {
    let gen = triples(
        usizes(1, 6),
        usizes(1, 6),
        vecs(pairs(usizes(0, 35), usizes(0, 35)), 1, 16),
    );
    check(
        "route_length_is_manhattan",
        &prop_cfg(48),
        &gen,
        |(cols, rows, endpoint_pairs)| {
            let nodes = cols * rows;
            let mesh = Mesh::new(*cols, *rows, nodes);
            for (s, d) in endpoint_pairs {
                let (s, d) = (s % nodes, d % nodes);
                if mesh.route(s, d).len() as u64 != mesh.hops(s, d) {
                    return Err(format!("route {s}->{d} length != hops"));
                }
            }
            Ok(())
        },
    );
}

/// Symmetry: distance is the same in both directions.
#[test]
fn hops_are_symmetric() {
    let gen = pairs(pairs(usizes(1, 6), usizes(1, 6)), pairs(usizes(0, 35), usizes(0, 35)));
    check(
        "hops_are_symmetric",
        &prop_cfg(48),
        &gen,
        |((cols, rows), (s, d))| {
            let nodes = cols * rows;
            let mesh = Mesh::new(*cols, *rows, nodes);
            let (s, d) = (s % nodes, d % nodes);
            if mesh.hops(s, d) != mesh.hops(d, s) {
                return Err(format!("asymmetric hops {s}<->{d}"));
            }
            Ok(())
        },
    );
}

/// Per source-destination pair, messages are delivered in send order
/// (the protocol relies on this point-to-point FIFO property).
#[test]
fn point_to_point_fifo() {
    let gen = vecs(triples(usizes(0, 8), usizes(0, 8), u64s(1, 127)), 2, 24);
    check("point_to_point_fifo", &prop_cfg(48), &gen, |sends| {
        let mesh = Mesh::new(3, 3, 9);
        let mut net: Network<usize> = Network::new(mesh, 5, 32);
        for (i, (s, d, bytes)) in sends.iter().enumerate() {
            net.send(0, *s, *d, *bytes, false, i);
        }
        let mut arrived: Vec<(usize, usize)> = Vec::new();
        let mut t = 0;
        while !net.is_idle() {
            while let Some((node, id)) = net.pop_arrival(t) {
                arrived.push((node, id));
            }
            t += 1;
            if t >= 1_000_000 {
                return Err("network must drain".into());
            }
        }
        if arrived.len() != sends.len() {
            return Err(format!("{} arrivals for {} sends", arrived.len(), sends.len()));
        }
        for (i, (s1, d1, _)) in sends.iter().enumerate() {
            for (j, (s2, d2, _)) in sends.iter().enumerate().skip(i + 1) {
                if (s1, d1) == (s2, d2) {
                    let pi = arrived.iter().position(|&(_, id)| id == i).unwrap();
                    let pj = arrived.iter().position(|&(_, id)| id == j).unwrap();
                    if pi >= pj {
                        return Err(format!("messages {i} and {j} reordered on {s1}->{d1}"));
                    }
                }
            }
        }
        Ok(())
    });
}

/// Traffic accounting equals the sum of bytes x hops (min 1).
#[test]
fn traffic_is_bytes_times_hops() {
    let gen = vecs(triples(usizes(0, 8), usizes(0, 8), u64s(1, 63)), 1, 12);
    check("traffic_is_bytes_times_hops", &prop_cfg(48), &gen, |sends| {
        let mesh = Mesh::new(3, 3, 9);
        let mut net: Network<u8> = Network::new(mesh, 5, 32);
        let mut expect = 0u64;
        for (s, d, bytes) in sends {
            net.send(0, *s, *d, *bytes, false, 0);
            expect += bytes * mesh.hops(*s, *d).max(1);
        }
        if net.traffic().base_bytes != expect {
            return Err(format!(
                "traffic {} != expected {expect}",
                net.traffic().base_bytes
            ));
        }
        if net.traffic().messages != sends.len() as u64 {
            return Err("message count mismatch".into());
        }
        Ok(())
    });
}
