//! Property tests of the mesh: routing correctness and delivery-order
//! invariants on arbitrary geometries.

use proptest::prelude::*;

use asymfence_noc::{Mesh, Network};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Route length always equals the Manhattan distance, on any mesh.
    #[test]
    fn route_length_is_manhattan(
        cols in 1usize..7,
        rows in 1usize..7,
        pairs in prop::collection::vec((0usize..36, 0usize..36), 1..16)
    ) {
        let nodes = cols * rows;
        let mesh = Mesh::new(cols, rows, nodes);
        for (s, d) in pairs {
            let (s, d) = (s % nodes, d % nodes);
            prop_assert_eq!(mesh.route(s, d).len() as u64, mesh.hops(s, d));
        }
    }

    /// Symmetry: distance is the same in both directions.
    #[test]
    fn hops_are_symmetric(cols in 1usize..7, rows in 1usize..7, s in 0usize..36, d in 0usize..36) {
        let nodes = cols * rows;
        let mesh = Mesh::new(cols, rows, nodes);
        let (s, d) = (s % nodes, d % nodes);
        prop_assert_eq!(mesh.hops(s, d), mesh.hops(d, s));
    }

    /// Per source-destination pair, messages are delivered in send order
    /// (the protocol relies on this point-to-point FIFO property).
    #[test]
    fn point_to_point_fifo(
        sends in prop::collection::vec((0usize..9, 0usize..9, 1u64..128), 2..24)
    ) {
        let mesh = Mesh::new(3, 3, 9);
        let mut net: Network<usize> = Network::new(mesh, 5, 32);
        for (i, (s, d, bytes)) in sends.iter().enumerate() {
            net.send(0, *s, *d, *bytes, false, i);
        }
        let mut arrived: Vec<(usize, usize)> = Vec::new();
        let mut t = 0;
        while !net.is_idle() {
            while let Some((node, id)) = net.pop_arrival(t) {
                arrived.push((node, id));
            }
            t += 1;
            prop_assert!(t < 1_000_000);
        }
        prop_assert_eq!(arrived.len(), sends.len());
        for (i, (s1, d1, _)) in sends.iter().enumerate() {
            for (j, (s2, d2, _)) in sends.iter().enumerate().skip(i + 1) {
                if (s1, d1) == (s2, d2) {
                    let pi = arrived.iter().position(|&(_, id)| id == i).unwrap();
                    let pj = arrived.iter().position(|&(_, id)| id == j).unwrap();
                    prop_assert!(pi < pj, "messages {i} and {j} reordered on {s1}->{d1}");
                }
            }
        }
    }

    /// Traffic accounting equals the sum of bytes x hops (min 1).
    #[test]
    fn traffic_is_bytes_times_hops(
        sends in prop::collection::vec((0usize..9, 0usize..9, 1u64..64), 1..12)
    ) {
        let mesh = Mesh::new(3, 3, 9);
        let mut net: Network<u8> = Network::new(mesh, 5, 32);
        let mut expect = 0u64;
        for (s, d, bytes) in &sends {
            net.send(0, *s, *d, *bytes, false, 0);
            expect += bytes * mesh.hops(*s, *d).max(1);
        }
        prop_assert_eq!(net.traffic().base_bytes, expect);
        prop_assert_eq!(net.traffic().messages, sends.len() as u64);
    }
}
