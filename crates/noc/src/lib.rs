//! 2D-mesh on-chip network model.
//!
//! The paper's machine connects cores, L2 banks and directory modules with
//! a 2D mesh (5 cycles/hop, 256-bit links). This crate models that mesh
//! with dimension-ordered (XY) routing, per-link FIFO serialization, and
//! byte-level traffic accounting split into first-attempt and retry traffic
//! (Table 4 reports the retry-induced traffic increase).
//!
//! The model is *latency plus link-occupancy*: when a message is injected,
//! its route is walked immediately; each directed link has a `busy_until`
//! horizon, the message waits for the link, occupies it for its
//! serialization time, and pays the per-hop latency. Messages therefore
//! never overtake each other on a link, and hot links add queueing delay.
//!
//! # Examples
//!
//! ```
//! use asymfence_noc::{Mesh, Network};
//!
//! let mesh = Mesh::new(3, 3, 8); // 8 nodes on a 3x3 grid
//! let mut net: Network<&str> = Network::new(mesh, 5, 32);
//! net.send(0, 0, 7, 8, false, "hello");
//! let mut t = 0;
//! loop {
//!     if let Some((node, m)) = net.pop_arrival(t) {
//!         assert_eq!(node, 7);
//!         assert_eq!(m, "hello");
//!         break;
//!     }
//!     t += 1;
//! }
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use asymfence_common::hash::FxHashMap;
use asymfence_common::ids::Cycle;
use asymfence_common::stats::TrafficStats;

/// Geometry of the mesh: a `cols x rows` grid hosting `nodes` endpoints,
/// numbered row-major starting at the origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mesh {
    cols: usize,
    rows: usize,
    nodes: usize,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if the grid cannot hold `nodes` endpoints or any dimension is
    /// zero.
    pub fn new(cols: usize, rows: usize, nodes: usize) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be nonzero");
        assert!(nodes >= 1 && nodes <= cols * rows, "mesh too small for nodes");
        Mesh { cols, rows, nodes }
    }

    /// Number of endpoints.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Grid coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: usize) -> (usize, usize) {
        assert!(node < self.nodes, "node {node} out of range");
        (node % self.cols, node / self.cols)
    }

    /// Manhattan hop count between two nodes under XY routing.
    pub fn hops(&self, src: usize, dst: usize) -> u64 {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        (sx.abs_diff(dx) + sy.abs_diff(dy)) as u64
    }

    /// Directed links traversed by the XY route from `src` to `dst`.
    ///
    /// Each link is identified by `(from_tile, direction)` flattened into a
    /// dense index; see [`Mesh::link_count`].
    pub fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut links = Vec::with_capacity(self.hops(src, dst) as usize);
        self.walk_route(src, dst, |l| links.push(l));
        links
    }

    /// Visits the directed links of the XY route from `src` to `dst` in
    /// order without materializing the route — the injection hot path
    /// walks links through this, so sending never allocates.
    pub fn walk_route(&self, src: usize, dst: usize, mut f: impl FnMut(usize)) {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        while x != dx {
            let dir = if dx > x { Dir::East } else { Dir::West };
            f(self.link_index(x, y, dir));
            if dx > x {
                x += 1;
            } else {
                x -= 1;
            }
        }
        while y != dy {
            let dir = if dy > y { Dir::South } else { Dir::North };
            f(self.link_index(x, y, dir));
            if dy > y {
                y += 1;
            } else {
                y -= 1;
            }
        }
    }

    /// Total number of directed links modelled (4 per tile; edge links are
    /// allocated but never used, which keeps indexing trivial).
    pub fn link_count(&self) -> usize {
        self.cols * self.rows * 4
    }

    fn link_index(&self, x: usize, y: usize, dir: Dir) -> usize {
        (y * self.cols + x) * 4 + dir as usize
    }
}

#[derive(Clone, Copy, Debug)]
enum Dir {
    East = 0,
    West = 1,
    South = 2,
    North = 3,
}

/// An in-flight message awaiting delivery.
#[derive(Debug)]
struct Flight<M> {
    arrival: Cycle,
    seq: u64,
    node: usize,
    payload: M,
}

impl<M> PartialEq for Flight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.arrival == other.arrival && self.seq == other.seq
    }
}
impl<M> Eq for Flight<M> {}
impl<M> PartialOrd for Flight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Flight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrival, self.seq).cmp(&(other.arrival, other.seq))
    }
}

/// The mesh network carrying messages of type `M`.
///
/// Determinism: two messages arriving at the same cycle are delivered in
/// injection order.
#[derive(Debug)]
pub struct Network<M> {
    mesh: Mesh,
    hop_cycles: u64,
    link_bytes_per_cycle: u64,
    link_busy: Vec<Cycle>,
    in_flight: BinaryHeap<Reverse<Flight<M>>>,
    seq: u64,
    traffic: TrafficStats,
    /// Latest arrival scheduled per (src, dst) pair. Injected delays
    /// ([`Network::send_delayed`]) are clamped against this so the
    /// point-to-point FIFO property survives arbitrary jitter.
    pair_floor: FxHashMap<(usize, usize), Cycle>,
}

impl<M> Network<M> {
    /// Creates a network over `mesh` with the given per-hop latency and
    /// link bandwidth (bytes per cycle).
    ///
    /// # Panics
    ///
    /// Panics if `link_bytes_per_cycle` is zero.
    pub fn new(mesh: Mesh, hop_cycles: u64, link_bytes_per_cycle: u64) -> Self {
        assert!(link_bytes_per_cycle > 0);
        Network {
            link_busy: vec![0; mesh.link_count()],
            mesh,
            hop_cycles,
            link_bytes_per_cycle,
            in_flight: BinaryHeap::new(),
            seq: 0,
            traffic: TrafficStats::default(),
            pair_floor: FxHashMap::default(),
        }
    }

    /// The mesh geometry.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Injects a message at cycle `now`; it will arrive at `dst` after
    /// routing, serialization and queueing delay. `retry` marks the bytes
    /// as retry traffic for Table 4 accounting.
    ///
    /// Self-sends (`src == dst`) take one cycle through the local switch.
    pub fn send(&mut self, now: Cycle, src: usize, dst: usize, bytes: u64, retry: bool, payload: M) {
        self.send_delayed(now, src, dst, bytes, retry, 0, payload);
    }

    /// Like [`Network::send`], but the message arrives `extra` cycles
    /// later than its natural time — the injection point for the schedule
    /// explorer's NoC jitter and invalidation-delay perturbations.
    ///
    /// Delivery order between the same `(src, dst)` pair is preserved no
    /// matter the delays (the coherence protocol relies on point-to-point
    /// FIFO): a delayed message pushes the pair's arrival floor forward,
    /// so later sends cannot overtake it.
    #[allow(clippy::too_many_arguments)]
    pub fn send_delayed(
        &mut self,
        now: Cycle,
        src: usize,
        dst: usize,
        bytes: u64,
        retry: bool,
        extra: Cycle,
        payload: M,
    ) {
        let ser = bytes.div_ceil(self.link_bytes_per_cycle).max(1);
        let mut t = now;
        let mesh = self.mesh;
        let hops = mesh.hops(src, dst);
        let weighted_bytes = bytes * hops.max(1);
        if hops == 0 {
            t += 1; // local switch traversal
        } else {
            let hop_cycles = self.hop_cycles;
            mesh.walk_route(src, dst, |link| {
                let start = t.max(self.link_busy[link]);
                self.link_busy[link] = start + ser;
                t = start + hop_cycles;
            });
        }
        t += extra;
        // FIFO clamp: never arrive before an earlier same-pair message.
        // (Unperturbed arrivals are already monotone per pair, so this is
        // a no-op when `extra` is 0 everywhere.)
        let floor = self.pair_floor.entry((src, dst)).or_insert(0);
        t = t.max(*floor);
        *floor = t;
        self.traffic.messages += 1;
        if retry {
            self.traffic.retry_bytes += weighted_bytes;
        } else {
            self.traffic.base_bytes += weighted_bytes;
        }
        self.in_flight.push(Reverse(Flight {
            arrival: t,
            seq: self.seq,
            node: dst,
            payload,
        }));
        self.seq += 1;
    }

    /// Pops the next message whose arrival time is `<= now`, if any.
    ///
    /// Call repeatedly each cycle until it returns `None`.
    pub fn pop_arrival(&mut self, now: Cycle) -> Option<(usize, M)> {
        if let Some(Reverse(f)) = self.in_flight.peek() {
            if f.arrival <= now {
                let Reverse(f) = self.in_flight.pop().expect("peeked");
                return Some((f.node, f.payload));
            }
        }
        None
    }

    /// Earliest pending arrival time, if any message is in flight.
    pub fn next_arrival(&self) -> Option<Cycle> {
        self.in_flight.peek().map(|Reverse(f)| f.arrival)
    }

    /// Whether any message is still in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Traffic counters accumulated so far.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Restores the as-new state for machine reuse, keeping the link
    /// table, heap, and pair-floor allocations.
    pub fn reset(&mut self) {
        self.link_busy.fill(0);
        self.in_flight.clear();
        self.seq = 0;
        self.traffic = TrafficStats::default();
        self.pair_floor.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network<u32> {
        Network::new(Mesh::new(3, 3, 8), 5, 32)
    }

    #[test]
    fn coords_row_major() {
        let m = Mesh::new(3, 3, 8);
        assert_eq!(m.coords(0), (0, 0));
        assert_eq!(m.coords(2), (2, 0));
        assert_eq!(m.coords(3), (0, 1));
        assert_eq!(m.coords(7), (1, 2));
    }

    #[test]
    fn hops_manhattan() {
        let m = Mesh::new(3, 3, 8);
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 2), 2);
        assert_eq!(m.hops(0, 7), 3);
        assert_eq!(m.hops(2, 3), 3);
    }

    #[test]
    fn route_length_equals_hops() {
        let m = Mesh::new(4, 4, 16);
        for s in 0..16 {
            for d in 0..16 {
                assert_eq!(m.route(s, d).len() as u64, m.hops(s, d));
            }
        }
    }

    #[test]
    fn xy_routes_never_reuse_a_link() {
        let m = Mesh::new(4, 4, 16);
        for s in 0..16 {
            for d in 0..16 {
                let r = m.route(s, d);
                let mut sorted = r.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), r.len(), "{s}->{d}");
            }
        }
    }

    #[test]
    fn uncontended_latency_is_hops_times_hop_cycles() {
        let mut n = net();
        n.send(0, 0, 7, 8, false, 1);
        let hops = n.mesh().hops(0, 7);
        assert_eq!(n.next_arrival(), Some(hops * 5));
        assert!(n.pop_arrival(hops * 5 - 1).is_none());
        assert_eq!(n.pop_arrival(hops * 5), Some((7, 1)));
        assert!(n.is_idle());
    }

    #[test]
    fn local_send_takes_one_cycle() {
        let mut n = net();
        n.send(10, 3, 3, 8, false, 9);
        assert_eq!(n.pop_arrival(11), Some((3, 9)));
    }

    #[test]
    fn contention_delays_second_message() {
        let mut n = net();
        n.send(0, 0, 2, 64, false, 1);
        n.send(0, 0, 2, 64, false, 2);
        let a1 = n.next_arrival().unwrap();
        assert_eq!(n.pop_arrival(a1), Some((2, 1)));
        let a2 = n.next_arrival().unwrap();
        assert!(a2 > a1, "second message must queue behind the first");
        assert_eq!(n.pop_arrival(a2), Some((2, 2)));
    }

    #[test]
    fn same_cycle_delivery_is_fifo() {
        let mut n = net();
        n.send(0, 0, 0, 8, false, 1);
        n.send(0, 0, 0, 8, false, 2);
        assert_eq!(n.pop_arrival(100), Some((0, 1)));
        assert_eq!(n.pop_arrival(100), Some((0, 2)));
    }

    #[test]
    fn traffic_accounting_splits_retries() {
        let mut n = net();
        n.send(0, 0, 1, 16, false, 1);
        n.send(0, 0, 1, 16, true, 2);
        let t = n.traffic();
        assert_eq!(t.base_bytes, 16);
        assert_eq!(t.retry_bytes, 16);
        assert_eq!(t.messages, 2);
    }

    #[test]
    fn traffic_weighted_by_hops() {
        let mut n = net();
        n.send(0, 0, 7, 8, false, 1); // 3 hops
        assert_eq!(n.traffic().base_bytes, 24);
    }

    #[test]
    #[should_panic(expected = "mesh too small")]
    fn mesh_too_small_panics() {
        let _ = Mesh::new(2, 2, 5);
    }

    #[test]
    fn delayed_send_adds_latency() {
        let mut n = net();
        n.send_delayed(0, 0, 7, 8, false, 13, 1);
        let hops = n.mesh().hops(0, 7);
        assert_eq!(n.next_arrival(), Some(hops * 5 + 13));
    }

    #[test]
    fn delayed_send_preserves_pair_fifo() {
        let mut n = net();
        // First message massively delayed, second not: the second must
        // still arrive after (or with) the first, in injection order.
        n.send_delayed(0, 0, 2, 8, false, 500, 1);
        n.send_delayed(0, 0, 2, 8, false, 0, 2);
        let a1 = n.next_arrival().unwrap();
        assert_eq!(n.pop_arrival(a1), Some((2, 1)));
        let a2 = n.next_arrival().unwrap();
        assert!(a2 >= a1);
        assert_eq!(n.pop_arrival(a2), Some((2, 2)));
    }

    #[test]
    fn delay_on_one_pair_does_not_hold_up_other_pairs() {
        let mut n = net();
        n.send_delayed(0, 0, 2, 8, false, 500, 1);
        n.send_delayed(0, 1, 2, 8, false, 0, 2);
        // The undelayed 1->2 message arrives first.
        let (node, id) = {
            let a = n.next_arrival().unwrap();
            n.pop_arrival(a).unwrap()
        };
        assert_eq!((node, id), (2, 2));
    }

    #[test]
    fn zero_extra_matches_plain_send() {
        let mut a = net();
        let mut b = net();
        for (s, d) in [(0, 7), (1, 3), (0, 7), (4, 4)] {
            a.send(3, s, d, 16, false, 1);
            b.send_delayed(3, s, d, 16, false, 0, 1);
        }
        let mut arrivals_a = Vec::new();
        let mut arrivals_b = Vec::new();
        while let Some(t) = a.next_arrival() {
            arrivals_a.push(t);
            a.pop_arrival(t);
        }
        while let Some(t) = b.next_arrival() {
            arrivals_b.push(t);
            b.pop_arrival(t);
        }
        assert_eq!(arrivals_a, arrivals_b);
    }
}
