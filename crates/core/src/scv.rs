//! Sequential-consistency-violation detection (Shasha–Snir cycles).
//!
//! An execution is sequentially consistent iff the union of per-thread
//! program order and the inter-thread conflict order is acyclic
//! (Shasha & Snir, TOPLAS 1986). The machine's perform-order log gives us
//! the conflict order directly: for each word, writes and reads appear in
//! the order they became globally visible. This module builds that graph
//! and looks for a cycle.
//!
//! The paper's fences exist precisely to keep this graph acyclic; the
//! integration tests run every litmus figure through this checker.

use std::collections::HashMap;

use asymfence_common::scvlog::{ScvEvent, ScvLog};

/// Builds the program-order + conflict-order graph and returns one cycle
/// (as log indices) if the execution violates SC, or `None`.
pub fn find_cycle(log: &ScvLog) -> Option<Vec<usize>> {
    let n = log.events.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];

    // Program order: per core, sort events by po index and chain them.
    let mut per_core: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, e) in log.events.iter().enumerate() {
        per_core.entry(e.core).or_default().push(i);
    }
    for idxs in per_core.values_mut() {
        idxs.sort_by_key(|&i| log.events[i].po);
        for w in idxs.windows(2) {
            if log.events[w[0]].po != log.events[w[1]].po {
                adj[w[0]].push(w[1]);
            }
        }
    }

    // Conflict order: per word address, in log (perform) order.
    struct AddrState {
        last_write: Option<usize>,
        readers_since: Vec<usize>,
    }
    let mut per_addr: HashMap<u64, AddrState> = HashMap::new();
    for (i, e) in log.events.iter().enumerate() {
        let st = per_addr.entry(e.addr).or_insert(AddrState {
            last_write: None,
            readers_since: Vec::new(),
        });
        if e.is_write {
            if let Some(w) = st.last_write {
                if log.events[w].core != e.core {
                    adj[w].push(i);
                }
            }
            for &r in &st.readers_since {
                if log.events[r].core != e.core {
                    adj[r].push(i);
                }
            }
            st.last_write = Some(i);
            st.readers_since.clear();
        } else {
            if let Some(w) = st.last_write {
                if log.events[w].core != e.core {
                    adj[w].push(i);
                }
            }
            st.readers_since.push(i);
        }
    }

    // Iterative DFS cycle detection with path recovery.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut parent = vec![usize::MAX; n];
    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start] = Color::Gray;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            if *next < adj[u].len() {
                let v = adj[u][*next];
                *next += 1;
                match color[v] {
                    Color::White => {
                        color[v] = Color::Gray;
                        parent[v] = u;
                        stack.push((v, 0));
                    }
                    Color::Gray => {
                        // Found a back edge u -> v: recover the cycle.
                        let mut cycle = vec![u];
                        let mut x = u;
                        while x != v {
                            x = parent[x];
                            cycle.push(x);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[u] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

/// Whether the logged execution violates sequential consistency.
pub fn has_violation(log: &ScvLog) -> bool {
    find_cycle(log).is_some()
}

/// Pretty-prints a cycle for diagnostics.
pub fn describe_cycle(log: &ScvLog, cycle: &[usize]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("SC-violation cycle:\n");
    for &i in cycle {
        let ScvEvent {
            core,
            addr,
            is_write,
            po,
        } = log.events[i];
        let _ = writeln!(
            s,
            "  P{core} {} {addr:#x} (po {po}, perform #{i})",
            if is_write { "wr" } else { "rd" }
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(log: &mut ScvLog, core: usize, addr: u64, w: bool, po: u64) {
        log.record(core, addr, w, po);
    }

    #[test]
    fn empty_log_has_no_violation() {
        assert!(!has_violation(&ScvLog::new()));
    }

    #[test]
    fn sc_interleaving_is_clean() {
        // P0: wr x; rd y   then   P1: wr y; rd x — fully serialized.
        let mut log = ScvLog::new();
        ev(&mut log, 0, 0x0, true, 0);
        ev(&mut log, 0, 0x8, false, 1);
        ev(&mut log, 1, 0x8, true, 0);
        ev(&mut log, 1, 0x0, false, 1);
        assert!(!has_violation(&log));
    }

    #[test]
    fn store_buffering_reorder_is_a_cycle() {
        // Both loads perform before both stores (TSO store buffering):
        // P0: rd y (po1) … wr x (po0); P1: rd x (po1) … wr y (po0).
        let mut log = ScvLog::new();
        ev(&mut log, 0, 0x8, false, 1); // P0 rd y = 0
        ev(&mut log, 1, 0x0, false, 1); // P1 rd x = 0
        ev(&mut log, 0, 0x0, true, 0); // P0 wr x
        ev(&mut log, 1, 0x8, true, 0); // P1 wr y
        let cycle = find_cycle(&log).expect("SB reorder is an SCV");
        assert!(cycle.len() >= 4);
        let desc = describe_cycle(&log, &cycle);
        assert!(desc.contains("P0"));
        assert!(desc.contains("P1"));
    }

    #[test]
    fn fenced_store_buffering_is_clean() {
        // Stores perform before the loads retire: no cycle.
        let mut log = ScvLog::new();
        ev(&mut log, 0, 0x0, true, 0); // P0 wr x
        ev(&mut log, 1, 0x8, true, 0); // P1 wr y
        ev(&mut log, 0, 0x8, false, 1); // P0 rd y = 1
        ev(&mut log, 1, 0x0, false, 1); // P1 rd x = 1
        assert!(!has_violation(&log));
    }

    #[test]
    fn one_sided_reorder_is_not_a_cycle() {
        // Figure 1c: only one dependence goes "backwards".
        let mut log = ScvLog::new();
        ev(&mut log, 0, 0x8, false, 1); // P0 rd y early
        ev(&mut log, 0, 0x0, true, 0); // P0 wr x
        ev(&mut log, 1, 0x8, true, 0); // P1 wr y (after P0's read)
        ev(&mut log, 1, 0x0, false, 1); // P1 rd x — sees P0's write
        assert!(!has_violation(&log));
    }

    #[test]
    fn three_thread_cycle_detected() {
        // Figure 1e: P0: wr x; rd y | P1: wr y; rd z | P2: wr z; rd x,
        // with every read performing before the writes it should follow.
        let mut log = ScvLog::new();
        ev(&mut log, 0, 0x8, false, 1); // P0 rd y
        ev(&mut log, 1, 0x10, false, 1); // P1 rd z
        ev(&mut log, 2, 0x0, false, 1); // P2 rd x
        ev(&mut log, 0, 0x0, true, 0); // P0 wr x
        ev(&mut log, 1, 0x8, true, 0); // P1 wr y
        ev(&mut log, 2, 0x10, true, 0); // P2 wr z
        assert!(has_violation(&log));
    }

    #[test]
    fn same_core_conflicts_do_not_create_edges() {
        let mut log = ScvLog::new();
        ev(&mut log, 0, 0x0, true, 0);
        ev(&mut log, 0, 0x0, false, 1);
        ev(&mut log, 0, 0x0, true, 2);
        assert!(!has_violation(&log));
    }
}
