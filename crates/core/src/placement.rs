//! Fence placement by delay-set analysis (Shasha & Snir, TOPLAS'86).
//!
//! The paper's related work (§8) builds on compilers that insert fences to
//! guarantee SC on relaxed hardware and notes that asymmetric fences are
//! complementary: the analysis decides *where* fences go, the asymmetric
//! designs make them cheap. This module provides that front end: given a
//! static multi-threaded program (per-thread access sequences), it finds
//! the program-order pairs that lie on potential Shasha–Snir cycles
//! (*delays*) and covers them with the minimum number of fences, taking
//! the hardware model into account (under TSO only store→load pairs can
//! reorder, so only those delays need a fence).
//!
//! # Examples
//!
//! ```
//! use asymfence::placement::{fence_positions, Relaxation, StaticAccess, StaticProgram};
//!
//! // Dekker/store-buffering: St x; Ld y || St y; Ld x.
//! let prog = StaticProgram::new(vec![
//!     vec![StaticAccess::write(0), StaticAccess::read(1)],
//!     vec![StaticAccess::write(1), StaticAccess::read(0)],
//! ]);
//! let fences = fence_positions(&prog, Relaxation::Tso);
//! assert_eq!(fences, vec![vec![0], vec![0]], "one fence per thread, after the store");
//! ```

/// One static memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StaticAccess {
    /// Abstract location identifier.
    pub addr: u64,
    /// Whether the access writes.
    pub is_write: bool,
}

impl StaticAccess {
    /// A read of `addr`.
    pub fn read(addr: u64) -> Self {
        StaticAccess {
            addr,
            is_write: false,
        }
    }

    /// A write of `addr`.
    pub fn write(addr: u64) -> Self {
        StaticAccess {
            addr,
            is_write: true,
        }
    }

    fn conflicts(&self, other: &StaticAccess) -> bool {
        self.addr == other.addr && (self.is_write || other.is_write)
    }
}

/// A static multi-threaded program: per-thread access sequences.
#[derive(Clone, Debug)]
pub struct StaticProgram {
    threads: Vec<Vec<StaticAccess>>,
}

impl StaticProgram {
    /// Creates a program from per-thread access lists.
    pub fn new(threads: Vec<Vec<StaticAccess>>) -> Self {
        StaticProgram { threads }
    }

    /// The per-thread access lists.
    pub fn threads(&self) -> &[Vec<StaticAccess>] {
        &self.threads
    }
}

/// Which program-order pairs the hardware can reorder (and therefore
/// which delays actually need a fence).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Relaxation {
    /// TSO: only a store followed (transitively) by a load can reorder.
    Tso,
    /// A fully relaxed model (e.g. RC without orderings): every pair can
    /// reorder.
    Full,
}

/// A program-order pair that lies on a potential Shasha–Snir cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Delay {
    /// Thread index.
    pub thread: usize,
    /// Index of the earlier access.
    pub from: usize,
    /// Index of the later access.
    pub to: usize,
}

/// Finds the delay pairs: ordered pairs `(a, b)` in one thread such that
/// some conflict path through the *other* threads leads from `b` back to
/// `a`, i.e. reordering `a` and `b` could complete a cycle.
///
/// The search over-approximates Shasha–Snir critical cycles (paths may
/// revisit threads), which is sound: it can only add fences.
pub fn delay_set(prog: &StaticProgram, model: Relaxation) -> Vec<Delay> {
    let n_threads = prog.threads.len();
    let mut delays = Vec::new();
    for t in 0..n_threads {
        let accs = &prog.threads[t];
        for i in 0..accs.len() {
            for j in (i + 1)..accs.len() {
                let a = accs[i];
                let b = accs[j];
                if !reorderable(model, a, b) {
                    continue;
                }
                if conflict_path_exists(prog, t, &b, &a) {
                    delays.push(Delay {
                        thread: t,
                        from: i,
                        to: j,
                    });
                }
            }
        }
    }
    delays
}

/// Whether the hardware may make `b` visible before `a` (`a` precedes
/// `b` in program order).
fn reorderable(model: Relaxation, a: StaticAccess, b: StaticAccess) -> bool {
    if a.addr == b.addr {
        return false; // same-address pairs stay ordered on TSO-class HW
    }
    match model {
        Relaxation::Full => true,
        Relaxation::Tso => a.is_write && !b.is_write,
    }
}

/// BFS over the union of (undirected) conflict edges and (directed)
/// program-order edges in threads other than `home`, from any access
/// conflicting with `from` to any access conflicting with `to`.
fn conflict_path_exists(
    prog: &StaticProgram,
    home: usize,
    from: &StaticAccess,
    to: &StaticAccess,
) -> bool {
    use std::collections::VecDeque;
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    let mut seen = std::collections::HashSet::new();
    // Entry points: accesses on other threads that conflict with `from`.
    for (t, accs) in prog.threads.iter().enumerate() {
        if t == home {
            continue;
        }
        for (k, acc) in accs.iter().enumerate() {
            if acc.conflicts(from) && seen.insert((t, k)) {
                queue.push_back((t, k));
            }
        }
    }
    while let Some((t, k)) = queue.pop_front() {
        let acc = prog.threads[t][k];
        if acc.conflicts(to) {
            return true;
        }
        // Program order within the thread (forward only: the path uses
        // each intermediate thread's own ordering).
        if k + 1 < prog.threads[t].len() && seen.insert((t, k + 1)) {
            queue.push_back((t, k + 1));
        }
        // Conflict hops to other non-home threads (undirected: the
        // runtime dependence can go either way).
        for (u, accs) in prog.threads.iter().enumerate() {
            if u == home || u == t {
                continue;
            }
            for (m, other) in accs.iter().enumerate() {
                if other.conflicts(&acc) && seen.insert((u, m)) {
                    queue.push_back((u, m));
                }
            }
        }
    }
    false
}

/// Computes the minimal fence positions per thread covering every delay:
/// position `p` means "a fence between accesses `p` and `p+1`". Uses the
/// classic greedy interval-point cover (optimal for intervals).
pub fn fence_positions(prog: &StaticProgram, model: Relaxation) -> Vec<Vec<usize>> {
    let delays = delay_set(prog, model);
    let mut per_thread: Vec<Vec<(usize, usize)>> = vec![Vec::new(); prog.threads.len()];
    for d in delays {
        // The fence can sit anywhere in [from, to-1].
        per_thread[d.thread].push((d.from, d.to - 1));
    }
    per_thread
        .into_iter()
        .map(|mut intervals| {
            intervals.sort_by_key(|&(_, hi)| hi);
            let mut chosen: Vec<usize> = Vec::new();
            for (lo, hi) in intervals {
                if chosen.last().is_none_or(|&p| p < lo) {
                    chosen.push(hi);
                }
            }
            chosen
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: u64) -> StaticAccess {
        StaticAccess::read(a)
    }
    fn w(a: u64) -> StaticAccess {
        StaticAccess::write(a)
    }

    #[test]
    fn store_buffering_needs_one_fence_per_thread() {
        let prog = StaticProgram::new(vec![vec![w(0), r(1)], vec![w(1), r(0)]]);
        assert_eq!(
            fence_positions(&prog, Relaxation::Tso),
            vec![vec![0], vec![0]]
        );
    }

    #[test]
    fn message_passing_needs_none_under_tso() {
        // P0: wr data; wr flag | P1: rd flag; rd data — store-store and
        // load-load pairs do not reorder under TSO.
        let prog = StaticProgram::new(vec![vec![w(0), w(1)], vec![r(1), r(0)]]);
        assert_eq!(
            fence_positions(&prog, Relaxation::Tso),
            vec![vec![], vec![]]
        );
    }

    #[test]
    fn message_passing_needs_fences_under_full_relaxation() {
        let prog = StaticProgram::new(vec![vec![w(0), w(1)], vec![r(1), r(0)]]);
        assert_eq!(
            fence_positions(&prog, Relaxation::Full),
            vec![vec![0], vec![0]]
        );
    }

    #[test]
    fn three_thread_cycle_needs_three_fences() {
        // Figure 1e: P0: wr x; rd y | P1: wr y; rd z | P2: wr z; rd x.
        let prog = StaticProgram::new(vec![
            vec![w(0), r(1)],
            vec![w(1), r(2)],
            vec![w(2), r(0)],
        ]);
        assert_eq!(
            fence_positions(&prog, Relaxation::Tso),
            vec![vec![0], vec![0], vec![0]],
            "Figure 1f: one fence per thread"
        );
    }

    #[test]
    fn independent_threads_need_nothing() {
        let prog = StaticProgram::new(vec![vec![w(0), r(1)], vec![w(2), r(3)]]);
        assert_eq!(
            fence_positions(&prog, Relaxation::Tso),
            vec![vec![], vec![]]
        );
    }

    #[test]
    fn single_thread_needs_nothing() {
        let prog = StaticProgram::new(vec![vec![w(0), r(1), w(1), r(0)]]);
        assert_eq!(fence_positions(&prog, Relaxation::Tso), vec![vec![]]);
    }

    #[test]
    fn one_sided_race_needs_nothing_under_tso() {
        // Figure 1c's shape: only one thread has the W->R pair; the other
        // reads then writes (not reorderable under TSO), so no cycle is
        // possible... but the W->R side still needs its fence, since the
        // R->W side can supply dependences in either direction at runtime.
        let prog = StaticProgram::new(vec![vec![w(0), r(1)], vec![r(1), w(0)]]);
        let fences = fence_positions(&prog, Relaxation::Tso);
        assert_eq!(fences[1], vec![], "R->W never reorders under TSO");
        // Thread 0's pair completes a cycle only if the other side can
        // order against it both ways; delay-set over-approximation keeps
        // the fence, which is sound.
        assert!(fences[0].len() <= 1);
    }

    #[test]
    fn same_address_pair_is_never_a_delay() {
        let prog = StaticProgram::new(vec![vec![w(0), r(0)], vec![w(0), r(0)]]);
        assert_eq!(
            fence_positions(&prog, Relaxation::Tso),
            vec![vec![], vec![]]
        );
    }

    #[test]
    fn interval_cover_is_minimal() {
        // P0: wr a; wr b; rd c; rd d with cycles through both (a..c) and
        // (b..d): one fence at position 1 covers both delays.
        let prog = StaticProgram::new(vec![
            vec![w(0), w(1), r(2), r(3)],
            vec![w(2), r(0)],
            vec![w(3), r(1)],
        ]);
        let fences = fence_positions(&prog, Relaxation::Tso);
        assert_eq!(fences[0].len(), 1, "one fence covers both W->R delays");
        assert!(fences[0][0] >= 1 && fences[0][0] <= 2);
    }

    #[test]
    fn delay_set_reports_thread_and_span() {
        let prog = StaticProgram::new(vec![vec![w(0), r(1)], vec![w(1), r(0)]]);
        let d = delay_set(&prog, Relaxation::Tso);
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|d| d.thread == 0 && d.from == 0 && d.to == 1));
        assert!(d.iter().any(|d| d.thread == 1 && d.from == 0 && d.to == 1));
    }
}
