//! The simulated machine: cores + memory hierarchy + watchdog.
//!
//! [`Machine`] assembles one [`Core`] per thread on
//! top of a shared [`MemSystem`] and runs
//! them cycle by cycle. It merges the statistics the paper's evaluation
//! reports and detects global deadlock (which only the deliberately
//! unprotected `WfOnlyUnsafe` design — or a mis-grouped WS+ program — can
//! reach).
//!
//! The kernel is event-driven: executed cycles run the exact lock-step
//! `step`, but between steps [`Machine::run`] consults every component's
//! next-interesting-cycle hint and jumps `now` straight to the earliest
//! one (`Machine::skip_ahead`), bulk-accounting the skipped stall
//! cycles. Within a step, cores whose hint says "nothing to do" and
//! whose event queue is empty skip their tick entirely. Both skips are
//! exact — a skipped tick is a provable no-op — so schedules, traces,
//! statistics and oracle draws stay bit-identical to lock-step ticking.

use std::sync::Arc;

use asymfence_coherence::MemSystem;
use asymfence_common::config::MachineConfig;
use asymfence_common::ids::{Addr, CoreId, Cycle};
use asymfence_common::scvlog::ScvLog;
use asymfence_common::stats::MachineStats;
use asymfence_common::trace::TraceSink;
use asymfence_cpu::program::{Fetch, ThreadProgram};
use asymfence_cpu::Core;

/// How a simulation run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// Every thread finished and all buffers drained.
    Finished,
    /// The cycle limit was reached (expected for throughput runs).
    CycleLimit,
    /// No core made progress for the watchdog horizon.
    Deadlocked,
}

/// A program that finishes immediately (installed on cores without a
/// thread).
#[derive(Clone, Debug, Default)]
struct NullProgram;

impl ThreadProgram for NullProgram {
    fn fetch(&mut self) -> Fetch {
        Fetch::Done
    }
    fn deliver(&mut self, _tag: u64, _value: u64) {}
    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(NullProgram)
    }
    fn name(&self) -> &str {
        "null"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A complete simulated multicore.
///
/// # Examples
///
/// ```
/// use asymfence::machine::{Machine, RunOutcome};
/// use asymfence::prelude::*;
///
/// let cfg = MachineConfig::builder().cores(2).build();
/// let mut m = Machine::new(&cfg);
/// let (prog, regs) = ScriptProgram::new(vec![
///     Instr::Store { addr: Addr::new(0), value: 7 },
///     Instr::Load { addr: Addr::new(0), tag: Some(1) },
/// ]);
/// m.add_thread(Box::new(prog));
/// assert_eq!(m.run(100_000), RunOutcome::Finished);
/// assert_eq!(regs.borrow()[&1], 7);
/// ```
pub struct Machine {
    cfg: Arc<MachineConfig>,
    mem: MemSystem,
    cores: Vec<Core>,
    threads_added: usize,
    now: Cycle,
    scv_log: Option<ScvLog>,
    last_progress_cycle: Cycle,
    last_progress_value: u64,
    deadlocked: bool,
    /// Per-core cached scheduling hint: the earliest cycle at which
    /// ticking core `i` could change anything, assuming no memory event
    /// arrives first (struct-of-arrays — the skip test touches only
    /// this flat array, not the cores). Refreshed after every executed
    /// tick; a core's architectural state is frozen between its own
    /// ticks, so the cached value stays exact until then.
    wake: Vec<Cycle>,
    /// Per-core count of cycles skipped since the core's last executed
    /// tick. Flushed into the core's stall statistics right before the
    /// next tick (the stall classification is frozen while skippable,
    /// so the deferred bulk record is exact).
    skipped: Vec<u64>,
}

impl Machine {
    /// Builds a machine; threads are added with [`Machine::add_thread`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &MachineConfig) -> Self {
        Self::new_shared(Arc::new(cfg.clone()))
    }

    /// Builds a machine around an already-counted configuration. The
    /// same `Arc` is handed to the memory system and every core, so the
    /// config is cloned exactly once per machine, not once per
    /// component.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new_shared(cfg: Arc<MachineConfig>) -> Self {
        cfg.validate().expect("invalid MachineConfig");
        let mem = MemSystem::with_shared(Arc::clone(&cfg));
        let cores = (0..cfg.num_cores)
            .map(|i| Core::with_shared(CoreId(i), Arc::clone(&cfg), Box::new(NullProgram)))
            .collect();
        let scv_log = cfg.record_scv_log.then(ScvLog::new);
        let num_cores = cfg.num_cores;
        Machine {
            cfg,
            mem,
            cores,
            threads_added: 0,
            now: 0,
            scv_log,
            last_progress_cycle: 0,
            last_progress_value: 0,
            deadlocked: false,
            wake: vec![0; num_cores],
            skipped: vec![0; num_cores],
        }
    }

    /// Re-arms this machine to run under `cfg`, as if freshly built.
    ///
    /// When `cfg` keeps the machine shape (see
    /// `MachineConfig::same_machine_shape`) every container is cleared
    /// in place and keeps its allocation, so a warmed pool machine
    /// resets and reruns without touching the heap; otherwise the
    /// machine is rebuilt from scratch. Returns whether the allocations
    /// were reused.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn reset(&mut self, cfg: &Arc<MachineConfig>) -> bool {
        if !self.cfg.same_machine_shape(cfg) {
            *self = Machine::new_shared(Arc::clone(cfg));
            return false;
        }
        cfg.validate().expect("invalid MachineConfig");
        self.cfg = Arc::clone(cfg);
        self.mem.reset(Arc::clone(cfg));
        for core in &mut self.cores {
            core.reset_with(Arc::clone(cfg), Box::new(NullProgram));
        }
        self.threads_added = 0;
        self.now = 0;
        self.scv_log = cfg.record_scv_log.then(ScvLog::new);
        self.last_progress_cycle = 0;
        self.last_progress_value = 0;
        self.deadlocked = false;
        self.wake.fill(0);
        self.skipped.fill(0);
        true
    }

    /// Approximate bytes of arena capacity this machine retains across
    /// resets (ROB/write-buffer slabs and L1 line storage). Telemetry
    /// only — an estimate of what pooling saves per reuse, not an exact
    /// heap measurement.
    pub fn retained_bytes(&self) -> usize {
        self.mem.retained_bytes() + self.cores.iter().map(Core::retained_bytes).sum::<usize>()
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Installs `program` on the next free core and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if every core already has a thread or the machine has
    /// started running.
    pub fn add_thread(&mut self, program: Box<dyn ThreadProgram>) -> CoreId {
        assert!(self.now == 0, "threads must be added before running");
        assert!(
            self.threads_added < self.cfg.num_cores,
            "all {} cores already have threads",
            self.cfg.num_cores
        );
        let id = CoreId(self.threads_added);
        self.cores[self.threads_added].set_program(program);
        self.wake[self.threads_added] = self.now;
        self.threads_added += 1;
        id
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Whether every thread finished and the memory system drained.
    pub fn is_finished(&self) -> bool {
        self.cores.iter().all(|c| c.is_done()) && self.mem.is_idle()
    }

    /// Initializes one word of shared memory (before running).
    pub fn write_memory(&mut self, addr: Addr, value: u64) {
        self.mem.backdoor_write(addr, value);
    }

    /// Initializes one word of shared memory and warms it into the L2
    /// (data the program would have touched before the measured region).
    pub fn warm_memory(&mut self, addr: Addr, value: u64) {
        self.mem.backdoor_write_warm(addr, value);
    }

    /// Reads one word of globally-visible shared memory.
    pub fn read_memory(&self, addr: Addr) -> u64 {
        self.mem.backdoor_read(addr)
    }

    /// Advances one cycle.
    ///
    /// Cores whose cached wake hint proves their tick would be a no-op
    /// (nothing to retire, issue, fetch or account, and no pending
    /// memory event) skip the tick; every other core runs the exact
    /// lock-step tick and refreshes its hint. Events can only appear in
    /// a core's queue during `MemSystem::tick`, so a skip decision
    /// taken here cannot be invalidated mid-step.
    pub fn step(&mut self) {
        let now = self.now;
        for (i, core) in self.cores.iter_mut().enumerate() {
            if self.wake[i] > now && !self.mem.port_has_events(CoreId(i)) {
                self.skipped[i] += 1;
            } else {
                if self.skipped[i] > 0 {
                    core.account_skipped(self.skipped[i]);
                    self.skipped[i] = 0;
                }
                core.tick(now, &mut self.mem, self.scv_log.as_mut());
                self.wake[i] = core.next_interesting(now + 1);
            }
        }
        self.mem.tick(now);
        self.now += 1;

        let progress: u64 = self.cores.iter().map(|c| c.progress_marker()).sum();
        if progress != self.last_progress_value {
            self.last_progress_value = progress;
            self.last_progress_cycle = now;
        } else if !self.is_finished() && now - self.last_progress_cycle > self.cfg.watchdog_cycles
        {
            self.deadlocked = true;
        }
    }

    /// Jumps `now` to the next cycle at which anything can happen: the
    /// earliest memory-system wakeup, the earliest cached core wake
    /// hint, the watchdog's firing step, or `limit`, whichever comes
    /// first. Skipped cycles are deferred into the per-core skip
    /// counters (the stall classification is frozen while a core is
    /// skippable). Exact: every skipped cycle is a no-op for every
    /// component, so the machine reaches `next` in the same state
    /// lock-step ticking would.
    fn skip_ahead(&mut self, limit: Cycle) {
        if self.deadlocked || self.is_finished() {
            return;
        }
        // The watchdog declares deadlock in the step where
        // `now - last_progress_cycle` first exceeds the horizon; that
        // step must execute, so never jump past it.
        let deadline = self
            .last_progress_cycle
            .saturating_add(self.cfg.watchdog_cycles)
            .saturating_add(1);
        let mut next = limit.min(deadline).min(self.mem.next_time());
        for &w in &self.wake {
            next = next.min(w);
        }
        if next <= self.now {
            return;
        }
        for i in 0..self.cores.len() {
            if self.mem.port_has_events(CoreId(i)) {
                return; // a core consumes events next cycle
            }
        }
        let gap = next - self.now;
        for s in &mut self.skipped {
            *s += gap;
        }
        self.now = next;
    }

    /// Runs until every thread finishes, deadlock is detected, or
    /// `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        let limit = self.now + max_cycles;
        while self.now < limit {
            if self.is_finished() {
                return RunOutcome::Finished;
            }
            if self.deadlocked {
                return RunOutcome::Deadlocked;
            }
            self.step();
            self.skip_ahead(limit);
        }
        if self.is_finished() {
            RunOutcome::Finished
        } else if self.deadlocked {
            RunOutcome::Deadlocked
        } else {
            RunOutcome::CycleLimit
        }
    }

    /// The SCV perform-order log (if `record_scv_log` was enabled).
    pub fn scv_log(&self) -> Option<&ScvLog> {
        self.scv_log.as_ref()
    }

    /// The fence-lifecycle trace (if `record_trace` was enabled).
    pub fn trace(&self) -> Option<&TraceSink> {
        self.mem.trace()
    }

    /// Removes and returns the fence-lifecycle trace, ending recording.
    ///
    /// Useful after a run to export or attach the trace without keeping
    /// the machine alive.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.mem.take_trace()
    }

    /// Removes and returns the schedule oracle's choice-point recording
    /// (machines built with a scripted
    /// [`SchedulePlan`](asymfence_common::schedule::SchedulePlan) only).
    pub fn take_schedule_recording(
        &mut self,
    ) -> Option<asymfence_common::schedule::ScheduleRecording> {
        self.mem.take_schedule_recording()
    }

    /// The program running on `core` (for reading results after a run).
    pub fn thread_program(&self, core: CoreId) -> &dyn ThreadProgram {
        self.cores[core.0].program()
    }

    /// Debug dump of the memory system's outstanding state.
    pub fn debug_memory(&self) -> String {
        self.mem.debug_dump()
    }

    /// Merges all statistics into the paper's reporting format. Per-core
    /// and traffic counters are plain `Copy` data, so the harvest is a
    /// flat copy — no per-counter clones.
    pub fn stats(&self) -> MachineStats {
        let mut cores = Vec::with_capacity(self.cfg.num_cores);
        for (i, core) in self.cores.iter().enumerate() {
            let mut s = core.stats_with_skips(self.skipped[i]);
            let mc = self.mem.counters(CoreId(i));
            s.l1_hits = mc.l1_hits;
            s.l1_misses = mc.l1_misses;
            s.writes_bounced = mc.writes_bounced;
            s.bounce_retries = mc.bounce_retries;
            s.bs_peak = self.mem.bs_peak(CoreId(i)) as u64;
            for b in self.mem.each_bank_counters() {
                s.order_ops += b.orders[i];
                s.cond_order_failures += b.co_failures[i];
                s.cond_order_successes += b.co_successes[i];
            }
            cores.push(s);
        }
        MachineStats {
            cycles: self.now,
            cores,
            traffic: *self.mem.traffic(),
            deadlocked: self.deadlocked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence_common::config::FenceDesign;
    use asymfence_cpu::program::{FenceRole, Instr, ScriptProgram};

    #[test]
    fn empty_machine_finishes_instantly() {
        let cfg = MachineConfig::builder().cores(2).build();
        let mut m = Machine::new(&cfg);
        assert_eq!(m.run(100), RunOutcome::Finished);
    }

    #[test]
    fn single_thread_store_visible_in_memory() {
        let cfg = MachineConfig::builder().cores(2).build();
        let mut m = Machine::new(&cfg);
        let (p, _) = ScriptProgram::new(vec![Instr::Store {
            addr: Addr::new(0x80),
            value: 33,
        }]);
        m.add_thread(Box::new(p));
        assert_eq!(m.run(100_000), RunOutcome::Finished);
        assert_eq!(m.read_memory(Addr::new(0x80)), 33);
        let stats = m.stats();
        assert_eq!(stats.aggregate().stores, 1);
        assert!(!stats.deadlocked);
    }

    #[test]
    fn initialized_memory_is_readable() {
        let cfg = MachineConfig::builder().cores(2).build();
        let mut m = Machine::new(&cfg);
        m.write_memory(Addr::new(0x40), 11);
        let (p, regs) = ScriptProgram::new(vec![Instr::Load {
            addr: Addr::new(0x40),
            tag: Some(1),
        }]);
        m.add_thread(Box::new(p));
        assert_eq!(m.run(100_000), RunOutcome::Finished);
        assert_eq!(regs.borrow()[&1], 11);
    }

    #[test]
    fn cycle_limit_reported() {
        let cfg = MachineConfig::builder().cores(2).build();
        let mut m = Machine::new(&cfg);
        let (p, _) = ScriptProgram::new(vec![Instr::Compute { cycles: 1_000_000 }]);
        m.add_thread(Box::new(p));
        assert_eq!(m.run(100), RunOutcome::CycleLimit);
        assert!(m.now() >= 100);
    }

    #[test]
    fn watchdog_detects_wf_only_deadlock() {
        let cfg = MachineConfig::builder()
            .cores(2)
            .fence_design(FenceDesign::WfOnlyUnsafe)
            .watchdog_cycles(5_000)
            .build();
        let mut m = Machine::new(&cfg);
        let side = |mine: u64, other: u64, dummy: u64| {
            ScriptProgram::new(vec![
                Instr::Load {
                    addr: Addr::new(other),
                    tag: None,
                },
                Instr::Compute { cycles: 1600 },
                Instr::Store {
                    addr: Addr::new(dummy),
                    value: 1,
                },
                Instr::Store {
                    addr: Addr::new(mine),
                    value: 1,
                },
                Instr::fence(FenceRole::Critical),
                Instr::Load {
                    addr: Addr::new(other),
                    tag: Some(1),
                },
            ])
            .0
        };
        m.add_thread(Box::new(side(0x00, 0x40, 0x1000)));
        m.add_thread(Box::new(side(0x40, 0x00, 0x1100)));
        assert_eq!(m.run(1_000_000), RunOutcome::Deadlocked);
        assert!(m.stats().deadlocked);
    }

    #[test]
    #[should_panic(expected = "already have threads")]
    fn too_many_threads_panics() {
        let cfg = MachineConfig::builder().cores(1).build();
        let mut m = Machine::new(&cfg);
        let mk = || Box::new(ScriptProgram::new(vec![]).0);
        m.add_thread(mk());
        m.add_thread(mk());
    }

    #[test]
    fn stats_merge_includes_memory_counters() {
        let cfg = MachineConfig::builder().cores(2).build();
        let mut m = Machine::new(&cfg);
        let (p, _) = ScriptProgram::new(vec![
            Instr::Load {
                addr: Addr::new(0),
                tag: None,
            },
            Instr::Load {
                addr: Addr::new(0),
                tag: None,
            },
        ]);
        m.add_thread(Box::new(p));
        m.run(100_000);
        let s = m.stats();
        assert!(s.cores[0].l1_misses >= 1);
        assert!(s.traffic.total_bytes() > 0);
    }
}
