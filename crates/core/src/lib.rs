//! # asymfence
//!
//! A from-scratch reproduction of **"Asymmetric Memory Fences: Optimizing
//! Both Performance and Implementability"** (Duan, Honarmand, Torrellas —
//! ASPLOS 2015) as a cycle-level multicore simulator.
//!
//! The paper combines *weak fences* (`wf`) — fences whose post-fence
//! accesses may retire and complete early, protected by a per-core Bypass
//! Set that bounces conflicting invalidations — with conventional *strong
//! fences* (`sf`) in the non-critical threads of each fence group, so
//! that no global state (WeeFence's GRT) is needed. This crate is the
//! user-facing API:
//!
//! * [`machine::Machine`] — an N-core machine (out-of-order cores, MESI
//!   directory over a 2D mesh, TSO) with one of the paper's fence designs
//!   ([`FenceDesign`](asymfence_common::config::FenceDesign)): `S+`,
//!   `WS+`, `SW+`, `W+`, or the `Wee` comparison point.
//! * [`scv`] — a Shasha–Snir cycle detector over the machine's
//!   perform-order log, for verifying SC is preserved.
//! * [`placement`] — the complementary front end (§8): delay-set analysis
//!   that decides *where* fences must go; the asymmetric designs then
//!   make those fences cheap.
//!
//! # Quick start
//!
//! ```
//! use asymfence::prelude::*;
//!
//! // Dekker-style flags with an asymmetric fence group (WS+).
//! let cfg = MachineConfig::builder()
//!     .cores(2)
//!     .fence_design(FenceDesign::WsPlus)
//!     .build();
//! let mut m = Machine::new(&cfg);
//! let (a, ra) = ScriptProgram::new(vec![
//!     Instr::Store { addr: Addr::new(0x00), value: 1 },
//!     Instr::fence(FenceRole::Critical), // hot thread: weak
//!     Instr::Load { addr: Addr::new(0x40), tag: Some(1) },
//! ]);
//! let (b, rb) = ScriptProgram::new(vec![
//!     Instr::Store { addr: Addr::new(0x40), value: 1 },
//!     Instr::fence(FenceRole::NonCritical), // rare thread: strong
//!     Instr::Load { addr: Addr::new(0x00), tag: Some(1) },
//! ]);
//! m.add_thread(Box::new(a));
//! m.add_thread(Box::new(b));
//! assert_eq!(m.run(1_000_000), RunOutcome::Finished);
//! // The non-SC outcome (both read 0) is impossible:
//! assert_ne!((ra.borrow()[&1], rb.borrow()[&1]), (0, 0));
//! ```

#![deny(missing_docs)]

pub mod machine;
pub mod placement;
pub mod scv;

pub use machine::{Machine, RunOutcome};

// Re-export the layers a user needs.
pub use asymfence_coherence as coherence;
pub use asymfence_common as common;
pub use asymfence_cpu as cpu;

/// Everything needed to build and run simulations.
pub mod prelude {
    pub use crate::machine::{Machine, RunOutcome};
    pub use crate::scv;
    pub use asymfence_coherence::RmwKind;
    pub use asymfence_common::assign::{FenceAssignment, SearchStats, SiteStrength};
    pub use asymfence_common::config::{
        FenceDesign, MachineConfig, MachineConfigBuilder, Perturbation,
    };
    pub use asymfence_common::ids::{Addr, CoreId, Cycle, LineAddr};
    pub use asymfence_common::rng::SimRng;
    pub use asymfence_common::stats::{CoreStats, DerivedStats, MachineStats};
    pub use asymfence_common::trace::{
        FenceClass, FenceSpan, FenceTally, TraceEvent, TraceKind, TraceSink,
    };
    pub use asymfence_cpu::program::{
        Fetch, FenceRole, FenceSite, Instr, Registers, ScriptProgram, ThreadProgram,
    };
}
