//! Wall-clock timings of scaled-down paper experiments, so `cargo bench`
//! exercises every figure's code path quickly. The real figure
//! regeneration lives in the `src/bin/*` harness binaries. Runs on the
//! in-repo timing harness; `ASF_BENCH_ITERS` overrides the budget.

use std::hint::black_box;

use asymfence::prelude::FenceDesign;
use asymfence_bench::timing::{iters_from_env, Report};
use asymfence_bench::{run_cilk, run_stamp, run_ustm};
use asymfence_workloads::cilk::CilkApp;
use asymfence_workloads::stamp::StampApp;
use asymfence_workloads::ustm::UstmBench;

fn main() {
    let iters = iters_from_env(10);
    let mut report = Report::new();

    for design in [FenceDesign::SPlus, FenceDesign::WsPlus, FenceDesign::WPlus] {
        report.bench(&format!("fig08_fib_4core/{}", design.label()), iters, || {
            black_box(run_cilk(CilkApp::Fib, design, 4, 1).cycles)
        });
    }

    for design in [FenceDesign::SPlus, FenceDesign::WPlus, FenceDesign::Wee] {
        report.bench(&format!("fig09_hash_4core_100k/{}", design.label()), iters, || {
            black_box(run_ustm(UstmBench::Hash, design, 4, 1, 100_000).commits)
        });
    }

    for design in [FenceDesign::SPlus, FenceDesign::WPlus] {
        report.bench(&format!("fig11_ssca2_2core/{}", design.label()), iters, || {
            black_box(run_stamp(StampApp::Ssca2, design, 2, 1).cycles)
        });
    }

    println!("\n{}", report.to_markdown());
}
