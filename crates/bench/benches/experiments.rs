//! Criterion wrappers around scaled-down paper experiments, so
//! `cargo bench` exercises every figure's code path quickly. The real
//! figure regeneration lives in the `src/bin/*` harness binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use asymfence::prelude::FenceDesign;
use asymfence_bench::{run_cilk, run_stamp, run_ustm};
use asymfence_workloads::cilk::CilkApp;
use asymfence_workloads::stamp::StampApp;
use asymfence_workloads::ustm::UstmBench;

fn bench_fig08_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_fib_4core");
    g.sample_size(10);
    for design in [FenceDesign::SPlus, FenceDesign::WsPlus, FenceDesign::WPlus] {
        g.bench_function(design.label(), |b| {
            b.iter(|| black_box(run_cilk(CilkApp::Fib, design, 4, 1).cycles));
        });
    }
    g.finish();
}

fn bench_fig09_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_hash_4core_100k");
    g.sample_size(10);
    for design in [FenceDesign::SPlus, FenceDesign::WPlus, FenceDesign::Wee] {
        g.bench_function(design.label(), |b| {
            b.iter(|| black_box(run_ustm(UstmBench::Hash, design, 4, 1, 100_000).commits));
        });
    }
    g.finish();
}

fn bench_fig11_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_ssca2_2core");
    g.sample_size(10);
    for design in [FenceDesign::SPlus, FenceDesign::WPlus] {
        g.bench_function(design.label(), |b| {
            b.iter(|| black_box(run_stamp(StampApp::Ssca2, design, 2, 1).cycles));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig08_path, bench_fig09_path, bench_fig11_path);
criterion_main!(benches);
