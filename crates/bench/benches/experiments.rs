//! Wall-clock timings of scaled-down paper experiments, so `cargo bench`
//! exercises every figure's code path quickly. The real figure
//! regeneration lives in the `src/bin/*` harness binaries. Runs on the
//! in-repo timing harness; `ASF_BENCH_ITERS` overrides the budget.
//!
//! The final section times one spec grid through the run engine at 1 and
//! 4 workers — the in-repo measurement of the engine's parallel speedup
//! (~1x on a single-core host, approaching the worker count on real
//! multicore machines; the outputs are byte-identical either way).

use std::hint::black_box;
use std::time::Instant;

use asymfence::prelude::FenceDesign;
use asymfence_bench::timing::{iters_from_env, Report};
use asymfence_bench::{RunSpec, Runner, SEED};
use asymfence_workloads::cilk::CilkApp;
use asymfence_workloads::stamp::StampApp;
use asymfence_workloads::ustm::UstmBench;

fn main() {
    let iters = iters_from_env(10);
    let mut report = Report::new();

    for design in [FenceDesign::SPlus, FenceDesign::WsPlus, FenceDesign::WPlus] {
        let spec = RunSpec::cilk(CilkApp::Fib, design, 4, 1);
        report.bench(&format!("fig08_fib_4core/{}", design.label()), iters, || {
            black_box(spec.execute().cycles)
        });
    }

    for design in [FenceDesign::SPlus, FenceDesign::WPlus, FenceDesign::Wee] {
        let spec = RunSpec::ustm(UstmBench::Hash, design, 4, 1, 100_000);
        report.bench(&format!("fig09_hash_4core_100k/{}", design.label()), iters, || {
            black_box(spec.execute().commits)
        });
    }

    for design in [FenceDesign::SPlus, FenceDesign::WPlus] {
        let spec = RunSpec::stamp(StampApp::Ssca2, design, 2, 1);
        report.bench(&format!("fig11_ssca2_2core/{}", design.label()), iters, || {
            black_box(spec.execute().cycles)
        });
    }

    // Runner speedup: the same 12-spec grid, serial vs 4 workers.
    let grid: Vec<RunSpec> = [FenceDesign::SPlus, FenceDesign::WsPlus, FenceDesign::WPlus]
        .into_iter()
        .flat_map(|d| {
            [
                RunSpec::cilk(CilkApp::Fib, d, 4, SEED),
                RunSpec::cilk(CilkApp::Bucket, d, 4, SEED),
                RunSpec::ustm(UstmBench::Hash, d, 4, SEED, 100_000),
                RunSpec::ustm(UstmBench::Tree, d, 4, SEED, 100_000),
            ]
        })
        .collect();
    let mut wall = Vec::new();
    for jobs in [1usize, 4] {
        let runner = Runner::with_jobs(jobs).progress(false);
        report.bench(&format!("runner_grid12_jobs{jobs}"), iters, || {
            black_box(runner.run(&grid).len())
        });
        let t0 = Instant::now();
        black_box(runner.run(&grid).len());
        wall.push(t0.elapsed().as_secs_f64());
    }
    println!(
        "runner grid speedup jobs=4 vs jobs=1: {:.2}x (host has {} cores)",
        wall[0] / wall[1].max(1e-9),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    println!("\n{}", report.to_markdown());
}
