//! Microbenchmarks of the simulator itself: host-side throughput of the
//! mesh, the coherence protocol, and full-machine stepping. These guard
//! against performance regressions in the substrate (they measure the
//! simulator, not the simulated machine). Runs on the in-repo timing
//! harness; `ASF_BENCH_ITERS` overrides the iteration budget.

use std::hint::black_box;

use asymfence::prelude::*;
use asymfence_bench::timing::{iters_from_env, Report};
use asymfence_bench::RunSpec;
use asymfence_workloads::cilk::CilkApp;

fn main() {
    let iters = iters_from_env(10);
    let mut report = Report::new();

    {
        let cfg = MachineConfig::builder().cores(8).build();
        let mut m = Machine::new(&cfg);
        report.bench("machine_step_idle_8core_x1000", iters, || {
            for _ in 0..1000 {
                m.step();
            }
            black_box(m.now())
        });
    }

    for design in [FenceDesign::SPlus, FenceDesign::WsPlus] {
        let spec = RunSpec::cilk(CilkApp::Fib, design, 2, 1);
        report.bench(&format!("simulate_fib_2core/{}", design.label()), iters, || {
            black_box(spec.execute().cycles)
        });
    }

    report.bench("coherence_ping_pong", iters, || {
        let cfg = MachineConfig::builder().cores(2).build();
        let mut m = Machine::new(&cfg);
        let a = Addr::new(0x40);
        let mk = |v: u64| {
            let mut is = Vec::new();
            for i in 0..50 {
                is.push(Instr::Store { addr: a, value: v + i });
                is.push(Instr::Load { addr: a, tag: Some(1) });
            }
            ScriptProgram::new(is).0
        };
        m.add_thread(Box::new(mk(1)));
        m.add_thread(Box::new(mk(1000)));
        assert_eq!(m.run(10_000_000), RunOutcome::Finished);
        black_box(m.now())
    });

    println!("\n{}", report.to_markdown());
}
