//! Criterion microbenchmarks of the simulator itself: host-side
//! throughput of the mesh, the coherence protocol, and full-machine
//! stepping. These guard against performance regressions in the
//! substrate (they measure the simulator, not the simulated machine).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use asymfence::prelude::*;
use asymfence_workloads::cilk::{self, CilkApp};

fn bench_machine_step(c: &mut Criterion) {
    c.bench_function("machine_step_idle_8core", |b| {
        let cfg = MachineConfig::builder().cores(8).build();
        let mut m = Machine::new(&cfg);
        b.iter(|| {
            m.step();
            black_box(m.now())
        });
    });
}

fn bench_fib_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_fib_2core");
    g.sample_size(10);
    for design in [FenceDesign::SPlus, FenceDesign::WsPlus] {
        g.bench_function(design.label(), |b| {
            b.iter(|| {
                let cfg = MachineConfig::builder()
                    .cores(2)
                    .fence_design(design)
                    .build();
                let mut m = Machine::new(&cfg);
                for p in cilk::programs(CilkApp::Fib, &cfg, 1) {
                    m.add_thread(p);
                }
                assert_eq!(m.run(1_000_000_000), RunOutcome::Finished);
                black_box(m.now())
            });
        });
    }
    g.finish();
}

fn bench_coherence_ping_pong(c: &mut Criterion) {
    c.bench_function("coherence_ping_pong", |b| {
        b.iter(|| {
            let cfg = MachineConfig::builder().cores(2).build();
            let mut m = Machine::new(&cfg);
            let a = Addr::new(0x40);
            let mk = |v: u64| {
                let mut is = Vec::new();
                for i in 0..50 {
                    is.push(Instr::Store { addr: a, value: v + i });
                    is.push(Instr::Load { addr: a, tag: Some(1) });
                }
                ScriptProgram::new(is).0
            };
            m.add_thread(Box::new(mk(1)));
            m.add_thread(Box::new(mk(1000)));
            assert_eq!(m.run(10_000_000), RunOutcome::Finished);
            black_box(m.now())
        });
    });
}

criterion_group!(
    benches,
    bench_machine_step,
    bench_fib_simulation,
    bench_coherence_ping_pong
);
criterion_main!(benches);
