//! The run engine's central guarantee: output is byte-identical at any
//! worker count. Each test drives the same work through a serial runner
//! (`jobs = 1`) and a parallel one (`jobs = 8`) and compares bytes —
//! captured markdown, CSV payloads, and raw results. Sizes are kept small
//! so the suite stays fast in debug builds; `ci.sh` repeats the
//! comparison on the full `--quick` grid in release mode.

use std::sync::Arc;

use asymfence::prelude::FenceDesign;
use asymfence_bench::cli::Opts;
use asymfence_bench::metrics::Collector;
use asymfence_bench::{figures, ReportSink, RunSpec, Runner, SiteMask, SEED};
use asymfence_workloads::cilk::CilkApp;
use asymfence_workloads::sites::SiteBench;
use asymfence_workloads::ustm::UstmBench;

fn silent(jobs: usize) -> Runner {
    Runner::with_jobs(jobs).progress(false)
}

/// A whole figure — the litmus matrix, which exercises machines of
/// different core counts, recorded outcomes, and SCV checking — renders
/// to identical markdown and CSV bytes at 1 and 8 workers.
#[test]
fn litmus_matrix_bytes_are_identical_at_any_worker_count() {
    let opts = Opts::default();
    let mut serial = ReportSink::capture();
    figures::litmus_matrix(&silent(1), &opts, &mut serial);
    let mut parallel = ReportSink::capture();
    figures::litmus_matrix(&silent(8), &opts, &mut parallel);

    assert_eq!(serial.captured(), parallel.captured());
    assert_eq!(serial.table_names(), parallel.table_names());
    assert_eq!(serial.csv("litmus_matrix"), parallel.csv("litmus_matrix"));
    // The figure actually produced content (guards against a silently
    // empty sink making the equality vacuous).
    assert!(serial.captured().contains("SB unfenced"));
    assert!(serial.csv("litmus_matrix").unwrap().lines().count() > 10);
}

/// A mixed workload grid returns bit-identical results in spec order,
/// independent of the worker count.
#[test]
fn mixed_grid_results_are_identical_at_any_worker_count() {
    let mut specs = Vec::new();
    for design in [FenceDesign::SPlus, FenceDesign::WsPlus, FenceDesign::WPlus] {
        specs.push(RunSpec::cilk(CilkApp::Fib, design, 2, SEED));
        specs.push(RunSpec::ustm(UstmBench::Counter, design, 2, SEED, 40_000));
        specs.push(RunSpec::ustm(UstmBench::Hash, design, 2, SEED, 40_000));
    }
    let serial = silent(1).run(&specs);
    let parallel = silent(8).run(&specs);
    assert_eq!(serial.len(), specs.len());
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a.cycles, b.cycles, "spec {}", specs[i].label());
        assert_eq!(a.commits, b.commits, "spec {}", specs[i].label());
        assert_eq!(a.aborts, b.aborts, "spec {}", specs[i].label());
        assert_eq!(a.outcome, b.outcome, "spec {}", specs[i].label());
        assert_eq!(a.stats, b.stats, "spec {}", specs[i].label());
    }
}

/// `--filter` and `--designs` restrict the grid identically under both
/// runners (the flags shape the spec list, never the execution).
#[test]
fn filtered_figure_is_identical_at_any_worker_count() {
    let opts = Opts {
        quick: true,
        designs: Some(vec![FenceDesign::WsPlus]),
        filter: Some("fib".to_string()),
        ..Default::default()
    };
    let mut serial = ReportSink::capture();
    figures::fig08(&silent(1), &opts, &mut serial);
    let mut parallel = ReportSink::capture();
    figures::fig08(&silent(8), &opts, &mut parallel);
    assert_eq!(serial.captured(), parallel.captured());
    assert!(serial.captured().contains("| fib"));
    assert!(!serial.captured().contains("| matmul"));
    // Only the requested designs appear as table rows (the word "Wee"
    // still shows up in the paper-reference notes).
    assert!(!serial.captured().contains("| Wee"));
}

/// Tracing is pure observation: running a whole figure with `--trace`
/// set produces byte-identical report output (captured markdown and
/// CSV) to the untraced run. The trace JSON itself goes to a side file
/// and the histogram report to stderr, so neither can perturb results.
#[test]
fn traced_figure_output_is_identical_to_untraced() {
    let plain = Opts {
        quick: true,
        ..Default::default()
    };
    let path = std::env::temp_dir().join(format!("asf-trace-det-{}.json", std::process::id()));
    let traced = Opts {
        trace: Some(path.to_string_lossy().into_owned()),
        ..plain.clone()
    };

    let mut without = ReportSink::capture();
    figures::litmus_matrix(&silent(2), &plain, &mut without);
    let mut with = ReportSink::capture();
    figures::litmus_matrix(&silent(2), &traced, &mut with);

    assert_eq!(without.captured(), with.captured());
    assert_eq!(without.csv("litmus_matrix"), with.csv("litmus_matrix"));
    // The side file really was produced (and holds a Perfetto envelope),
    // so the equality above is not vacuous.
    let json = std::fs::read_to_string(&path).expect("--trace wrote the side file");
    assert!(json.contains("\"traceEvents\""));
    let _ = std::fs::remove_file(&path);
}

/// Per-run form of the same guarantee: `execute_traced` returns exactly
/// the statistics `execute` does, plus a non-empty trace.
#[test]
fn traced_run_statistics_match_untraced() {
    let spec = RunSpec::ustm(UstmBench::Counter, FenceDesign::WPlus, 2, SEED, 40_000);
    let plain = spec.execute();
    let (traced, sink) = spec.execute_traced();
    assert_eq!(plain.cycles, traced.cycles);
    assert_eq!(plain.commits, traced.commits);
    assert_eq!(plain.stats, traced.stats);
    assert!(sink.recorded() > 0);
}

/// The telemetry snapshot inherits the engine's guarantee: with
/// wall-clock masked (deterministic collectors, as under
/// `ASF_TELEMETRY_DETERMINISTIC=1`), the `--metrics` JSON bytes are
/// identical at 1 and 8 workers. The collector records serially in spec
/// order after each batch, so entry order, counters, derived ratios and
/// fence percentiles cannot depend on scheduling.
#[test]
fn metrics_snapshot_bytes_are_identical_at_any_worker_count() {
    let opts = Opts {
        quick: true,
        ..Default::default()
    };
    let snap = |jobs: usize| {
        let collector = Arc::new(Collector::new(true));
        let runner = silent(jobs).with_collector(Arc::clone(&collector));
        let mut sink = ReportSink::capture();
        figures::litmus_matrix(&runner, &opts, &mut sink);
        figures::fig12(&runner, &opts, &mut sink);
        collector.snapshot("det", true).to_json()
    };
    let serial = snap(1);
    let parallel = snap(8);
    assert_eq!(serial, parallel);
    // Not vacuously empty: both figure sections and real counters made it in.
    assert!(serial.contains("\"litmus_matrix\""));
    assert!(serial.contains("\"fig12_scalability\""));
    assert!(serial.contains("\"sim_cycles\""));
    // Deterministic mode really masked the nondeterministic fields.
    assert!(serial.contains("\"total_wall_ns\": 0"));
}

/// Collection is pure observation: attaching a collector to the runner
/// leaves the figure's report bytes untouched (the collector re-routes
/// execution through `execute_traced`, which is pinned elsewhere to
/// return identical results).
#[test]
fn collected_figure_output_is_identical_to_uncollected() {
    let opts = Opts::default();
    let mut without = ReportSink::capture();
    figures::litmus_matrix(&silent(2), &opts, &mut without);
    let collected = silent(2).with_collector(Arc::new(Collector::new(true)));
    let mut with = ReportSink::capture();
    figures::litmus_matrix(&collected, &opts, &mut with);
    assert_eq!(without.captured(), with.captured());
    assert_eq!(without.csv("litmus_matrix"), with.csv("litmus_matrix"));
}

/// Per-site assignments are a pure override layer: installing the
/// explicit mask the role mapping would produce anyway gives exactly the
/// run the role mapping gives (cycles, stats, outcome). This pins the
/// satellite guarantee that the `FenceSite` promotion leaves every
/// role-mapped run — including the figure grids, which never install an
/// assignment — untouched.
#[test]
fn explicit_paper_equivalent_assignment_matches_role_mapping() {
    // Under WS+, Critical is weak: wsq's owner fence (site 0 of 2) and
    // dekker's hot entry fence (site 0 of 4).
    for (bench, n_sites, weak) in [(SiteBench::Wsq, 2, 0b01), (SiteBench::Dekker, 4, 0b0001)] {
        let by_role = RunSpec::sites(bench, FenceDesign::WsPlus, SEED).execute();
        let explicit = RunSpec::sites(bench, FenceDesign::WsPlus, SEED)
            .with_assignment(SiteMask::hand(n_sites, weak))
            .execute();
        assert_eq!(by_role.cycles, explicit.cycles, "{}", bench.name());
        assert_eq!(by_role.outcome, explicit.outcome, "{}", bench.name());
        assert_eq!(by_role.stats, explicit.stats, "{}", bench.name());
    }
}

/// `MachineStats::merge` over real run statistics behaves like the
/// arithmetic it replaces: merging per-run stats gives the same aggregate
/// counters in any association order.
#[test]
fn machine_stats_merge_is_order_independent_on_real_runs() {
    let runs: Vec<_> = [
        RunSpec::cilk(CilkApp::Fib, FenceDesign::SPlus, 2, SEED),
        RunSpec::ustm(UstmBench::Counter, FenceDesign::WsPlus, 2, SEED, 40_000),
        RunSpec::ustm(UstmBench::Hash, FenceDesign::WPlus, 2, SEED, 40_000),
    ]
    .iter()
    .map(|s| s.execute())
    .collect();

    // ((a ⊕ b) ⊕ c) vs (a ⊕ (b ⊕ c))
    let left = runs[0]
        .stats
        .clone()
        .merged(&runs[1].stats)
        .merged(&runs[2].stats);
    let right = runs[0]
        .stats
        .clone()
        .merged(&runs[1].stats.clone().merged(&runs[2].stats));
    assert_eq!(left, right);

    let total = left.aggregate();
    let sum: u64 = runs.iter().map(|r| r.stats.aggregate().instrs_retired).sum();
    assert_eq!(total.instrs_retired, sum);
    let busy: u64 = runs.iter().map(|r| r.stats.aggregate().busy_cycles).sum();
    assert_eq!(total.busy_cycles, busy);
}
