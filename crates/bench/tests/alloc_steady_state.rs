//! Pins the tentpole zero-allocation property: re-arming a warmed
//! [`Machine`] with [`Machine::reset`] and running a workload touches
//! the heap **zero** times.
//!
//! A counting [`GlobalAlloc`] wraps the system allocator; counting is
//! switched on only around the steady-state region (reset + add
//! prebuilt threads + run), so the warm-up run and program construction
//! — which legitimately allocate — stay outside the window. The test
//! workload issues stores striped over a few per-core private lines:
//! load MSHRs, request parking and trace/SCV logging are off the code
//! path by construction, which is exactly the steady-state profile the
//! pool optimizes (see `DESIGN.md` §5g).
//!
//! This file holds a single test on purpose: a sibling test running
//! concurrently would allocate while the counter is armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use asymfence::cpu::program::{Fetch, Instr, ThreadProgram};
use asymfence::prelude::*;
use asymfence_common::config::MachineConfig;
use asymfence_common::ids::Addr;

/// System allocator wrapper that counts (de)allocations while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Stores striped over `LINES` private lines, then done. Heap-free in
/// `fetch`/`deliver`, so every counted allocation belongs to the
/// simulator.
#[derive(Clone, Copy)]
struct StripeStores {
    base: u64,
    line_bytes: u64,
    remaining: u64,
}

const LINES: u64 = 8;

impl ThreadProgram for StripeStores {
    fn fetch(&mut self) -> Fetch {
        if self.remaining == 0 {
            return Fetch::Done;
        }
        self.remaining -= 1;
        let line = self.remaining % LINES;
        Fetch::Instr(Instr::Store {
            addr: Addr::new(self.base + line * self.line_bytes),
            value: self.remaining,
        })
    }

    fn deliver(&mut self, _tag: u64, _value: u64) {}

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(*self)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn programs(cfg: &MachineConfig) -> Vec<Box<dyn ThreadProgram>> {
    (0..cfg.num_cores)
        .map(|core| {
            Box::new(StripeStores {
                // Disjoint per-core regions: no sharing, no parking.
                base: 0x1_0000 * (core as u64 + 1),
                line_bytes: cfg.line_bytes,
                remaining: 4096,
            }) as Box<dyn ThreadProgram>
        })
        .collect()
}

#[test]
fn pooled_reset_and_run_is_allocation_free() {
    let cfg = Arc::new(
        MachineConfig::builder()
            .cores(2)
            .fence_design(FenceDesign::SPlus)
            .seed(1)
            .build(),
    );

    // Warm-up: builds the machine and grows every container (heaps,
    // maps, cache arrays, write-buffer slabs) to its steady-state
    // capacity. Allocations here are expected and uncounted.
    let mut m = Machine::new_shared(Arc::clone(&cfg));
    for p in programs(&cfg) {
        m.add_thread(p);
    }
    let warm_outcome = m.run(u64::MAX);
    assert_eq!(warm_outcome, RunOutcome::Finished);
    let warm_cycles = m.now();

    // Prebuild the second run's thread programs outside the window (the
    // boxes themselves allocate).
    let progs = programs(&cfg);

    // Steady state: reset + install + run, with the counter armed.
    ARMED.store(true, Ordering::SeqCst);
    let reused = m.reset(&cfg);
    for p in progs {
        m.add_thread(p);
    }
    let outcome = m.run(u64::MAX);
    ARMED.store(false, Ordering::SeqCst);

    assert!(reused, "same shape must re-arm in place, not rebuild");
    assert_eq!(outcome, RunOutcome::Finished);
    assert_eq!(m.now(), warm_cycles, "reset must reproduce the run exactly");
    let allocs = ALLOCS.load(Ordering::SeqCst);
    let reallocs = REALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        (allocs, reallocs),
        (0, 0),
        "steady-state pooled run must not touch the heap"
    );
}
