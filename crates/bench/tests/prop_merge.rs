//! Property tests pinning [`RunResult::merge`]'s algebra: associative,
//! right-identity with the zero result, grouping-invariant in a fold —
//! and deliberately *not* commutative (the first operand's `outcome`
//! wins), which is why every ledger merge folds cells in grid-index
//! order.
//!
//! Runs on the in-repo property harness (`asymfence_common::prop`):
//! failing case seeds persist to `tests/regressions/prop_merge.seeds`
//! and replay before fresh cases.

use asymfence::prelude::RunOutcome;
use asymfence_bench::RunResult;
use asymfence_common::prop::{check, map, triples, u64s, u8s, vecs, Config};
use asymfence_common::stats::CoreStats;
use asymfence_common::MachineStats;

fn prop_cfg(cases: u32) -> Config {
    Config::from_env(cases).regressions("tests/regressions/prop_merge.seeds")
}

type ResultRaw = ((u64, u64, u64), (u8, u8), Vec<Vec<u64>>);

fn build_result(raw: ResultRaw) -> RunResult {
    let ((cycles, commits, aborts), (outcome, scv), cores) = raw;
    let mut stats = MachineStats {
        cycles,
        ..MachineStats::default()
    };
    stats.cores = cores
        .iter()
        .map(|vals| CoreStats::from_values(vals).expect("generator emits FIELDS values"))
        .collect();
    RunResult {
        cycles,
        stats,
        commits,
        aborts,
        outcome: match outcome % 3 {
            0 => RunOutcome::Finished,
            1 => RunOutcome::Deadlocked,
            _ => RunOutcome::CycleLimit,
        },
        scv: scv % 2 == 1,
    }
}

fn result_gen() -> impl asymfence_common::prop::Gen<Value = RunResult> {
    map(
        triples(
            triples(u64s(0, 1 << 40), u64s(0, 1 << 20), u64s(0, 1 << 20)),
            map(
                triples(u8s(0, 5), u8s(0, 3), u8s(0, 0)),
                |(a, b, _): (u8, u8, u8)| (a, b),
            ),
            vecs(vecs(u64s(0, 1 << 20), CoreStats::FIELDS, CoreStats::FIELDS), 0, 3),
        ),
        build_result,
    )
}

fn merged(a: &RunResult, b: &RunResult) -> RunResult {
    let mut out = a.clone();
    out.merge(b);
    out
}

fn zero() -> RunResult {
    RunResult {
        cycles: 0,
        stats: MachineStats::default(),
        commits: 0,
        aborts: 0,
        outcome: RunOutcome::Finished,
        scv: false,
    }
}

/// Field-wise equality; `RunResult` itself doesn't derive `PartialEq`
/// because `RunOutcome` comparisons are usually asserted, not compared.
fn same(a: &RunResult, b: &RunResult) -> bool {
    a.cycles == b.cycles
        && a.stats == b.stats
        && a.commits == b.commits
        && a.aborts == b.aborts
        && a.outcome == b.outcome
        && a.scv == b.scv
}

#[test]
fn run_result_merge_is_associative() {
    let gen = triples(result_gen(), result_gen(), result_gen());
    check(
        "run_result_merge_is_associative",
        &prop_cfg(64),
        &gen,
        |(a, b, c)| {
            let left = merged(&merged(a, b), c);
            let right = merged(a, &merged(b, c));
            if !same(&left, &right) {
                return Err(format!("(a·b)·c != a·(b·c): {left:?} vs {right:?}"));
            }
            Ok(())
        },
    );
}

#[test]
fn run_result_zero_is_a_right_identity_but_not_left() {
    check(
        "run_result_zero_is_a_right_identity_but_not_left",
        &prop_cfg(64),
        &result_gen(),
        |r| {
            if !same(&merged(r, &zero()), r) {
                return Err("r·0 != r".into());
            }
            // Left-merging keeps the zero's outcome: the fold must start
            // from the first real result (or track outcomes separately),
            // never from a synthetic zero. Everything else still matches.
            let left = merged(&zero(), r);
            if left.outcome != RunOutcome::Finished {
                return Err("0·r should keep the zero's outcome".into());
            }
            if left.cycles != r.cycles || left.stats != r.stats || left.scv != r.scv {
                return Err("0·r dropped counters".into());
            }
            Ok(())
        },
    );
}

#[test]
fn run_result_fold_is_grouping_invariant() {
    let gen = vecs(result_gen(), 1, 6);
    check(
        "run_result_fold_is_grouping_invariant",
        &prop_cfg(48),
        &gen,
        |parts| {
            // Serial left fold from the first element (the collector's
            // shape: first record creates the cell, the rest merge in).
            let serial = parts[1..]
                .iter()
                .fold(parts[0].clone(), |acc, r| merged(&acc, r));
            // Pairwise tree reduction over the same order.
            let mut layer: Vec<RunResult> = parts.clone();
            while layer.len() > 1 {
                layer = layer
                    .chunks(2)
                    .map(|c| {
                        c[1..].iter().fold(c[0].clone(), |acc, r| merged(&acc, r))
                    })
                    .collect();
            }
            let tree = layer.into_iter().next().unwrap();
            if !same(&tree, &serial) {
                return Err("tree fold diverged from serial fold".into());
            }
            Ok(())
        },
    );
}

#[test]
fn run_result_merge_keeps_the_first_outcome() {
    let gen = map(
        triples(u8s(0, 5), u8s(0, 5), u8s(0, 0)),
        |(a, b, _): (u8, u8, u8)| (a, b),
    );
    check(
        "run_result_merge_keeps_the_first_outcome",
        &prop_cfg(32),
        &gen,
        |(a, b)| {
            let mk = |o: u8| {
                let mut r = zero();
                r.outcome = match o % 3 {
                    0 => RunOutcome::Finished,
                    1 => RunOutcome::Deadlocked,
                    _ => RunOutcome::CycleLimit,
                };
                r
            };
            let (ra, rb) = (mk(*a), mk(*b));
            if merged(&ra, &rb).outcome != ra.outcome {
                return Err("merge changed the first outcome".into());
            }
            Ok(())
        },
    );
}
