//! Golden-file test pinning the `--metrics` snapshot schema: one small
//! deterministic collection run's JSON is checked in byte-for-byte. Any
//! diff means the snapshot schema, the serialization format, or the
//! simulation itself changed — all deserve a deliberate re-bless, not a
//! silent drift (perfdiff refuses snapshots whose schema drifted, so the
//! checked-in baseline must move in the same commit). Regenerate with:
//!
//! ```text
//! ASF_BLESS=1 cargo test -p asymfence-bench --test metrics_golden
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use asymfence::prelude::FenceDesign;
use asymfence_bench::cli::Opts;
use asymfence_bench::metrics::Collector;
use asymfence_bench::{figures, ReportSink, Runner};
use asymfence_common::telemetry::{diff, BenchSnapshot, DiffOptions};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("metrics_snapshot.json")
}

/// A deterministic-mode snapshot of the quick litmus matrix, pinned.
fn collect() -> String {
    let opts = Opts {
        quick: true,
        designs: Some(vec![FenceDesign::SPlus, FenceDesign::WPlus]),
        ..Default::default()
    };
    let collector = Arc::new(Collector::new(true));
    let runner = Runner::with_jobs(2)
        .progress(false)
        .with_collector(Arc::clone(&collector));
    let mut sink = ReportSink::capture();
    figures::litmus_matrix(&runner, &opts, &mut sink);
    collector.snapshot("metrics_snapshot", true).to_json()
}

/// The snapshot JSON matches the checked-in golden file exactly.
#[test]
fn metrics_snapshot_matches_golden() {
    let json = collect();
    let path = golden_path();
    if std::env::var("ASF_BLESS").is_ok_and(|v| v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with ASF_BLESS=1 to create it",
            path.display()
        )
    });
    assert!(
        json == golden,
        "metrics snapshot drifted from {} ({} vs {} bytes); \
         if the change is intentional, re-bless with ASF_BLESS=1 AND \
         regenerate results/bench_baseline.json",
        path.display(),
        json.len(),
        golden.len()
    );
}

/// Schema sanity on the pinned artifact: it parses back, round-trips
/// byte-exactly, and carries the fields perfdiff gates on.
#[test]
fn golden_snapshot_has_the_gated_schema() {
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file present (run with ASF_BLESS=1 to create it)");
    let snap = BenchSnapshot::parse(&golden).expect("golden snapshot parses");
    assert_eq!(snap.to_json(), golden, "parse/render round-trips exactly");
    assert!(snap.deterministic, "golden is collected in deterministic mode");
    assert_eq!(snap.total_wall_ns, 0);
    assert!(!snap.entries.is_empty());
    let e = &snap.entries[0];
    assert_eq!(e.section, "litmus_matrix");
    assert!(e.runs > 0 && e.sim_cycles > 0 && e.instrs_retired > 0);
    // The full derived block is present (every DerivedStats field is
    // serialized by name; an unknown or missing name fails parse).
    assert_eq!(e.derived.fields().len(), 19);
    // Shard provenance is a sharded-merge-only extra: collector
    // snapshots never carry it, so the golden bytes stay schema v2 and
    // `results/bench_baseline.json` never moves for shard-free runs.
    assert!(snap.shard.is_none(), "collector snapshots carry no shard block");
    assert!(golden.contains("\"schema\": 2"), "shard-free snapshots stay on v2");
    assert!(!golden.contains("\"shard\""));
}

/// Perturbing a single counter is a breach: rebuilding the same snapshot
/// and bumping one cell's `sim_cycles` must make `diff` dirty, exactly
/// like `perfdiff` exiting nonzero in CI.
#[test]
fn perturbed_counter_breaches_the_diff() {
    let base = BenchSnapshot::parse(&collect()).unwrap();
    let mut perturbed = base.clone();
    perturbed.entries[0].sim_cycles += 1;
    let opts = DiffOptions::default();
    assert!(diff(&base, &base, &opts).clean(), "self-diff is clean");
    let report = diff(&base, &perturbed, &opts);
    assert!(!report.clean());
    assert!(
        report.breaches.iter().any(|b| b.contains("sim_cycles")),
        "breach names the drifted counter: {:?}",
        report.breaches
    );
    // Dropping a cell breaches too (key alignment is strict).
    let mut missing = base.clone();
    missing.entries.pop();
    assert!(!diff(&base, &missing, &opts).clean());
}
