//! Golden-file test for the Perfetto/Chrome-trace exporter: one small
//! litmus run's JSON is pinned byte-for-byte. The run is fully
//! deterministic, so any diff means either the simulation or the export
//! format changed — both deserve a deliberate re-bless, not a silent
//! drift. Regenerate with:
//!
//! ```text
//! ASF_BLESS=1 cargo test -p asymfence-bench --test trace_golden
//! ```

use asymfence::prelude::{FenceDesign, FenceRole};
use asymfence_bench::{LitmusCase, RunSpec, SEED};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("sb_fenced_wplus_trace.json")
}

/// The store-buffering litmus case under W+ exports exactly the
/// checked-in Perfetto JSON.
#[test]
fn sb_fenced_wplus_trace_matches_golden() {
    let case = LitmusCase::StoreBuffering {
        fences: Some((FenceRole::Critical, FenceRole::NonCritical)),
    };
    let spec = RunSpec::litmus(case, FenceDesign::WPlus, SEED);
    let (_, sink) = spec.execute_traced();
    let json = sink.chrome_json();

    let path = golden_path();
    if std::env::var("ASF_BLESS").is_ok_and(|v| v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with ASF_BLESS=1 to create it", path.display()));
    assert!(
        json == golden,
        "trace JSON drifted from {} ({} vs {} bytes); \
         if the change is intentional, re-bless with ASF_BLESS=1",
        path.display(),
        json.len(),
        golden.len()
    );
}

/// Sanity on the pinned artifact itself: it is a Chrome-trace envelope
/// containing fence spans and the instant events Perfetto renders.
#[test]
fn golden_trace_is_a_perfetto_envelope() {
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file present (run with ASF_BLESS=1 to create it)");
    assert!(golden.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(golden.trim_end().ends_with("]}"));
    // Fence spans are complete ("X") events; bounce instants ride along.
    assert!(golden.matches("\"ph\":\"X\"").count() > 0, "no fence spans recorded");
    assert!(golden.contains("\"store-bounce\""), "W+ run should record bounces");
    assert!(golden.contains("\"cat\":\"fence\""));
}
