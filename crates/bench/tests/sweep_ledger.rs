//! Integration tests of the sharded sweep ledger: shard-count
//! invariance, torn-tail crash recovery with resume, duplicate-cell
//! idempotence, and unknown-record tolerance — all pinned at the byte
//! level on the merged snapshot.
//!
//! Every test runs under `ASF_TELEMETRY_DETERMINISTIC=1` (set
//! process-wide up front; the value is identical across tests, so the
//! parallel test harness can't race on it), which masks wall-clock at
//! journal time and makes ledger cells — and therefore merged snapshots
//! — byte-reproducible.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use asymfence::prelude::{FenceDesign, FenceRole};
use asymfence_bench::ledger::merge_dir;
use asymfence_bench::metrics::Collector;
use asymfence_bench::runner::Runner;
use asymfence_bench::shard::{run_shard, SweepCell};
use asymfence_bench::{LitmusCase, RunSpec};
use asymfence_common::ledger::{read_shard_log, shard_path};
use asymfence_common::par::Shard;
use asymfence_common::telemetry;

fn deterministic() {
    std::env::set_var(telemetry::DETERMINISTIC_ENV, "1");
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "asf-sweep-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A six-cell grid over two sections — small enough to run in every
/// test, shaped enough (multiple sections, multiple designs) to
/// exercise the whole merge fold.
fn tiny_grid() -> Vec<SweepCell> {
    let fenced = LitmusCase::StoreBuffering {
        fences: Some((FenceRole::Critical, FenceRole::Critical)),
    };
    let unfenced = LitmusCase::MessagePassing { fences: None };
    let mut cells = Vec::new();
    for design in [FenceDesign::SPlus, FenceDesign::WsPlus, FenceDesign::Wee] {
        cells.push(SweepCell {
            index: cells.len() as u64,
            section: "sb",
            spec: RunSpec::litmus(fenced, design, asymfence_bench::SEED),
        });
    }
    for design in [FenceDesign::SPlus, FenceDesign::WsPlus, FenceDesign::Wee] {
        cells.push(SweepCell {
            index: cells.len() as u64,
            section: "mp",
            spec: RunSpec::litmus(unfenced, design, asymfence_bench::SEED),
        });
    }
    cells
}

fn merged_json(dir: &Path) -> String {
    merge_dir(dir, "sweep_test").unwrap().snapshot.to_json()
}

#[test]
fn two_shard_merge_is_byte_identical_to_single_process() {
    deterministic();
    let cells = tiny_grid();

    let single = temp_dir("single");
    run_shard(&single, Shard::whole(), &cells, "tiny", true, Some(2)).unwrap();

    let sharded = temp_dir("sharded");
    for id in 0..2 {
        run_shard(&sharded, Shard::new(id, 2), &cells, "tiny", true, Some(1)).unwrap();
    }

    let a = merged_json(&single);
    let b = merged_json(&sharded);
    assert_eq!(a, b, "2-shard merge must be byte-identical to 1-shard");
    // Deterministic snapshots omit the shard block and stay on schema 2,
    // keeping them comparable against the single-process baseline.
    assert!(a.contains("\"schema\": 2"), "got: {a}");
    assert!(!a.contains("\"shard\""));
    std::fs::remove_dir_all(&single).unwrap();
    std::fs::remove_dir_all(&sharded).unwrap();
}

#[test]
fn killed_shard_resumes_from_torn_ledger_and_merges_byte_identically() {
    deterministic();
    let cells = tiny_grid();

    let single = temp_dir("kill-single");
    run_shard(&single, Shard::whole(), &cells, "tiny", true, Some(1)).unwrap();
    let expect = merged_json(&single);

    // Run both shards to completion, then forge shard 0's SIGKILL: keep
    // the claim and its first cell, plus a torn fragment of the next
    // record (a write cut mid-line).
    let crashed = temp_dir("kill-crashed");
    for id in 0..2 {
        run_shard(&crashed, Shard::new(id, 2), &cells, "tiny", true, Some(1)).unwrap();
    }
    let path = shard_path(&crashed, 0);
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    assert!(lines.len() >= 4, "claim + 3 cells + heartbeat + done");
    let mut forged = String::new();
    forged.push_str(lines[0]); // claim
    forged.push_str(lines[1]); // first owned cell
    forged.push_str(&lines[2][..lines[2].len() / 2]); // torn mid-record
    std::fs::write(&path, forged).unwrap();

    // The resumed life must truncate the torn tail, re-run exactly the
    // lost cells, and the re-merge must reproduce the single-process
    // bytes.
    let summary = run_shard(&crashed, Shard::new(0, 2), &cells, "tiny", true, Some(1)).unwrap();
    assert_eq!(summary.resume, 1, "second claim in the ledger");
    assert!(summary.torn_bytes > 0, "torn tail was truncated");
    assert_eq!(summary.recovered, 1, "one cell survived the crash");
    assert_eq!(summary.executed, summary.owned - 1);
    assert_eq!(merged_json(&crashed), expect);
    std::fs::remove_dir_all(&single).unwrap();
    std::fs::remove_dir_all(&crashed).unwrap();
}

#[test]
fn duplicate_cell_records_are_idempotent_at_merge() {
    deterministic();
    let cells = tiny_grid();
    let dir = temp_dir("dup");
    run_shard(&dir, Shard::whole(), &cells, "tiny", true, Some(1)).unwrap();
    let clean = merged_json(&dir);

    // A crash between execution and journaling re-runs the cell on
    // resume, so a ledger can hold the same cell twice (byte-identical
    // records, runs being deterministic). Forge that by re-appending an
    // existing cell line.
    let path = shard_path(&dir, 0);
    let text = std::fs::read_to_string(&path).unwrap();
    let cell_line = text
        .lines()
        .find(|l| l.contains("\"kind\":\"cell\""))
        .unwrap()
        .to_string();
    std::fs::write(&path, format!("{text}{cell_line}\n")).unwrap();

    let merged = merge_dir(&dir, "sweep_test").unwrap();
    assert_eq!(merged.duplicates, 1, "one duplicate dropped");
    assert_eq!(merged.snapshot.to_json(), clean, "dedup keeps bytes identical");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_record_versions_are_skipped_with_a_count() {
    deterministic();
    let cells = tiny_grid();
    let dir = temp_dir("unknown");
    run_shard(&dir, Shard::whole(), &cells, "tiny", true, Some(1)).unwrap();
    let clean = merged_json(&dir);

    // A future writer appends a v2 record and a new record kind; this
    // build must skip both (with a count), not fail the merge.
    let path = shard_path(&dir, 0);
    let text = std::fs::read_to_string(&path).unwrap();
    let futured = format!(
        "{text}{}\n{}\n",
        "{\"v\":2,\"kind\":\"cell\",\"index\":0,\"frobnicated\":true}",
        "{\"v\":1,\"kind\":\"gc-epoch\",\"epoch\":3}"
    );
    std::fs::write(&path, futured).unwrap();

    let log = read_shard_log(&path).unwrap();
    assert_eq!(log.skipped_unknown, 2);
    let merged = merge_dir(&dir, "sweep_test").unwrap();
    assert_eq!(merged.skipped_unknown, 2);
    assert_eq!(merged.snapshot.to_json(), clean);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merged_snapshot_matches_the_collector_fold_byte_for_byte() {
    deterministic();
    let cells = tiny_grid();
    let dir = temp_dir("collector");
    run_shard(&dir, Shard::whole(), &cells, "tiny", true, Some(1)).unwrap();
    let merged = merged_json(&dir);

    // The same cells through the single-process `--metrics` path: a
    // Runner with a Collector, sections switched as the grid walks them.
    let collector = Arc::new(Collector::new(true));
    let runner = Runner::with_jobs(1)
        .progress(false)
        .with_collector(Arc::clone(&collector));
    let mut section = "";
    for cell in &cells {
        if cell.section != section {
            section = cell.section;
            collector.begin_section(section);
        }
        runner.run(&[cell.spec]);
    }
    let snap = collector.snapshot("sweep_test", true);
    assert_eq!(
        snap.to_json(),
        merged,
        "ledger merge must mirror the collector fold exactly"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
