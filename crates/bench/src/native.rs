//! Native-runtime benchmark and sim-vs-silicon cross-validation (the
//! `native_bench` binary).
//!
//! Runs the native ports of the kernels the simulator studies — dekker,
//! the THE deque, and two TLRW STM profiles — under every
//! [`PairKind`], measures wall-clock per protocol operation, and (with
//! `--crossval`) joins the native ranking against the simulator's
//! cycle ranking for the corresponding workload: native
//! [`Asymmetric`]-vs-[`AllHeavy`] is the silicon analogue of the
//! simulated W+-vs-S+ comparison.
//!
//! Every kernel also self-checks (mutual exclusion witnesses, task
//! conservation, lost-update counts); any violation fails the run, so
//! the benchmark doubles as a litmus smoke test for the fence backend.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use asymfence::prelude::FenceDesign;
use asymfence_common::telemetry::{self, BenchSnapshot, MetricEntry};
use asymfence_native::{
    backend, heavy_fence_cost_ns, AllHeavy, Asymmetric, FenceBackend, FencePair, HwSeqCst,
    PairKind, TheDeque, TlrwStm,
};
use asymfence_workloads::sites::SiteBench;
use asymfence_workloads::ustm::UstmBench;

use crate::metrics::label_from_path;
use crate::{RunSpec, Table, SEED};

/// The native kernels, each with a simulator counterpart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NativeKernel {
    /// Two-thread Dekker mutual exclusion (sim: `sites dekker`).
    Dekker,
    /// THE work-stealing deque, owner-dominated (sim: `sites wsq`).
    Deque,
    /// TLRW hot-counter increments, write-dominated (sim: `ustm Counter`).
    UstmCounter,
    /// TLRW read-8-write-1 mix, read-dominated (sim: `ustm ReadNWrite1`).
    UstmRead,
}

impl NativeKernel {
    /// All kernels, in report order.
    pub const ALL: [NativeKernel; 4] = [
        NativeKernel::Dekker,
        NativeKernel::Deque,
        NativeKernel::UstmCounter,
        NativeKernel::UstmRead,
    ];

    /// Stable report/metrics label.
    pub fn name(self) -> &'static str {
        match self {
            NativeKernel::Dekker => "dekker",
            NativeKernel::Deque => "wsq",
            NativeKernel::UstmCounter => "ustm-counter",
            NativeKernel::UstmRead => "ustm-read",
        }
    }

    /// The simulator workload this kernel mirrors, as shown in reports.
    pub fn sim_counterpart(self) -> &'static str {
        match self {
            NativeKernel::Dekker => "sites dekker",
            NativeKernel::Deque => "sites wsq",
            NativeKernel::UstmCounter => "ustm Counter",
            NativeKernel::UstmRead => "ustm ReadNWrite1",
        }
    }

    fn iters(self, quick: bool) -> u64 {
        let full = match self {
            NativeKernel::Dekker => 30_000,      // entries per thread
            NativeKernel::Deque => 60_000,       // tasks through the deque
            NativeKernel::UstmCounter => 15_000, // commits per thread
            NativeKernel::UstmRead => 8_000,     // commits per thread
        };
        if quick {
            full / 6
        } else {
            full
        }
    }
}

/// One measured (kernel, pair) cell.
#[derive(Clone, Debug)]
pub struct NativeRow {
    /// Which kernel ran.
    pub kernel: NativeKernel,
    /// Which fence pair it ran under.
    pub pair: PairKind,
    /// Protocol operations completed (deterministic per kernel).
    pub ops: u64,
    /// Wall-clock for the whole kernel, ns.
    pub wall_ns: u64,
    /// Transaction aborts (STM kernels).
    pub aborts: u64,
    /// Self-check failures; must be 0.
    pub violations: u64,
}

impl NativeRow {
    /// Mean wall-clock per protocol operation.
    pub fn ns_per_op(&self) -> f64 {
        self.wall_ns as f64 / self.ops.max(1) as f64
    }
}

struct Counts {
    ops: u64,
    aborts: u64,
    violations: u64,
}

fn bench_deque<P: FencePair>(pair: P, tasks: u64) -> Counts {
    let q = TheDeque::new(256, pair);
    let done = AtomicBool::new(false);
    let (owner_sum, thief_sum) = std::thread::scope(|s| {
        let thief = s.spawn(|| {
            let mut sum = 0u64;
            while !done.load(Ordering::Acquire) {
                match q.steal() {
                    Some(v) => sum += v,
                    None => std::thread::yield_now(),
                }
            }
            while let Some(v) = q.steal() {
                sum += v;
            }
            sum
        });
        let mut sum = 0u64;
        let mut next = 1u64;
        while next <= tasks {
            // Owner hot loop: push a small burst, take half back.
            let burst = (tasks - next + 1).min(8);
            let mut pushed = 0;
            for _ in 0..burst {
                if q.push(next) {
                    next += 1;
                    pushed += 1;
                } else {
                    break;
                }
            }
            for _ in 0..pushed / 2 {
                if let Some(v) = q.take() {
                    sum += v;
                }
            }
        }
        while let Some(v) = q.take() {
            sum += v;
        }
        done.store(true, Ordering::Release);
        (sum, thief.join().unwrap())
    });
    let expect = tasks * (tasks + 1) / 2;
    Counts {
        ops: 2 * tasks, // each task enqueued once and dequeued once
        aborts: 0,
        violations: u64::from(owner_sum + thief_sum != expect),
    }
}

fn bench_ustm_counter<P: FencePair>(pair: P, per_thread: u64) -> Counts {
    let stm = TlrwStm::new(2, 2, pair);
    let aborts: u64 = std::thread::scope(|s| {
        let workers: Vec<_> = (0..2)
            .map(|tid| {
                let stm = &stm;
                s.spawn(move || {
                    let mut aborts = 0u64;
                    for _ in 0..per_thread {
                        let (_, a) = stm.run(tid, |tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        });
                        aborts += a;
                    }
                    aborts
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    Counts {
        ops: 2 * per_thread,
        aborts,
        violations: u64::from(stm.peek(0) != 2 * per_thread),
    }
}

fn bench_ustm_read<P: FencePair>(pair: P, per_thread: u64) -> Counts {
    const LOCS: usize = 64;
    let stm = TlrwStm::new(LOCS, 2, pair);
    let aborts: u64 = std::thread::scope(|s| {
        let workers: Vec<_> = (0..2usize)
            .map(|tid| {
                let stm = &stm;
                s.spawn(move || {
                    // Read-dominated ReadNWrite1 shape: 8 reads across
                    // the whole array, one write into the thread's own
                    // half (read-write conflicts only).
                    let mut rng = 0x9e37_79b9 ^ (tid as u64) << 32 | 1;
                    let mut aborts = 0u64;
                    for _ in 0..per_thread {
                        let (_, a) = stm.run(tid, |tx| {
                            let mut acc = 0u64;
                            for _ in 0..8 {
                                rng ^= rng << 13;
                                rng ^= rng >> 7;
                                rng ^= rng << 17;
                                acc = acc.wrapping_add(tx.read(rng as usize % LOCS)?);
                            }
                            let dst = LOCS / 2 * tid + (rng as usize % (LOCS / 2));
                            tx.write(dst, acc)
                        });
                        aborts += a;
                    }
                    aborts
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    Counts {
        ops: 2 * per_thread,
        aborts,
        violations: 0, // conservation is covered by the counter kernel
    }
}

fn run_with_pair<P: FencePair>(kernel: NativeKernel, pair: P, iters: u64) -> Counts {
    match kernel {
        NativeKernel::Dekker => {
            let r = asymfence_native::dekker(pair, iters);
            Counts {
                ops: r.ops,
                aborts: 0,
                violations: r.violations,
            }
        }
        NativeKernel::Deque => bench_deque(pair, iters),
        NativeKernel::UstmCounter => bench_ustm_counter(pair, iters),
        NativeKernel::UstmRead => bench_ustm_read(pair, iters),
    }
}

/// Runs one (kernel, pair) cell and times it.
pub fn run_cell(kernel: NativeKernel, pair: PairKind, quick: bool) -> NativeRow {
    let iters = kernel.iters(quick);
    let start = Instant::now();
    let counts = match pair {
        PairKind::AllHeavy => run_with_pair(kernel, AllHeavy, iters),
        PairKind::Asymmetric => run_with_pair(kernel, Asymmetric, iters),
        PairKind::HwSeqCst => run_with_pair(kernel, HwSeqCst, iters),
    };
    NativeRow {
        kernel,
        pair,
        ops: counts.ops,
        wall_ns: start.elapsed().as_nanos() as u64,
        aborts: counts.aborts,
        violations: counts.violations,
    }
}

/// Simulated cost of the kernel's counterpart workload under `design`,
/// in units where lower is better (cycles for the run-to-completion
/// site benches, cycles per commit for the windowed ustm benches).
pub fn sim_cost(kernel: NativeKernel, design: FenceDesign, quick: bool) -> f64 {
    let window: u64 = if quick { 150_000 } else { 400_000 };
    match kernel {
        NativeKernel::Dekker => {
            RunSpec::sites(SiteBench::Dekker, design, SEED).execute().cycles as f64
        }
        NativeKernel::Deque => {
            RunSpec::sites(SiteBench::Wsq, design, SEED).execute().cycles as f64
        }
        NativeKernel::UstmCounter => {
            let r = RunSpec::ustm(UstmBench::Counter, design, 4, SEED, window).execute();
            window as f64 / r.commits.max(1) as f64
        }
        NativeKernel::UstmRead => {
            let r = RunSpec::ustm(UstmBench::ReadNWrite1, design, 4, SEED, window).execute();
            window as f64 / r.commits.max(1) as f64
        }
    }
}

fn classify(speedup: f64) -> &'static str {
    if speedup > 1.05 {
        "faster"
    } else if speedup < 0.95 {
        "slower"
    } else {
        "tie"
    }
}

/// The per-workload agreement verdict between the native
/// asymmetric-vs-all-heavy speedup and the simulated W+-vs-S+ speedup.
pub fn verdict(native_speedup: f64, sim_speedup: f64) -> String {
    let n = classify(native_speedup);
    let s = classify(sim_speedup);
    match (n, s) {
        _ if n == s => format!("agree (both {n})"),
        ("tie", _) | (_, "tie") => format!("mixed (native {n}, sim {s})"),
        _ => format!("DISAGREE (native {n}, sim {s})"),
    }
}

/// Parsed `native_bench` flags.
#[derive(Clone, Debug, Default)]
pub struct NativeOpts {
    /// Shrink every kernel ~6x.
    pub quick: bool,
    /// Also run the simulator counterparts and print the joined table.
    pub crossval: bool,
    /// Write a [`BenchSnapshot`] JSON here.
    pub metrics: Option<String>,
}

/// Parses `native_bench` command-line flags (exits on `--help` or an
/// unknown flag).
pub fn parse_native_args() -> NativeOpts {
    let mut opts = NativeOpts {
        quick: std::env::var("ASF_QUICK").is_ok_and(|v| v != "0"),
        ..Default::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--crossval" => opts.crossval = true,
            "--metrics" => {
                opts.metrics = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--metrics needs a path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "native_bench [--quick] [--crossval] [--metrics PATH]\n\
                     \n\
                     Runs the native asymmetric-fence kernels under every fence\n\
                     pair; --crossval joins the ranking against the simulator's.\n\
                     ASF_NATIVE_BACKEND=fallback forces the seqcst fallback."
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn write_metrics(path: &str, rows: &[NativeRow], quick: bool, total_wall_ns: u64) {
    let deterministic = telemetry::deterministic_from_env();
    let mut snap = BenchSnapshot::new(&label_from_path(path));
    snap.deterministic = deterministic;
    snap.quick = quick;
    snap.backend = Some(backend().label().to_string());
    snap.total_wall_ns = if deterministic { 0 } else { total_wall_ns };
    snap.peak_rss_bytes = if deterministic {
        0
    } else {
        telemetry::peak_rss_bytes().unwrap_or(0)
    };
    for row in rows {
        let mut e = MetricEntry::new("native", row.kernel.name(), row.pair.name());
        e.runs = 1;
        e.ops = row.ops;
        e.aborts = row.aborts;
        if !deterministic {
            e.wall_ns = row.wall_ns;
            e.task_wall_min_ns = row.wall_ns;
            e.task_wall_max_ns = row.wall_ns;
            e.ns_per_op = row.ns_per_op();
        }
        snap.entries.push(e);
    }
    match std::fs::write(path, snap.to_json() + "\n") {
        Ok(()) => eprintln!("metrics snapshot written to {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// Entry point for the `native_bench` binary; returns the process exit
/// code (nonzero when any kernel self-check failed).
pub fn main_impl(opts: &NativeOpts) -> i32 {
    let start = Instant::now();
    let b = backend();
    println!("== native asymmetric-fence benchmark ==");
    println!("backend: {}", b.label());
    let cost = heavy_fence_cost_ns(if opts.quick { 512 } else { 4096 });
    println!(
        "heavy_fence round-trip: {cost:.0} ns mean ({}); light_fence: {}",
        match b {
            FenceBackend::Membarrier => "membarrier PRIVATE_EXPEDITED",
            FenceBackend::SeqCstFallback => "fence(SeqCst) fallback",
        },
        match b {
            FenceBackend::Membarrier => "compiler-only (zero instructions)",
            FenceBackend::SeqCstFallback => "escalated to fence(SeqCst)",
        }
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("kernel threads: 2, host cpus: {cores}, pinning: none");
    println!();

    let mut rows = Vec::new();
    for kernel in NativeKernel::ALL {
        for pair in PairKind::ALL {
            rows.push(run_cell(kernel, pair, opts.quick));
        }
    }

    let mut t = Table::new(vec![
        "kernel", "pair", "sim design", "ops", "ns/op", "aborts", "violations",
    ]);
    for r in &rows {
        t.row(vec![
            r.kernel.name().to_string(),
            r.pair.name().to_string(),
            r.pair.sim_design().to_string(),
            r.ops.to_string(),
            format!("{:.1}", r.ns_per_op()),
            r.aborts.to_string(),
            r.violations.to_string(),
        ]);
    }
    println!("{}", t.to_markdown());

    if opts.crossval {
        println!("== sim-vs-silicon cross-validation ==");
        println!(
            "speedups are cost ratios (>1 = the asymmetric/weak side wins):\n\
             native = all-heavy ns/op over asymmetric ns/op, sim = S+ cost\n\
             over W+ (and WS+) simulated cost for the counterpart workload.\n\
             The verdict judges native against the best of W+/WS+ — the\n\
             native pair weakens only critical sites, which WS+ models\n\
             more closely than the all-weak W+."
        );
        let mut t = Table::new(vec![
            "kernel",
            "sim counterpart",
            "native asym/all-heavy",
            "native asym/seqcst",
            "sim W+/S+",
            "sim WS+/S+",
            "verdict",
        ]);
        for kernel in NativeKernel::ALL {
            let ns = |pair: PairKind| {
                rows.iter()
                    .find(|r| r.kernel == kernel && r.pair == pair)
                    .map(NativeRow::ns_per_op)
                    .unwrap_or(0.0)
            };
            let native_speedup = ns(PairKind::AllHeavy) / ns(PairKind::Asymmetric);
            let native_vs_seqcst = ns(PairKind::HwSeqCst) / ns(PairKind::Asymmetric);
            let s_cost = sim_cost(kernel, FenceDesign::SPlus, opts.quick);
            let w_speedup = s_cost / sim_cost(kernel, FenceDesign::WPlus, opts.quick);
            let ws_speedup = s_cost / sim_cost(kernel, FenceDesign::WsPlus, opts.quick);
            t.row(vec![
                kernel.name().to_string(),
                kernel.sim_counterpart().to_string(),
                format!("{native_speedup:.2}x"),
                format!("{native_vs_seqcst:.2}x"),
                format!("{w_speedup:.2}x"),
                format!("{ws_speedup:.2}x"),
                verdict(native_speedup, w_speedup.max(ws_speedup)),
            ]);
        }
        println!("{}", t.to_markdown());
        if cores < 2 {
            println!(
                "note: single host cpu — native wall-clock includes timeslice\n\
                 effects; rankings remain meaningful, magnitudes are noisy."
            );
        }
    }

    if let Some(path) = &opts.metrics {
        write_metrics(path, &rows, opts.quick, start.elapsed().as_nanos() as u64);
    }

    let violations: u64 = rows.iter().map(|r| r.violations).sum();
    if violations > 0 {
        eprintln!("FATAL: {violations} kernel self-check violation(s)");
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_self_check_cleanly() {
        for kernel in NativeKernel::ALL {
            let r = run_cell(kernel, PairKind::Asymmetric, true);
            assert_eq!(r.violations, 0, "{}", kernel.name());
            assert!(r.ops > 0);
            assert!(r.wall_ns > 0);
        }
    }

    #[test]
    fn sim_cost_orders_designs_sanely() {
        // W+ must not be more expensive than all-strong S+ on the
        // owner-dominated deque (the paper's headline result).
        let s = sim_cost(NativeKernel::Deque, FenceDesign::SPlus, true);
        let w = sim_cost(NativeKernel::Deque, FenceDesign::WPlus, true);
        assert!(s > 0.0 && w > 0.0);
        assert!(w <= s, "W+ ({w}) slower than S+ ({s}) on wsq");
    }

    #[test]
    fn verdicts_cover_the_quadrants() {
        assert_eq!(verdict(1.5, 1.5), "agree (both faster)");
        assert_eq!(verdict(0.5, 0.5), "agree (both slower)");
        assert!(verdict(1.0, 1.5).starts_with("mixed"));
        assert!(verdict(0.5, 1.5).starts_with("DISAGREE"));
    }

    #[test]
    fn kernel_labels_are_stable() {
        for k in NativeKernel::ALL {
            assert!(!k.name().is_empty());
            assert!(!k.sim_counterpart().is_empty());
        }
    }
}
