//! Tiny in-repo argument parser shared by every bench binary.
//!
//! All nine harness binaries accept the same flags:
//!
//! ```text
//! --jobs N          worker threads (default: ASF_JOBS, then all cores)
//! --designs LIST    comma-separated designs to report (s+,ws+,sw+,w+,wee);
//!                   S+ always runs as the normalization baseline
//! --filter SUBSTR   only workloads whose name contains SUBSTR
//! --quick           ~4x smaller pass (same as ASF_QUICK=1)
//! --trace PATH      re-run one workload per design with the fence
//!                   trace on and write Chrome-trace JSON to PATH
//! --metrics PATH    write a harness-telemetry BenchSnapshot (JSON) to
//!                   PATH when the run finishes (see `perfdiff`)
//! --help            usage
//! ```

use asymfence::prelude::FenceDesign;
use asymfence_common::telemetry;

use crate::metrics::Collector;
use crate::runner::Runner;
use crate::DESIGNS;

/// Parsed shared options (everything but the worker count, which lives
/// in the [`Runner`]).
#[derive(Clone, Debug, Default)]
pub struct Opts {
    /// `--quick` / `ASF_QUICK=1`: shrink workloads ~4x.
    pub quick: bool,
    /// `--designs`: reported designs; `None` means the paper's default
    /// set ([`DESIGNS`]).
    pub designs: Option<Vec<FenceDesign>>,
    /// `--filter`: workload-name substring filter.
    pub filter: Option<String>,
    /// `--trace`: write a Chrome-trace JSON of one representative run
    /// per design to this path. Off by default; never changes the
    /// figure output (the histogram report goes to stderr).
    pub trace: Option<String>,
    /// `--metrics`: write a harness-telemetry
    /// [`BenchSnapshot`](asymfence_common::telemetry::BenchSnapshot)
    /// JSON to this path when the run finishes. Off by default; never
    /// changes the figure output (the snapshot note goes to stderr).
    pub metrics: Option<String>,
    /// `--micro N`: skip the figures and run the kernel microbenchmark
    /// instead — one fixed workload/design simulated `N` times on this
    /// thread's pooled machine, with per-rep and aggregate simulated
    /// cycles/s reported to stderr (see [`crate::micro`]).
    pub micro: Option<u64>,
}

impl Opts {
    /// Options for a run with no CLI flags (environment only).
    pub fn from_env() -> Self {
        Opts {
            quick: crate::quick(),
            ..Default::default()
        }
    }

    /// The designs to report, S+ (the normalization baseline) always
    /// first and always present.
    pub fn design_list(&self) -> Vec<FenceDesign> {
        match &self.designs {
            None => DESIGNS.to_vec(),
            Some(ds) => {
                let mut v = vec![FenceDesign::SPlus];
                for &d in ds {
                    if !v.contains(&d) {
                        v.push(d);
                    }
                }
                v
            }
        }
    }

    /// Whether a design passes `--designs` (S+ always does: it is the
    /// baseline every figure normalizes to).
    pub fn keep_design(&self, d: FenceDesign) -> bool {
        d == FenceDesign::SPlus || self.designs.as_ref().is_none_or(|ds| ds.contains(&d))
    }

    /// Whether a workload name passes `--filter`.
    pub fn keep(&self, name: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| name.contains(f.as_str()))
    }
}

/// Parses one design token (`s+`, `WS+`, `wee`, ...).
pub fn parse_design(tok: &str) -> Option<FenceDesign> {
    Some(match tok.to_ascii_lowercase().as_str() {
        "s+" | "splus" => FenceDesign::SPlus,
        "ws+" | "wsplus" => FenceDesign::WsPlus,
        "sw+" | "swplus" => FenceDesign::SwPlus,
        "w+" | "wplus" => FenceDesign::WPlus,
        "wee" => FenceDesign::Wee,
        _ => return None,
    })
}

/// Pure parse of an argument list. Returns `(explicit jobs, opts)` or an
/// error message; `Ok(None)` for jobs means "use the environment".
pub fn parse_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<(Option<usize>, Opts), String> {
    let args: Vec<String> = args.into_iter().collect();
    let mut jobs = None;
    let mut opts = Opts::from_env();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--jobs" => {
                jobs = Some(
                    value(i)?
                        .parse::<usize>()
                        .map_err(|_| "--jobs needs a number".to_string())?,
                );
                i += 2;
            }
            "--designs" => {
                let mut ds = Vec::new();
                for tok in value(i)?.split(',').filter(|t| !t.is_empty()) {
                    ds.push(
                        parse_design(tok).ok_or_else(|| format!("unknown design `{tok}`"))?,
                    );
                }
                opts.designs = Some(ds);
                i += 2;
            }
            "--filter" => {
                opts.filter = Some(value(i)?.clone());
                i += 2;
            }
            "--trace" => {
                opts.trace = Some(value(i)?.clone());
                i += 2;
            }
            "--metrics" => {
                opts.metrics = Some(value(i)?.clone());
                i += 2;
            }
            "--micro" => {
                let n = value(i)?
                    .parse::<u64>()
                    .map_err(|_| "--micro needs a repetition count".to_string())?;
                if n == 0 {
                    return Err("--micro needs at least one repetition".to_string());
                }
                opts.micro = Some(n);
                i += 2;
            }
            "--quick" => {
                opts.quick = true;
                i += 1;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((jobs, opts))
}

/// Usage text shared by the bench binaries.
pub fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--jobs N] [--designs s+,ws+,sw+,w+,wee] [--filter SUBSTR] [--quick] [--trace PATH] [--metrics PATH] [--micro N]\n\
         \x20 --jobs N        worker threads (default: ASF_JOBS, then all cores)\n\
         \x20 --designs LIST  designs to report (S+ always runs as the baseline)\n\
         \x20 --filter SUBSTR only workloads whose name contains SUBSTR\n\
         \x20 --quick         ~4x smaller pass (same as ASF_QUICK=1)\n\
         \x20 --trace PATH    write a Perfetto-loadable fence trace to PATH\n\
         \x20 --metrics PATH  write a harness-telemetry snapshot (JSON) to PATH;\n\
         \x20                 compare snapshots with `perfdiff` (ASF_TELEMETRY_DETERMINISTIC=1\n\
         \x20                 masks wall-clock for byte-stable baselines)\n\
         \x20 --micro N       kernel microbenchmark: simulate one fixed workload N\n\
         \x20                 times on the pooled machine, cycles/s to stderr\n\
         progress lines go to stderr; ASF_PROGRESS=0 silences, =1 forces"
    )
}

/// Parses `std::env::args` for a bench binary, exiting with usage on
/// `--help` or a bad flag. Returns the configured [`Runner`] and the
/// shared [`Opts`].
pub fn parse(bin: &str) -> (Runner, Opts) {
    match parse_args(std::env::args().skip(1)) {
        Ok((jobs, opts)) => {
            let mut runner = Runner::new(jobs);
            if opts.metrics.is_some() {
                runner = runner.with_collector(std::sync::Arc::new(Collector::new(
                    telemetry::deterministic_from_env(),
                )));
            }
            (runner, opts)
        }
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage(bin));
                std::process::exit(0);
            }
            eprintln!("{msg}\n{}", usage(bin));
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_all_flags() {
        let (jobs, opts) = parse_args(s(&[
            "--jobs", "4", "--designs", "ws+,w+", "--filter", "fib", "--quick", "--trace",
            "out.json", "--metrics", "metrics.json",
        ]))
        .unwrap();
        assert_eq!(jobs, Some(4));
        assert!(opts.quick);
        assert_eq!(opts.filter.as_deref(), Some("fib"));
        assert_eq!(opts.trace.as_deref(), Some("out.json"));
        assert_eq!(opts.metrics.as_deref(), Some("metrics.json"));
        assert_eq!(
            opts.design_list(),
            vec![FenceDesign::SPlus, FenceDesign::WsPlus, FenceDesign::WPlus]
        );
        assert!(opts.keep("fib") && !opts.keep("cholesky"));
        assert!(opts.keep_design(FenceDesign::SPlus));
        assert!(opts.keep_design(FenceDesign::WPlus));
        assert!(!opts.keep_design(FenceDesign::Wee));
    }

    #[test]
    fn defaults_keep_everything() {
        let (jobs, opts) = parse_args(s(&[])).unwrap();
        assert_eq!(jobs, None);
        assert_eq!(opts.design_list(), DESIGNS.to_vec());
        assert!(opts.keep("anything"));
        assert!(opts.keep_design(FenceDesign::Wee));
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(parse_args(s(&["--frobnicate"])).is_err());
        assert!(parse_args(s(&["--jobs", "many"])).is_err());
        assert!(parse_args(s(&["--jobs"])).is_err());
        assert!(parse_args(s(&["--designs", "q+"])).is_err());
        assert!(parse_args(s(&["--trace"])).is_err());
        assert!(parse_args(s(&["--metrics"])).is_err());
    }

    #[test]
    fn trace_and_metrics_default_off() {
        let (_, opts) = parse_args(s(&[])).unwrap();
        assert!(opts.trace.is_none());
        assert!(opts.metrics.is_none());
        assert!(opts.micro.is_none());
    }

    #[test]
    fn micro_needs_a_positive_count() {
        let (_, opts) = parse_args(s(&["--micro", "5"])).unwrap();
        assert_eq!(opts.micro, Some(5));
        assert!(parse_args(s(&["--micro", "0"])).is_err());
        assert!(parse_args(s(&["--micro", "lots"])).is_err());
        assert!(parse_args(s(&["--micro"])).is_err());
    }

    #[test]
    fn design_tokens_are_case_insensitive() {
        assert_eq!(parse_design("WS+"), Some(FenceDesign::WsPlus));
        assert_eq!(parse_design("wee"), Some(FenceDesign::Wee));
        assert_eq!(parse_design("x"), None);
    }
}
