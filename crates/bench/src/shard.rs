//! Sharded sweep execution: the grid, the partition, and the
//! crash-safe shard loop.
//!
//! A sweep grid is a flat, deterministically ordered list of
//! [`SweepCell`]s — `(global index, section, RunSpec)` — built by
//! [`grid`]. The [`Shard`] from `asymfence_common::par` partitions it
//! round-robin by index, so ownership is a pure function of
//! `(index, shards)` and a resumed shard recomputes exactly the cells it
//! owned before a crash.
//!
//! [`run_shard`] is the per-process loop: recover/truncate this shard's
//! ledger file, replay it to learn which owned cells are already
//! durable, append a [`ClaimRecord`], then execute the remaining cells
//! in index order through [`Runner::run_traced`] in small chunks —
//! journaling a [`CellRecord`](asymfence_common::ledger::CellRecord)
//! per cell and a [`HeartbeatRecord`] per
//! chunk, and refreshing sibling progress from their ledgers so the
//! progress line shows fleet-merged counts. A SIGKILL at *any* byte
//! boundary loses at most the un-journaled cells of the current chunk;
//! the next life re-runs exactly those (runs are deterministic, so a
//! duplicate record — possible only if the kill lands between execution
//! and journaling — is byte-identical and deduped at merge).

use std::path::Path;
use std::sync::Arc;

use asymfence::prelude::FenceRole;
use asymfence_common::ledger::{
    append_record, recover_for_append, shard_path, ClaimRecord, DoneRecord, HeartbeatRecord,
    Record,
};
use asymfence_common::par::Shard;
use asymfence_common::telemetry::{self, Stopwatch};
use asymfence_workloads::cilk::CilkApp;
use asymfence_workloads::sites::SiteBench;
use asymfence_workloads::ustm::UstmBench;

use crate::ledger::{cell_record, read_dir_logs};
use crate::runner::{FleetProgress, LitmusCase, RunSpec, Runner};
use crate::{DESIGNS, SEED, USTM_WINDOW};

/// Cells completed between heartbeat records (the ledger's progress
/// granularity; also the bound on work a SIGKILL can lose).
pub const HEARTBEAT_CELLS: usize = 8;

/// Test/CI knob: milliseconds to sleep after *each* cell, shrinking the
/// chunk size to 1 so a kill lands in a deterministic window. Unset in
/// normal operation.
pub const CELL_DELAY_ENV: &str = "ASF_SWEEP_CELL_DELAY_MS";

/// One cell of the sweep grid.
#[derive(Clone, Copy, Debug)]
pub struct SweepCell {
    /// Global grid index (the sharding and merge key).
    pub index: u64,
    /// Report section the cell belongs to.
    pub section: &'static str,
    /// The simulation.
    pub spec: RunSpec,
}

/// Builds the sweep grid, in deterministic order: a litmus matrix, a
/// CilkApp slice, a ustm slice and the synthesis benchmarks, each
/// crossed with [`DESIGNS`]. The grid depends only on `quick` — never
/// on the shard — so every shard (and every resumed life of one)
/// constructs the identical list.
pub fn grid(quick: bool) -> Vec<SweepCell> {
    use FenceRole::Critical;
    let mut cells = Vec::new();
    let push = |section: &'static str, spec: RunSpec, cells: &mut Vec<SweepCell>| {
        cells.push(SweepCell {
            index: cells.len() as u64,
            section,
            spec,
        });
    };

    let litmus = [
        LitmusCase::StoreBuffering { fences: None },
        LitmusCase::StoreBuffering {
            fences: Some((Critical, Critical)),
        },
        LitmusCase::ThreeThreadCycle {
            roles: [Critical; 3],
        },
        LitmusCase::FalseSharingPair {
            roles: (Critical, Critical),
        },
        LitmusCase::MessagePassing { fences: None },
        LitmusCase::MessagePassing {
            fences: Some((Critical, Critical)),
        },
        LitmusCase::LoadBuffering,
        LitmusCase::Iriw,
    ];
    for case in litmus {
        for design in DESIGNS {
            push("litmus", RunSpec::litmus(case, design, SEED), &mut cells);
        }
    }

    let (cilk_apps, cilk_cores): (&[CilkApp], usize) = if quick {
        (&[CilkApp::Fib, CilkApp::Bucket], 4)
    } else {
        (&[CilkApp::Fib, CilkApp::Bucket, CilkApp::Matmul], 8)
    };
    for &app in cilk_apps {
        for design in DESIGNS {
            push(
                "cilk",
                RunSpec::cilk(app, design, cilk_cores, SEED),
                &mut cells,
            );
        }
    }

    let (ustm_benches, ustm_cores, window): (&[UstmBench], usize, u64) = if quick {
        (&[UstmBench::Counter, UstmBench::Hash], 4, USTM_WINDOW / 8)
    } else {
        (
            &[UstmBench::Counter, UstmBench::Hash, UstmBench::Tree],
            8,
            USTM_WINDOW / 2,
        )
    };
    for &bench in ustm_benches {
        for design in DESIGNS {
            push(
                "ustm",
                RunSpec::ustm(bench, design, ustm_cores, SEED, window),
                &mut cells,
            );
        }
    }

    let sites: &[SiteBench] = if quick {
        &SiteBench::ALL[..2]
    } else {
        &SiteBench::ALL
    };
    for &bench in sites {
        for design in DESIGNS {
            push("sites", RunSpec::sites(bench, design, SEED), &mut cells);
        }
    }
    cells
}

/// The grid label journaled in claims, so a ledger directory rejects a
/// mix of quick and full shards.
pub fn grid_label(quick: bool) -> &'static str {
    if quick {
        "quick"
    } else {
        "full"
    }
}

/// What [`run_shard`] did, for the driver's summary line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardSummary {
    /// Cells this shard owns.
    pub owned: u64,
    /// Cells executed in this life (0 = everything was already durable).
    pub executed: u64,
    /// Cells recovered from the ledger (prior lives).
    pub recovered: u64,
    /// Which resume this life was (0 = first start).
    pub resume: u64,
    /// Torn bytes truncated during recovery.
    pub torn_bytes: u64,
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn cell_delay_from_env() -> Option<u64> {
    std::env::var(CELL_DELAY_ENV).ok()?.parse().ok()
}

/// Sum of distinct completed cell indices across *other* shards'
/// ledgers, for fleet-merged progress lines. Best-effort: unreadable
/// sibling files count as zero rather than failing the run.
fn remote_done(dir: &Path, me: u64) -> u64 {
    read_dir_logs(dir)
        .unwrap_or_default()
        .iter()
        .filter(|(id, _)| *id != me)
        .map(|(_, log)| {
            let mut idx: Vec<u64> = log.cells.iter().map(|c| c.index).collect();
            idx.sort_unstable();
            idx.dedup();
            idx.len() as u64
        })
        .sum()
}

/// Executes one shard of `cells` against the ledger directory `dir`,
/// resuming from any durable prefix left by a previous life. See the
/// module docs for the protocol. The grid passed in must be the full
/// (unsharded) grid; this function applies the partition.
pub fn run_shard(
    dir: &Path,
    shard: Shard,
    cells: &[SweepCell],
    grid: &str,
    quick: bool,
    jobs: Option<usize>,
) -> Result<ShardSummary, String> {
    let deterministic = telemetry::deterministic_from_env();
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = shard_path(dir, shard.id);
    let (log, mut file) = recover_for_append(&path)?;

    // A resumed shard must be re-invoked with the same partition and
    // grid; anything else would corrupt the merge.
    for claim in &log.claims {
        if claim.shards != shard.count || claim.cells != cells.len() as u64 || claim.grid != grid {
            return Err(format!(
                "{}: prior claim ran {} shards / {} cells / grid `{}`, \
                 this invocation wants {} / {} / `{}`",
                path.display(),
                claim.shards,
                claim.cells,
                claim.grid,
                shard.count,
                cells.len(),
                grid
            ));
        }
    }

    let mut durable: Vec<u64> = log.cells.iter().map(|c| c.index).collect();
    durable.sort_unstable();
    durable.dedup();
    let owned: Vec<&SweepCell> = cells.iter().filter(|c| shard.owns(c.index)).collect();
    let pending: Vec<&SweepCell> = owned
        .iter()
        .copied()
        .filter(|c| durable.binary_search(&c.index).is_err())
        .collect();
    let recovered = (owned.len() - pending.len()) as u64;
    let resume = log.claims.len() as u64;

    append_record(
        &mut file,
        &Record::Claim(ClaimRecord {
            shard: shard.id,
            shards: shard.count,
            grid: grid.to_string(),
            cells: cells.len() as u64,
            owned: owned.len() as u64,
            resume,
            deterministic,
            quick,
            pid: std::process::id() as u64,
        }),
    )?;

    let fleet = Arc::new(FleetProgress::new(
        cells.len() as u64,
        owned.len() as u64,
        recovered,
    ));
    fleet.set_remote_done(remote_done(dir, shard.id));
    let runner = Runner::new(jobs).with_fleet(Arc::clone(&fleet));

    let delay_ms = cell_delay_from_env();
    let chunk = if delay_ms.is_some() { 1 } else { HEARTBEAT_CELLS };
    let life = Stopwatch::start();
    // Simulated cycles carried over from prior lives, so heartbeat
    // throughput reflects the shard's whole ledger.
    let mut sim_cycles: u64 = log.cells.iter().map(|c| c.cycles).sum();
    let mut done = recovered;

    for batch in pending.chunks(chunk) {
        let specs: Vec<RunSpec> = batch.iter().map(|c| c.spec).collect();
        let outs = runner.run_traced(&specs);
        for (cell, (result, wall_ns, sink)) in batch.iter().zip(&outs) {
            let rec = cell_record(cell, result, *wall_ns, sink, deterministic);
            sim_cycles += rec.cycles;
            append_record(&mut file, &Record::Cell(Box::new(rec)))?;
            done += 1;
            if let Some(ms) = delay_ms {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
        append_record(
            &mut file,
            &Record::Heartbeat(HeartbeatRecord {
                shard: shard.id,
                done,
                owned: owned.len() as u64,
                sim_cycles,
                wall_ns: life.elapsed_ns(),
                peak_rss_bytes: telemetry::peak_rss_bytes().unwrap_or(0),
                ts_ms: now_ms(),
            }),
        )?;
        fleet.set_remote_done(remote_done(dir, shard.id));
    }

    append_record(
        &mut file,
        &Record::Done(DoneRecord {
            shard: shard.id,
            done,
            wall_ns: life.elapsed_ns(),
        }),
    )?;

    Ok(ShardSummary {
        owned: owned.len() as u64,
        executed: pending.len() as u64,
        recovered,
        resume,
        torn_bytes: log.torn_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_deterministic_and_indexed_contiguously() {
        let a = grid(true);
        let b = grid(true);
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.index, i as u64);
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.section, y.section);
        }
        // The quick grid: 8 litmus × 4 + 2 cilk × 4 + 2 ustm × 4 + 2
        // sites × 4.
        assert_eq!(a.len(), 56);
        assert!(grid(false).len() > a.len());
    }

    #[test]
    fn grid_sections_appear_in_report_order() {
        let cells = grid(true);
        let mut seen = Vec::new();
        for c in &cells {
            if seen.last() != Some(&c.section) {
                seen.push(c.section);
            }
        }
        assert_eq!(seen, vec!["litmus", "cilk", "ustm", "sites"]);
    }

    #[test]
    fn shards_partition_the_grid_exactly() {
        let cells = grid(true);
        let n = 3;
        let mut covered = vec![0u32; cells.len()];
        for id in 0..n {
            let s = Shard::new(id, n);
            for c in cells.iter().filter(|c| s.owns(c.index)) {
                covered[c.index as usize] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "each cell owned exactly once");
    }
}
