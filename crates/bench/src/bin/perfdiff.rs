//! Compares two `--metrics` snapshots and gates on regressions.
//!
//! ```text
//! perfdiff BASE.json NEW.json [--wall-tolerance PCT] [--check]
//! perfdiff SNAP.json --throughput-floor CPS [NEW.json ...]
//! ```
//!
//! Loads two [`BenchSnapshot`]s, aligns their (section, workload,
//! design) cells, and reports deltas. Deterministic quantities —
//! simulation counters, derived ratios, fence-latency percentiles — are
//! compared exactly (any drift is a behaviour change, not noise);
//! wall-clock is gated at ±`--wall-tolerance` percent (default 50) and
//! skipped where a side was masked to 0 by deterministic mode. Missing
//! or extra cells and schema-version drift are failures.
//!
//! `--throughput-floor CPS` additionally gates absolute simulator speed:
//! the last snapshot given must show at least `CPS` simulated cycles per
//! wall-second in aggregate (sum of per-cell `sim_cycles` over the
//! snapshot's total wall-clock). With a single path, only the floor is
//! checked — no baseline needed. The snapshot must carry real wall-clock
//! (collected *without* `ASF_TELEMETRY_DETERMINISTIC=1`); a masked
//! snapshot is a usage error, since a floor over masked time would pass
//! vacuously.
//!
//! Exit status: `0` clean, `1` on any breach, `2` on usage/parse errors.
//! `--check` is accepted for CI readability; gating is always on.

use std::process::exit;

use asymfence_common::telemetry::{diff, BenchSnapshot, DiffOptions};

const USAGE: &str = "usage: perfdiff BASE.json NEW.json [--wall-tolerance PCT] [--check]\n\
       perfdiff SNAP.json --throughput-floor CPS [NEW.json ...]\n\
   compares two --metrics snapshots; exit 0 clean, 1 on breach, 2 on usage error\n\
   counters/derived/percentiles gate exactly, wall-clock at +-PCT% (default 50,\n\
   skipped where a side is 0, i.e. written under ASF_TELEMETRY_DETERMINISTIC=1)\n\
   --throughput-floor CPS also requires the (last) snapshot to sustain CPS\n\
   simulated cycles per wall-second; needs unmasked wall-clock";

fn load(path: &str) -> BenchSnapshot {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perfdiff: cannot read {path}: {e}");
        exit(2);
    });
    BenchSnapshot::parse(&text).unwrap_or_else(|e| {
        eprintln!("perfdiff: {path}: {e}");
        exit(2);
    })
}

/// Aggregate simulated cycles per wall-second across a snapshot.
fn throughput(snap: &BenchSnapshot) -> f64 {
    let cycles: u64 = snap.entries.iter().map(|e| e.sim_cycles).sum();
    cycles as f64 * 1e9 / snap.total_wall_ns as f64
}

fn check_floor(snap: &BenchSnapshot, floor: f64) -> bool {
    if snap.total_wall_ns == 0 {
        eprintln!(
            "perfdiff: `{}` has masked wall-clock (ASF_TELEMETRY_DETERMINISTIC); \
             a throughput floor needs a snapshot collected with real timing\n{USAGE}",
            snap.label
        );
        exit(2);
    }
    let got = throughput(snap);
    println!(
        "perfdiff: `{}` throughput {:.2}M cycles/s vs floor {:.2}M cycles/s",
        snap.label,
        got / 1e6,
        floor / 1e6
    );
    if got < floor {
        println!("  BREACH: throughput below floor");
        return false;
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut opts = DiffOptions::default();
    let mut floor: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--wall-tolerance" => {
                let pct: f64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("perfdiff: --wall-tolerance needs a percentage\n{USAGE}");
                        exit(2);
                    });
                opts.wall_tolerance = pct / 100.0;
                i += 2;
            }
            "--throughput-floor" => {
                let cps: f64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|v: &f64| *v > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!(
                            "perfdiff: --throughput-floor needs cycles/s (positive)\n{USAGE}"
                        );
                        exit(2);
                    });
                floor = Some(cps);
                i += 2;
            }
            "--check" => i += 1,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            flag if flag.starts_with("--") => {
                eprintln!("perfdiff: unknown flag `{flag}`\n{USAGE}");
                exit(2);
            }
            path => {
                paths.push(path);
                i += 1;
            }
        }
    }
    let floor_only = floor.is_some() && paths.len() == 1;
    if paths.len() != 2 && !floor_only {
        eprintln!("{USAGE}");
        exit(2);
    }

    let mut clean = true;
    if paths.len() == 2 {
        let base = load(paths[0]);
        let new = load(paths[1]);
        println!(
            "perfdiff: base `{}` ({} entries) vs new `{}` ({} entries)",
            base.label,
            base.entries.len(),
            new.label,
            new.entries.len()
        );
        let report = diff(&base, &new, &opts);
        for note in &report.notes {
            println!("  note: {note}");
        }
        for breach in &report.breaches {
            println!("  BREACH: {breach}");
        }
        println!(
            "perfdiff: {} cells compared, {} breach(es), {} note(s)",
            report.compared,
            report.breaches.len(),
            report.notes.len()
        );
        clean = report.clean();
        if let Some(floor) = floor {
            clean &= check_floor(&new, floor);
        }
    } else if let Some(floor) = floor {
        clean = check_floor(&load(paths[0]), floor);
    }
    if !clean {
        exit(1);
    }
}
