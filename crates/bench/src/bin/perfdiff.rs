//! Compares two `--metrics` snapshots and gates on regressions.
//!
//! ```text
//! perfdiff BASE.json NEW.json [--wall-tolerance PCT] [--check]
//! ```
//!
//! Loads two [`BenchSnapshot`]s, aligns their (section, workload,
//! design) cells, and reports deltas. Deterministic quantities —
//! simulation counters, derived ratios, fence-latency percentiles — are
//! compared exactly (any drift is a behaviour change, not noise);
//! wall-clock is gated at ±`--wall-tolerance` percent (default 50) and
//! skipped where a side was masked to 0 by deterministic mode. Missing
//! or extra cells and schema-version drift are failures.
//!
//! Exit status: `0` clean, `1` on any breach, `2` on usage/parse errors.
//! `--check` is accepted for CI readability; gating is always on.

use std::process::exit;

use asymfence_common::telemetry::{diff, BenchSnapshot, DiffOptions};

const USAGE: &str = "usage: perfdiff BASE.json NEW.json [--wall-tolerance PCT] [--check]\n\
   compares two --metrics snapshots; exit 0 clean, 1 on breach, 2 on usage error\n\
   counters/derived/percentiles gate exactly, wall-clock at +-PCT% (default 50,\n\
   skipped where a side is 0, i.e. written under ASF_TELEMETRY_DETERMINISTIC=1)";

fn load(path: &str) -> BenchSnapshot {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perfdiff: cannot read {path}: {e}");
        exit(2);
    });
    BenchSnapshot::parse(&text).unwrap_or_else(|e| {
        eprintln!("perfdiff: {path}: {e}");
        exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut opts = DiffOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--wall-tolerance" => {
                let pct: f64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("perfdiff: --wall-tolerance needs a percentage\n{USAGE}");
                        exit(2);
                    });
                opts.wall_tolerance = pct / 100.0;
                i += 2;
            }
            "--check" => i += 1,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            flag if flag.starts_with("--") => {
                eprintln!("perfdiff: unknown flag `{flag}`\n{USAGE}");
                exit(2);
            }
            path => {
                paths.push(path);
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        eprintln!("{USAGE}");
        exit(2);
    }
    let base = load(paths[0]);
    let new = load(paths[1]);

    println!(
        "perfdiff: base `{}` ({} entries) vs new `{}` ({} entries)",
        base.label,
        base.entries.len(),
        new.label,
        new.entries.len()
    );
    let report = diff(&base, &new, &opts);
    for note in &report.notes {
        println!("  note: {note}");
    }
    for breach in &report.breaches {
        println!("  BREACH: {breach}");
    }
    println!(
        "perfdiff: {} cells compared, {} breach(es), {} note(s)",
        report.compared,
        report.breaches.len(),
        report.notes.len()
    );
    if !report.clean() {
        exit(1);
    }
}
