//! Figure 10: per-transaction breakdown of processor cycles for the ustm
//! microbenchmarks (busy / other-stall / fence-stall), normalized to S+.

use asymfence::prelude::FenceDesign;
use asymfence_bench::{f2, mean, pct, run_ustm, Table, DESIGNS, SEED, USTM_WINDOW};
use asymfence_workloads::ustm::UstmBench;

fn main() {
    let cores = 8;
    let window = if asymfence_bench::quick() {
        USTM_WINDOW / 4
    } else {
        USTM_WINDOW
    };
    println!("# Figure 10 — ustm per-transaction processor cycles (normalized to S+)\n");
    let mut t = Table::new(vec![
        "bench", "design", "cycles/txn", "norm", "busy", "other-stall", "fence-stall",
    ]);
    let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); DESIGNS.len()];
    let mut splus_fence_share = Vec::new();
    let benches: &[UstmBench] = if asymfence_bench::quick() {
        &[UstmBench::Counter, UstmBench::Hash, UstmBench::Tree]
    } else {
        &UstmBench::ALL
    };
    for &bench in benches {
        let per_txn = |r: &asymfence_bench::RunResult| {
            let a = r.stats.aggregate();
            let active = a.busy_cycles + a.fence_stall_cycles + a.other_stall_cycles;
            active as f64 / r.commits.max(1) as f64
        };
        let base = run_ustm(bench, FenceDesign::SPlus, cores, SEED, window);
        let base_txn = per_txn(&base);
        splus_fence_share.push(base.breakdown().1);
        for (di, &design) in DESIGNS.iter().enumerate() {
            let r = if design == FenceDesign::SPlus {
                base.clone()
            } else {
                run_ustm(bench, design, cores, SEED, window)
            };
            let txn = per_txn(&r);
            let norm = txn / base_txn;
            per_design[di].push(norm);
            let (busy, fence, other) = r.breakdown();
            t.row(vec![
                bench.name().to_string(),
                design.label().to_string(),
                f2(txn),
                f2(norm),
                pct(busy),
                pct(other),
                pct(fence),
            ]);
        }
    }
    t.emit("fig10_ustm_breakdown");
    println!("## Averages");
    println!(
        "S+ fence-stall share: {} (paper: ~54%)",
        pct(mean(&splus_fence_share))
    );
    println!("(paper: WS+ -24%, W+ -35%, Wee -11% cycles per transaction)");
    for (di, &design) in DESIGNS.iter().enumerate() {
        println!(
            "{:>4}: mean normalized cycles/transaction {}",
            design.label(),
            f2(mean(&per_design[di]))
        );
    }
}
