//! Figure 10 — ustm per-transaction cycle breakdown.
//!
//! Thin wrapper over [`asymfence_bench::figures::fig10`]; all flag
//! handling lives in [`asymfence_bench::cli`] and all simulation in the
//! shared run engine ([`asymfence_bench::runner`]).

use asymfence_bench::{cli, figures, metrics, ReportSink};

fn main() {
    let (runner, opts) = cli::parse("fig10_ustm_breakdown");
    figures::fig10(&runner, &opts, &mut ReportSink::stdout());
    metrics::write_if_requested(&runner, &opts);
}
