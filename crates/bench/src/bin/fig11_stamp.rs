//! Figure 11: STAMP execution time, normalized to S+, with the cycle
//! breakdown.

use asymfence::prelude::FenceDesign;
use asymfence_bench::{f2, mean, pct, run_stamp, Table, DESIGNS, SEED};
use asymfence_workloads::stamp::StampApp;

fn main() {
    let cores = 8;
    println!("# Figure 11 — STAMP execution time (normalized to S+), {cores} cores\n");
    let mut t = Table::new(vec![
        "app", "design", "cycles", "norm-time", "busy", "other-stall", "fence-stall",
    ]);
    let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); DESIGNS.len()];
    let mut splus_fence_share = Vec::new();
    let apps: &[StampApp] = if asymfence_bench::quick() {
        &[StampApp::Intruder, StampApp::Ssca2]
    } else {
        &StampApp::ALL
    };
    for &app in apps {
        let base = run_stamp(app, FenceDesign::SPlus, cores, SEED);
        splus_fence_share.push(base.breakdown().1);
        for (di, &design) in DESIGNS.iter().enumerate() {
            let r = if design == FenceDesign::SPlus {
                base.clone()
            } else {
                run_stamp(app, design, cores, SEED)
            };
            let norm = r.cycles as f64 / base.cycles as f64;
            per_design[di].push(norm);
            let (busy, fence, other) = r.breakdown();
            t.row(vec![
                app.name().to_string(),
                design.label().to_string(),
                r.cycles.to_string(),
                f2(norm),
                pct(busy),
                pct(other),
                pct(fence),
            ]);
        }
    }
    t.emit("fig11_stamp");
    println!("## Averages (paper: WS+ -7%, W+ -19%, Wee -11%; S+ fence stall ~13%)");
    println!("S+ fence-stall share: {}", pct(mean(&splus_fence_share)));
    for (di, &design) in DESIGNS.iter().enumerate() {
        println!(
            "{:>4}: mean normalized execution time {}",
            design.label(),
            f2(mean(&per_design[di]))
        );
    }
}
