//! Figure 9: transactional throughput of the ustm microbenchmarks,
//! normalized to S+ (higher is better).

use asymfence::prelude::FenceDesign;
use asymfence_bench::{f2, mean, run_ustm, Table, DESIGNS, SEED, USTM_WINDOW};
use asymfence_workloads::ustm::UstmBench;

fn main() {
    let cores = 8;
    let window = if asymfence_bench::quick() {
        USTM_WINDOW / 4
    } else {
        USTM_WINDOW
    };
    println!("# Figure 9 — ustm transactional throughput (normalized to S+), {cores} cores, {window}-cycle window\n");
    let mut t = Table::new(vec!["bench", "design", "commits", "aborts", "norm-throughput"]);
    let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); DESIGNS.len()];
    let benches: &[UstmBench] = if asymfence_bench::quick() {
        &[UstmBench::Counter, UstmBench::Hash, UstmBench::Tree]
    } else {
        &UstmBench::ALL
    };
    for &bench in benches {
        let base = run_ustm(bench, FenceDesign::SPlus, cores, SEED, window);
        for (di, &design) in DESIGNS.iter().enumerate() {
            let r = if design == FenceDesign::SPlus {
                base.clone()
            } else {
                run_ustm(bench, design, cores, SEED, window)
            };
            let norm = r.commits as f64 / base.commits.max(1) as f64;
            per_design[di].push(norm);
            t.row(vec![
                bench.name().to_string(),
                design.label().to_string(),
                r.commits.to_string(),
                r.aborts.to_string(),
                f2(norm),
            ]);
        }
    }
    t.emit("fig09_ustm_throughput");
    println!("## Averages (paper: WS+ +38%, W+ +58%, Wee +14% over S+)");
    for (di, &design) in DESIGNS.iter().enumerate() {
        println!(
            "{:>4}: mean normalized throughput {}",
            design.label(),
            f2(mean(&per_design[di]))
        );
    }
}
