//! Figure 9 — ustm transactional throughput.
//!
//! Thin wrapper over [`asymfence_bench::figures::fig09`]; all flag
//! handling lives in [`asymfence_bench::cli`] and all simulation in the
//! shared run engine ([`asymfence_bench::runner`]).

use asymfence_bench::{cli, figures, metrics, ReportSink};

fn main() {
    let (runner, opts) = cli::parse("fig09_ustm_throughput");
    figures::fig09(&runner, &opts, &mut ReportSink::stdout());
    metrics::write_if_requested(&runner, &opts);
}
