//! Ablation sweeps beyond the paper.
//!
//! Thin wrapper over [`asymfence_bench::figures::ablations`]; all flag
//! handling lives in [`asymfence_bench::cli`] and all simulation in the
//! shared run engine ([`asymfence_bench::runner`]).

use asymfence_bench::{cli, figures, metrics, ReportSink};

fn main() {
    let (runner, opts) = cli::parse("ablations");
    figures::ablations(&runner, &opts, &mut ReportSink::stdout());
    metrics::write_if_requested(&runner, &opts);
}
