//! Ablation sweeps beyond the paper (indexed in EXPERIMENTS.md):
//! Bypass-Set capacity, bounce-retry backoff, the W+ timeout, and mesh
//! hop latency.

use asymfence::prelude::*;
use asymfence_bench::{f2, Table, SEED};
use asymfence_workloads::cilk::{self, CilkApp};
use asymfence_workloads::ustm::{self, UstmBench};
use asymfence_workloads::tlrw;

fn cilk_cycles(mut cfg: MachineConfig) -> u64 {
    cfg.seed = SEED;
    let mut m = Machine::new(&cfg);
    cilk::setup(&mut m, CilkApp::Fib, SEED);
    assert_eq!(m.run(4_000_000_000), RunOutcome::Finished);
    m.now()
}

fn ustm_commits(mut cfg: MachineConfig, window: u64) -> (u64, u64) {
    cfg.seed = SEED;
    let mut m = Machine::new(&cfg);
    ustm::install(&mut m, UstmBench::Hash, SEED, None);
    m.run(window);
    let (c, _) = tlrw::tally(&m);
    (c, m.stats().aggregate().recoveries)
}

fn main() {
    println!("# Ablations\n");

    println!("## A0: WS+ vs SW+ (paper §6: \"practically the same\" on two-fence groups)");
    let mut t = Table::new(vec!["bench", "WS+ commits", "SW+ commits", "SW+/WS+"]);
    for bench in [UstmBench::Hash, UstmBench::Tree, UstmBench::ReadNWrite1] {
        let run = |design| {
            let cfg = MachineConfig::builder()
                .cores(8)
                .fence_design(design)
                .build();
            let mut m = Machine::new(&cfg);
            ustm::install(&mut m, bench, SEED, None);
            m.run(400_000);
            tlrw::tally(&m).0
        };
        let ws = run(FenceDesign::WsPlus);
        let sw = run(FenceDesign::SwPlus);
        t.row(vec![
            bench.name().to_string(),
            ws.to_string(),
            sw.to_string(),
            f2(sw as f64 / ws.max(1) as f64),
        ]);
    }
    t.emit("ablation_ws_vs_sw");

    println!("## A1: Bypass-Set capacity (WS+, fib) — overflow degrades wf to sf");
    let mut t = Table::new(vec!["bs_entries", "cycles", "norm"]);
    let base = cilk_cycles(
        MachineConfig::builder().cores(8).fence_design(FenceDesign::WsPlus).build(),
    );
    for bs in [1usize, 2, 4, 8, 32] {
        let c = cilk_cycles(
            MachineConfig::builder()
                .cores(8)
                .fence_design(FenceDesign::WsPlus)
                .bs_entries(bs)
                .build(),
        );
        t.row(vec![bs.to_string(), c.to_string(), f2(c as f64 / base as f64)]);
    }
    t.emit("ablation_bs_capacity");

    println!("## A2: bounce-retry backoff (W+, ustm Hash)");
    let mut t = Table::new(vec!["retry_cycles", "commits", "recoveries"]);
    for retry in [4u64, 16, 64, 256] {
        let (c, r) = ustm_commits(
            MachineConfig::builder()
                .cores(8)
                .fence_design(FenceDesign::WPlus)
                .bounce_retry_cycles(retry)
                .build(),
            400_000,
        );
        t.row(vec![retry.to_string(), c.to_string(), r.to_string()]);
    }
    t.emit("ablation_bounce_retry");

    println!("## A3: W+ deadlock timeout (ustm Hash) — too short = spurious rollbacks");
    let mut t = Table::new(vec!["timeout", "commits", "recoveries"]);
    for timeout in [25u64, 100, 200, 800, 3200] {
        let (c, r) = ustm_commits(
            MachineConfig::builder()
                .cores(8)
                .fence_design(FenceDesign::WPlus)
                .w_timeout_cycles(timeout)
                .build(),
            400_000,
        );
        t.row(vec![timeout.to_string(), c.to_string(), r.to_string()]);
    }
    t.emit("ablation_w_timeout");

    println!("## A6: store-merge width (motivation, paper §2.1) — TSO merges one store at a time");
    let mut t = Table::new(vec!["merge_width", "S+ fib cycles", "norm"]);
    let base = cilk_cycles(
        MachineConfig::builder().cores(8).wb_merge_width(1).build(),
    );
    for w in [1usize, 2, 4, 8] {
        let c = cilk_cycles(MachineConfig::builder().cores(8).wb_merge_width(w).build());
        t.row(vec![w.to_string(), c.to_string(), f2(c as f64 / base as f64)]);
    }
    t.emit("ablation_merge_width");

    println!("## A4: mesh hop latency (S+ vs WS+, fib) — weak fences hide longer networks");
    let mut t = Table::new(vec!["hop_cycles", "S+ cycles", "WS+ cycles", "WS+/S+"]);
    for hop in [1u64, 5, 10, 20] {
        let s = cilk_cycles(
            MachineConfig::builder().cores(8).fence_design(FenceDesign::SPlus).hop_cycles(hop).build(),
        );
        let w = cilk_cycles(
            MachineConfig::builder().cores(8).fence_design(FenceDesign::WsPlus).hop_cycles(hop).build(),
        );
        t.row(vec![hop.to_string(), s.to_string(), w.to_string(), f2(w as f64 / s as f64)]);
    }
    t.emit("ablation_hop_latency");
}
