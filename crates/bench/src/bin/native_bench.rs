//! Native asymmetric-fence benchmark with sim-vs-silicon crossval.
//!
//! Thin wrapper over [`asymfence_bench::native`]: runs the native
//! kernel grid under every fence pair, prints the measured table, and
//! with `--crossval` joins the native ranking against the simulator's.

use asymfence_bench::native;

fn main() {
    let opts = native::parse_native_args();
    std::process::exit(native::main_impl(&opts));
}
