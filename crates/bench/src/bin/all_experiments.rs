//! Every experiment in sequence.
//!
//! Thin wrapper over [`asymfence_bench::figures::all`]; all flag
//! handling lives in [`asymfence_bench::cli`] and all simulation in the
//! shared run engine ([`asymfence_bench::runner`]).

use asymfence_bench::{cli, figures, metrics, ReportSink};

fn main() {
    let (runner, opts) = cli::parse("all_experiments");
    figures::all(&runner, &opts, &mut ReportSink::stdout());
    metrics::write_if_requested(&runner, &opts);
}
