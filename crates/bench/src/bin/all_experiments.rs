//! Every experiment in sequence.
//!
//! Thin wrapper over [`asymfence_bench::figures::all`]; all flag
//! handling lives in [`asymfence_bench::cli`] and all simulation in the
//! shared run engine ([`asymfence_bench::runner`]).

use asymfence_bench::{cli, figures, metrics, micro, ReportSink};

fn main() {
    let (runner, opts) = cli::parse("all_experiments");
    if let Some(reps) = opts.micro {
        micro::report(reps);
        return;
    }
    figures::all(&runner, &opts, &mut ReportSink::stdout());
    metrics::write_if_requested(&runner, &opts);
}
