//! Runs every experiment binary's logic in sequence (figures 8-12,
//! table 4, the litmus matrix and the ablations) by invoking the sibling
//! binaries. Use `--quick` / ASF_QUICK=1 for a fast pass.

use std::process::Command;

fn main() {
    let quick = asymfence_bench::quick();
    let bins = [
        "litmus_matrix",
        "fig08_cilk",
        "fig09_ustm_throughput",
        "fig10_ustm_breakdown",
        "fig11_stamp",
        "fig12_scalability",
        "table4_characterization",
        "ablations",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for b in bins {
        println!("\n===== {b} =====\n");
        let mut cmd = Command::new(dir.join(b));
        if quick {
            cmd.arg("--quick").env("ASF_QUICK", "1");
        }
        let status = cmd.status().unwrap_or_else(|e| panic!("failed to run {b}: {e}"));
        assert!(status.success(), "{b} failed");
    }
    println!("\nAll experiments complete; CSVs in ./results/");
}
