//! Table 4 — characterization of the fence designs.
//!
//! Thin wrapper over [`asymfence_bench::figures::table4`]; all flag
//! handling lives in [`asymfence_bench::cli`] and all simulation in the
//! shared run engine ([`asymfence_bench::runner`]).

use asymfence_bench::{cli, figures, metrics, ReportSink};

fn main() {
    let (runner, opts) = cli::parse("table4_characterization");
    figures::table4(&runner, &opts, &mut ReportSink::stdout());
    metrics::write_if_requested(&runner, &opts);
}
