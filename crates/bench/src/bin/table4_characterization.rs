//! Table 4: characterization of the fence designs at 8 cores —
//! fences per kilo-instruction, Bypass-Set occupancy, bounces and
//! retries, retry-traffic increase, W+ recoveries, Wee demotions.

use asymfence::prelude::FenceDesign;
use asymfence_bench::{f2, run_cilk, run_stamp, run_ustm, RunResult, Table, SEED, USTM_WINDOW};
use asymfence_workloads::cilk::CilkApp;
use asymfence_workloads::stamp::StampApp;
use asymfence_workloads::ustm::UstmBench;

fn collect(group: &str, runs: &[(FenceDesign, RunResult)], t: &mut Table) {
    for (design, r) in runs {
        let a = r.stats.aggregate();
        let ki = a.instrs_retired.max(1) as f64 / 1000.0;
        let wf = a.wf_count.max(1) as f64;
        t.row(vec![
            group.to_string(),
            design.label().to_string(),
            f2(a.sf_count as f64 / ki),
            f2(a.wf_count as f64 / ki),
            f2(a.avg_bs_lines()),
            f2(a.writes_bounced as f64 / wf),
            f2(a.bounce_retries as f64 / a.writes_bounced.max(1) as f64),
            f2(r.stats.traffic.retry_increase_pct()),
            f2(a.recoveries as f64 / wf),
            a.wee_demotions.to_string(),
        ]);
    }
}

fn main() {
    let cores = 8;
    let quick = asymfence_bench::quick();
    println!("# Table 4 — characterization of S+/WS+/W+/Wee at {cores} cores\n");
    let mut t = Table::new(vec![
        "group",
        "design",
        "sf/1000i",
        "wf/1000i",
        "lines/BS",
        "wr-bounced/wf",
        "retries/wr",
        "%traffic",
        "recov/wf",
        "wee-demotions",
    ]);
    let designs = [
        FenceDesign::SPlus,
        FenceDesign::WsPlus,
        FenceDesign::WPlus,
        FenceDesign::Wee,
    ];

    // CilkApps: aggregate over a representative subset.
    let cilk_apps: &[CilkApp] = if quick {
        &[CilkApp::Fib]
    } else {
        &[CilkApp::Fib, CilkApp::Cholesky, CilkApp::Matmul]
    };
    let runs: Vec<(FenceDesign, RunResult)> = designs
        .iter()
        .map(|&d| {
            let mut merged: Option<RunResult> = None;
            for &app in cilk_apps {
                let r = run_cilk(app, d, cores, SEED);
                merged = Some(match merged {
                    None => r,
                    Some(mut acc) => {
                        acc.cycles += r.cycles;
                        for (a, b) in acc.stats.cores.iter_mut().zip(&r.stats.cores) {
                            *a += b;
                        }
                        acc.stats.traffic.base_bytes += r.stats.traffic.base_bytes;
                        acc.stats.traffic.retry_bytes += r.stats.traffic.retry_bytes;
                        acc
                    }
                });
            }
            (d, merged.expect("apps nonempty"))
        })
        .collect();
    collect("CilkApps", &runs, &mut t);

    let ustm_benches: &[UstmBench] = if quick {
        &[UstmBench::Hash]
    } else {
        &[UstmBench::Hash, UstmBench::Tree, UstmBench::List]
    };
    let runs: Vec<(FenceDesign, RunResult)> = designs
        .iter()
        .map(|&d| {
            let mut merged: Option<RunResult> = None;
            for &b in ustm_benches {
                let r = run_ustm(b, d, cores, SEED, USTM_WINDOW / 3);
                merged = Some(match merged {
                    None => r,
                    Some(mut acc) => {
                        acc.commits += r.commits;
                        for (a, b) in acc.stats.cores.iter_mut().zip(&r.stats.cores) {
                            *a += b;
                        }
                        acc.stats.traffic.base_bytes += r.stats.traffic.base_bytes;
                        acc.stats.traffic.retry_bytes += r.stats.traffic.retry_bytes;
                        acc
                    }
                });
            }
            (d, merged.expect("benches nonempty"))
        })
        .collect();
    collect("ustm", &runs, &mut t);

    let stamp_apps: &[StampApp] = if quick {
        &[StampApp::Ssca2]
    } else {
        &[StampApp::Intruder, StampApp::Vacation]
    };
    let runs: Vec<(FenceDesign, RunResult)> = designs
        .iter()
        .map(|&d| {
            let mut merged: Option<RunResult> = None;
            for &app in stamp_apps {
                let r = run_stamp(app, d, cores, SEED);
                merged = Some(match merged {
                    None => r,
                    Some(mut acc) => {
                        for (a, b) in acc.stats.cores.iter_mut().zip(&r.stats.cores) {
                            *a += b;
                        }
                        acc.stats.traffic.base_bytes += r.stats.traffic.base_bytes;
                        acc.stats.traffic.retry_bytes += r.stats.traffic.retry_bytes;
                        acc
                    }
                });
            }
            (d, merged.expect("apps nonempty"))
        })
        .collect();
    collect("STAMP", &runs, &mut t);

    t.emit("table4_characterization");
    println!("(paper: ~1 sf/1000i for CilkApps and STAMP, ~5.7 for ustm under S+;");
    println!(" 3-5 lines per BS; low bounce counts; negligible traffic increase;");
    println!(" Wee demotes about half of ustm and a third of STAMP fences)");
}
