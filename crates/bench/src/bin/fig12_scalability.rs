//! Figure 12: scalability of the fence-stall reduction. For each
//! workload group and design, the total fence-stall time relative to S+
//! at 4, 8, 16 and 32 cores. Flat bars = the design scales.

use asymfence::prelude::FenceDesign;
use asymfence_bench::{pct, run_cilk, run_stamp, run_ustm, Table, SEED, USTM_WINDOW};
use asymfence_workloads::cilk::CilkApp;
use asymfence_workloads::stamp::StampApp;
use asymfence_workloads::ustm::UstmBench;

fn main() {
    let core_counts: &[usize] = if asymfence_bench::quick() {
        &[4, 8]
    } else {
        &[4, 8, 16, 32]
    };
    let designs = [FenceDesign::WsPlus, FenceDesign::WPlus, FenceDesign::Wee];
    println!("# Figure 12 — fence-stall time relative to S+ at 4..32 cores\n");
    println!("(representative workloads per group: fib+cholesky / Hash+Tree / intruder)\n");
    let mut t = Table::new(vec!["group", "design", "cores", "stall-ratio"]);

    for &design in &designs {
        for &cores in core_counts {
            // CilkApps group.
            let mut s_stall = 0.0;
            let mut d_stall = 0.0;
            for app in [CilkApp::Fib, CilkApp::Cholesky] {
                s_stall += run_cilk(app, FenceDesign::SPlus, cores, SEED)
                    .stats
                    .fence_stall_cycles() as f64;
                d_stall += run_cilk(app, design, cores, SEED).stats.fence_stall_cycles() as f64;
            }
            t.row(vec![
                "CilkApps".to_string(),
                design.label().to_string(),
                cores.to_string(),
                pct(d_stall / s_stall.max(1.0)),
            ]);
        }
    }
    for &design in &designs {
        for &cores in core_counts {
            let mut s_stall = 0.0;
            let mut d_stall = 0.0;
            for bench in [UstmBench::Hash, UstmBench::Tree] {
                s_stall += run_ustm(bench, FenceDesign::SPlus, cores, SEED, USTM_WINDOW / 3)
                    .stats
                    .fence_stall_cycles() as f64;
                d_stall += run_ustm(bench, design, cores, SEED, USTM_WINDOW / 3)
                    .stats
                    .fence_stall_cycles() as f64;
            }
            t.row(vec![
                "ustm".to_string(),
                design.label().to_string(),
                cores.to_string(),
                pct(d_stall / s_stall.max(1.0)),
            ]);
        }
    }
    for &design in &designs {
        for &cores in core_counts {
            let s = run_stamp(StampApp::Intruder, FenceDesign::SPlus, cores, SEED)
                .stats
                .fence_stall_cycles() as f64;
            let d = run_stamp(StampApp::Intruder, design, cores, SEED)
                .stats
                .fence_stall_cycles() as f64;
            t.row(vec![
                "STAMP".to_string(),
                design.label().to_string(),
                cores.to_string(),
                pct(d / s.max(1.0)),
            ]);
        }
    }
    t.emit("fig12_scalability");
    println!("(paper: ratios stay flat or grow only modestly from 4 to 32 cores)");
}
