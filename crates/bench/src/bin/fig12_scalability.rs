//! Figure 12 — fence-stall ratio at 4..32 cores.
//!
//! Thin wrapper over [`asymfence_bench::figures::fig12`]; all flag
//! handling lives in [`asymfence_bench::cli`] and all simulation in the
//! shared run engine ([`asymfence_bench::runner`]).

use asymfence_bench::{cli, figures, metrics, ReportSink};

fn main() {
    let (runner, opts) = cli::parse("fig12_scalability");
    figures::fig12(&runner, &opts, &mut ReportSink::stdout());
    metrics::write_if_requested(&runner, &opts);
}
