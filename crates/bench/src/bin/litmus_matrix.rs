//! Litmus matrix — figures 1d/1f/3a/3c/4b.
//!
//! Thin wrapper over [`asymfence_bench::figures::litmus_matrix`]; all flag
//! handling lives in [`asymfence_bench::cli`] and all simulation in the
//! shared run engine ([`asymfence_bench::runner`]).

use asymfence_bench::{cli, figures, metrics, ReportSink};

fn main() {
    let (runner, opts) = cli::parse("litmus_matrix");
    figures::litmus_matrix(&runner, &opts, &mut ReportSink::stdout());
    metrics::write_if_requested(&runner, &opts);
}
