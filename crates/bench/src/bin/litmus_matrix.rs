//! Figures 1, 3 and 4 as a litmus matrix: SCV scenarios, fence groups of
//! two and three threads, false sharing, and the unprotected-deadlock
//! demonstration — each verified with the Shasha–Snir checker.

use asymfence::prelude::*;
use asymfence_bench::Table;
use asymfence_workloads::litmus;

fn run_case(design: FenceDesign, setup: litmus::LitmusSetup) -> (RunOutcome, bool) {
    let (progs, _regs) = setup;
    let cfg = MachineConfig::builder()
        .cores(progs.len().max(2))
        .fence_design(design)
        .watchdog_cycles(30_000)
        .record_scv_log(true)
        .build();
    let mut m = Machine::new(&cfg);
    for p in progs {
        m.add_thread(p);
    }
    let outcome = m.run(50_000_000);
    let scv = m.scv_log().map(scv::has_violation).unwrap_or(false);
    (outcome, scv)
}

fn main() {
    use FenceRole::{Critical, NonCritical};
    println!("# Litmus matrix — figures 1d/1f/3a/3c/4b\n");
    let mut t = Table::new(vec!["scenario", "design", "outcome", "SCV?"]);
    let all = [
        FenceDesign::SPlus,
        FenceDesign::WsPlus,
        FenceDesign::SwPlus,
        FenceDesign::WPlus,
        FenceDesign::Wee,
    ];
    // Unfenced store buffering: the SCV the fences exist to prevent.
    let (o, scv) = run_case(FenceDesign::SPlus, litmus::store_buffering(None));
    t.row(vec!["SB unfenced".into(), "-".into(), format!("{o:?}"), scv.to_string()]);
    for d in all {
        let (o, scv) = run_case(d, litmus::store_buffering(Some((Critical, NonCritical))));
        t.row(vec!["SB fig1d".into(), d.label().into(), format!("{o:?}"), scv.to_string()]);
    }
    for d in [FenceDesign::WsPlus, FenceDesign::SwPlus] {
        let (o, scv) = run_case(d, litmus::three_thread_cycle([Critical, NonCritical, NonCritical]));
        t.row(vec!["3-thread fig3c".into(), d.label().into(), format!("{o:?}"), scv.to_string()]);
    }
    let (o, scv) = run_case(FenceDesign::WPlus, litmus::three_thread_cycle([Critical; 3]));
    t.row(vec!["3-thread all-wf".into(), "W+".into(), format!("{o:?}"), scv.to_string()]);
    for d in [FenceDesign::WsPlus, FenceDesign::SwPlus, FenceDesign::WPlus] {
        let (o, scv) = run_case(d, litmus::false_sharing_pair(Critical, Critical));
        t.row(vec!["false-share fig4b".into(), d.label().into(), format!("{o:?}"), scv.to_string()]);
    }
    let (o, scv) = run_case(FenceDesign::WfOnlyUnsafe, litmus::false_sharing_pair(Critical, Critical));
    t.row(vec!["fig3a unprotected".into(), "wf-only".into(), format!("{o:?}"), scv.to_string()]);
    t.emit("litmus_matrix");
    println!("(expected: unfenced SB shows an SCV; every protected design finishes with none;");
    println!(" the unprotected wf-only design deadlocks, as in Figure 3a)");
}
