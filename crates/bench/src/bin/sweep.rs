//! Sharded sweep driver: durable run journal, crash-safe resume, and
//! live fleet observability.
//!
//! ```text
//! sweep run    --ledger DIR [--shards N] [--shard-id K] [--spawn N]
//!              [--quick] [--jobs N] [--metrics PATH]
//! sweep status --ledger DIR [--watch]
//! sweep merge  --ledger DIR --out PATH
//! ```
//!
//! `run` executes one shard of the sweep grid (or, with `--spawn N`,
//! drives N single-shard child processes to completion), journaling
//! every result to `DIR/shard-<id>.jsonl`; a killed shard resumes from
//! its durable prefix when re-invoked with the same arguments. `status`
//! renders the fleet dashboard from the ledgers (`--watch` refreshes
//! until the sweep finishes). `merge` folds a complete ledger directory
//! into a `--metrics`-style snapshot — byte-identical to a
//! single-process run of the same grid.
//!
//! Sharding defaults come from `ASF_SHARDS` / `ASF_SHARD_ID` when the
//! flags are absent. Exit status: `0` clean, `1` on an incomplete or
//! inconsistent ledger, `2` on usage errors.

use std::path::{Path, PathBuf};
use std::process::exit;

use asymfence_bench::ledger::merge_dir;
use asymfence_bench::metrics::label_from_path;
use asymfence_bench::shard::{grid, grid_label, run_shard};
use asymfence_bench::status;
use asymfence_common::par::Shard;

const USAGE: &str = "usage: sweep run    --ledger DIR [--shards N] [--shard-id K] [--spawn N]\n\
       \x20                   [--quick] [--jobs N] [--metrics PATH]\n\
       sweep status --ledger DIR [--watch]\n\
       sweep merge  --ledger DIR --out PATH\n\
   run executes one shard of the sweep grid against an append-only run\n\
   ledger (crash-safe: re-invoke with the same flags to resume), or with\n\
   --spawn N drives N single-shard children; status renders the fleet\n\
   dashboard from the ledgers; merge folds a complete directory into a\n\
   --metrics snapshot byte-identical to a single-process run.\n\
   --shards/--shard-id default to ASF_SHARDS/ASF_SHARD_ID, then 1/0.\n\
   exit 0 clean, 1 incomplete/inconsistent ledger, 2 usage error";

fn usage_exit(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("sweep: {msg}");
    }
    eprintln!("{USAGE}");
    exit(2)
}

#[derive(Default)]
struct RunArgs {
    ledger: Option<PathBuf>,
    shards: Option<u64>,
    shard_id: Option<u64>,
    spawn: Option<u64>,
    quick: bool,
    jobs: Option<usize>,
    metrics: Option<String>,
}

fn parse_run(args: &[String]) -> RunArgs {
    let mut out = RunArgs {
        quick: asymfence_bench::quick(),
        ..Default::default()
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &String {
            args.get(i + 1)
                .unwrap_or_else(|| usage_exit(&format!("{} needs a value", args[i])))
        };
        match args[i].as_str() {
            "--ledger" => {
                out.ledger = Some(PathBuf::from(value(i)));
                i += 2;
            }
            "--shards" => {
                out.shards = Some(parse_num(value(i), "--shards"));
                i += 2;
            }
            "--shard-id" => {
                out.shard_id = Some(parse_num(value(i), "--shard-id"));
                i += 2;
            }
            "--spawn" => {
                out.spawn = Some(parse_num(value(i), "--spawn"));
                i += 2;
            }
            "--jobs" => {
                out.jobs = Some(parse_num(value(i), "--jobs") as usize);
                i += 2;
            }
            "--metrics" => {
                out.metrics = Some(value(i).clone());
                i += 2;
            }
            "--quick" => {
                out.quick = true;
                i += 1;
            }
            other => usage_exit(&format!("unknown `run` argument `{other}`")),
        }
    }
    out
}

fn parse_num(tok: &str, flag: &str) -> u64 {
    tok.parse()
        .unwrap_or_else(|_| usage_exit(&format!("{flag} needs a number")))
}

fn resolve_shard(args: &RunArgs) -> Shard {
    match (args.shards, args.shard_id) {
        (None, None) => Shard::from_env(),
        (shards, id) => {
            let env = Shard::from_env();
            let count = shards.unwrap_or(env.count);
            let id = id.unwrap_or(env.id);
            if count == 0 || id >= count {
                usage_exit(&format!("--shard-id {id} out of range for --shards {count}"));
            }
            Shard::new(id, count)
        }
    }
}

fn write_metrics(dir: &Path, path: &str) {
    let merged = merge_dir(dir, &label_from_path(path)).unwrap_or_else(|e| {
        eprintln!("sweep: {e}");
        exit(1);
    });
    let json = merged.snapshot.to_json();
    std::fs::write(path, &json).unwrap_or_else(|e| {
        eprintln!("sweep: cannot write metrics file {path}: {e}");
        exit(1);
    });
    eprintln!(
        "== sweep merge -> {path} ({} entries, {} duplicates dropped, {} unknown records \
         skipped, {} torn bytes truncated) ==",
        merged.snapshot.entries.len(),
        merged.duplicates,
        merged.skipped_unknown,
        merged.torn_bytes,
    );
}

fn spawn_fleet(args: &RunArgs, dir: &Path, shards: u64) {
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("sweep: cannot resolve own executable: {e}");
        exit(1);
    });
    let mut children = Vec::new();
    for id in 0..shards {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("run")
            .arg("--ledger")
            .arg(dir)
            .arg("--shards")
            .arg(shards.to_string())
            .arg("--shard-id")
            .arg(id.to_string());
        if args.quick {
            cmd.arg("--quick");
        }
        if let Some(jobs) = args.jobs {
            cmd.arg("--jobs").arg(jobs.to_string());
        }
        children.push((id, cmd.spawn().unwrap_or_else(|e| {
            eprintln!("sweep: cannot spawn shard {id}: {e}");
            exit(1);
        })));
    }
    let mut failed = false;
    for (id, mut child) in children {
        let rc = child.wait().map(|s| s.success()).unwrap_or(false);
        if !rc {
            eprintln!("sweep: shard {id} exited with failure");
            failed = true;
        }
    }
    if failed {
        exit(1);
    }
}

fn cmd_run(args: &[String]) {
    let args = parse_run(args);
    let Some(dir) = args.ledger.clone() else {
        usage_exit("run needs --ledger DIR");
    };
    let cells = grid(args.quick);
    let label = grid_label(args.quick);

    if let Some(n) = args.spawn {
        if n == 0 {
            usage_exit("--spawn needs at least one shard");
        }
        if args.shard_id.is_some() {
            usage_exit("--spawn drives every shard; drop --shard-id");
        }
        spawn_fleet(&args, &dir, n);
    } else {
        let shard = resolve_shard(&args);
        let summary =
            run_shard(&dir, shard, &cells, label, args.quick, args.jobs).unwrap_or_else(|e| {
                eprintln!("sweep: {e}");
                exit(1);
            });
        eprintln!(
            "== sweep shard {}/{} done: {} owned, {} executed, {} recovered{}{} ==",
            shard.id,
            shard.count,
            summary.owned,
            summary.executed,
            summary.recovered,
            if summary.resume > 0 {
                format!(", resume #{}", summary.resume)
            } else {
                String::new()
            },
            if summary.torn_bytes > 0 {
                format!(", {} torn bytes truncated", summary.torn_bytes)
            } else {
                String::new()
            },
        );
    }

    if let Some(path) = &args.metrics {
        write_metrics(&dir, path);
    }
}

fn cmd_status(args: &[String]) {
    let mut ledger = None;
    let mut watch = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ledger" => {
                let v = args
                    .get(i + 1)
                    .unwrap_or_else(|| usage_exit("--ledger needs a value"));
                ledger = Some(PathBuf::from(v));
                i += 2;
            }
            "--watch" => {
                watch = true;
                i += 1;
            }
            other => usage_exit(&format!("unknown `status` argument `{other}`")),
        }
    }
    let Some(dir) = ledger else {
        usage_exit("status needs --ledger DIR");
    };

    let now = || {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    };
    loop {
        let fleet = status::gather(&dir, now()).unwrap_or_else(|e| {
            eprintln!("sweep: {e}");
            exit(1);
        });
        print!("{}", status::render(&fleet));
        let finished = !fleet.shards.is_empty()
            && fleet
                .shards
                .iter()
                .all(|s| s.state == status::ShardState::Done);
        if !watch || finished {
            break;
        }
        println!("---");
        std::thread::sleep(std::time::Duration::from_millis(1000));
    }
}

fn cmd_merge(args: &[String]) {
    let mut ledger = None;
    let mut out = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &String {
            args.get(i + 1)
                .unwrap_or_else(|| usage_exit(&format!("{} needs a value", args[i])))
        };
        match args[i].as_str() {
            "--ledger" => {
                ledger = Some(PathBuf::from(value(i)));
                i += 2;
            }
            "--out" => {
                out = Some(value(i).clone());
                i += 2;
            }
            other => usage_exit(&format!("unknown `merge` argument `{other}`")),
        }
    }
    let (Some(dir), Some(path)) = (ledger, out) else {
        usage_exit("merge needs --ledger DIR and --out PATH");
    };
    write_metrics(&dir, &path);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
        }
        Some(other) => usage_exit(&format!("unknown subcommand `{other}`")),
        None => usage_exit(""),
    }
}
