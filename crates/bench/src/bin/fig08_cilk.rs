//! Figure 8 — CilkApps execution-time breakdown.
//!
//! Thin wrapper over [`asymfence_bench::figures::fig08`]; all flag
//! handling lives in [`asymfence_bench::cli`] and all simulation in the
//! shared run engine ([`asymfence_bench::runner`]).

use asymfence_bench::{cli, figures, metrics, ReportSink};

fn main() {
    let (runner, opts) = cli::parse("fig08_cilk");
    figures::fig08(&runner, &opts, &mut ReportSink::stdout());
    metrics::write_if_requested(&runner, &opts);
}
