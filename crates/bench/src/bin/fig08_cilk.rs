//! Figure 8: execution time of CilkApps, normalized to S+, broken down
//! into busy / other-stall / fence-stall time.

use asymfence::prelude::FenceDesign;
use asymfence_bench::{f2, mean, pct, run_cilk, Table, DESIGNS, SEED};
use asymfence_workloads::cilk::CilkApp;

fn main() {
    let cores = 8;
    println!("# Figure 8 — CilkApps execution time (normalized to S+), {cores} cores\n");
    let mut t = Table::new(vec![
        "app", "design", "cycles", "norm-time", "busy", "other-stall", "fence-stall",
    ]);
    let mut per_design_norm: Vec<Vec<f64>> = vec![Vec::new(); DESIGNS.len()];
    let mut splus_fence_share = Vec::new();
    let apps: &[CilkApp] = if asymfence_bench::quick() {
        &[CilkApp::Fib, CilkApp::Bucket, CilkApp::Matmul]
    } else {
        &CilkApp::ALL
    };
    for &app in apps {
        let base = run_cilk(app, FenceDesign::SPlus, cores, SEED);
        splus_fence_share.push(base.breakdown().1);
        for (di, &design) in DESIGNS.iter().enumerate() {
            let r = if design == FenceDesign::SPlus {
                base.clone()
            } else {
                run_cilk(app, design, cores, SEED)
            };
            let norm = r.cycles as f64 / base.cycles as f64;
            per_design_norm[di].push(norm);
            let (busy, fence, other) = r.breakdown();
            t.row(vec![
                app.name().to_string(),
                design.label().to_string(),
                r.cycles.to_string(),
                f2(norm),
                pct(busy),
                pct(other),
                pct(fence),
            ]);
        }
    }
    t.emit("fig08_cilk");
    println!("## Averages");
    println!(
        "S+ fence-stall share of core time: {} (paper: ~13%)",
        pct(mean(&splus_fence_share))
    );
    for (di, &design) in DESIGNS.iter().enumerate() {
        println!(
            "{:>4}: mean normalized execution time {} (paper: S+ 1.00, WS+/W+/Wee ~0.91)",
            design.label(),
            f2(mean(&per_design_norm[di]))
        );
    }
}
