//! Thread-local [`Machine`] pooling for zero-allocation re-runs.
//!
//! Building a [`Machine`] allocates every arena the simulator owns —
//! ROB and write-buffer slabs, L1 line storage, directory maps, NoC
//! queues. A spec grid builds thousands of machines with identical
//! hardware shape, so the harness keeps **one warmed machine per worker
//! thread** and re-arms it with [`Machine::reset`] instead: when the
//! next spec keeps the machine shape (see
//! `MachineConfig::same_machine_shape`) every container is cleared in
//! place and the run touches no allocator at steady state.
//!
//! The pool is thread-local because machines are not `Send` (thread
//! programs hold `Rc` state). Telemetry counters are process-wide
//! atomics so `--metrics` can report pool effectiveness regardless of
//! worker count; note the *values* depend on how specs land on workers,
//! which is why the deterministic telemetry mode masks them (like
//! wall-clock).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use asymfence::prelude::*;

/// Machines handed out (pool lookups).
static ACQUIRES: AtomicU64 = AtomicU64::new(0);
/// Hand-outs that re-armed a warmed machine in place (no allocation).
static REUSES: AtomicU64 = AtomicU64::new(0);
/// Hand-outs that built or rebuilt a machine from scratch.
static BUILDS: AtomicU64 = AtomicU64::new(0);
/// Total arena bytes kept alive across in-place resets (estimate; see
/// [`Machine::retained_bytes`]).
static BYTES_REUSED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static POOL: RefCell<Option<Machine>> = const { RefCell::new(None) };
}

/// Snapshot of the process-wide pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Machines handed out.
    pub acquires: u64,
    /// Hand-outs satisfied by an in-place [`Machine::reset`] (pool hits).
    pub reuses: u64,
    /// Hand-outs that (re)built the machine from scratch.
    pub builds: u64,
    /// Arena bytes kept alive across in-place resets (estimate).
    pub bytes_reused: u64,
}

/// Reads the current pool counters.
pub fn stats() -> PoolStats {
    PoolStats {
        acquires: ACQUIRES.load(Ordering::Relaxed),
        reuses: REUSES.load(Ordering::Relaxed),
        builds: BUILDS.load(Ordering::Relaxed),
        bytes_reused: BYTES_REUSED.load(Ordering::Relaxed),
    }
}

/// Runs `f` with this thread's pooled machine re-armed under `cfg`.
///
/// The machine keeps its arena allocations whenever `cfg` matches the
/// shape of the previous run on this thread; otherwise it is rebuilt.
/// The machine stays in the pool afterwards, warmed for the next call.
///
/// # Panics
///
/// Panics if the configuration is invalid, or propagates any panic from
/// `f` (the pool slot is left empty in that case, so a poisoned machine
/// is never reused).
pub fn with_machine<R>(cfg: MachineConfig, f: impl FnOnce(&mut Machine) -> R) -> R {
    let cfg = Arc::new(cfg);
    POOL.with(|cell| {
        // Take the machine out of the slot while `f` runs: if `f`
        // panics (a deadlocked to-completion workload asserts), the
        // half-run machine is dropped instead of being handed out again.
        let warmed = cell.borrow_mut().take();
        ACQUIRES.fetch_add(1, Ordering::Relaxed);
        let mut m = match warmed {
            Some(mut m) => {
                let retained = m.retained_bytes() as u64;
                if m.reset(&cfg) {
                    REUSES.fetch_add(1, Ordering::Relaxed);
                    BYTES_REUSED.fetch_add(retained, Ordering::Relaxed);
                } else {
                    BUILDS.fetch_add(1, Ordering::Relaxed);
                }
                m
            }
            None => {
                BUILDS.fetch_add(1, Ordering::Relaxed);
                Machine::new_shared(Arc::clone(&cfg))
            }
        };
        let out = f(&mut m);
        *cell.borrow_mut() = Some(m);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence_common::config::MachineConfig;

    #[test]
    fn same_shape_reuses_and_shape_change_rebuilds() {
        let before = stats();
        let cfg = MachineConfig::builder().cores(2).seed(1).build();
        let c0 = with_machine(cfg.clone(), |m| m.config().seed);
        assert_eq!(c0, 1);
        // Same shape, different seed: must re-arm in place.
        let cfg2 = MachineConfig::builder().cores(2).seed(2).build();
        let c1 = with_machine(cfg2, |m| m.config().seed);
        assert_eq!(c1, 2);
        // Different core count: must rebuild.
        let cfg3 = MachineConfig::builder().cores(4).seed(3).build();
        let cores = with_machine(cfg3, |m| m.config().num_cores);
        assert_eq!(cores, 4);
        let after = stats();
        assert_eq!(after.acquires - before.acquires, 3);
        assert!(after.reuses > before.reuses, "same-shape call must hit");
        assert!(after.builds >= before.builds + 2, "cold + reshape build");
        assert!(after.bytes_reused > before.bytes_reused);
    }

    #[test]
    fn pooled_machine_runs_match_fresh_machine_runs() {
        let spec = crate::RunSpec::cilk(
            asymfence_workloads::cilk::CilkApp::Fib,
            FenceDesign::WsPlus,
            2,
            7,
        );
        let a = spec.execute(); // pooled
        let b = spec.execute(); // pooled, reused
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats, b.stats);
    }
}
