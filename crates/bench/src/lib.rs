//! Experiment harness regenerating the paper's evaluation.
//!
//! One binary per table/figure (see `src/bin/`); this library holds the
//! shared runners and reporting helpers. Every run is deterministic for
//! a given seed. Results are printed as markdown tables and also written
//! as CSV under `results/`.
//!
//! | binary | artifact |
//! |--------|----------|
//! | `fig08_cilk` | Figure 8: CilkApps execution-time breakdown |
//! | `fig09_ustm_throughput` | Figure 9: ustm transactional throughput |
//! | `fig10_ustm_breakdown` | Figure 10: per-transaction cycle breakdown |
//! | `fig11_stamp` | Figure 11: STAMP execution time |
//! | `fig12_scalability` | Figure 12: fence-stall ratio at 4–32 cores |
//! | `table4_characterization` | Table 4: fence/BS/bounce/traffic stats |
//! | `litmus_matrix` | Figures 1/3/4 scenarios under every design |
//! | `ablations` | extension sweeps (BS size, timeout, backoff, mesh) |
//! | `all_experiments` | everything above, in sequence |

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use asymfence::prelude::*;
use asymfence_workloads::cilk::{self, CilkApp};
use asymfence_workloads::stamp::{self, StampApp};
use asymfence_workloads::tlrw;
use asymfence_workloads::ustm::{self, UstmBench};

/// Designs compared in the figures, in the paper's order.
pub const DESIGNS: [FenceDesign; 4] = [
    FenceDesign::SPlus,
    FenceDesign::WsPlus,
    FenceDesign::WPlus,
    FenceDesign::Wee,
];

/// Default seed for every experiment (the paper's publication year).
pub const SEED: u64 = 2015;

/// Simulated-cycle window for throughput (ustm) runs.
pub const USTM_WINDOW: u64 = 1_500_000;

/// Hard ceiling for finite runs.
pub const MAX_CYCLES: u64 = 4_000_000_000;

/// Scale factor for quick runs (`ASF_QUICK=1` in the environment or
/// `--quick` on the command line shrinks workloads ~4x).
pub fn quick() -> bool {
    std::env::var("ASF_QUICK").is_ok_and(|v| v != "0")
        || std::env::args().any(|a| a == "--quick")
}

/// One run's outcome: cycle count plus merged statistics.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Wall-clock cycles of the run.
    pub cycles: u64,
    /// Merged machine statistics.
    pub stats: MachineStats,
    /// Committed transactions (STM runs only).
    pub commits: u64,
    /// Aborted transactions (STM runs only).
    pub aborts: u64,
}

impl RunResult {
    /// Busy / fence / other shares of non-idle core time.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let a = self.stats.aggregate();
        let active = (a.busy_cycles + a.fence_stall_cycles + a.other_stall_cycles).max(1);
        (
            a.busy_cycles as f64 / active as f64,
            a.fence_stall_cycles as f64 / active as f64,
            a.other_stall_cycles as f64 / active as f64,
        )
    }
}

fn config(design: FenceDesign, cores: usize) -> MachineConfig {
    MachineConfig::builder()
        .cores(cores)
        .fence_design(design)
        .seed(SEED)
        .build()
}

/// Runs one CilkApp to completion.
///
/// # Panics
///
/// Panics if the run deadlocks or exceeds the cycle ceiling.
pub fn run_cilk(app: CilkApp, design: FenceDesign, cores: usize, seed: u64) -> RunResult {
    let cfg = config(design, cores);
    let mut m = Machine::new(&cfg);
    cilk::setup(&mut m, app, seed);
    let outcome = m.run(MAX_CYCLES);
    assert_eq!(
        outcome,
        RunOutcome::Finished,
        "{} under {design} did not finish",
        app.name()
    );
    RunResult {
        cycles: m.now(),
        stats: m.stats(),
        commits: 0,
        aborts: 0,
    }
}

/// Runs one ustm microbenchmark for a fixed simulated window and counts
/// committed transactions.
pub fn run_ustm(
    bench: UstmBench,
    design: FenceDesign,
    cores: usize,
    seed: u64,
    window: u64,
) -> RunResult {
    let cfg = config(design, cores);
    let mut m = Machine::new(&cfg);
    ustm::install(&mut m, bench, seed, None);
    let outcome = m.run(window);
    assert_ne!(outcome, RunOutcome::Deadlocked, "{}: deadlock", bench.name());
    let (commits, aborts) = tlrw::tally(&m);
    RunResult {
        cycles: m.now(),
        stats: m.stats(),
        commits,
        aborts,
    }
}

/// Runs one STAMP app to completion.
///
/// # Panics
///
/// Panics if the run deadlocks or exceeds the cycle ceiling.
pub fn run_stamp(app: StampApp, design: FenceDesign, cores: usize, seed: u64) -> RunResult {
    let cfg = config(design, cores);
    let mut m = Machine::new(&cfg);
    stamp::install(&mut m, app, seed);
    let outcome = m.run(MAX_CYCLES);
    assert_eq!(
        outcome,
        RunOutcome::Finished,
        "{} under {design} did not finish",
        app.name()
    );
    let (commits, aborts) = tlrw::tally(&m);
    RunResult {
        cycles: m.now(),
        stats: m.stats(),
        commits,
        aborts,
    }
}

// ----------------------------------------------------------------------
// Reporting
// ----------------------------------------------------------------------

/// A markdown/CSV table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column names.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders github-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {c:<w$} |");
            }
            line
        };
        let _ = writeln!(s, "{}", fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<1$}|", "", w + 2);
        }
        let _ = writeln!(s, "{sep}");
        for r in &self.rows {
            let _ = writeln!(s, "{}", fmt_row(r, &widths));
        }
        s
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let esc = |c: &String| {
            if c.contains(',') {
                format!("\"{c}\"")
            } else {
                c.clone()
            }
        };
        let _ = writeln!(s, "{}", self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        for r in &self.rows {
            let _ = writeln!(s, "{}", r.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        s
    }

    /// Prints the markdown and writes `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.to_markdown());
        let dir = Path::new("results");
        if fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = fs::write(&path, self.to_csv()) {
                eprintln!("note: could not write {}: {e}", path.display());
            } else {
                println!("(csv written to {})\n", path.display());
            }
        }
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Geometric-mean helper used for the headline averages.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Minimal in-repo wall-clock benchmarking, replacing the external
/// criterion dependency (which cannot build offline). Used by the
/// `benches/*.rs` binaries (`harness = false`).
pub mod timing {
    use std::hint::black_box;
    use std::time::Instant;

    /// Measurements for one benchmark.
    #[derive(Clone, Debug)]
    pub struct Timing {
        /// Benchmark label.
        pub name: String,
        /// Measured iterations (after one warm-up).
        pub iters: u32,
        /// Mean nanoseconds per iteration.
        pub mean_ns: f64,
        /// Fastest iteration.
        pub min_ns: u64,
        /// Slowest iteration.
        pub max_ns: u64,
    }

    impl Timing {
        fn human(ns: f64) -> String {
            if ns >= 1e9 {
                format!("{:.2} s", ns / 1e9)
            } else if ns >= 1e6 {
                format!("{:.2} ms", ns / 1e6)
            } else if ns >= 1e3 {
                format!("{:.2} µs", ns / 1e3)
            } else {
                format!("{ns:.0} ns")
            }
        }
    }

    /// Iteration budget: `ASF_BENCH_ITERS` overrides the default.
    pub fn iters_from_env(default: u32) -> u32 {
        std::env::var("ASF_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(default)
    }

    /// Runs `f` once to warm up, then `iters` timed iterations.
    pub fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> Timing {
        black_box(f());
        let mut samples = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed().as_nanos() as u64);
        }
        Timing {
            name: name.to_string(),
            iters,
            mean_ns: samples.iter().sum::<u64>() as f64 / samples.len() as f64,
            min_ns: samples.iter().copied().min().unwrap_or(0),
            max_ns: samples.iter().copied().max().unwrap_or(0),
        }
    }

    /// Collects timings and prints one markdown table at the end.
    #[derive(Default)]
    pub struct Report {
        rows: Vec<Timing>,
    }

    impl Report {
        /// Creates an empty report.
        pub fn new() -> Self {
            Self::default()
        }

        /// Benches `f` and records the result (also echoed immediately).
        pub fn bench<R>(&mut self, name: &str, iters: u32, f: impl FnMut() -> R) {
            let t = bench(name, iters, f);
            println!(
                "{:40} {:>10}/iter  (min {}, max {}, {} iters)",
                t.name,
                Timing::human(t.mean_ns),
                Timing::human(t.min_ns as f64),
                Timing::human(t.max_ns as f64),
                t.iters
            );
            self.rows.push(t);
        }

        /// Renders all rows as a markdown table.
        pub fn to_markdown(&self) -> String {
            let mut t = super::Table::new(vec!["benchmark", "mean/iter", "min", "max", "iters"]);
            for r in &self.rows {
                t.row(vec![
                    r.name.clone(),
                    Timing::human(r.mean_ns),
                    Timing::human(r.min_ns as f64),
                    Timing::human(r.max_ns as f64),
                    r.iters.to_string(),
                ]);
            }
            t.to_markdown()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bench_measures_and_reports() {
            let mut calls = 0u32;
            let t = bench("spin", 3, || {
                calls += 1;
                std::hint::black_box(calls)
            });
            assert_eq!(calls, 4); // 1 warm-up + 3 timed
            assert_eq!(t.iters, 3);
            assert!(t.min_ns <= t.max_ns);
            assert!(t.mean_ns >= t.min_ns as f64);
        }

        #[test]
        fn report_renders_markdown() {
            let mut r = Report::new();
            r.bench("noop", 2, || 1 + 1);
            let md = r.to_markdown();
            assert!(md.contains("noop"));
            assert!(md.contains("mean/iter"));
        }

        #[test]
        fn env_knob_parses() {
            assert_eq!(iters_from_env(7), 7); // unset → default
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_markdown_and_csv() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "hello,world"]);
        let md = t.to_markdown();
        assert!(md.contains("| a"));
        assert!(md.lines().count() == 3);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello,world\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn cilk_runner_smoke() {
        let r = run_cilk(CilkApp::Fib, FenceDesign::WsPlus, 2, 7);
        assert!(r.cycles > 0);
        let (busy, fence, other) = r.breakdown();
        assert!((busy + fence + other - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ustm_runner_smoke() {
        let r = run_ustm(UstmBench::Hash, FenceDesign::SPlus, 2, 7, 150_000);
        assert!(r.commits > 0);
    }

    #[test]
    fn mean_of_values() {
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }
}
