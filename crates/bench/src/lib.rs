//! Experiment harness regenerating the paper's evaluation.
//!
//! The harness is layered:
//!
//! 1. [`runner`] — the unified run engine: a [`RunSpec`] describes one
//!    deterministic simulation as plain data and a [`Runner`] executes
//!    batches over a worker pool (`--jobs` / `ASF_JOBS`) with
//!    order-preserving aggregation.
//! 2. [`figures`] — every figure/table as a library function: build a
//!    spec grid, run it, format into a [`ReportSink`].
//! 3. [`report`] — markdown/CSV tables and the sink the figures emit to.
//! 4. [`cli`] — the shared flag parser for the `src/bin/` binaries
//!    (`--jobs`, `--designs`, `--filter`, `--quick`).
//!
//! One binary per table/figure (see `src/bin/`); every run is
//! deterministic for a given spec, so output is byte-identical at any
//! worker count. Results are printed as markdown tables and also written
//! as CSV under `results/`.
//!
//! | binary | artifact |
//! |--------|----------|
//! | `fig08_cilk` | Figure 8: CilkApps execution-time breakdown |
//! | `fig09_ustm_throughput` | Figure 9: ustm transactional throughput |
//! | `fig10_ustm_breakdown` | Figure 10: per-transaction cycle breakdown |
//! | `fig11_stamp` | Figure 11: STAMP execution time |
//! | `fig12_scalability` | Figure 12: fence-stall ratio at 4–32 cores |
//! | `table4_characterization` | Table 4: fence/BS/bounce/traffic stats |
//! | `litmus_matrix` | Figures 1/3/4 scenarios under every design |
//! | `ablations` | extension sweeps (BS size, timeout, backoff, mesh) |
//! | `all_experiments` | everything above, in sequence |
//! | `native_bench` | real-hardware kernels + sim-vs-silicon crossval ([`native`]) |
//! | `analyze` | whole-program fence inference + C11 lowering (crate `asymfence-analyze`) |
//! | `sweep` | sharded sweeps: durable run ledger ([`ledger`]), crash-safe shards ([`shard`]), fleet dashboard ([`status`]) |

use asymfence::prelude::*;
use asymfence_workloads::cilk::CilkApp;
use asymfence_workloads::stamp::StampApp;
use asymfence_workloads::ustm::UstmBench;

pub mod cli;
pub mod figures;
pub mod ledger;
pub mod metrics;
pub mod micro;
pub mod native;
pub mod pool;
pub mod report;
pub mod runner;
pub mod shard;
pub mod status;
pub mod trace;

pub use report::{f2, mean, pct, ReportSink, Table};
pub use runner::{Knobs, LitmusCase, RunSpec, Runner, SiteMask, Workload};

/// Designs compared in the figures, in the paper's order.
pub const DESIGNS: [FenceDesign; 4] = [
    FenceDesign::SPlus,
    FenceDesign::WsPlus,
    FenceDesign::WPlus,
    FenceDesign::Wee,
];

/// Default seed for every experiment (the paper's publication year).
pub const SEED: u64 = 2015;

/// Simulated-cycle window for throughput (ustm) runs.
pub const USTM_WINDOW: u64 = 1_500_000;

/// Hard ceiling for finite runs.
pub const MAX_CYCLES: u64 = 4_000_000_000;

/// Scale factor for quick runs (`ASF_QUICK=1` in the environment or
/// `--quick` on the command line shrinks workloads ~4x).
pub fn quick() -> bool {
    std::env::var("ASF_QUICK").is_ok_and(|v| v != "0")
        || std::env::args().any(|a| a == "--quick")
}

/// One run's outcome: cycle count plus merged statistics.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Wall-clock cycles of the run.
    pub cycles: u64,
    /// Merged machine statistics.
    pub stats: MachineStats,
    /// Committed transactions (STM runs only).
    pub commits: u64,
    /// Aborted transactions (STM runs only).
    pub aborts: u64,
    /// How the run ended (litmus cases record deadlocks instead of
    /// panicking on them).
    pub outcome: RunOutcome,
    /// Whether the Shasha–Snir checker found a sequential-consistency
    /// violation (litmus runs with the SCV log enabled; `false` elsewhere).
    pub scv: bool,
}

impl RunResult {
    /// Busy / fence / other shares of non-idle core time.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let a = self.stats.aggregate();
        let active = (a.busy_cycles + a.fence_stall_cycles + a.other_stall_cycles).max(1);
        (
            a.busy_cycles as f64 / active as f64,
            a.fence_stall_cycles as f64 / active as f64,
            a.other_stall_cycles as f64 / active as f64,
        )
    }

    /// Folds `other` into `self`: cycles/commits/aborts add, the machine
    /// statistics merge via [`MachineStats::merge`], and the SCV flag is
    /// sticky. Used by Table 4 to aggregate a workload group; the first
    /// run's `outcome` is kept.
    pub fn merge(&mut self, other: &RunResult) {
        self.cycles += other.cycles;
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.stats.merge(&other.stats);
        self.scv |= other.scv;
    }
}

/// Runs one CilkApp to completion (thin wrapper over
/// [`RunSpec::execute`]).
///
/// # Panics
///
/// Panics if the run deadlocks or exceeds the cycle ceiling.
pub fn run_cilk(app: CilkApp, design: FenceDesign, cores: usize, seed: u64) -> RunResult {
    RunSpec::cilk(app, design, cores, seed).execute()
}

/// Runs one ustm microbenchmark for a fixed simulated window and counts
/// committed transactions (thin wrapper over [`RunSpec::execute`]).
pub fn run_ustm(
    bench: UstmBench,
    design: FenceDesign,
    cores: usize,
    seed: u64,
    window: u64,
) -> RunResult {
    RunSpec::ustm(bench, design, cores, seed, window).execute()
}

/// Runs one STAMP app to completion (thin wrapper over
/// [`RunSpec::execute`]).
///
/// # Panics
///
/// Panics if the run deadlocks or exceeds the cycle ceiling.
pub fn run_stamp(app: StampApp, design: FenceDesign, cores: usize, seed: u64) -> RunResult {
    RunSpec::stamp(app, design, cores, seed).execute()
}

/// Minimal in-repo wall-clock benchmarking, replacing the external
/// criterion dependency (which cannot build offline). Used by the
/// `benches/*.rs` binaries (`harness = false`).
pub mod timing {
    use std::hint::black_box;
    use std::time::Instant;

    /// Measurements for one benchmark.
    #[derive(Clone, Debug)]
    pub struct Timing {
        /// Benchmark label.
        pub name: String,
        /// Measured iterations (after one warm-up).
        pub iters: u32,
        /// Mean nanoseconds per iteration.
        pub mean_ns: f64,
        /// Fastest iteration.
        pub min_ns: u64,
        /// Slowest iteration.
        pub max_ns: u64,
    }

    impl Timing {
        fn human(ns: f64) -> String {
            if ns >= 1e9 {
                format!("{:.2} s", ns / 1e9)
            } else if ns >= 1e6 {
                format!("{:.2} ms", ns / 1e6)
            } else if ns >= 1e3 {
                format!("{:.2} µs", ns / 1e3)
            } else {
                format!("{ns:.0} ns")
            }
        }
    }

    /// Iteration budget: `ASF_BENCH_ITERS` overrides the default.
    pub fn iters_from_env(default: u32) -> u32 {
        std::env::var("ASF_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(default)
    }

    /// Runs `f` once to warm up, then `iters` timed iterations.
    pub fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> Timing {
        black_box(f());
        let mut samples = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed().as_nanos() as u64);
        }
        Timing {
            name: name.to_string(),
            iters,
            mean_ns: samples.iter().sum::<u64>() as f64 / samples.len() as f64,
            min_ns: samples.iter().copied().min().unwrap_or(0),
            max_ns: samples.iter().copied().max().unwrap_or(0),
        }
    }

    /// Collects timings and prints one markdown table at the end.
    #[derive(Default)]
    pub struct Report {
        rows: Vec<Timing>,
    }

    impl Report {
        /// Creates an empty report.
        pub fn new() -> Self {
            Self::default()
        }

        /// Benches `f` and records the result (also echoed immediately).
        pub fn bench<R>(&mut self, name: &str, iters: u32, f: impl FnMut() -> R) {
            let t = bench(name, iters, f);
            println!(
                "{:40} {:>10}/iter  (min {}, max {}, {} iters)",
                t.name,
                Timing::human(t.mean_ns),
                Timing::human(t.min_ns as f64),
                Timing::human(t.max_ns as f64),
                t.iters
            );
            self.rows.push(t);
        }

        /// Renders all rows as a markdown table.
        pub fn to_markdown(&self) -> String {
            let mut t = super::Table::new(vec!["benchmark", "mean/iter", "min", "max", "iters"]);
            for r in &self.rows {
                t.row(vec![
                    r.name.clone(),
                    Timing::human(r.mean_ns),
                    Timing::human(r.min_ns as f64),
                    Timing::human(r.max_ns as f64),
                    r.iters.to_string(),
                ]);
            }
            t.to_markdown()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bench_measures_and_reports() {
            let mut calls = 0u32;
            let t = bench("spin", 3, || {
                calls += 1;
                std::hint::black_box(calls)
            });
            assert_eq!(calls, 4); // 1 warm-up + 3 timed
            assert_eq!(t.iters, 3);
            assert!(t.min_ns <= t.max_ns);
            assert!(t.mean_ns >= t.min_ns as f64);
        }

        #[test]
        fn report_renders_markdown() {
            let mut r = Report::new();
            r.bench("noop", 2, || 1 + 1);
            let md = r.to_markdown();
            assert!(md.contains("noop"));
            assert!(md.contains("mean/iter"));
        }

        #[test]
        fn env_knob_parses() {
            assert_eq!(iters_from_env(7), 7); // unset → default
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cilk_runner_smoke() {
        let r = run_cilk(CilkApp::Fib, FenceDesign::WsPlus, 2, 7);
        assert!(r.cycles > 0);
        assert_eq!(r.outcome, RunOutcome::Finished);
        let (busy, fence, other) = r.breakdown();
        assert!((busy + fence + other - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ustm_runner_smoke() {
        let r = run_ustm(UstmBench::Hash, FenceDesign::SPlus, 2, 7, 150_000);
        assert!(r.commits > 0);
    }

    #[test]
    fn run_result_merge_accumulates() {
        let a = run_cilk(CilkApp::Fib, FenceDesign::SPlus, 2, 7);
        let b = run_ustm(UstmBench::Counter, FenceDesign::SPlus, 2, 7, 40_000);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.cycles, a.cycles + b.cycles);
        assert_eq!(m.commits, b.commits);
        assert_eq!(
            m.stats.aggregate().instrs_retired,
            a.stats.aggregate().instrs_retired + b.stats.aggregate().instrs_retired
        );
    }
}
