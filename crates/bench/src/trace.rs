//! Fence-trace export for the figure binaries (`--trace PATH`).
//!
//! When `--trace` is given, a figure section re-runs one representative
//! spec per reported design with the fence-lifecycle trace enabled
//! ([`RunSpec::execute_traced`]), writes one combined Chrome-trace JSON
//! — each design its own Perfetto process group — to the path, and
//! prints a per-fence latency/bounce histogram report to **stderr**.
//!
//! The figure's own stdout tables and `results/` CSVs are untouched:
//! the traced re-runs never feed the tables, and tracing itself is pure
//! observation (a traced run produces the same [`crate::RunResult`] as
//! an untraced one). Load the JSON at <https://ui.perfetto.dev>.

use std::fmt::Write as _;
use std::io::Write as _;

use asymfence::prelude::{FenceClass, TraceSink};

use crate::cli::Opts;
use crate::runner::RunSpec;

/// Derives a per-section output path from the user's `--trace` path:
/// `out.json` + `fig08_cilk` → `out-fig08_cilk.json`. Used by
/// [`crate::figures::all`] so the sections don't overwrite each other;
/// a single-figure binary writes to the path as given.
pub fn section_path(path: &str, section: &str) -> String {
    match path.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}-{section}.{ext}"),
        _ => format!("{path}-{section}"),
    }
}

/// One representative spec per design, in first-appearance order: the
/// first spec of each distinct design in the grid. Deterministic, so the
/// emitted trace is too.
fn representatives(specs: &[RunSpec]) -> Vec<RunSpec> {
    let mut seen = Vec::new();
    let mut reps = Vec::new();
    for spec in specs {
        if !seen.contains(&spec.design) {
            seen.push(spec.design);
            reps.push(*spec);
        }
    }
    reps
}

/// Renders the per-fence latency/bounce histogram report for one traced
/// run (the stderr side of `--trace`).
pub fn histogram_report(label: &str, sink: &TraceSink) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- {label}: {} events recorded ({} beyond the ring), {} fence spans --",
        sink.recorded(),
        sink.dropped(),
        sink.spans().len()
    );
    for class in FenceClass::ALL {
        let t = sink.tally(class);
        if t.issued == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "   {:>6}: issued {:>7}  completed {:>7}  rolled-back {}  demoted {}",
            class.label(),
            t.issued,
            t.completed,
            t.rolled_back,
            t.demoted
        );
        let _ = writeln!(
            out,
            "           latency mean {:.1}  p50 {}  p90 {}  p99 {}  max {}  bounces/fence {:.3}",
            t.mean_latency(),
            t.percentile(50.0),
            t.percentile(90.0),
            t.percentile(99.0),
            t.max_latency,
            t.bounces_per_fence()
        );
    }
    if sink.unattributed_bounces() > 0 {
        let _ = writeln!(
            out,
            "   {} bounces hit cores with no open fence",
            sink.unattributed_bounces()
        );
    }
    out
}

/// If `--trace` was given, re-runs one representative spec per design
/// with tracing on, writes the combined Chrome-trace JSON to the path
/// and the histogram report to stderr. No-op otherwise; never touches
/// the figure's stdout.
///
/// # Panics
///
/// Panics if the trace file cannot be written (consistent with how the
/// report layer treats `results/` CSVs).
pub fn maybe_emit(section: &str, specs: &[RunSpec], opts: &Opts) {
    let Some(path) = opts.trace.as_deref() else {
        return;
    };
    if specs.is_empty() {
        return;
    }
    let reps = representatives(specs);
    let mut json = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut report = String::new();
    for (pid, spec) in reps.iter().enumerate() {
        let (_, sink) = spec.execute_traced();
        if pid > 0 {
            json.push_str(",\n");
        }
        json.push_str(&sink.chrome_events(pid as u64));
        report.push_str(&histogram_report(&spec.label(), &sink));
    }
    json.push_str("\n]}\n");
    let mut f = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"));
    f.write_all(json.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write trace file {path}: {e}"));
    eprint!(
        "== fence trace: {section} -> {path} ({} designs) ==\n{report}",
        reps.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::FenceDesign;
    use asymfence_workloads::cilk::CilkApp;

    #[test]
    fn section_path_suffixes_before_extension() {
        assert_eq!(section_path("out.json", "fig08"), "out-fig08.json");
        assert_eq!(section_path("trace", "fig08"), "trace-fig08");
        assert_eq!(section_path(".json", "x"), ".json-x");
    }

    #[test]
    fn representatives_take_first_spec_per_design() {
        let specs = vec![
            RunSpec::cilk(CilkApp::Fib, FenceDesign::SPlus, 2, 1),
            RunSpec::cilk(CilkApp::Bucket, FenceDesign::SPlus, 2, 1),
            RunSpec::cilk(CilkApp::Fib, FenceDesign::WsPlus, 2, 1),
        ];
        let reps = representatives(&specs);
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].design, FenceDesign::SPlus);
        assert!(matches!(
            reps[0].workload,
            crate::runner::Workload::Cilk(CilkApp::Fib)
        ));
        assert_eq!(reps[1].design, FenceDesign::WsPlus);
    }

    #[test]
    fn histogram_report_names_the_classes() {
        let spec = RunSpec::cilk(CilkApp::Fib, FenceDesign::WsPlus, 2, 7);
        let (_, sink) = spec.execute_traced();
        let report = histogram_report(&spec.label(), &sink);
        assert!(report.contains("fib/WS+/2c/s7"));
        assert!(report.contains("sf:"), "strong fences present: {report}");
        assert!(report.contains("wf:"), "weak fences present: {report}");
    }

    #[test]
    fn traced_execution_matches_untraced() {
        let spec = RunSpec::cilk(CilkApp::Fib, FenceDesign::WPlus, 2, 7);
        let plain = spec.execute();
        let (traced, sink) = spec.execute_traced();
        assert_eq!(plain.cycles, traced.cycles);
        assert_eq!(plain.stats, traced.stats);
        assert!(sink.recorded() > 0);
    }
}
