//! Every figure/table of the evaluation as a library function: a
//! declarative [`RunSpec`] grid, one [`Runner::run`] fan-out, then
//! order-preserving formatting into a [`ReportSink`].
//!
//! The `src/bin/` binaries are thin wrappers over these functions, and
//! [`all`] chains them in-process (what the `all_experiments` binary
//! runs). Keeping the run loop in one place is what makes the whole
//! harness parallel: a figure describes *what* to simulate, the runner
//! decides *how*.

use asymfence::prelude::{FenceDesign, FenceRole};
use asymfence_workloads::cilk::CilkApp;
use asymfence_workloads::stamp::StampApp;
use asymfence_workloads::ustm::UstmBench;

use crate::cli::Opts;
use crate::report::{f2, mean, pct, ReportSink, Table};
use crate::runner::{Knobs, LitmusCase, RunSpec, Runner, Workload};
use crate::{RunResult, SEED, USTM_WINDOW};

/// Figure 8: execution time of CilkApps, normalized to S+, broken down
/// into busy / other-stall / fence-stall time.
pub fn fig08(runner: &Runner, opts: &Opts, sink: &mut ReportSink) {
    runner.begin_section("fig08_cilk");
    let cores = 8;
    sink.line(format!(
        "# Figure 8 — CilkApps execution time (normalized to S+), {cores} cores"
    ));
    sink.blank();
    let apps: Vec<CilkApp> = if opts.quick {
        vec![CilkApp::Fib, CilkApp::Bucket, CilkApp::Matmul]
    } else {
        CilkApp::ALL.to_vec()
    };
    let apps: Vec<CilkApp> = apps.into_iter().filter(|a| opts.keep(a.name())).collect();
    let designs = opts.design_list();

    let specs: Vec<RunSpec> = apps
        .iter()
        .flat_map(|&app| designs.iter().map(move |&d| RunSpec::cilk(app, d, cores, SEED)))
        .collect();
    let results = runner.run(&specs);
    crate::trace::maybe_emit("fig08_cilk", &specs, opts);

    let mut t = Table::new(vec![
        "app", "design", "cycles", "norm-time", "busy", "other-stall", "fence-stall",
    ]);
    let mut per_design_norm: Vec<Vec<f64>> = vec![Vec::new(); designs.len()];
    let mut splus_fence_share = Vec::new();
    for (ai, &app) in apps.iter().enumerate() {
        let base = &results[ai * designs.len()]; // S+ is always designs[0]
        splus_fence_share.push(base.breakdown().1);
        for (di, &design) in designs.iter().enumerate() {
            let r = &results[ai * designs.len() + di];
            let norm = r.cycles as f64 / base.cycles as f64;
            per_design_norm[di].push(norm);
            let (busy, fence, other) = r.breakdown();
            t.row(vec![
                app.name().to_string(),
                design.label().to_string(),
                r.cycles.to_string(),
                f2(norm),
                pct(busy),
                pct(other),
                pct(fence),
            ]);
        }
    }
    sink.table("fig08_cilk", &t);
    sink.line("## Averages");
    sink.line(format!(
        "S+ fence-stall share of core time: {} (paper: ~13%)",
        pct(mean(&splus_fence_share))
    ));
    for (di, &design) in designs.iter().enumerate() {
        sink.line(format!(
            "{:>4}: mean normalized execution time {} (paper: S+ 1.00, WS+/W+/Wee ~0.91)",
            design.label(),
            f2(mean(&per_design_norm[di]))
        ));
    }
}

/// Figure 9: transactional throughput of the ustm microbenchmarks,
/// normalized to S+ (higher is better).
pub fn fig09(runner: &Runner, opts: &Opts, sink: &mut ReportSink) {
    runner.begin_section("fig09_ustm_throughput");
    let cores = 8;
    let window = if opts.quick { USTM_WINDOW / 4 } else { USTM_WINDOW };
    sink.line(format!(
        "# Figure 9 — ustm transactional throughput (normalized to S+), {cores} cores, {window}-cycle window"
    ));
    sink.blank();
    let benches: Vec<UstmBench> = if opts.quick {
        vec![UstmBench::Counter, UstmBench::Hash, UstmBench::Tree]
    } else {
        UstmBench::ALL.to_vec()
    };
    let benches: Vec<UstmBench> = benches.into_iter().filter(|b| opts.keep(b.name())).collect();
    let designs = opts.design_list();

    let specs: Vec<RunSpec> = benches
        .iter()
        .flat_map(|&b| {
            designs
                .iter()
                .map(move |&d| RunSpec::ustm(b, d, cores, SEED, window))
        })
        .collect();
    let results = runner.run(&specs);
    crate::trace::maybe_emit("fig09_ustm_throughput", &specs, opts);

    let mut t = Table::new(vec!["bench", "design", "commits", "aborts", "norm-throughput"]);
    let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); designs.len()];
    for (bi, &bench) in benches.iter().enumerate() {
        let base = &results[bi * designs.len()];
        for (di, &design) in designs.iter().enumerate() {
            let r = &results[bi * designs.len() + di];
            let norm = r.commits as f64 / base.commits.max(1) as f64;
            per_design[di].push(norm);
            t.row(vec![
                bench.name().to_string(),
                design.label().to_string(),
                r.commits.to_string(),
                r.aborts.to_string(),
                f2(norm),
            ]);
        }
    }
    sink.table("fig09_ustm_throughput", &t);
    sink.line("## Averages (paper: WS+ +38%, W+ +58%, Wee +14% over S+)");
    for (di, &design) in designs.iter().enumerate() {
        sink.line(format!(
            "{:>4}: mean normalized throughput {}",
            design.label(),
            f2(mean(&per_design[di]))
        ));
    }
}

/// Figure 10: per-transaction breakdown of processor cycles for the ustm
/// microbenchmarks (busy / other-stall / fence-stall), normalized to S+.
pub fn fig10(runner: &Runner, opts: &Opts, sink: &mut ReportSink) {
    runner.begin_section("fig10_ustm_breakdown");
    let cores = 8;
    let window = if opts.quick { USTM_WINDOW / 4 } else { USTM_WINDOW };
    sink.line("# Figure 10 — ustm per-transaction processor cycles (normalized to S+)");
    sink.blank();
    let benches: Vec<UstmBench> = if opts.quick {
        vec![UstmBench::Counter, UstmBench::Hash, UstmBench::Tree]
    } else {
        UstmBench::ALL.to_vec()
    };
    let benches: Vec<UstmBench> = benches.into_iter().filter(|b| opts.keep(b.name())).collect();
    let designs = opts.design_list();

    let specs: Vec<RunSpec> = benches
        .iter()
        .flat_map(|&b| {
            designs
                .iter()
                .map(move |&d| RunSpec::ustm(b, d, cores, SEED, window))
        })
        .collect();
    let results = runner.run(&specs);
    crate::trace::maybe_emit("fig10_ustm_breakdown", &specs, opts);

    let per_txn = |r: &RunResult| {
        let a = r.stats.aggregate();
        let active = a.busy_cycles + a.fence_stall_cycles + a.other_stall_cycles;
        active as f64 / r.commits.max(1) as f64
    };
    let mut t = Table::new(vec![
        "bench", "design", "cycles/txn", "norm", "busy", "other-stall", "fence-stall",
    ]);
    let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); designs.len()];
    let mut splus_fence_share = Vec::new();
    for (bi, &bench) in benches.iter().enumerate() {
        let base = &results[bi * designs.len()];
        let base_txn = per_txn(base);
        splus_fence_share.push(base.breakdown().1);
        for (di, &design) in designs.iter().enumerate() {
            let r = &results[bi * designs.len() + di];
            let txn = per_txn(r);
            let norm = txn / base_txn;
            per_design[di].push(norm);
            let (busy, fence, other) = r.breakdown();
            t.row(vec![
                bench.name().to_string(),
                design.label().to_string(),
                f2(txn),
                f2(norm),
                pct(busy),
                pct(other),
                pct(fence),
            ]);
        }
    }
    sink.table("fig10_ustm_breakdown", &t);
    sink.line("## Averages");
    sink.line(format!(
        "S+ fence-stall share: {} (paper: ~54%)",
        pct(mean(&splus_fence_share))
    ));
    sink.line("(paper: WS+ -24%, W+ -35%, Wee -11% cycles per transaction)");
    for (di, &design) in designs.iter().enumerate() {
        sink.line(format!(
            "{:>4}: mean normalized cycles/transaction {}",
            design.label(),
            f2(mean(&per_design[di]))
        ));
    }
}

/// Figure 11: STAMP execution time, normalized to S+, with the cycle
/// breakdown.
pub fn fig11(runner: &Runner, opts: &Opts, sink: &mut ReportSink) {
    runner.begin_section("fig11_stamp");
    let cores = 8;
    sink.line(format!(
        "# Figure 11 — STAMP execution time (normalized to S+), {cores} cores"
    ));
    sink.blank();
    let apps: Vec<StampApp> = if opts.quick {
        vec![StampApp::Intruder, StampApp::Ssca2]
    } else {
        StampApp::ALL.to_vec()
    };
    let apps: Vec<StampApp> = apps.into_iter().filter(|a| opts.keep(a.name())).collect();
    let designs = opts.design_list();

    let specs: Vec<RunSpec> = apps
        .iter()
        .flat_map(|&a| designs.iter().map(move |&d| RunSpec::stamp(a, d, cores, SEED)))
        .collect();
    let results = runner.run(&specs);
    crate::trace::maybe_emit("fig11_stamp", &specs, opts);

    let mut t = Table::new(vec![
        "app", "design", "cycles", "norm-time", "busy", "other-stall", "fence-stall",
    ]);
    let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); designs.len()];
    let mut splus_fence_share = Vec::new();
    for (ai, &app) in apps.iter().enumerate() {
        let base = &results[ai * designs.len()];
        splus_fence_share.push(base.breakdown().1);
        for (di, &design) in designs.iter().enumerate() {
            let r = &results[ai * designs.len() + di];
            let norm = r.cycles as f64 / base.cycles as f64;
            per_design[di].push(norm);
            let (busy, fence, other) = r.breakdown();
            t.row(vec![
                app.name().to_string(),
                design.label().to_string(),
                r.cycles.to_string(),
                f2(norm),
                pct(busy),
                pct(other),
                pct(fence),
            ]);
        }
    }
    sink.table("fig11_stamp", &t);
    sink.line("## Averages (paper: WS+ -7%, W+ -19%, Wee -11%; S+ fence stall ~13%)");
    sink.line(format!("S+ fence-stall share: {}", pct(mean(&splus_fence_share))));
    for (di, &design) in designs.iter().enumerate() {
        sink.line(format!(
            "{:>4}: mean normalized execution time {}",
            design.label(),
            f2(mean(&per_design[di]))
        ));
    }
}

/// Figure 12: scalability of the fence-stall reduction — total
/// fence-stall time relative to S+ at 4..32 cores per workload group.
pub fn fig12(runner: &Runner, opts: &Opts, sink: &mut ReportSink) {
    runner.begin_section("fig12_scalability");
    let core_counts: Vec<usize> = if opts.quick { vec![4, 8] } else { vec![4, 8, 16, 32] };
    let designs: Vec<FenceDesign> = [FenceDesign::WsPlus, FenceDesign::WPlus, FenceDesign::Wee]
        .into_iter()
        .filter(|&d| opts.keep_design(d))
        .collect();
    sink.line("# Figure 12 — fence-stall time relative to S+ at 4..32 cores");
    sink.blank();
    sink.line("(representative workloads per group: fib+cholesky / Hash+Tree / intruder)");
    sink.blank();

    // One spec per (group-workload, design incl. the S+ baseline, cores);
    // every simulation in the figure runs exactly once.
    let groups: Vec<(&str, Vec<Workload>)> = vec![
        (
            "CilkApps",
            vec![
                Workload::Cilk(CilkApp::Fib),
                Workload::Cilk(CilkApp::Cholesky),
            ],
        ),
        (
            "ustm",
            vec![
                Workload::Ustm { bench: UstmBench::Hash, window: USTM_WINDOW / 3 },
                Workload::Ustm { bench: UstmBench::Tree, window: USTM_WINDOW / 3 },
            ],
        ),
        ("STAMP", vec![Workload::Stamp(StampApp::Intruder)]),
    ];
    let groups: Vec<_> = groups.into_iter().filter(|(name, _)| opts.keep(name)).collect();

    let mut all_designs = vec![FenceDesign::SPlus];
    all_designs.extend(&designs);
    let mut specs = Vec::new();
    for (_, workloads) in &groups {
        for &design in &all_designs {
            for &cores in &core_counts {
                for &w in workloads {
                    specs.push(RunSpec {
                        workload: w,
                        design,
                        cores,
                        seed: SEED,
                        knobs: Knobs::default(),
                        assignment: None,
                    });
                }
            }
        }
    }
    let results = runner.run(&specs);
    crate::trace::maybe_emit("fig12_scalability", &specs, opts);

    // Sum of fence-stall cycles for one (group, design, cores) cell.
    let mut idx = 0;
    let mut stall = std::collections::HashMap::new();
    for (gi, (_, workloads)) in groups.iter().enumerate() {
        for &design in &all_designs {
            for &cores in &core_counts {
                let mut sum = 0.0;
                for _ in workloads {
                    sum += results[idx].stats.fence_stall_cycles() as f64;
                    idx += 1;
                }
                stall.insert((gi, design, cores), sum);
            }
        }
    }

    let mut t = Table::new(vec!["group", "design", "cores", "stall-ratio"]);
    for (gi, (group, _)) in groups.iter().enumerate() {
        for &design in &designs {
            for &cores in &core_counts {
                let s = stall[&(gi, FenceDesign::SPlus, cores)];
                let d = stall[&(gi, design, cores)];
                t.row(vec![
                    group.to_string(),
                    design.label().to_string(),
                    cores.to_string(),
                    pct(d / s.max(1.0)),
                ]);
            }
        }
    }
    t_emit_scalability(sink, &t);
}

fn t_emit_scalability(sink: &mut ReportSink, t: &Table) {
    sink.table("fig12_scalability", t);
    sink.line("(paper: ratios stay flat or grow only modestly from 4 to 32 cores)");
}

/// Table 4: characterization of the fence designs at 8 cores.
pub fn table4(runner: &Runner, opts: &Opts, sink: &mut ReportSink) {
    runner.begin_section("table4_characterization");
    let cores = 8;
    sink.line(format!(
        "# Table 4 — characterization of S+/WS+/W+/Wee at {cores} cores"
    ));
    sink.blank();
    let designs = opts.design_list();

    let cilk: Vec<Workload> = if opts.quick {
        vec![Workload::Cilk(CilkApp::Fib)]
    } else {
        vec![
            Workload::Cilk(CilkApp::Fib),
            Workload::Cilk(CilkApp::Cholesky),
            Workload::Cilk(CilkApp::Matmul),
        ]
    };
    let ustm: Vec<Workload> = if opts.quick {
        vec![Workload::Ustm { bench: UstmBench::Hash, window: USTM_WINDOW / 3 }]
    } else {
        vec![
            Workload::Ustm { bench: UstmBench::Hash, window: USTM_WINDOW / 3 },
            Workload::Ustm { bench: UstmBench::Tree, window: USTM_WINDOW / 3 },
            Workload::Ustm { bench: UstmBench::List, window: USTM_WINDOW / 3 },
        ]
    };
    let stamp: Vec<Workload> = if opts.quick {
        vec![Workload::Stamp(StampApp::Ssca2)]
    } else {
        vec![
            Workload::Stamp(StampApp::Intruder),
            Workload::Stamp(StampApp::Vacation),
        ]
    };
    let groups: Vec<(&str, Vec<Workload>)> = [
        ("CilkApps", cilk),
        ("ustm", ustm),
        ("STAMP", stamp),
    ]
    .into_iter()
    .filter(|(name, _)| opts.keep(name))
    .collect();

    let mut specs = Vec::new();
    for (_, workloads) in &groups {
        for &design in &designs {
            for &w in workloads {
                specs.push(RunSpec {
                    workload: w,
                    design,
                    cores,
                    seed: SEED,
                    knobs: Knobs::default(),
                    assignment: None,
                });
            }
        }
    }
    let results = runner.run(&specs);
    crate::trace::maybe_emit("table4_characterization", &specs, opts);

    let mut t = Table::new(vec![
        "group",
        "design",
        "sf/1000i",
        "wf/1000i",
        "lines/BS",
        "wr-bounced/wf",
        "retries/wr",
        "%traffic",
        "recov/wf",
        "wee-demotions",
    ]);
    let mut idx = 0;
    for (group, workloads) in &groups {
        for &design in &designs {
            // Fold the group's runs into one aggregate with the
            // order-independent merge (MachineStats::merge).
            let mut merged: Option<RunResult> = None;
            for _ in workloads {
                let r = &results[idx];
                idx += 1;
                match &mut merged {
                    None => merged = Some(r.clone()),
                    Some(acc) => acc.merge(r),
                }
            }
            let r = merged.expect("groups are nonempty");
            let a = r.stats.aggregate();
            let ki = a.instrs_retired.max(1) as f64 / 1000.0;
            let wf = a.wf_count.max(1) as f64;
            t.row(vec![
                group.to_string(),
                design.label().to_string(),
                f2(a.sf_count as f64 / ki),
                f2(a.wf_count as f64 / ki),
                f2(a.avg_bs_lines()),
                f2(a.writes_bounced as f64 / wf),
                f2(a.bounce_retries as f64 / a.writes_bounced.max(1) as f64),
                f2(r.stats.traffic.retry_increase_pct()),
                f2(a.recoveries as f64 / wf),
                a.wee_demotions.to_string(),
            ]);
        }
    }
    sink.table("table4_characterization", &t);
    sink.line("(paper: ~1 sf/1000i for CilkApps and STAMP, ~5.7 for ustm under S+;");
    sink.line(" 3-5 lines per BS; low bounce counts; negligible traffic increase;");
    sink.line(" Wee demotes about half of ustm and a third of STAMP fences)");
}

/// Figures 1, 3 and 4 as a litmus matrix, each case verified with the
/// Shasha–Snir checker.
pub fn litmus_matrix(runner: &Runner, opts: &Opts, sink: &mut ReportSink) {
    runner.begin_section("litmus_matrix");
    use FenceRole::{Critical, NonCritical};
    sink.line("# Litmus matrix — figures 1d/1f/3a/3c/4b");
    sink.blank();
    let all = [
        FenceDesign::SPlus,
        FenceDesign::WsPlus,
        FenceDesign::SwPlus,
        FenceDesign::WPlus,
        FenceDesign::Wee,
    ];

    // (scenario label, design label, spec) — rows in the figure's order.
    let mut rows: Vec<(String, String, RunSpec)> = Vec::new();
    let sb_unfenced = LitmusCase::StoreBuffering { fences: None };
    rows.push((
        "SB unfenced".into(),
        "-".into(),
        RunSpec::litmus(sb_unfenced, FenceDesign::SPlus, SEED),
    ));
    let sb_fenced = LitmusCase::StoreBuffering {
        fences: Some((Critical, NonCritical)),
    };
    for d in all {
        rows.push(("SB fig1d".into(), d.label().into(), RunSpec::litmus(sb_fenced, d, SEED)));
    }
    let three = LitmusCase::ThreeThreadCycle {
        roles: [Critical, NonCritical, NonCritical],
    };
    for d in [FenceDesign::WsPlus, FenceDesign::SwPlus] {
        rows.push(("3-thread fig3c".into(), d.label().into(), RunSpec::litmus(three, d, SEED)));
    }
    let all_wf = LitmusCase::ThreeThreadCycle { roles: [Critical; 3] };
    rows.push((
        "3-thread all-wf".into(),
        "W+".into(),
        RunSpec::litmus(all_wf, FenceDesign::WPlus, SEED),
    ));
    let false_share = LitmusCase::FalseSharingPair { roles: (Critical, Critical) };
    for d in [FenceDesign::WsPlus, FenceDesign::SwPlus, FenceDesign::WPlus] {
        rows.push((
            "false-share fig4b".into(),
            d.label().into(),
            RunSpec::litmus(false_share, d, SEED),
        ));
    }
    rows.push((
        "fig3a unprotected".into(),
        "wf-only".into(),
        RunSpec::litmus(false_share, FenceDesign::WfOnlyUnsafe, SEED),
    ));

    let rows: Vec<_> = rows
        .into_iter()
        .filter(|(scenario, _, _)| opts.keep(scenario))
        .collect();
    let specs: Vec<RunSpec> = rows.iter().map(|(_, _, s)| *s).collect();
    let results = runner.run(&specs);
    crate::trace::maybe_emit("litmus_matrix", &specs, opts);

    let mut t = Table::new(vec!["scenario", "design", "outcome", "SCV?"]);
    for ((scenario, design, _), r) in rows.iter().zip(&results) {
        t.row(vec![
            scenario.clone(),
            design.clone(),
            format!("{:?}", r.outcome),
            r.scv.to_string(),
        ]);
    }
    sink.table("litmus_matrix", &t);
    sink.line("(expected: unfenced SB shows an SCV; every protected design finishes with none;");
    sink.line(" the unprotected wf-only design deadlocks, as in Figure 3a)");
}

/// Ablation sweeps beyond the paper (indexed in EXPERIMENTS.md).
pub fn ablations(runner: &Runner, opts: &Opts, sink: &mut ReportSink) {
    runner.begin_section("ablations");
    sink.line("# Ablations");
    sink.blank();
    // Union of every sweep's specs, so `--trace` picks representatives
    // from what actually ran.
    let mut traced: Vec<RunSpec> = Vec::new();
    let fib = |knobs: Knobs, design: FenceDesign| {
        RunSpec::cilk(CilkApp::Fib, design, 8, SEED).with_knobs(knobs)
    };
    let hash = |knobs: Knobs, design: FenceDesign| {
        RunSpec::ustm(UstmBench::Hash, design, 8, SEED, 400_000).with_knobs(knobs)
    };

    if opts.keep("ws-vs-sw") {
        sink.line("## A0: WS+ vs SW+ (paper §6: \"practically the same\" on two-fence groups)");
        let benches = [UstmBench::Hash, UstmBench::Tree, UstmBench::ReadNWrite1];
        let specs: Vec<RunSpec> = benches
            .iter()
            .flat_map(|&b| {
                [FenceDesign::WsPlus, FenceDesign::SwPlus]
                    .into_iter()
                    .map(move |d| RunSpec::ustm(b, d, 8, SEED, 400_000))
            })
            .collect();
        let results = runner.run(&specs);
        traced.extend_from_slice(&specs);
        let mut t = Table::new(vec!["bench", "WS+ commits", "SW+ commits", "SW+/WS+"]);
        for (bi, bench) in benches.iter().enumerate() {
            let ws = results[bi * 2].commits;
            let sw = results[bi * 2 + 1].commits;
            t.row(vec![
                bench.name().to_string(),
                ws.to_string(),
                sw.to_string(),
                f2(sw as f64 / ws.max(1) as f64),
            ]);
        }
        sink.table("ablation_ws_vs_sw", &t);
    }

    if opts.keep("bs-capacity") {
        sink.line("## A1: Bypass-Set capacity (WS+, fib) — overflow degrades wf to sf");
        let points = [1usize, 2, 4, 8, 32];
        let mut specs = vec![fib(Knobs::default(), FenceDesign::WsPlus)];
        specs.extend(points.iter().map(|&bs| {
            fib(Knobs { bs_entries: Some(bs), ..Default::default() }, FenceDesign::WsPlus)
        }));
        let results = runner.run(&specs);
        traced.extend_from_slice(&specs);
        let base = results[0].cycles;
        let mut t = Table::new(vec!["bs_entries", "cycles", "norm"]);
        for (i, &bs) in points.iter().enumerate() {
            let c = results[i + 1].cycles;
            t.row(vec![bs.to_string(), c.to_string(), f2(c as f64 / base as f64)]);
        }
        sink.table("ablation_bs_capacity", &t);
    }

    if opts.keep("bounce-retry") {
        sink.line("## A2: bounce-retry backoff (W+, ustm Hash)");
        let points = [4u64, 16, 64, 256];
        let specs: Vec<RunSpec> = points
            .iter()
            .map(|&retry| {
                hash(
                    Knobs { bounce_retry_cycles: Some(retry), ..Default::default() },
                    FenceDesign::WPlus,
                )
            })
            .collect();
        let results = runner.run(&specs);
        traced.extend_from_slice(&specs);
        let mut t = Table::new(vec!["retry_cycles", "commits", "recoveries"]);
        for (&retry, r) in points.iter().zip(&results) {
            t.row(vec![
                retry.to_string(),
                r.commits.to_string(),
                r.stats.aggregate().recoveries.to_string(),
            ]);
        }
        sink.table("ablation_bounce_retry", &t);
    }

    if opts.keep("w-timeout") {
        sink.line("## A3: W+ deadlock timeout (ustm Hash) — too short = spurious rollbacks");
        let points = [25u64, 100, 200, 800, 3200];
        let specs: Vec<RunSpec> = points
            .iter()
            .map(|&timeout| {
                hash(
                    Knobs { w_timeout_cycles: Some(timeout), ..Default::default() },
                    FenceDesign::WPlus,
                )
            })
            .collect();
        let results = runner.run(&specs);
        traced.extend_from_slice(&specs);
        let mut t = Table::new(vec!["timeout", "commits", "recoveries"]);
        for (&timeout, r) in points.iter().zip(&results) {
            t.row(vec![
                timeout.to_string(),
                r.commits.to_string(),
                r.stats.aggregate().recoveries.to_string(),
            ]);
        }
        sink.table("ablation_w_timeout", &t);
    }

    if opts.keep("merge-width") {
        sink.line("## A6: store-merge width (motivation, paper §2.1) — TSO merges one store at a time");
        let points = [1usize, 2, 4, 8];
        let mut specs = vec![fib(
            Knobs { wb_merge_width: Some(1), ..Default::default() },
            FenceDesign::SPlus,
        )];
        specs.extend(points.iter().map(|&w| {
            fib(Knobs { wb_merge_width: Some(w), ..Default::default() }, FenceDesign::SPlus)
        }));
        let results = runner.run(&specs);
        traced.extend_from_slice(&specs);
        let base = results[0].cycles;
        let mut t = Table::new(vec!["merge_width", "S+ fib cycles", "norm"]);
        for (i, &w) in points.iter().enumerate() {
            let c = results[i + 1].cycles;
            t.row(vec![w.to_string(), c.to_string(), f2(c as f64 / base as f64)]);
        }
        sink.table("ablation_merge_width", &t);
    }

    if opts.keep("hop-latency") {
        sink.line("## A4: mesh hop latency (S+ vs WS+, fib) — weak fences hide longer networks");
        let points = [1u64, 5, 10, 20];
        let specs: Vec<RunSpec> = points
            .iter()
            .flat_map(|&hop| {
                [FenceDesign::SPlus, FenceDesign::WsPlus].into_iter().map(move |d| {
                    RunSpec::cilk(CilkApp::Fib, d, 8, SEED)
                        .with_knobs(Knobs { hop_cycles: Some(hop), ..Default::default() })
                })
            })
            .collect();
        let results = runner.run(&specs);
        traced.extend_from_slice(&specs);
        let mut t = Table::new(vec!["hop_cycles", "S+ cycles", "WS+ cycles", "WS+/S+"]);
        for (i, &hop) in points.iter().enumerate() {
            let s = results[i * 2].cycles;
            let w = results[i * 2 + 1].cycles;
            t.row(vec![
                hop.to_string(),
                s.to_string(),
                w.to_string(),
                f2(w as f64 / s as f64),
            ]);
        }
        sink.table("ablation_hop_latency", &t);
    }
    crate::trace::maybe_emit("ablations", &traced, opts);
}

/// Runs every experiment in sequence (the `all_experiments` binary),
/// in-process — each section internally fans out over the runner's
/// worker pool.
pub fn all(runner: &Runner, opts: &Opts, sink: &mut ReportSink) {
    type Section = fn(&Runner, &Opts, &mut ReportSink);
    let sections: [(&str, Section); 8] = [
        ("litmus_matrix", litmus_matrix),
        ("fig08_cilk", fig08),
        ("fig09_ustm_throughput", fig09),
        ("fig10_ustm_breakdown", fig10),
        ("fig11_stamp", fig11),
        ("fig12_scalability", fig12),
        ("table4_characterization", table4),
        ("ablations", ablations),
    ];
    for (name, f) in sections {
        sink.blank();
        sink.line(format!("===== {name} ====="));
        sink.blank();
        // Suffix the trace path per section so they don't overwrite
        // each other (out.json -> out-fig08_cilk.json, ...).
        let section_opts = Opts {
            trace: opts
                .trace
                .as_deref()
                .map(|p| crate::trace::section_path(p, name)),
            ..opts.clone()
        };
        f(runner, &section_opts, sink);
    }
    sink.blank();
    sink.line("All experiments complete; CSVs in ./results/");
}
