//! The unified run engine: declarative [`RunSpec`]s executed by a
//! [`Runner`] over a worker pool.
//!
//! Every experiment in the harness — figure grids, Table 4, the litmus
//! matrix, the ablation sweeps — is an *independent* deterministic
//! simulation. A [`RunSpec`] captures everything one run needs (workload,
//! fence design, core count, seed, config knobs) as plain `Send` data;
//! [`Runner::run`] fans a batch out over `std::thread::scope` workers,
//! each of which builds its **own** [`Machine`] from the spec, and
//! returns results in spec order. Because runs share no mutable state and
//! aggregation is order-preserving, output produced from the results is
//! byte-identical no matter the worker count.
//!
//! Worker count: `--jobs N` on the binaries beats the `ASF_JOBS`
//! environment variable beats [`std::thread::available_parallelism`].
//! Progress lines (`[done/total] spec … (cycles, wall ms, eta ~…)`, the
//! ETA projected from the batch's phase stopwatch) go to stderr while a
//! sweep runs; they are suppressed when stderr is not a terminal or
//! `ASF_PROGRESS=0` (and forced on by `ASF_PROGRESS=1`).

use std::io::IsTerminal;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use asymfence::prelude::*;
use asymfence_common::assign::FenceAssignment;
use asymfence_common::par;
use asymfence_common::telemetry::{human_ns, Stopwatch};

use crate::metrics::Collector;
use asymfence::cpu::insert::FencedProgram;
use asymfence_common::placement::PlacementSpec;
use asymfence_workloads::cilk::{self, CilkApp};
use asymfence_workloads::litmus;
use asymfence_workloads::sites::SiteBench;
use asymfence_workloads::unannot::InferredKernel;
use asymfence_workloads::stamp::{self, StampApp};
use asymfence_workloads::tlrw;
use asymfence_workloads::ustm::{self, UstmBench};

use crate::{RunResult, MAX_CYCLES};

/// Environment variable controlling progress lines (`0` off, `1` force).
pub const PROGRESS_ENV: &str = "ASF_PROGRESS";

/// A litmus scenario as pure data (mirrors the builders in
/// [`asymfence_workloads::litmus`], so a [`RunSpec`] stays `Send`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LitmusCase {
    /// Store-buffering (Dekker), optionally fenced — Figure 1d.
    StoreBuffering {
        /// Fence roles for the two threads; `None` leaves them unfenced.
        fences: Option<(FenceRole, FenceRole)>,
    },
    /// Three threads in a cyclic communication pattern — Figures 1e/3c.
    ThreeThreadCycle {
        /// Fence role per thread.
        roles: [FenceRole; 3],
    },
    /// Two unrelated fences whose lines falsely share — Figure 4b.
    FalseSharingPair {
        /// Fence roles for the two threads.
        roles: (FenceRole, FenceRole),
    },
    /// Message passing, optionally fenced — SC under TSO either way
    /// (litmus-corpus case).
    MessagePassing {
        /// Fence roles for the two threads; `None` leaves them unfenced.
        fences: Option<(FenceRole, FenceRole)>,
    },
    /// Load buffering — SC under TSO without fences (litmus-corpus case).
    LoadBuffering,
    /// Independent reads of independent writes, four threads — SC under
    /// single-copy-atomic coherence without fences (litmus-corpus case).
    Iriw,
}

impl LitmusCase {
    /// Cores the scenario needs.
    pub fn cores(&self) -> usize {
        match self {
            LitmusCase::ThreeThreadCycle { .. } => 3,
            LitmusCase::Iriw => 4,
            _ => 2,
        }
    }

    fn setup(&self) -> litmus::LitmusSetup {
        match *self {
            LitmusCase::StoreBuffering { fences } => litmus::store_buffering(fences),
            LitmusCase::ThreeThreadCycle { roles } => litmus::three_thread_cycle(roles),
            LitmusCase::FalseSharingPair { roles } => {
                litmus::false_sharing_pair(roles.0, roles.1)
            }
            LitmusCase::MessagePassing { fences: None } => litmus::message_passing(),
            LitmusCase::MessagePassing {
                fences: Some((a, b)),
            } => litmus::message_passing_fenced(a, b),
            LitmusCase::LoadBuffering => litmus::load_buffering(),
            LitmusCase::Iriw => litmus::iriw(),
        }
    }
}

/// What a [`RunSpec`] simulates.
// `Inferred` embeds a fixed-capacity `PlacementSpec` (~1.2 KiB) by
// value: run specs must stay plain `Copy` data so the parallel runner
// can hand them to workers without allocation, and boxing the spec
// would forfeit that for every workload.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// A CilkApp run to completion (Figures 8, 12, Table 4).
    Cilk(CilkApp),
    /// A ustm microbenchmark run for a fixed simulated window
    /// (Figures 9, 10, 12, Table 4, ablations).
    Ustm {
        /// The microbenchmark.
        bench: UstmBench,
        /// Simulated-cycle window.
        window: u64,
    },
    /// A STAMP app run to completion (Figures 11, 12, Table 4).
    Stamp(StampApp),
    /// A litmus scenario with outcome/SCV checking (Figures 1/3/4).
    Litmus(LitmusCase),
    /// A synthesis benchmark with per-site fence assignments (the
    /// [`sites`](asymfence_workloads::sites) drivers). Outcome and SCV
    /// status are *recorded*, never asserted: candidate assignments under
    /// search are allowed to deadlock or violate SC.
    Sites(SiteBench),
    /// An unannotated kernel executed under an analyzer-inferred fence
    /// placement: each thread is wrapped in a
    /// [`FencedProgram`] that
    /// injects fences at the placement's synthetic sites. Outcome and
    /// SCV status are recorded, never asserted — candidate placements
    /// and strength masks under search may fail.
    Inferred {
        /// The unannotated kernel.
        kernel: InferredKernel,
        /// The window patterns fences are injected at.
        placement: PlacementSpec,
    },
}

impl Workload {
    /// Short name, used for progress lines and `--filter`.
    pub fn name(&self) -> String {
        match self {
            Workload::Cilk(app) => app.name().to_string(),
            Workload::Ustm { bench, .. } => bench.name().to_string(),
            Workload::Stamp(app) => app.name().to_string(),
            Workload::Litmus(case) => match case {
                LitmusCase::StoreBuffering { fences: None } => "sb-unfenced".into(),
                LitmusCase::StoreBuffering { .. } => "sb-fenced".into(),
                LitmusCase::ThreeThreadCycle { .. } => "3cycle".into(),
                LitmusCase::FalseSharingPair { .. } => "false-sharing".into(),
                LitmusCase::MessagePassing { fences: None } => "mp-unfenced".into(),
                LitmusCase::MessagePassing { .. } => "mp-fenced".into(),
                LitmusCase::LoadBuffering => "lb".into(),
                LitmusCase::Iriw => "iriw".into(),
            },
            Workload::Sites(bench) => bench.name().to_string(),
            Workload::Inferred { kernel, .. } => format!("infer-{}", kernel.name()),
        }
    }
}

/// A per-site fence-strength assignment as plain `Copy` data: bit `i`
/// of `weak` makes site `base + i` weak (wf), clear bits stay strong
/// (sf). Hand-annotated benchmarks number their sites contiguously from
/// 0 ([`SiteMask::hand`]); analyzer placements use the synthetic id
/// range ([`SiteMask::synthetic`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteMask {
    /// Number of fence sites covered by the mask.
    pub n_sites: u32,
    /// Bit `i` set ⇒ site `base + i` resolves to the design's weak fence.
    pub weak: u64,
    /// First site id the mask covers.
    pub base: u32,
}

impl SiteMask {
    /// A mask over the hand-annotated site range `0..n_sites`.
    pub fn hand(n_sites: u32, weak: u64) -> Self {
        SiteMask {
            n_sites,
            weak,
            base: 0,
        }
    }

    /// A mask over the analyzer's synthetic site range
    /// (`SYNTHETIC_BASE..SYNTHETIC_BASE + n_sites`).
    pub fn synthetic(n_sites: u32, weak: u64) -> Self {
        SiteMask {
            n_sites,
            weak,
            base: asymfence_common::assign::SYNTHETIC_BASE,
        }
    }

    /// Expands the mask into the [`FenceAssignment`] the machine config
    /// consumes.
    pub fn to_assignment(self) -> FenceAssignment {
        let sites: Vec<u32> = (self.base..self.base + self.n_sites).collect();
        FenceAssignment::from_weak_mask(&sites, self.weak)
    }
}

/// Config-knob overrides for ablation points. `None` keeps the default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Knobs {
    /// Bypass-Set capacity.
    pub bs_entries: Option<usize>,
    /// Bounced-write retry backoff, in cycles.
    pub bounce_retry_cycles: Option<u64>,
    /// W+ deadlock-suspicion timeout, in cycles.
    pub w_timeout_cycles: Option<u64>,
    /// Write-buffer merge width.
    pub wb_merge_width: Option<usize>,
    /// Mesh hop latency, in cycles.
    pub hop_cycles: Option<u64>,
}

impl Knobs {
    fn apply(&self, mut b: MachineConfigBuilder) -> MachineConfigBuilder {
        if let Some(n) = self.bs_entries {
            b = b.bs_entries(n);
        }
        if let Some(n) = self.bounce_retry_cycles {
            b = b.bounce_retry_cycles(n);
        }
        if let Some(n) = self.w_timeout_cycles {
            b = b.w_timeout_cycles(n);
        }
        if let Some(n) = self.wb_merge_width {
            b = b.wb_merge_width(n);
        }
        if let Some(n) = self.hop_cycles {
            b = b.hop_cycles(n);
        }
        b
    }

    fn is_default(&self) -> bool {
        *self == Knobs::default()
    }
}

/// One fully-described deterministic simulation. Plain data (`Send` +
/// `Sync`), so a batch of specs can be executed by any worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSpec {
    /// What to simulate.
    pub workload: Workload,
    /// Fence microarchitecture under test.
    pub design: FenceDesign,
    /// Core count.
    pub cores: usize,
    /// Seed for both the machine config and the workload generator.
    pub seed: u64,
    /// Ablation config overrides.
    pub knobs: Knobs,
    /// Per-site fence-strength override. `None` keeps the role-based
    /// mapping, which leaves every pre-existing figure byte-identical.
    pub assignment: Option<SiteMask>,
}

impl RunSpec {
    /// A CilkApp spec.
    pub fn cilk(app: CilkApp, design: FenceDesign, cores: usize, seed: u64) -> Self {
        RunSpec {
            workload: Workload::Cilk(app),
            design,
            cores,
            seed,
            knobs: Knobs::default(),
            assignment: None,
        }
    }

    /// A ustm spec with a simulated-cycle window.
    pub fn ustm(
        bench: UstmBench,
        design: FenceDesign,
        cores: usize,
        seed: u64,
        window: u64,
    ) -> Self {
        RunSpec {
            workload: Workload::Ustm { bench, window },
            design,
            cores,
            seed,
            knobs: Knobs::default(),
            assignment: None,
        }
    }

    /// A STAMP spec.
    pub fn stamp(app: StampApp, design: FenceDesign, cores: usize, seed: u64) -> Self {
        RunSpec {
            workload: Workload::Stamp(app),
            design,
            cores,
            seed,
            knobs: Knobs::default(),
            assignment: None,
        }
    }

    /// A litmus spec (core count comes from the scenario).
    pub fn litmus(case: LitmusCase, design: FenceDesign, seed: u64) -> Self {
        RunSpec {
            workload: Workload::Litmus(case),
            design,
            cores: case.cores(),
            seed,
            knobs: Knobs::default(),
            assignment: None,
        }
    }

    /// A synthesis-benchmark spec (core count comes from the benchmark).
    pub fn sites(bench: SiteBench, design: FenceDesign, seed: u64) -> Self {
        RunSpec {
            workload: Workload::Sites(bench),
            design,
            cores: bench.cores(),
            seed,
            knobs: Knobs::default(),
            assignment: None,
        }
    }

    /// An inferred-placement spec: `kernel` built unannotated, fences
    /// injected per `placement` (core count comes from the kernel).
    pub fn inferred(
        kernel: InferredKernel,
        placement: PlacementSpec,
        design: FenceDesign,
        seed: u64,
    ) -> Self {
        RunSpec {
            workload: Workload::Inferred { kernel, placement },
            design,
            cores: kernel.cores(),
            seed,
            knobs: Knobs::default(),
            assignment: None,
        }
    }

    /// Replaces the per-site fence assignment.
    #[must_use]
    pub fn with_assignment(mut self, mask: SiteMask) -> Self {
        self.assignment = Some(mask);
        self
    }

    /// Replaces the config knobs.
    #[must_use]
    pub fn with_knobs(mut self, knobs: Knobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// Human-readable label for progress lines.
    pub fn label(&self) -> String {
        let mut s = format!(
            "{}/{}/{}c/s{}",
            self.workload.name(),
            self.design.label(),
            self.cores,
            self.seed
        );
        if !self.knobs.is_default() {
            s.push_str("/knobs");
        }
        if let Some(mask) = self.assignment {
            s.push_str(&format!("/wf{:b}", mask.weak));
        }
        s
    }

    fn config_with_trace(&self, trace: bool) -> MachineConfig {
        let mut b = MachineConfig::builder()
            .cores(self.cores)
            .fence_design(self.design)
            .seed(self.seed)
            .record_trace(trace);
        if let Workload::Litmus(_) = self.workload {
            b = b.watchdog_cycles(30_000).record_scv_log(true);
        }
        if let Workload::Sites(_) | Workload::Inferred { .. } = self.workload {
            b = b.watchdog_cycles(60_000).record_scv_log(true);
        }
        let mut cfg = self.knobs.apply(b).build();
        if let Some(mask) = self.assignment {
            cfg.fence_assignment = Some(mask.to_assignment());
        }
        cfg
    }

    fn config(&self) -> MachineConfig {
        self.config_with_trace(false)
    }

    /// Executes the spec on this worker's pooled [`Machine`] (see
    /// [`crate::pool`]): the machine's arenas are re-armed in place when
    /// the spec keeps the hardware shape, so steady-state grid execution
    /// never rebuilds a machine. Pure: equal specs produce equal
    /// results, on any thread — pooling reuses *allocations*, never
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if a to-completion workload (Cilk/STAMP) fails to finish or
    /// a ustm run deadlocks; litmus outcomes are *recorded*, not
    /// asserted, since deadlock is the expected result for some cases.
    pub fn execute(&self) -> RunResult {
        let cfg = self.config();
        crate::pool::with_machine(cfg, |m| self.run_machine(m))
    }

    /// Executes the spec with the fence-lifecycle trace enabled and
    /// returns the trace alongside the result. The [`RunResult`] is
    /// identical to what [`RunSpec::execute`] produces: tracing is pure
    /// observation.
    ///
    /// # Panics
    ///
    /// As [`RunSpec::execute`].
    pub fn execute_traced(&self) -> (RunResult, TraceSink) {
        let cfg = self.config_with_trace(true);
        crate::pool::with_machine(cfg, |m| {
            let result = self.run_machine(m);
            let trace = m.take_trace().expect("record_trace was enabled");
            (result, trace)
        })
    }

    fn run_machine(&self, m: &mut Machine) -> RunResult {
        match self.workload {
            Workload::Cilk(app) => {
                cilk::setup(m, app, self.seed);
                let outcome = m.run(MAX_CYCLES);
                assert_eq!(
                    outcome,
                    RunOutcome::Finished,
                    "{} under {} did not finish",
                    app.name(),
                    self.design
                );
                RunResult {
                    cycles: m.now(),
                    stats: m.stats(),
                    commits: 0,
                    aborts: 0,
                    outcome,
                    scv: false,
                }
            }
            Workload::Ustm { bench, window } => {
                ustm::install(m, bench, self.seed, None);
                let outcome = m.run(window);
                assert_ne!(outcome, RunOutcome::Deadlocked, "{}: deadlock", bench.name());
                let (commits, aborts) = tlrw::tally(m);
                RunResult {
                    cycles: m.now(),
                    stats: m.stats(),
                    commits,
                    aborts,
                    outcome,
                    scv: false,
                }
            }
            Workload::Stamp(app) => {
                stamp::install(m, app, self.seed);
                let outcome = m.run(MAX_CYCLES);
                assert_eq!(
                    outcome,
                    RunOutcome::Finished,
                    "{} under {} did not finish",
                    app.name(),
                    self.design
                );
                let (commits, aborts) = tlrw::tally(m);
                RunResult {
                    cycles: m.now(),
                    stats: m.stats(),
                    commits,
                    aborts,
                    outcome,
                    scv: false,
                }
            }
            Workload::Litmus(case) => {
                let (progs, _regs) = case.setup();
                for p in progs {
                    m.add_thread(p);
                }
                let outcome = m.run(50_000_000);
                let scv = m.scv_log().map(scv::has_violation).unwrap_or(false);
                RunResult {
                    cycles: m.now(),
                    stats: m.stats(),
                    commits: 0,
                    aborts: 0,
                    outcome,
                    scv,
                }
            }
            Workload::Sites(bench) => {
                for p in bench.programs(m.config(), self.seed) {
                    m.add_thread(p);
                }
                let outcome = m.run(50_000_000);
                let scv = m.scv_log().map(scv::has_violation).unwrap_or(false);
                RunResult {
                    cycles: m.now(),
                    stats: m.stats(),
                    commits: 0,
                    aborts: 0,
                    outcome,
                    scv,
                }
            }
            Workload::Inferred { kernel, placement } => {
                let line_bytes = m.config().line_bytes;
                let progs = kernel.programs(m.config(), self.seed);
                for (tid, p) in progs.into_iter().enumerate() {
                    m.add_thread(Box::new(FencedProgram::new(
                        p,
                        tid,
                        placement,
                        line_bytes,
                        FenceRole::NonCritical,
                    )));
                }
                let outcome = m.run(50_000_000);
                let scv = m.scv_log().map(scv::has_violation).unwrap_or(false);
                RunResult {
                    cycles: m.now(),
                    stats: m.stats(),
                    commits: 0,
                    aborts: 0,
                    outcome,
                    scv,
                }
            }
        }
    }
}

/// Whether progress lines should be printed, from the environment:
/// `ASF_PROGRESS=0` forces them off, `ASF_PROGRESS=1` forces them on,
/// otherwise they follow whether stderr is a terminal.
pub fn progress_from_env() -> bool {
    match std::env::var(PROGRESS_ENV).ok().as_deref() {
        Some("0") => false,
        Some("1") => true,
        _ => std::io::stderr().is_terminal(),
    }
}

/// Renders one progress line: `[done/total] label (cycles cycles, W ms`
/// plus an optional `, eta ~…` — the exact shape the runner has always
/// printed, factored out so the sweep's fleet-merged lines share it and
/// tests can pin it.
pub fn format_progress(
    done: u64,
    total: u64,
    label: &str,
    cycles: u64,
    wall_ms: u64,
    eta_ns: Option<u64>,
) -> String {
    let mut line = format!("[{done}/{total}] {label} ({cycles} cycles, {wall_ms} ms");
    if let Some(eta) = eta_ns {
        line.push_str(&format!(", eta ~{}", human_ns(eta)));
    }
    line.push(')');
    line
}

/// Cross-shard progress state for runs under `sweep`: merges this
/// shard's completions (including cells journaled by prior lives of a
/// resumed shard) with the other shards' ledger-reported counts, so the
/// progress line shows *fleet* completed/total instead of the local
/// batch — the local batch stopwatch knows nothing about sibling
/// processes. Remote counts are refreshed between chunks by the sweep
/// driver ([`FleetProgress::set_remote_done`]); the ETA projects this
/// shard's remaining cells from its own observed rate, which is the
/// number the operator of *this* process can act on.
#[derive(Debug)]
pub struct FleetProgress {
    fleet_total: u64,
    owned: u64,
    prior_done: u64,
    local_done: AtomicU64,
    remote_done: AtomicU64,
    start: Stopwatch,
}

impl FleetProgress {
    /// Fresh fleet state: `fleet_total` cells across all shards, of
    /// which this shard owns `owned` and has already journaled
    /// `prior_done` in earlier lives.
    pub fn new(fleet_total: u64, owned: u64, prior_done: u64) -> Self {
        FleetProgress {
            fleet_total,
            owned,
            prior_done,
            local_done: AtomicU64::new(0),
            remote_done: AtomicU64::new(0),
            start: Stopwatch::start(),
        }
    }

    /// Total cells in the fleet-wide grid.
    pub fn fleet_total(&self) -> u64 {
        self.fleet_total
    }

    /// Updates the sum of sibling shards' completed cells (read from
    /// their ledgers).
    pub fn set_remote_done(&self, n: u64) {
        self.remote_done.store(n, Ordering::Relaxed);
    }

    /// Cells this shard completed in this life.
    pub fn local_done(&self) -> u64 {
        self.local_done.load(Ordering::Relaxed)
    }

    /// Fleet-wide completed count: prior lives + this life + siblings.
    pub fn merged_done(&self) -> u64 {
        self.prior_done + self.local_done() + self.remote_done.load(Ordering::Relaxed)
    }

    /// Records one local completion; returns the merged fleet count
    /// after it.
    pub fn note_done(&self) -> u64 {
        self.local_done.fetch_add(1, Ordering::Relaxed);
        self.merged_done()
    }

    /// ETA until *this shard* finishes its partition, projected from the
    /// rate observed in this life. `None` until a first completion or
    /// once the shard is done.
    pub fn eta_ns(&self) -> Option<u64> {
        let local = self.local_done();
        if local == 0 {
            return None;
        }
        let remaining = self.owned.saturating_sub(self.prior_done + local);
        if remaining == 0 {
            return None;
        }
        Some(self.start.elapsed_ns() / local * remaining)
    }
}

/// Executes batches of [`RunSpec`]s over a worker pool with
/// order-preserving aggregation. Optionally carries a telemetry
/// [`Collector`] (`--metrics`), which every batch reports into.
#[derive(Clone, Debug)]
pub struct Runner {
    jobs: usize,
    progress: bool,
    collector: Option<Arc<Collector>>,
    fleet: Option<Arc<FleetProgress>>,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new(None)
    }
}

impl Runner {
    /// A runner with `explicit` workers, falling back to `ASF_JOBS` and
    /// then the machine's available parallelism; progress reporting
    /// follows [`progress_from_env`].
    pub fn new(explicit: Option<usize>) -> Self {
        Runner {
            jobs: par::resolve_jobs(explicit),
            progress: progress_from_env(),
            collector: None,
            fleet: None,
        }
    }

    /// A runner with exactly `jobs` workers (tests use `1` vs `8`).
    pub fn with_jobs(jobs: usize) -> Self {
        Runner {
            jobs: jobs.max(1),
            progress: progress_from_env(),
            collector: None,
            fleet: None,
        }
    }

    /// Attaches cross-shard fleet progress: progress lines switch from
    /// local `[done/total]` to merged fleet counts (see
    /// [`FleetProgress`]). Completions are counted into the fleet state
    /// whether or not progress lines are printed.
    #[must_use]
    pub fn with_fleet(mut self, fleet: Arc<FleetProgress>) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Overrides progress reporting (tests silence it).
    #[must_use]
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Attaches a telemetry collector: every subsequent batch records
    /// per-spec wall-clock, counters and fence tallies into it.
    #[must_use]
    pub fn with_collector(mut self, collector: Arc<Collector>) -> Self {
        self.collector = Some(collector);
        self
    }

    /// The attached telemetry collector, if any.
    pub fn collector(&self) -> Option<&Arc<Collector>> {
        self.collector.as_ref()
    }

    /// Marks the start of a report section on the collector (no-op
    /// without one). Figure functions call this with their section name
    /// so metric cells and phase timers group per figure.
    pub fn begin_section(&self, name: &str) {
        if let Some(c) = &self.collector {
            c.begin_section(name);
        }
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every spec, fanning out over the worker pool; results come
    /// back in spec order, so downstream table/CSV emission is identical
    /// no matter the worker count. Each worker builds its own `Machine`
    /// per spec — no state is shared between runs.
    ///
    /// With a collector attached, specs execute with the fence trace on
    /// (pure observation — identical results, pinned by
    /// `runner_determinism.rs`) and are folded into the collector
    /// *serially in spec order* after the fan-out returns, so the
    /// telemetry is deterministic at any worker count too.
    pub fn run(&self, specs: &[RunSpec]) -> Vec<RunResult> {
        let outs = self.run_inner(specs, self.collector.is_some());
        if let Some(collector) = &self.collector {
            for (spec, (result, wall_ns, sink)) in specs.iter().zip(&outs) {
                let sink = sink.as_ref().expect("collecting => traced");
                collector.record(spec, result, *wall_ns, sink);
            }
        }
        outs.into_iter().map(|(result, _, _)| result).collect()
    }

    /// Runs every spec with the fence trace enabled and returns each
    /// spec's `(result, wall_ns, trace)` in spec order — the raw
    /// material the sweep journals as ledger cell records. Bypasses the
    /// collector: a sharded sweep aggregates by merging the ledger, not
    /// in-process.
    pub fn run_traced(&self, specs: &[RunSpec]) -> Vec<(RunResult, u64, TraceSink)> {
        self.run_inner(specs, true)
            .into_iter()
            .map(|(result, wall_ns, sink)| (result, wall_ns, sink.expect("traced")))
            .collect()
    }

    fn run_inner(
        &self,
        specs: &[RunSpec],
        traced: bool,
    ) -> Vec<(RunResult, u64, Option<TraceSink>)> {
        let total = specs.len();
        let done = AtomicUsize::new(0);
        let batch = Stopwatch::start();
        par::par_map(self.jobs, specs, |_, spec| {
            let t0 = Instant::now();
            let (result, sink) = if traced {
                let (result, sink) = spec.execute_traced();
                (result, Some(sink))
            } else {
                (spec.execute(), None)
            };
            let wall_ns = t0.elapsed().as_nanos() as u64;
            let n = done.fetch_add(1, Ordering::Relaxed) + 1;
            let fleet_done = self.fleet.as_ref().map(|f| f.note_done());
            if self.progress {
                let line = match (&self.fleet, fleet_done) {
                    (Some(fleet), Some(fdone)) => format_progress(
                        fdone,
                        fleet.fleet_total(),
                        &spec.label(),
                        result.cycles,
                        wall_ns / 1_000_000,
                        fleet.eta_ns(),
                    ),
                    _ => {
                        // ETA from the batch stopwatch: mean wall per
                        // completed run times the runs still
                        // outstanding, scaled down by the pool width.
                        let eta = (n < total).then(|| {
                            batch.elapsed_ns() / n as u64 * (total - n) as u64
                                / self.jobs.min(total) as u64
                        });
                        format_progress(
                            n as u64,
                            total as u64,
                            &spec.label(),
                            result.cycles,
                            wall_ns / 1_000_000,
                            eta,
                        )
                    }
                };
                eprintln!("{line}");
            }
            (result, wall_ns, sink)
        })
    }

    /// Runs one spec (convenience for timers and tests; bypasses the
    /// collector — telemetry follows batches).
    pub fn run_one(&self, spec: &RunSpec) -> RunResult {
        spec.execute()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_labels_are_descriptive() {
        let s = RunSpec::cilk(CilkApp::Fib, FenceDesign::WsPlus, 4, 7);
        assert_eq!(s.label(), "fib/WS+/4c/s7");
        let k = s.with_knobs(Knobs {
            bs_entries: Some(2),
            ..Default::default()
        });
        assert!(k.label().ends_with("/knobs"));
    }

    #[test]
    fn litmus_cores_follow_scenario() {
        let three = LitmusCase::ThreeThreadCycle {
            roles: [FenceRole::Critical; 3],
        };
        assert_eq!(three.cores(), 3);
        assert_eq!(RunSpec::litmus(three, FenceDesign::WPlus, 0).cores, 3);
    }

    #[test]
    fn runner_results_are_order_preserving_and_deterministic() {
        // A small mixed grid: results must be identical at 1 and 4 jobs.
        let specs = vec![
            RunSpec::cilk(CilkApp::Fib, FenceDesign::SPlus, 2, 7),
            RunSpec::ustm(UstmBench::Counter, FenceDesign::WsPlus, 2, 7, 40_000),
            RunSpec::cilk(CilkApp::Fib, FenceDesign::WsPlus, 2, 7),
        ];
        let serial = Runner::with_jobs(1).progress(false).run(&specs);
        let parallel = Runner::with_jobs(4).progress(false).run(&specs);
        assert_eq!(serial.len(), 3);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.commits, b.commits);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn format_progress_matches_historic_shape() {
        assert_eq!(
            format_progress(3, 10, "fib/WS+/4c/s7", 12345, 8, None),
            "[3/10] fib/WS+/4c/s7 (12345 cycles, 8 ms)"
        );
        assert_eq!(
            format_progress(3, 10, "fib/WS+/4c/s7", 12345, 8, Some(5_000_000)),
            "[3/10] fib/WS+/4c/s7 (12345 cycles, 8 ms, eta ~5ms)"
        );
    }

    #[test]
    fn fleet_progress_merges_prior_local_and_remote() {
        let f = FleetProgress::new(56, 19, 4);
        assert_eq!(f.merged_done(), 4, "prior-life cells count from the start");
        assert_eq!(f.eta_ns(), None, "no rate before the first completion");
        f.set_remote_done(30);
        assert_eq!(f.note_done(), 35);
        assert_eq!(f.note_done(), 36);
        assert_eq!(f.local_done(), 2);
        // 19 owned - 4 prior - 2 local = 13 remaining: ETA exists.
        assert!(f.eta_ns().is_some());
        for _ in 0..13 {
            f.note_done();
        }
        assert_eq!(f.eta_ns(), None, "finished shard has no ETA");
        assert_eq!(f.merged_done(), 4 + 15 + 30);
    }

    #[test]
    fn run_traced_matches_run_results() {
        let specs = vec![
            RunSpec::cilk(CilkApp::Fib, FenceDesign::SPlus, 2, 7),
            RunSpec::ustm(UstmBench::Counter, FenceDesign::WsPlus, 2, 7, 40_000),
        ];
        let runner = Runner::with_jobs(2).progress(false);
        let plain = runner.run(&specs);
        let traced = runner.run_traced(&specs);
        assert_eq!(traced.len(), plain.len());
        for ((result, _, sink), p) in traced.iter().zip(&plain) {
            assert_eq!(result.cycles, p.cycles);
            assert_eq!(result.stats, p.stats);
            assert!(
                FenceClass::ALL.iter().any(|c| sink.tally(*c).issued > 0),
                "traced run carries fence tallies"
            );
        }
    }

    #[test]
    fn corpus_litmus_cases_finish_without_scv() {
        use FenceRole::Critical;
        for case in [
            LitmusCase::MessagePassing { fences: None },
            LitmusCase::MessagePassing {
                fences: Some((Critical, Critical)),
            },
            LitmusCase::LoadBuffering,
            LitmusCase::Iriw,
        ] {
            let r = RunSpec::litmus(case, FenceDesign::WPlus, crate::SEED).execute();
            assert_eq!(r.outcome, RunOutcome::Finished, "{case:?}");
            assert!(!r.scv, "{case:?} must stay SC");
        }
    }

    #[test]
    fn litmus_spec_records_outcome_and_scv() {
        let unfenced = RunSpec::litmus(
            LitmusCase::StoreBuffering { fences: None },
            FenceDesign::SPlus,
            crate::SEED,
        );
        let r = unfenced.execute();
        assert_eq!(r.outcome, RunOutcome::Finished);
        assert!(r.scv, "unfenced store buffering must show an SCV");
    }
}
