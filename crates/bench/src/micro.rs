//! Kernel microbenchmark (`--micro N`): raw simulator throughput on one
//! fixed workload, isolated from grid orchestration.
//!
//! The figure grids interleave many workloads, designs and shapes, which
//! is right for regression gates but noisy for kernel work: a change to
//! the step loop moves every cell a little. `--micro` pins a single
//! representative spec — the ustm `counter` microbenchmark under WS+ at
//! the default core count, a fence-heavy steady-state workload — and
//! simulates it `N` times back-to-back on this thread's pooled machine
//! ([`crate::pool`]), printing per-repetition and aggregate simulated
//! cycles per wall-second to stderr. Nothing is written to stdout, so
//! the mode composes with shell pipelines that expect figure output to
//! be absent.
//!
//! Repetitions after the first re-arm the warmed machine in place, so
//! rep 1 vs rep 2+ also exposes the machine-build overhead the pool
//! saves.

use std::time::Instant;

use asymfence::prelude::*;
use asymfence_workloads::ustm::UstmBench;

use crate::runner::RunSpec;
use crate::{RunResult, SEED, USTM_WINDOW};

/// The pinned microbenchmark spec: every `--micro` run everywhere
/// simulates exactly this, so numbers are comparable across checkouts.
pub fn spec() -> RunSpec {
    RunSpec::ustm(UstmBench::Counter, FenceDesign::WsPlus, 8, SEED, USTM_WINDOW)
}

/// One repetition's outcome.
#[derive(Clone, Copy, Debug)]
pub struct Rep {
    /// Simulated cycles the run covered.
    pub cycles: u64,
    /// Wall-clock nanoseconds the run took.
    pub wall_ns: u64,
}

impl Rep {
    /// Simulated cycles per wall-second.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.cycles as f64 * 1e9 / self.wall_ns as f64
        }
    }
}

/// Runs the pinned spec `reps` times and returns the per-rep timings.
pub fn run(reps: u64) -> Vec<Rep> {
    let spec = spec();
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let r: RunResult = spec.execute();
            Rep {
                cycles: r.cycles,
                wall_ns: t0.elapsed().as_nanos() as u64,
            }
        })
        .collect()
}

/// Runs the microbenchmark and reports to stderr (the `--micro N` entry
/// point).
pub fn report(reps: u64) {
    let spec = spec();
    eprintln!("micro: {} x{reps}", spec.label());
    let timings = run(reps);
    let mut cycles = 0u64;
    let mut wall_ns = 0u64;
    for (i, rep) in timings.iter().enumerate() {
        cycles += rep.cycles;
        wall_ns += rep.wall_ns;
        eprintln!(
            "micro: rep {}/{reps}: {} cycles in {} ms ({:.2}M cycles/s)",
            i + 1,
            rep.cycles,
            rep.wall_ns / 1_000_000,
            rep.cycles_per_sec() / 1e6
        );
    }
    let agg = Rep { cycles, wall_ns };
    let p = crate::pool::stats();
    eprintln!(
        "micro: total {} cycles in {} ms ({:.2}M cycles/s); pool {} reuse / {} build",
        agg.cycles,
        agg.wall_ns / 1_000_000,
        agg.cycles_per_sec() / 1e6,
        p.reuses,
        p.builds
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reps_are_deterministic_in_simulated_cycles() {
        let reps = run(2);
        assert_eq!(reps.len(), 2);
        assert_eq!(
            reps[0].cycles, reps[1].cycles,
            "pooled reruns must simulate identically"
        );
        assert!(reps[0].cycles > 0);
    }

    #[test]
    fn cycles_per_sec_handles_zero_wall() {
        let rep = Rep {
            cycles: 10,
            wall_ns: 0,
        };
        assert_eq!(rep.cycles_per_sec(), 0.0);
        let rep = Rep {
            cycles: 2_000_000,
            wall_ns: 1_000_000_000,
        };
        assert!((rep.cycles_per_sec() - 2_000_000.0).abs() < 1e-6);
    }
}
