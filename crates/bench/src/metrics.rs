//! The `--metrics` collector: harness-performance telemetry for the run
//! engine.
//!
//! A [`Collector`] rides along on a [`Runner`] (attached by
//! `cli::parse` when `--metrics PATH` is given). While a batch runs, the
//! runner measures each spec's wall-clock and executes it with the
//! fence-lifecycle trace enabled (pure observation — results are
//! bit-identical, pinned by `runner_determinism.rs`); after the batch
//! returns, the results are folded into the collector **serially in spec
//! order**, so the accumulated state — entry order included — is
//! deterministic at any worker count.
//!
//! Cells aggregate per `(section, workload, design)`: simulation
//! counters and [`FenceTally`] histograms merge exactly (associative
//! merges), wall-clock sums. [`Collector::snapshot`] renders everything
//! as a [`BenchSnapshot`]; [`write_if_requested`] writes the JSON file.
//!
//! In deterministic mode ([`telemetry::DETERMINISTIC_ENV`]) every
//! wall-clock/RSS field is masked to 0 *at collection time*, which makes
//! snapshot bytes identical across worker counts and machines — the mode
//! `results/bench_baseline.json` is generated with and ci.sh diffs
//! under.

use std::sync::Mutex;

use asymfence::prelude::{FenceClass, TraceSink};
use asymfence_common::telemetry::{
    self, BenchSnapshot, FenceLatencySummary, MetricEntry, PhaseTimer, Stopwatch,
};
use asymfence_common::trace::FenceTally;
use asymfence_common::MachineStats;

use crate::cli::Opts;
use crate::runner::{Runner, RunSpec};
use crate::RunResult;

/// Section name used before any `begin_section` call (single-figure
/// binaries set a real section immediately; this only shows up for bare
/// `Runner::run` callers like the timing harness).
pub const DEFAULT_SECTION: &str = "main";

#[derive(Debug)]
struct EntryAgg {
    section: String,
    workload: String,
    design: String,
    runs: u64,
    wall_ns: u64,
    wall_min_ns: u64,
    wall_max_ns: u64,
    cycles: u64,
    commits: u64,
    aborts: u64,
    stats: MachineStats,
    tallies: [FenceTally; 3],
    sites_discovered: u64,
    cycles_enumerated: u64,
    masks_pruned: u64,
    oracle_runs: u64,
}

impl EntryAgg {
    fn new(section: String, workload: String, design: String) -> Self {
        EntryAgg {
            section,
            workload,
            design,
            runs: 0,
            wall_ns: 0,
            wall_min_ns: u64::MAX,
            wall_max_ns: 0,
            cycles: 0,
            commits: 0,
            aborts: 0,
            stats: MachineStats::default(),
            tallies: Default::default(),
            sites_discovered: 0,
            cycles_enumerated: 0,
            masks_pruned: 0,
            oracle_runs: 0,
        }
    }
}

#[derive(Debug)]
struct State {
    section: String,
    phases: PhaseTimer,
    entries: Vec<EntryAgg>,
}

/// Accumulates harness telemetry across every batch a [`Runner`] runs.
/// Shared via `Arc`, locked internally; all mutation happens serially
/// (the runner records *after* its parallel fan-out returns), so the
/// lock is never contended and the accumulated order is deterministic.
#[derive(Debug)]
pub struct Collector {
    deterministic: bool,
    lifetime: Stopwatch,
    state: Mutex<State>,
}

impl Collector {
    /// A fresh collector. `deterministic` masks every wall-clock/RSS
    /// field to 0 at collection time (see the module docs); pass
    /// [`telemetry::deterministic_from_env`] to honour the environment.
    pub fn new(deterministic: bool) -> Self {
        Collector {
            deterministic,
            lifetime: Stopwatch::start(),
            state: Mutex::new(State {
                section: DEFAULT_SECTION.to_string(),
                phases: PhaseTimer::new(),
                entries: Vec::new(),
            }),
        }
    }

    /// Whether wall-clock fields are being masked.
    pub fn deterministic(&self) -> bool {
        self.deterministic
    }

    /// Marks the start of a report section (figure name, `synth`, …):
    /// subsequent runs aggregate under it and the per-section phase
    /// timer switches over.
    pub fn begin_section(&self, name: &str) {
        let mut s = self.state.lock().unwrap();
        s.section = name.to_string();
        s.phases.enter(name);
    }

    /// Folds one executed spec into its `(section, workload, design)`
    /// cell. Called serially in spec order by [`Runner::run`].
    pub fn record(&self, spec: &RunSpec, result: &RunResult, wall_ns: u64, sink: &TraceSink) {
        let wall_ns = if self.deterministic { 0 } else { wall_ns };
        let mut s = self.state.lock().unwrap();
        let (section, workload, design) =
            (s.section.clone(), spec.workload.name(), spec.design.label());
        let idx = match s.entries.iter().position(|e| {
            e.section == section && e.workload == workload && e.design == design
        }) {
            Some(i) => i,
            None => {
                s.entries
                    .push(EntryAgg::new(section, workload, design.to_string()));
                s.entries.len() - 1
            }
        };
        let agg = &mut s.entries[idx];
        agg.runs += 1;
        agg.wall_ns += wall_ns;
        agg.wall_min_ns = agg.wall_min_ns.min(wall_ns);
        agg.wall_max_ns = agg.wall_max_ns.max(wall_ns);
        agg.cycles += result.cycles;
        agg.commits += result.commits;
        agg.aborts += result.aborts;
        agg.stats.merge(&result.stats);
        for (i, class) in FenceClass::ALL.iter().enumerate() {
            agg.tallies[i].merge(sink.tally(*class));
        }
    }

    /// Folds one analyzer pass's counters into the `(current section,
    /// workload, design)` cell, creating it if no simulation run touched
    /// it yet. The fields are additive-schema extras on
    /// [`MetricEntry`]: cells that never see an analyzer pass keep them
    /// at 0 and their JSON bytes unchanged.
    pub fn record_analysis(
        &self,
        workload: &str,
        design: &str,
        sites_discovered: u64,
        cycles_enumerated: u64,
        masks_pruned: u64,
        oracle_runs: u64,
    ) {
        let mut s = self.state.lock().unwrap();
        let section = s.section.clone();
        let idx = match s.entries.iter().position(|e| {
            e.section == section && e.workload == workload && e.design == design
        }) {
            Some(i) => i,
            None => {
                s.entries.push(EntryAgg::new(
                    section,
                    workload.to_string(),
                    design.to_string(),
                ));
                s.entries.len() - 1
            }
        };
        let agg = &mut s.entries[idx];
        agg.sites_discovered += sites_discovered;
        agg.cycles_enumerated += cycles_enumerated;
        agg.masks_pruned += masks_pruned;
        agg.oracle_runs += oracle_runs;
    }

    /// Renders everything collected so far as a [`BenchSnapshot`].
    pub fn snapshot(&self, label: &str, quick: bool) -> BenchSnapshot {
        let mut s = self.state.lock().unwrap();
        s.phases.finish();
        let mut snap = BenchSnapshot::new(label);
        snap.deterministic = self.deterministic;
        snap.quick = quick;
        snap.total_wall_ns = if self.deterministic {
            0
        } else {
            self.lifetime.elapsed_ns()
        };
        snap.peak_rss_bytes = if self.deterministic {
            0
        } else {
            telemetry::peak_rss_bytes().unwrap_or(0)
        };
        // Pool counters depend on how specs land on worker threads, so
        // the deterministic mode masks them exactly like wall-clock.
        snap.pool = if self.deterministic {
            asymfence_common::telemetry::PoolTelemetry::default()
        } else {
            let p = crate::pool::stats();
            asymfence_common::telemetry::PoolTelemetry {
                acquires: p.acquires,
                reuses: p.reuses,
                builds: p.builds,
                bytes_reused: p.bytes_reused,
            }
        };
        snap.phases = s
            .phases
            .phases()
            .iter()
            .map(|(name, ns)| (name.clone(), if self.deterministic { 0 } else { *ns }))
            .collect();
        for agg in &s.entries {
            let mut e = MetricEntry::new(&agg.section, &agg.workload, &agg.design);
            e.runs = agg.runs;
            e.sim_cycles = agg.cycles;
            let a = agg.stats.aggregate();
            e.instrs_retired = a.instrs_retired;
            e.commits = agg.commits;
            e.aborts = agg.aborts;
            e.wall_ns = agg.wall_ns;
            e.task_wall_min_ns = if agg.wall_min_ns == u64::MAX {
                0
            } else {
                agg.wall_min_ns
            };
            e.task_wall_max_ns = agg.wall_max_ns;
            e.derived = agg.stats.derived();
            e.sites_discovered = agg.sites_discovered;
            e.cycles_enumerated = agg.cycles_enumerated;
            e.masks_pruned = agg.masks_pruned;
            e.oracle_runs = agg.oracle_runs;
            for (i, class) in FenceClass::ALL.iter().enumerate() {
                if agg.tallies[i].issued > 0 {
                    e.fences
                        .push(FenceLatencySummary::from_tally(class.label(), &agg.tallies[i]));
                }
            }
            snap.entries.push(e);
        }
        snap
    }
}

/// Snapshot label derived from the `--metrics` path: the file stem
/// (`results/bench_baseline.json` → `bench_baseline`).
pub fn label_from_path(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

/// If `--metrics PATH` was given (so the runner carries a collector),
/// snapshots it and writes the JSON to the path. Called once by each
/// binary after its sections finish; a note goes to **stderr**, so
/// figure stdout stays byte-identical with and without `--metrics`.
///
/// # Panics
///
/// Panics if the metrics file cannot be written (consistent with how
/// the report layer treats `results/` CSVs).
pub fn write_if_requested(runner: &Runner, opts: &Opts) {
    let (Some(path), Some(collector)) = (opts.metrics.as_deref(), runner.collector()) else {
        return;
    };
    let snap = collector.snapshot(&label_from_path(path), opts.quick);
    let json = snap.to_json();
    std::fs::write(path, &json)
        .unwrap_or_else(|e| panic!("cannot write metrics file {path}: {e}"));
    eprintln!(
        "== metrics snapshot -> {path} ({} entries, {} sections) ==",
        snap.entries.len(),
        snap.sections().len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::FenceDesign;
    use asymfence_workloads::cilk::CilkApp;
    use asymfence_workloads::ustm::UstmBench;

    fn runs(collector: &Collector, specs: &[RunSpec]) {
        for spec in specs {
            let t = Stopwatch::start();
            let (result, sink) = spec.execute_traced();
            collector.record(spec, &result, t.elapsed_ns(), &sink);
        }
    }

    #[test]
    fn cells_aggregate_by_section_workload_design() {
        let c = Collector::new(true);
        c.begin_section("figX");
        let spec = RunSpec::ustm(UstmBench::Counter, FenceDesign::WsPlus, 2, crate::SEED, 20_000);
        runs(&c, &[spec, spec]); // same key twice
        c.begin_section("figY");
        runs(&c, &[RunSpec::cilk(CilkApp::Fib, FenceDesign::SPlus, 2, crate::SEED)]);

        let snap = c.snapshot("t", true);
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.sections(), vec!["figX", "figY"]);
        let cell = snap.entry("figX", "Counter", "WS+").unwrap();
        assert_eq!(cell.runs, 2);
        assert!(cell.sim_cycles > 0);
        assert!(cell.instrs_retired > 0);
        assert!(cell.commits > 0, "ustm counter commits transactions");
        assert!(
            cell.fences.iter().any(|f| f.issued > 0 && f.completed > 0),
            "fence summaries only include classes that fired: {:?}",
            cell.fences
        );
        // Deterministic mode masked every wall field.
        assert_eq!(cell.wall_ns, 0);
        assert_eq!(snap.total_wall_ns, 0);
        assert_eq!(snap.peak_rss_bytes, 0);
        assert!(snap.phases.iter().all(|(_, ns)| *ns == 0));
    }

    #[test]
    fn non_deterministic_mode_keeps_wall_clock() {
        let c = Collector::new(false);
        c.begin_section("fig");
        runs(&c, &[RunSpec::ustm(UstmBench::Counter, FenceDesign::SPlus, 2, crate::SEED, 20_000)]);
        let snap = c.snapshot("t", false);
        let cell = &snap.entries[0];
        assert!(cell.wall_ns > 0);
        assert!(cell.task_wall_min_ns > 0 && cell.task_wall_min_ns <= cell.task_wall_max_ns);
        assert!(snap.total_wall_ns >= cell.wall_ns);
        assert!(cell.sim_cycles_per_sec() > 0.0);
    }

    #[test]
    fn analysis_counters_land_in_their_cell_and_only_there() {
        let c = Collector::new(true);
        c.begin_section("analyze");
        c.record_analysis("peterson", "WS+", 2, 3, 5, 40);
        c.record_analysis("peterson", "WS+", 0, 0, 2, 8); // accumulates
        c.begin_section("fig");
        runs(&c, &[RunSpec::ustm(UstmBench::Counter, FenceDesign::SPlus, 2, crate::SEED, 20_000)]);

        let snap = c.snapshot("t", true);
        let cell = snap.entry("analyze", "peterson", "WS+").unwrap();
        assert_eq!(cell.sites_discovered, 2);
        assert_eq!(cell.cycles_enumerated, 3);
        assert_eq!(cell.masks_pruned, 7);
        assert_eq!(cell.oracle_runs, 48);
        // The analyzer fields are additive schema: cells without them
        // keep them at zero and omit them from the JSON entirely.
        let sim = snap.entry("fig", "Counter", "S+").unwrap();
        assert_eq!(sim.sites_discovered, 0);
        assert!(!snap.to_json().contains("\"sites_discovered\": 0"));
    }

    #[test]
    fn label_from_path_takes_the_stem() {
        assert_eq!(label_from_path("results/bench_baseline.json"), "bench_baseline");
        assert_eq!(label_from_path("out.json"), "out");
        assert_eq!(label_from_path("snapshot"), "snapshot");
    }
}
