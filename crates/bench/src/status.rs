//! `sweep status`: live fleet observability over a ledger directory.
//!
//! [`gather`] is a pure function from `(ledger files, "now")` to a
//! [`FleetStatus`] — per-shard state machine (starting → running →
//! stalled → dead, or done), progress, per-shard and aggregate
//! throughput against the CI floor, and a remaining-work ETA — and
//! [`render`] is a pure formatter over it, so the whole dashboard is
//! unit-testable without spawning processes. The binary's `--watch`
//! mode just re-runs gather+render in a loop against the live ledgers.

use std::path::Path;

use asymfence_common::telemetry::human_ns;

use crate::ledger::read_dir_logs;

/// Heartbeat age (ms) after which a shard is reported as stalled.
pub const STALLED_AFTER_MS: u64 = 5_000;

/// Heartbeat age (ms) after which a shard is presumed dead (killed or
/// wedged); its cells will need a resume.
pub const DEAD_AFTER_MS: u64 = 30_000;

/// The throughput floor ci.sh enforces on the merged sweep, in
/// simulated cycles per wall second.
pub const THROUGHPUT_FLOOR: f64 = 1_200_000.0;

/// A shard's liveness, judged from its ledger alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardState {
    /// Claimed, no heartbeat yet.
    Starting,
    /// Heartbeat fresher than [`STALLED_AFTER_MS`].
    Running,
    /// Heartbeat older than [`STALLED_AFTER_MS`] but younger than
    /// [`DEAD_AFTER_MS`].
    Stalled,
    /// Heartbeat older than [`DEAD_AFTER_MS`]: the process is presumed
    /// killed; re-run the shard to resume from its durable prefix.
    Dead,
    /// Completion marker journaled.
    Done,
}

impl ShardState {
    /// Dashboard label.
    pub fn label(&self) -> &'static str {
        match self {
            ShardState::Starting => "starting",
            ShardState::Running => "running",
            ShardState::Stalled => "STALLED",
            ShardState::Dead => "DEAD",
            ShardState::Done => "done",
        }
    }
}

/// One shard's row in the dashboard.
#[derive(Clone, Debug)]
pub struct ShardStatus {
    /// Shard id (from the ledger filename).
    pub id: u64,
    /// Liveness.
    pub state: ShardState,
    /// Cells durable / cells owned.
    pub done: u64,
    /// Cells this shard owns.
    pub owned: u64,
    /// Resumed lives (claims beyond the first).
    pub resumes: u64,
    /// Last claimant's pid.
    pub pid: u64,
    /// Simulated cycles per wall second, from the freshest heartbeat.
    pub sim_cycles_per_sec: f64,
    /// Age of the freshest heartbeat in ms (`None` before the first).
    pub heartbeat_age_ms: Option<u64>,
    /// Torn bytes truncated from this ledger's tail on last read.
    pub torn_bytes: u64,
    /// Unknown-version/kind records skipped in this ledger.
    pub skipped_unknown: u64,
}

/// The whole fleet, one gather pass.
#[derive(Clone, Debug, Default)]
pub struct FleetStatus {
    /// Per-shard rows, sorted by id.
    pub shards: Vec<ShardStatus>,
    /// Cells durable across the fleet (distinct grid indices).
    pub done: u64,
    /// Total grid cells, from the claims (0 if no ledger yet).
    pub total: u64,
    /// Sum of live shards' throughput, simulated cycles / wall second.
    pub sim_cycles_per_sec: f64,
    /// Estimated ns to finish the remaining cells at the live fleet's
    /// aggregate cell rate (`None` when idle or done).
    pub eta_ns: Option<u64>,
}

/// Reads every shard ledger under `dir` and judges the fleet as of
/// `now_ms` (unix epoch ms; pass a fixed value in tests).
pub fn gather(dir: &Path, now_ms: u64) -> Result<FleetStatus, String> {
    let logs = read_dir_logs(dir)?;
    let mut fleet = FleetStatus::default();
    let mut cells_per_sec = 0.0f64;
    for (id, log) in &logs {
        if let Some(claim) = log.claim() {
            fleet.total = claim.cells;
        }
        let mut idx: Vec<u64> = log.cells.iter().map(|c| c.index).collect();
        idx.sort_unstable();
        idx.dedup();
        let done = idx.len() as u64;
        fleet.done += done;

        let hb = log.heartbeats.last();
        let age = hb.map(|h| now_ms.saturating_sub(h.ts_ms));
        let state = if !log.done.is_empty() {
            ShardState::Done
        } else {
            match age {
                None => ShardState::Starting,
                Some(a) if a >= DEAD_AFTER_MS => ShardState::Dead,
                Some(a) if a >= STALLED_AFTER_MS => ShardState::Stalled,
                Some(_) => ShardState::Running,
            }
        };
        let throughput = hb
            .filter(|h| h.wall_ns > 0)
            .map(|h| h.sim_cycles as f64 / (h.wall_ns as f64 / 1e9))
            .unwrap_or(0.0);
        if matches!(state, ShardState::Running | ShardState::Starting) {
            fleet.sim_cycles_per_sec += throughput;
            if let Some(h) = hb.filter(|h| h.wall_ns > 0 && h.done > 0) {
                cells_per_sec += h.done as f64 / (h.wall_ns as f64 / 1e9);
            }
        }
        fleet.shards.push(ShardStatus {
            id: *id,
            state,
            done,
            owned: log.claim().map(|c| c.owned).unwrap_or(0),
            resumes: (log.claims.len() as u64).saturating_sub(1),
            pid: log.claim().map(|c| c.pid).unwrap_or(0),
            sim_cycles_per_sec: throughput,
            heartbeat_age_ms: age,
            torn_bytes: log.torn_bytes,
            skipped_unknown: log.skipped_unknown,
        });
    }
    let remaining = fleet.total.saturating_sub(fleet.done);
    if remaining > 0 && cells_per_sec > 0.0 {
        fleet.eta_ns = Some((remaining as f64 / cells_per_sec * 1e9) as u64);
    }
    Ok(fleet)
}

/// Renders the dashboard as plain lines (one per shard plus an
/// aggregate footer). Pure, so tests pin the shape.
pub fn render(fleet: &FleetStatus) -> String {
    let mut out = String::new();
    if fleet.shards.is_empty() {
        out.push_str("sweep: no shard ledgers yet\n");
        return out;
    }
    for s in &fleet.shards {
        let mut line = format!(
            "shard {:>2} [{:>8}] {:>4}/{:<4} cells",
            s.id,
            s.state.label(),
            s.done,
            s.owned,
        );
        if s.sim_cycles_per_sec > 0.0 {
            line.push_str(&format!("  {:>6.2} Mcyc/s", s.sim_cycles_per_sec / 1e6));
        }
        if let Some(age) = s.heartbeat_age_ms {
            line.push_str(&format!("  hb {age}ms ago"));
        }
        if s.resumes > 0 {
            line.push_str(&format!("  resumes {}", s.resumes));
        }
        if s.torn_bytes > 0 {
            line.push_str(&format!("  torn {}B truncated", s.torn_bytes));
        }
        if s.skipped_unknown > 0 {
            line.push_str(&format!("  {} unknown records skipped", s.skipped_unknown));
        }
        line.push('\n');
        out.push_str(&line);
    }
    let pct = if fleet.total > 0 {
        fleet.done as f64 * 100.0 / fleet.total as f64
    } else {
        0.0
    };
    let mut footer = format!(
        "fleet: {}/{} cells ({pct:.0}%)",
        fleet.done, fleet.total
    );
    if fleet.sim_cycles_per_sec > 0.0 {
        footer.push_str(&format!(
            "  {:.2} Mcyc/s ({})",
            fleet.sim_cycles_per_sec / 1e6,
            if fleet.sim_cycles_per_sec >= THROUGHPUT_FLOOR {
                "above floor"
            } else {
                "BELOW FLOOR"
            }
        ));
    }
    if let Some(eta) = fleet.eta_ns {
        footer.push_str(&format!("  eta ~{}", human_ns(eta)));
    }
    footer.push('\n');
    out.push_str(&footer);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence_common::ledger::{
        append_record, shard_path, CellRecord, ClaimRecord, DoneRecord, HeartbeatRecord, Record,
    };
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "asf-status-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn claim(shard: u64) -> Record {
        Record::Claim(ClaimRecord {
            shard,
            shards: 2,
            grid: "quick".into(),
            cells: 10,
            owned: 5,
            resume: 0,
            deterministic: true,
            quick: true,
            pid: 42,
        })
    }

    fn cell(index: u64) -> Record {
        Record::Cell(Box::new(CellRecord {
            index,
            section: "litmus".into(),
            workload: "sb-unfenced".into(),
            design: "S+".into(),
            cycles: 1000,
            commits: 0,
            aborts: 0,
            scv: false,
            wall_ns: 0,
            stats: Default::default(),
            tallies: Default::default(),
        }))
    }

    fn heartbeat(shard: u64, done: u64, ts_ms: u64) -> Record {
        Record::Heartbeat(HeartbeatRecord {
            shard,
            done,
            owned: 5,
            sim_cycles: 3_000_000,
            wall_ns: 1_000_000_000,
            peak_rss_bytes: 0,
            ts_ms,
        })
    }

    fn write_shard(dir: &Path, id: u64, recs: &[Record]) {
        let mut f = std::fs::File::create(shard_path(dir, id)).unwrap();
        for r in recs {
            append_record(&mut f, r).unwrap();
        }
    }

    #[test]
    fn gather_judges_liveness_from_heartbeat_age() {
        let dir = temp_dir();
        let now = 100_000;
        // Shard 0: fresh heartbeat -> running.
        write_shard(&dir, 0, &[claim(0), cell(0), heartbeat(0, 1, now - 1_000)]);
        // Shard 1: ancient heartbeat -> dead.
        write_shard(&dir, 1, &[claim(1), cell(1), heartbeat(1, 1, now - 60_000)]);
        let fleet = gather(&dir, now).unwrap();
        assert_eq!(fleet.shards.len(), 2);
        assert_eq!(fleet.shards[0].state, ShardState::Running);
        assert_eq!(fleet.shards[1].state, ShardState::Dead);
        assert_eq!(fleet.done, 2);
        assert_eq!(fleet.total, 10);
        // Only the live shard's throughput counts: 3 Mcyc over 1 s.
        assert!((fleet.sim_cycles_per_sec - 3_000_000.0).abs() < 1.0);
        assert!(fleet.eta_ns.is_some(), "live shard rate gives an ETA");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gather_marks_done_and_stalled_shards() {
        let dir = temp_dir();
        let now = 100_000;
        write_shard(
            &dir,
            0,
            &[
                claim(0),
                cell(0),
                heartbeat(0, 1, now - 10_000), // stale but not dead
            ],
        );
        write_shard(
            &dir,
            1,
            &[
                claim(1),
                cell(1),
                heartbeat(1, 1, now),
                Record::Done(DoneRecord {
                    shard: 1,
                    done: 1,
                    wall_ns: 5,
                }),
            ],
        );
        let fleet = gather(&dir, now).unwrap();
        assert_eq!(fleet.shards[0].state, ShardState::Stalled);
        assert_eq!(fleet.shards[1].state, ShardState::Done);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn render_shows_per_shard_rows_and_fleet_footer() {
        let dir = temp_dir();
        let now = 50_000;
        write_shard(&dir, 0, &[claim(0), cell(0), heartbeat(0, 1, now - 500)]);
        let fleet = gather(&dir, now).unwrap();
        let text = render(&fleet);
        assert!(text.contains("shard  0 [ running]"), "got:\n{text}");
        assert!(text.contains("1/5    cells"), "got:\n{text}");
        assert!(text.contains("3.00 Mcyc/s"), "got:\n{text}");
        assert!(text.contains("fleet: 1/10 cells (10%)"), "got:\n{text}");
        assert!(text.contains("above floor"), "got:\n{text}");
        assert!(text.contains("eta ~"), "got:\n{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn render_handles_empty_directory() {
        let dir = temp_dir();
        let fleet = gather(&dir, 0).unwrap();
        assert_eq!(render(&fleet), "sweep: no shard ledgers yet\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
