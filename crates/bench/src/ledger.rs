//! Reading, validating and merging sweep-ledger directories into a
//! [`BenchSnapshot`].
//!
//! The write side lives in `asymfence_common::ledger` (records and
//! torn-tail recovery) and [`crate::shard`] (the per-shard loop). This
//! module is the read side: [`read_dir_logs`] loads every
//! `shard-*.jsonl` in a directory, and [`merge_dir`] folds the union of
//! their [`CellRecord`]s — deduplicated by grid index, validated for
//! completeness — into a snapshot using *exactly* the
//! [`Collector`](crate::metrics::Collector) aggregation, in grid-index
//! order. Because cell records are deterministic (simulation counters
//! always; wall-clock masked at journal time in deterministic mode), a
//! 3-shard merge, a 1-shard merge, and a kill-resume-merge all produce
//! byte-identical JSON.

use std::path::Path;

use asymfence::prelude::{FenceClass, TraceSink};
use asymfence_common::ledger::{
    read_shard_log, CellRecord, ShardLog, SHARD_FILE_PREFIX, SHARD_FILE_SUFFIX,
};
use asymfence_common::telemetry::{
    BenchSnapshot, FenceLatencySummary, MetricEntry, ShardTelemetry,
};
use asymfence_common::trace::FenceTally;
use asymfence_common::MachineStats;

use crate::shard::{SweepCell, HEARTBEAT_CELLS};
use crate::RunResult;

/// Builds the durable [`CellRecord`] for one executed sweep cell. In
/// deterministic mode the wall-clock is masked to 0 *at journal time*
/// (mirroring `Collector::record`), so the ledger bytes themselves are
/// reproducible.
pub fn cell_record(
    cell: &SweepCell,
    result: &RunResult,
    wall_ns: u64,
    sink: &TraceSink,
    deterministic: bool,
) -> CellRecord {
    CellRecord {
        index: cell.index,
        section: cell.section.to_string(),
        workload: cell.spec.workload.name(),
        design: cell.spec.design.label().to_string(),
        cycles: result.cycles,
        commits: result.commits,
        aborts: result.aborts,
        scv: result.scv,
        wall_ns: if deterministic { 0 } else { wall_ns },
        stats: result.stats.clone(),
        tallies: std::array::from_fn(|i| sink.tally(FenceClass::ALL[i]).clone()),
    }
}

/// Loads every `shard-<id>.jsonl` ledger in `dir`, sorted by shard id.
/// Files whose names don't match the pattern are ignored; a missing or
/// empty directory yields an empty list.
pub fn read_dir_logs(dir: &Path) -> Result<Vec<(u64, ShardLog)>, String> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(out),
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(id) = name
            .strip_prefix(SHARD_FILE_PREFIX)
            .and_then(|rest| rest.strip_suffix(SHARD_FILE_SUFFIX))
            .and_then(|id| id.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((id, read_shard_log(&entry.path())?));
    }
    out.sort_by_key(|(id, _)| *id);
    Ok(out)
}

/// What [`merge_dir`] produced, with the robustness counters the caller
/// reports.
#[derive(Clone, Debug)]
pub struct MergeOutcome {
    /// The merged snapshot.
    pub snapshot: BenchSnapshot,
    /// Duplicate cell records dropped (re-executed cells after a crash
    /// that landed between execution and journaling — byte-identical
    /// re-runs, deduped by grid index keeping the first).
    pub duplicates: u64,
    /// Unknown-version/kind records skipped with a warning while
    /// reading.
    pub skipped_unknown: u64,
    /// Torn tail bytes discarded during recovery, summed across shards.
    pub torn_bytes: u64,
}

// Mirror of the Collector's private per-cell aggregate: same key, same
// accumulation, same rendering below. `sweep_ledger.rs` pins the two
// folds byte-identical.
struct EntryAgg {
    section: String,
    workload: String,
    design: String,
    runs: u64,
    wall_ns: u64,
    wall_min_ns: u64,
    wall_max_ns: u64,
    cycles: u64,
    commits: u64,
    aborts: u64,
    stats: MachineStats,
    tallies: [FenceTally; 3],
}

/// Merges every shard ledger in `dir` into a complete-grid
/// [`BenchSnapshot`] labelled `label`. Fails if the directory holds no
/// ledgers, if shards disagree about the grid they ran, or if any grid
/// cell has no durable record (an unfinished sweep — resume the missing
/// shards first).
pub fn merge_dir(dir: &Path, label: &str) -> Result<MergeOutcome, String> {
    let logs = read_dir_logs(dir)?;
    let claims: Vec<_> = logs
        .iter()
        .flat_map(|(_, log)| log.claims.iter())
        .collect();
    let Some(first) = claims.first() else {
        return Err(format!("{}: no shard ledgers to merge", dir.display()));
    };
    for c in &claims {
        if c.shards != first.shards
            || c.cells != first.cells
            || c.grid != first.grid
            || c.deterministic != first.deterministic
            || c.quick != first.quick
        {
            return Err(format!(
                "{}: shard {} claimed a different sweep \
                 ({} shards / {} cells / grid `{}` / det {} / quick {}) than shard {} \
                 ({} / {} / `{}` / {} / {})",
                dir.display(),
                c.shard,
                c.shards,
                c.cells,
                c.grid,
                c.deterministic,
                c.quick,
                first.shard,
                first.shards,
                first.cells,
                first.grid,
                first.deterministic,
                first.quick,
            ));
        }
    }
    let deterministic = first.deterministic;
    let quick = first.quick;
    let shards = first.shards;
    let total_cells = first.cells;

    // Union of cell records in (shard-id, journal) order, then a stable
    // sort by grid index: the first durable record for an index wins,
    // later ones are duplicates from re-executed chunks.
    let mut cells: Vec<&CellRecord> = logs
        .iter()
        .flat_map(|(_, log)| log.cells.iter())
        .collect();
    cells.sort_by_key(|c| c.index);
    let mut duplicates = 0u64;
    cells.dedup_by(|b, a| {
        let dup = a.index == b.index;
        if dup {
            duplicates += 1;
        }
        dup
    });
    if cells.len() as u64 != total_cells
        || cells.iter().enumerate().any(|(i, c)| c.index != i as u64)
    {
        let have: Vec<u64> = cells.iter().map(|c| c.index).collect();
        let missing = (0..total_cells).filter(|i| !have.contains(i)).count();
        return Err(format!(
            "{}: sweep incomplete: {missing} of {total_cells} cells have no durable \
             record (resume the unfinished shards, then re-merge)",
            dir.display()
        ));
    }

    // The Collector fold, in grid-index order (the order a
    // single-process run records in).
    let mut entries: Vec<EntryAgg> = Vec::new();
    for cell in &cells {
        let idx = match entries.iter().position(|e| {
            e.section == cell.section && e.workload == cell.workload && e.design == cell.design
        }) {
            Some(i) => i,
            None => {
                entries.push(EntryAgg {
                    section: cell.section.clone(),
                    workload: cell.workload.clone(),
                    design: cell.design.clone(),
                    runs: 0,
                    wall_ns: 0,
                    wall_min_ns: u64::MAX,
                    wall_max_ns: 0,
                    cycles: 0,
                    commits: 0,
                    aborts: 0,
                    stats: MachineStats::default(),
                    tallies: Default::default(),
                });
                entries.len() - 1
            }
        };
        let agg = &mut entries[idx];
        agg.runs += 1;
        agg.wall_ns += cell.wall_ns;
        agg.wall_min_ns = agg.wall_min_ns.min(cell.wall_ns);
        agg.wall_max_ns = agg.wall_max_ns.max(cell.wall_ns);
        agg.cycles += cell.cycles;
        agg.commits += cell.commits;
        agg.aborts += cell.aborts;
        agg.stats.merge(&cell.stats);
        for i in 0..FenceClass::ALL.len() {
            agg.tallies[i].merge(&cell.tallies[i]);
        }
    }

    let mut snap = BenchSnapshot::new(label);
    snap.deterministic = deterministic;
    snap.quick = quick;
    // A merged snapshot's harness wall is the sum of per-cell walls
    // (CPU-seconds of simulation, not elapsed time of any one process);
    // cell walls are already 0 in deterministic mode.
    snap.total_wall_ns = cells.iter().map(|c| c.wall_ns).sum();
    snap.peak_rss_bytes = if deterministic {
        0
    } else {
        logs.iter()
            .flat_map(|(_, log)| log.heartbeats.iter())
            .map(|h| h.peak_rss_bytes)
            .max()
            .unwrap_or(0)
    };
    // Pool counters are per-process; a merge has no meaningful union, so
    // they stay at the deterministic-mode default.
    for cell in &cells {
        match snap.phases.iter_mut().find(|(name, _)| name == &cell.section) {
            Some((_, ns)) => *ns += cell.wall_ns,
            None => snap.phases.push((cell.section.clone(), cell.wall_ns)),
        }
    }
    snap.shard = if deterministic {
        None
    } else {
        Some(ShardTelemetry {
            shards,
            resumes: logs
                .iter()
                .map(|(_, log)| (log.claims.len() as u64).saturating_sub(1))
                .sum(),
            heartbeat_cells: HEARTBEAT_CELLS as u64,
        })
    };
    for agg in &entries {
        let mut e = MetricEntry::new(&agg.section, &agg.workload, &agg.design);
        e.runs = agg.runs;
        e.sim_cycles = agg.cycles;
        e.instrs_retired = agg.stats.aggregate().instrs_retired;
        e.commits = agg.commits;
        e.aborts = agg.aborts;
        e.wall_ns = agg.wall_ns;
        e.task_wall_min_ns = if agg.wall_min_ns == u64::MAX {
            0
        } else {
            agg.wall_min_ns
        };
        e.task_wall_max_ns = agg.wall_max_ns;
        e.derived = agg.stats.derived();
        for (i, class) in FenceClass::ALL.iter().enumerate() {
            if agg.tallies[i].issued > 0 {
                e.fences
                    .push(FenceLatencySummary::from_tally(class.label(), &agg.tallies[i]));
            }
        }
        snap.entries.push(e);
    }

    Ok(MergeOutcome {
        snapshot: snap,
        duplicates,
        skipped_unknown: logs.iter().map(|(_, log)| log.skipped_unknown).sum(),
        torn_bytes: logs.iter().map(|(_, log)| log.torn_bytes).sum(),
    })
}
