//! Reporting: markdown/CSV tables and the [`ReportSink`] every figure
//! binary emits through.
//!
//! A `ReportSink` is the single place harness output flows: headers and
//! notes via [`ReportSink::line`], tables via [`ReportSink::table`]
//! (markdown to stdout, CSV to `results/<name>.csv`). Every byte is also
//! captured in-memory, which is what the serial-vs-parallel determinism
//! test compares: because figure code formats *after* the [`Runner`]
//! returns order-preserved results, the captured bytes are identical at
//! any worker count.
//!
//! [`Runner`]: crate::runner::Runner

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A markdown/CSV table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column names.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders github-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {c:<w$} |");
            }
            line
        };
        let _ = writeln!(s, "{}", fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<1$}|", "", w + 2);
        }
        let _ = writeln!(s, "{sep}");
        for r in &self.rows {
            let _ = writeln!(s, "{}", fmt_row(r, &widths));
        }
        s
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let esc = |c: &String| {
            if c.contains(',') {
                format!("\"{c}\"")
            } else {
                c.clone()
            }
        };
        let _ = writeln!(s, "{}", self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        for r in &self.rows {
            let _ = writeln!(s, "{}", r.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        s
    }

    /// Prints the markdown and writes `results/<name>.csv` (the legacy
    /// single-shot path; harness code goes through [`ReportSink`]).
    pub fn emit(&self, name: &str) {
        let mut sink = ReportSink::stdout();
        sink.table(name, self);
    }
}

/// Where harness output goes: stdout + `results/` CSVs for the binaries,
/// or silent in-memory capture for tests and timing harnesses. All bytes
/// are captured either way.
#[derive(Clone, Debug)]
pub struct ReportSink {
    echo: bool,
    results_dir: Option<PathBuf>,
    captured: String,
    csvs: Vec<(String, String)>,
}

impl ReportSink {
    /// A sink that prints to stdout and writes CSVs under `results/`.
    pub fn stdout() -> Self {
        ReportSink {
            echo: true,
            results_dir: Some(PathBuf::from("results")),
            captured: String::new(),
            csvs: Vec::new(),
        }
    }

    /// A silent sink: captures everything, prints and writes nothing.
    /// The determinism tests and the timing harness run figures through
    /// this.
    pub fn capture() -> Self {
        ReportSink {
            echo: false,
            results_dir: None,
            captured: String::new(),
            csvs: Vec::new(),
        }
    }

    /// Emits one line.
    pub fn line(&mut self, s: impl AsRef<str>) {
        let s = s.as_ref();
        self.captured.push_str(s);
        self.captured.push('\n');
        if self.echo {
            println!("{s}");
        }
    }

    /// Emits a blank line.
    pub fn blank(&mut self) {
        self.line("");
    }

    /// Emits a table: markdown (followed by a blank line, as the legacy
    /// binaries printed) plus the CSV, which is written to
    /// `results/<name>.csv` when a results directory is configured and
    /// always retained for [`ReportSink::csv`].
    pub fn table(&mut self, name: &str, t: &Table) {
        let md = t.to_markdown();
        self.captured.push_str(&md);
        self.captured.push('\n');
        if self.echo {
            println!("{md}");
        }
        let csv = t.to_csv();
        if let Some(dir) = &self.results_dir {
            if fs::create_dir_all(dir).is_ok() {
                let path = dir.join(format!("{name}.csv"));
                if let Err(e) = fs::write(&path, &csv) {
                    eprintln!("note: could not write {}: {e}", path.display());
                } else {
                    self.line(format!("(csv written to {})", path.display()));
                    self.blank();
                }
            }
        }
        self.csvs.push((name.to_string(), csv));
    }

    /// Every byte emitted so far (markdown, notes, headers).
    pub fn captured(&self) -> &str {
        &self.captured
    }

    /// The CSV bytes of a table emitted under `name`.
    pub fn csv(&self, name: &str) -> Option<&str> {
        self.csvs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_str())
    }

    /// Names of all tables emitted, in order.
    pub fn table_names(&self) -> Vec<&str> {
        self.csvs.iter().map(|(n, _)| n.as_str()).collect()
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Arithmetic-mean helper used for the headline averages.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_markdown_and_csv() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "hello,world"]);
        let md = t.to_markdown();
        assert!(md.contains("| a"));
        assert!(md.lines().count() == 3);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello,world\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn capture_sink_collects_everything_silently() {
        let mut sink = ReportSink::capture();
        sink.line("# header");
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["1"]);
        sink.table("unit_capture", &t);
        assert!(sink.captured().starts_with("# header\n"));
        assert!(sink.captured().contains("| x"));
        assert_eq!(sink.csv("unit_capture"), Some("x\n1\n"));
        assert_eq!(sink.table_names(), vec!["unit_capture"]);
        assert!(sink.csv("missing").is_none());
        // Nothing was written to disk.
        assert!(sink.results_dir.is_none());
    }

    #[test]
    fn mean_of_values() {
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }
}
