//! Whole-program fence inference for unannotated kernels.
//!
//! Everything else in this workspace starts from a hand annotation: the
//! paper's per-site fence placements ([`asymfence_workloads::sites`])
//! say *where* fences go, and `asymfence-synth` only searches over
//! *strengths*. This crate removes the hand from the loop. Given any
//! [`ThreadProgram`](asymfence::prelude::ThreadProgram) kernel with
//! **zero annotations**, it:
//!
//! 1. recovers per-thread shared-memory footprints by interpreting the
//!    program under sequential consistency across several deterministic
//!    schedule variants ([`interp`]);
//! 2. extracts the TSO store→load windows, builds the cross-thread
//!    conflict digraph, and enumerates the critical cycles à la
//!    Shasha–Snir with reorder-bounded pruning ([`cycles`]);
//! 3. condenses cycle-breaking program points into a minimal fence
//!    [`Placement`](asymfence_common::placement::Placement), liveness-
//!    filtered so every emitted site actually fires ([`place`]);
//! 4. hands the placement to `asymfence-synth` for per-site weak/strong
//!    strength search, validated by the sampling oracle (or the
//!    `--exhaustive` DPOR proof) and scored in simulated cycles;
//! 5. lowers the winning assignment to C11 barriers — including the
//!    native runtime's asymmetric light/heavy pair — for execution on
//!    real silicon ([`lower()`]).
//!
//! The `analyze` binary ([`report`]) drives the pipeline over the study
//! kernels and prints inferred-vs-hand comparisons; its output is
//! byte-identical at any `--jobs`.

#![deny(missing_docs)]

pub mod cycles;
pub mod interp;
pub mod lower;
pub mod place;
pub mod report;

pub use cycles::{critical_cycles, digraph, extract_windows, merge_windows, WindowInfo};
pub use lower::{lower, C11Lower, LoweredFence, Lowering};
pub use place::{analyze, analyze_with, Analysis};
pub use report::{run_cli, run_cli_with};
