//! The whole-program inference report and the `analyze` binary's driver.
//!
//! Per kernel: the recovered placement (windows → critical cycles →
//! sites), then per design the synthesized strength assignment over
//! those sites, validated by the oracle and scored on the simulator —
//! side by side with the hand-annotated twin's paper cost where one
//! exists (Peterson has none; that is the point). A third table lowers
//! the headline asymmetric result to C11 for the native runtime.
//!
//! Output flows through the bench [`ReportSink`], so the markdown and
//! the `results/analyze_*.csv` bytes are identical at any `--jobs`. A
//! `placement <kernel>: oracle-valid` line per fully-validated kernel
//! gives `ci.sh` a stable grep target.

use asymfence::prelude::{FenceDesign, RunOutcome, TraceSink};
use asymfence_bench::cli::Opts;
use asymfence_bench::{ReportSink, RunSpec, Runner, Table};
use asymfence_common::assign::SearchStats;
use asymfence_common::placement::Placement;
use asymfence_explore::{ExploreConfig, Explorer};
use asymfence_synth::report::{seed_budget, SYNTH_DESIGNS};
use asymfence_synth::Synthesizer;
use asymfence_workloads::unannot::InferredKernel;

use crate::lower;
use crate::place::{self, Analysis};

/// Renders an inferred-site weak mask as placement labels (`wf{t0@0x40}`
/// style), or `all-sf` for the empty mask.
pub fn placed_mask_label(placement: &Placement, mask: u64) -> String {
    if mask == 0 {
        return "all-sf".into();
    }
    let labels: Vec<&str> = placement
        .fences
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask & (1 << i) != 0)
        .map(|(_, f)| f.label.as_str())
        .collect();
    format!("wf{{{}}}", labels.join(","))
}

/// Runs the full inference report into `sink`. Returns the merged
/// search statistics (serial-equivalent, jobs-independent).
pub fn run(runner: &Runner, opts: &Opts, sink: &mut ReportSink) -> SearchStats {
    run_with(runner, opts, None, sink)
}

/// Like [`run`], with the bounded-exhaustive oracle opt-in: when
/// `exhaustive` carries a reorder bound, every accepted assignment is a
/// DPOR proof of SC up to that bound.
pub fn run_with(
    runner: &Runner,
    opts: &Opts,
    exhaustive: Option<usize>,
    sink: &mut ReportSink,
) -> SearchStats {
    runner.begin_section("analyze");
    let designs: Vec<FenceDesign> = match &opts.designs {
        None => SYNTH_DESIGNS.to_vec(),
        Some(ds) => ds.clone(),
    };
    // ASF_SHARDS/ASF_SHARD_ID partition the kernel grid across fleet
    // processes, round-robin by position in the (already `--filter`ed)
    // list. The synthesizer below stays whole: each owned kernel's mask
    // space is searched completely.
    let shard = asymfence_common::par::Shard::from_env();
    let kernels: Vec<InferredKernel> = InferredKernel::ALL
        .into_iter()
        .filter(|k| opts.keep(k.name()))
        .enumerate()
        .filter(|&(i, _)| shard.owns(i as u64))
        .map(|(_, k)| k)
        .collect();

    let explorer = Explorer::new(ExploreConfig {
        seeds: seed_budget(opts.quick),
        ..Default::default()
    });
    let mut synth = Synthesizer::new(explorer, runner.clone(), asymfence_bench::SEED);
    if let Some(bound) = exhaustive {
        synth = synth.with_exhaustive(bound);
    }
    let mut trace = opts
        .trace
        .as_ref()
        .map(|_| TraceSink::new(FenceDesign::SPlus));

    sink.line("## Whole-program fence inference (zero annotations)");
    sink.line(
        "(footprints: SC interpreter over 8 schedule variants; windows: TSO st→ld pairs; \
         placement: critical-cycle loads, liveness-filtered; strengths: synthesized per design)",
    );
    match exhaustive {
        Some(bound) => sink.line(format!(
            "(oracle: Shasha-Snir over bounded-exhaustive DPOR exploration at reorder bound \
             {bound} — accepted placements are proofs up to the bound)"
        )),
        None => sink.line(format!(
            "(oracle: Shasha-Snir over {} perturbation seeds)",
            synth.explorer.cfg.seeds
        )),
    }
    sink.blank();

    // Phase 1: the analyses (interpretation + placement, no simulation).
    let analyses: Vec<Analysis> = kernels
        .iter()
        .map(|&k| place::analyze(k, asymfence_bench::SEED))
        .collect();

    let mut placements = Table::new(vec![
        "kernel", "threads", "windows", "critical", "cycles", "dead", "sites", "placement",
    ]);
    for a in &analyses {
        placements.row(vec![
            a.kernel.name().to_string(),
            a.kernel.cores().to_string(),
            a.windows.len().to_string(),
            a.critical.len().to_string(),
            a.cycles.to_string(),
            a.dropped_dead.to_string(),
            a.placement.len().to_string(),
            a.placement
                .fences
                .iter()
                .map(|f| f.label.as_str())
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    sink.table("analyze_placements", &placements);

    // Phase 2: strength synthesis per design, vs the hand twin's paper
    // cost (the role mapping the twin runs with *is* the annotation).
    let mut table = Table::new(vec![
        "kernel", "design", "sites", "groups", "synthesized", "cycles", "paper cycles", "delta",
    ]);
    let mut stats = SearchStats::default();
    let mut valid_lines: Vec<String> = Vec::new();
    let mut lowerings: Vec<(InferredKernel, lower::Lowering, FenceDesign, u64)> = Vec::new();

    for a in &analyses {
        let mut all_valid = true;
        for &design in &designs {
            let r = synth.synthesize_inferred(a.kernel, &a.placement, design, trace.as_mut());
            stats.merge(&r.stats);
            if let Some(c) = runner.collector() {
                c.record_analysis(
                    a.kernel.name(),
                    design.label(),
                    a.placement.len() as u64,
                    a.cycles,
                    r.stats.pruned,
                    r.stats.runs,
                );
            }
            let paper_cycles = a.kernel.site_bench().and_then(|b| {
                let pr = runner.run(&[RunSpec::sites(b, design, asymfence_bench::SEED)]);
                (pr[0].outcome == RunOutcome::Finished).then_some(pr[0].cycles)
            });
            let groups_cell = r
                .groups
                .iter()
                .map(|g| {
                    let names: Vec<&str> = g
                        .iter()
                        .map(|&i| a.placement.fences[i].label.as_str())
                        .collect();
                    format!("{{{}}}", names.join(" "))
                })
                .collect::<Vec<_>>()
                .join(" ");
            table.row(vec![
                a.kernel.name().to_string(),
                design.label().to_string(),
                r.n_sites.to_string(),
                if groups_cell.is_empty() { "-".into() } else { groups_cell },
                r.best
                    .map(|b| placed_mask_label(&a.placement, b.mask))
                    .unwrap_or_else(|| "-".into()),
                r.best.map(|b| b.cycles.to_string()).unwrap_or_else(|| "-".into()),
                paper_cycles.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
                match (paper_cycles, r.best) {
                    (Some(p), Some(b)) => format!("{:+}", b.cycles as i64 - p as i64),
                    _ => "-".into(),
                },
            ]);
            match r.best {
                Some(best) => {
                    // Keep the headline asymmetric lowering: WS+ wins
                    // ties, otherwise the first design with a result.
                    let keep = lowerings.iter().all(|(k, ..)| *k != a.kernel);
                    if design == FenceDesign::WsPlus || keep {
                        let lowering = lower::lower(&a.placement, &r.groups, best.mask);
                        lowerings.retain(|(k, ..)| *k != a.kernel);
                        lowerings.push((a.kernel, lowering, design, best.mask));
                    }
                }
                None => all_valid = false,
            }
        }
        if all_valid {
            valid_lines.push(format!(
                "placement {}: oracle-valid under {}",
                a.kernel.name(),
                designs.iter().map(|d| d.label()).collect::<Vec<_>>().join(",")
            ));
        }
    }
    sink.table("analyze_assignments", &table);

    for line in &valid_lines {
        sink.line(line.as_str());
    }
    if !valid_lines.is_empty() {
        sink.blank();
    }

    // Phase 3: C11 lowering of the kept per-kernel result.
    let mut c11 = Table::new(vec!["kernel", "design", "site", "strength", "c11"]);
    for (kernel, lowering, design, mask) in &lowerings {
        for (i, f) in lowering.fences.iter().enumerate() {
            c11.row(vec![
                kernel.name().to_string(),
                design.label().to_string(),
                f.label.clone(),
                if mask & (1 << i) != 0 { "wf".into() } else { "sf".into() },
                f.lower.c_expr().to_string(),
            ]);
        }
    }
    sink.table("analyze_lowering", &c11);

    sink.line(format!(
        "search: {} enumerated, {} pruned structurally, {} oracle-rejected, {} valid, \
         {} memo hits, {} simulator runs",
        stats.enumerated,
        stats.pruned,
        stats.oracle_rejected,
        stats.valid,
        stats.memo_hits,
        stats.runs
    ));

    if let (Some(path), Some(sink)) = (opts.trace.as_deref(), trace) {
        std::fs::write(path, sink.chrome_json())
            .unwrap_or_else(|e| panic!("cannot write trace file {path}: {e}"));
        eprintln!(
            "== inference trace -> {path} ({} decisions) ==",
            sink.recorded()
        );
    }
    stats
}

/// The `analyze` binary's entry point: parse shared flags, run the
/// report to stdout + `results/`, write `--metrics` telemetry if asked.
pub fn run_cli(runner: &Runner, opts: &Opts) {
    run_cli_with(runner, opts, None);
}

/// [`run_cli`] with the `--exhaustive`/`--bound` opt-in.
pub fn run_cli_with(runner: &Runner, opts: &Opts, exhaustive: Option<usize>) {
    let mut sink = ReportSink::stdout();
    run_with(runner, opts, exhaustive, &mut sink);
    asymfence_bench::metrics::write_if_requested(runner, opts);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(filter: &str) -> Opts {
        Opts {
            quick: true,
            filter: Some(filter.to_string()),
            ..Default::default()
        }
    }

    #[test]
    fn report_bytes_are_identical_at_any_job_count() {
        let opts = quick_opts("sb");
        let mut a = ReportSink::capture();
        let mut b = ReportSink::capture();
        let sa = run(&Runner::with_jobs(1).progress(false), &opts, &mut a);
        let sb = run(&Runner::with_jobs(2).progress(false), &opts, &mut b);
        assert_eq!(a.captured(), b.captured());
        assert_eq!(a.csv("analyze_placements"), b.csv("analyze_placements"));
        assert_eq!(a.csv("analyze_assignments"), b.csv("analyze_assignments"));
        assert_eq!(sa, sb, "charged stats must be jobs-independent");
    }

    #[test]
    fn peterson_report_carries_the_oracle_valid_line() {
        let opts = quick_opts("peterson");
        let mut sink = ReportSink::capture();
        run(&Runner::with_jobs(2).progress(false), &opts, &mut sink);
        assert!(
            sink.captured().contains("placement peterson: oracle-valid"),
            "{}",
            sink.captured()
        );
        // No hand twin: the paper columns stay empty for Peterson.
        let csv = sink.csv("analyze_assignments").unwrap();
        assert!(csv.lines().skip(1).all(|l| l.split(',').nth(6) == Some("-")), "{csv}");
    }

    #[test]
    fn mask_labels_render_placement_labels() {
        let a = place::analyze(InferredKernel::Sb, asymfence_bench::SEED);
        assert_eq!(placed_mask_label(&a.placement, 0), "all-sf");
        let l = placed_mask_label(&a.placement, 0b01);
        assert!(l.starts_with("wf{t0@0x"), "{l}");
    }
}
