//! `analyze`: infer fence placements for unannotated kernels — recover
//! footprints under SC, enumerate critical cycles, place the minimal
//! fences, synthesize per-site wf/sf strengths, and lower the winner to
//! C11 for the native runtime. No hand annotations consumed anywhere.
//!
//! Shares the bench harness flags
//! (`--jobs/--designs/--filter/--quick/--metrics/--trace`), plus:
//!
//! ```text
//! --exhaustive      validate placements with bounded-exhaustive DPOR
//!                   exploration instead of the perturbation sweep, so
//!                   accepted placements are proofs up to the bound
//! --bound N         reorder bound for --exhaustive (default: 1;
//!                   implies --exhaustive)
//! ```

use asymfence_bench::cli;
use asymfence_bench::metrics::Collector;
use asymfence_bench::Runner;
use asymfence_common::telemetry;

fn usage() -> String {
    format!(
        "{}\n\
         \x20 --exhaustive    validate with bounded-exhaustive DPOR exploration\n\
         \x20                 (accepted placements become proofs up to the bound)\n\
         \x20 --bound N       reorder bound for --exhaustive (default: 1; implies it;\n\
         \x20                 bound 2 costs ~50k runs per candidate on large kernels)",
        cli::usage("analyze")
    )
}

fn main() {
    let mut exhaustive = false;
    let mut bound: Option<usize> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--exhaustive" => exhaustive = true,
            "--bound" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => bound = Some(n),
                None => {
                    eprintln!("--bound needs a number\n{}", usage());
                    std::process::exit(2);
                }
            },
            _ => rest.push(a),
        }
    }
    let (jobs, opts) = match cli::parse_args(rest) {
        Ok(parsed) => parsed,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                std::process::exit(0);
            }
            eprintln!("{msg}\n{}", usage());
            std::process::exit(2);
        }
    };
    let mut runner = Runner::new(jobs);
    if opts.metrics.is_some() {
        runner = runner.with_collector(std::sync::Arc::new(Collector::new(
            telemetry::deterministic_from_env(),
        )));
    }
    let exhaustive_bound = (exhaustive || bound.is_some()).then(|| bound.unwrap_or(1));
    asymfence_analyze::run_cli_with(&runner, &opts, exhaustive_bound);
}
