//! Store→load windows, the cross-thread conflict digraph, and critical
//! cycles.
//!
//! Under TSO the only architectural reordering is a store's write-back
//! drifting past a later load of a *different* word (the store buffer).
//! A thread's trace therefore yields **windows**: pairs `(store line,
//! load line)` where the store precedes the load in program order with
//! no fence or RMW between them and no same-word forwarding (a load of
//! the exact stored word is satisfied from the buffer and can never
//! observe the reordering).
//!
//! A window alone is harmless. Following Shasha & Snir — and the delay
//! sets already used for static programs in `asymfence::placement` — a
//! reordering is observable only on a **critical cycle**: windows on
//! distinct threads chained so each window's early load reads a line
//! another window's delayed store writes, closing back on itself. We
//! enumerate simple cycles over the window digraph with at most one
//! window per thread (a TSO critical cycle never needs two windows on
//! one thread — the second store→load pair would be ordered through the
//! first's fence anyway), which also bounds cycle length by the thread
//! count: the reorder-bounded pruning that keeps enumeration tiny.

use std::collections::{BTreeMap, BTreeSet};

use crate::interp::{Access, ThreadTrace};

/// One recovered store→load window with the word-level evidence behind
/// it (the words feed the synthesis layer's conflict footprints).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowInfo {
    /// Thread both accesses belong to.
    pub thread: usize,
    /// Cache-line index of the delayed store.
    pub store_line: u64,
    /// Cache-line index of the early load.
    pub load_line: u64,
    /// Word byte-addresses stored (evidence, ascending).
    pub store_words: BTreeSet<u64>,
    /// Word byte-addresses loaded (evidence, ascending).
    pub load_words: BTreeSet<u64>,
}

/// Window accumulator: `(thread, store_line, load_line)` keyed store-
/// and load-word evidence, ordered so iteration is deterministic.
type WindowMap = BTreeMap<(usize, u64, u64), (BTreeSet<u64>, BTreeSet<u64>)>;

/// Extracts every window from per-thread traces, merging evidence into
/// one `WindowInfo` per distinct `(thread, store_line, load_line)`.
/// Call once per schedule variant and merge with [`merge_windows`].
pub fn extract_windows(traces: &[ThreadTrace], line_bytes: u64) -> Vec<WindowInfo> {
    let mut map: WindowMap = BTreeMap::new();
    for (thread, trace) in traces.iter().enumerate() {
        // Words stored since the last window cut (fence/RMW), in order.
        let mut open: Vec<u64> = Vec::new();
        for &a in &trace.accesses {
            match a {
                Access::Store(w) => open.push(w),
                Access::Rmw(_) | Access::Fence => open.clear(),
                Access::Load(w) => {
                    let load_line = w / line_bytes;
                    for &s in &open {
                        if s == w {
                            continue; // same-word store forwarding
                        }
                        let e = map
                            .entry((thread, s / line_bytes, load_line))
                            .or_default();
                        e.0.insert(s);
                        e.1.insert(w);
                    }
                }
            }
        }
    }
    map.into_iter()
        .map(|((thread, store_line, load_line), (store_words, load_words))| WindowInfo {
            thread,
            store_line,
            load_line,
            store_words,
            load_words,
        })
        .collect()
}

/// Merges window sets from several schedule variants (union of windows,
/// union of per-window evidence). Deterministic: output is sorted by
/// `(thread, store_line, load_line)`.
pub fn merge_windows(sets: Vec<Vec<WindowInfo>>) -> Vec<WindowInfo> {
    let mut map: WindowMap = BTreeMap::new();
    for set in sets {
        for w in set {
            let e = map.entry((w.thread, w.store_line, w.load_line)).or_default();
            e.0.extend(w.store_words);
            e.1.extend(w.load_words);
        }
    }
    map.into_iter()
        .map(|((thread, store_line, load_line), (store_words, load_words))| WindowInfo {
            thread,
            store_line,
            load_line,
            store_words,
            load_words,
        })
        .collect()
}

/// The window conflict digraph: edge `i → j` iff the windows live on
/// different threads and window `i`'s early load reads the line window
/// `j`'s delayed store writes.
pub fn digraph(windows: &[WindowInfo]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); windows.len()];
    for (i, a) in windows.iter().enumerate() {
        for (j, b) in windows.iter().enumerate() {
            if a.thread != b.thread && a.load_line == b.store_line {
                adj[i].push(j);
            }
        }
    }
    adj
}

/// What the cycle scan found.
#[derive(Clone, Debug)]
pub struct CycleScan {
    /// Per window: does it sit on at least one critical cycle?
    pub on_cycle: Vec<bool>,
    /// Simple critical cycles enumerated (deduplicated by minimal start).
    pub cycles: u64,
    /// DFS branches cut by the one-window-per-thread reorder bound.
    pub bounded: u64,
}

/// Enumeration ceiling — a runaway guard far above any study kernel
/// (bakery, the largest, enumerates well under a hundred).
pub const MAX_CYCLES: u64 = 100_000;

/// Enumerates every simple critical cycle: ≥ 2 windows, ≤ 1 window per
/// thread, each canonical cycle counted once (its minimal window index
/// is the DFS root). Marks the windows that participate.
pub fn critical_cycles(windows: &[WindowInfo], adj: &[Vec<usize>]) -> CycleScan {
    let n = windows.len();
    let mut scan = CycleScan {
        on_cycle: vec![false; n],
        cycles: 0,
        bounded: 0,
    };
    let mut path: Vec<usize> = Vec::new();
    let mut threads_used: BTreeSet<usize> = BTreeSet::new();

    fn dfs(
        v: usize,
        root: usize,
        windows: &[WindowInfo],
        adj: &[Vec<usize>],
        path: &mut Vec<usize>,
        threads_used: &mut BTreeSet<usize>,
        scan: &mut CycleScan,
    ) {
        if scan.cycles >= MAX_CYCLES {
            return;
        }
        path.push(v);
        threads_used.insert(windows[v].thread);
        for &w in &adj[v] {
            if w == root && path.len() >= 2 {
                scan.cycles += 1;
                for &p in path.iter() {
                    scan.on_cycle[p] = true;
                }
                continue;
            }
            if w <= root || path.contains(&w) {
                continue; // canonical start / simple-cycle constraint
            }
            if threads_used.contains(&windows[w].thread) {
                scan.bounded += 1; // reorder bound: one window per thread
                continue;
            }
            dfs(w, root, windows, adj, path, threads_used, scan);
        }
        threads_used.remove(&windows[v].thread);
        path.pop();
    }

    for root in 0..n {
        dfs(
            root,
            root,
            windows,
            adj,
            &mut path,
            &mut threads_used,
            &mut scan,
        );
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(accesses: Vec<Access>) -> ThreadTrace {
        ThreadTrace { accesses }
    }

    fn win(thread: usize, store_line: u64, load_line: u64) -> WindowInfo {
        WindowInfo {
            thread,
            store_line,
            load_line,
            store_words: BTreeSet::new(),
            load_words: BTreeSet::new(),
        }
    }

    #[test]
    fn window_opens_on_store_and_cuts_on_rmw_and_fence() {
        let traces = vec![trace(vec![
            Access::Store(0),
            Access::Load(64), // window (0 → 1)
            Access::Rmw(128),
            Access::Load(64), // no open store: no window
            Access::Store(0),
            Access::Fence,
            Access::Load(64), // cut by the fence: no window
        ])];
        let ws = extract_windows(&traces, 64);
        assert_eq!(ws.len(), 1);
        assert_eq!((ws[0].store_line, ws[0].load_line), (0, 1));
        assert_eq!(ws[0].store_words, BTreeSet::from([0]));
        assert_eq!(ws[0].load_words, BTreeSet::from([64]));
    }

    #[test]
    fn same_word_forwarding_is_excluded() {
        let traces = vec![trace(vec![
            Access::Store(8),
            Access::Load(8),  // forwarded: no window
            Access::Load(16), // same line, different word: window (0 → 0)
        ])];
        let ws = extract_windows(&traces, 64);
        assert_eq!(ws.len(), 1);
        assert_eq!((ws[0].store_line, ws[0].load_line), (0, 0));
    }

    #[test]
    fn sb_shape_yields_one_two_cycle() {
        // Thread 0: st line0 → ld line1; thread 1: st line1 → ld line0.
        let ws = vec![win(0, 0, 1), win(1, 1, 0)];
        let adj = digraph(&ws);
        assert_eq!(adj, vec![vec![1], vec![0]]);
        let scan = critical_cycles(&ws, &adj);
        assert_eq!(scan.cycles, 1);
        assert!(scan.on_cycle.iter().all(|&b| b));
    }

    #[test]
    fn acyclic_windows_stay_off_cycle() {
        // Message passing: t0 st 0 → ld 1, t1 st 2 → ld 0. t0's load
        // reads t1's... no: t1 stores line 2, nobody loads it.
        let ws = vec![win(0, 0, 1), win(1, 2, 0)];
        let scan = critical_cycles(&ws, &digraph(&ws));
        assert_eq!(scan.cycles, 0);
        assert!(scan.on_cycle.iter().all(|&b| !b));
    }

    #[test]
    fn three_thread_cycle_is_found_once() {
        let ws = vec![win(0, 0, 1), win(1, 1, 2), win(2, 2, 0)];
        let scan = critical_cycles(&ws, &digraph(&ws));
        assert_eq!(scan.cycles, 1);
        assert!(scan.on_cycle.iter().all(|&b| b));
    }

    #[test]
    fn two_windows_per_thread_are_bounded() {
        // A would-be cycle that needs two windows on thread 0 is pruned.
        let ws = vec![win(0, 0, 1), win(1, 1, 2), win(0, 2, 0)];
        let scan = critical_cycles(&ws, &digraph(&ws));
        assert_eq!(scan.cycles, 0);
        assert!(scan.bounded > 0);
    }

    #[test]
    fn merge_unions_windows_and_evidence() {
        let mut a = win(0, 0, 1);
        a.store_words.insert(0);
        let mut b = win(0, 0, 1);
        b.store_words.insert(8);
        let merged = merge_windows(vec![vec![a], vec![b, win(1, 1, 0)]]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].store_words, BTreeSet::from([0, 8]));
    }
}
