//! The sequentially consistent reference interpreter.
//!
//! Fence inference needs each thread's *shared-memory footprint* — the
//! program-order sequence of loads, stores and RMWs it performs — but an
//! unannotated [`ThreadProgram`] is an opaque state machine: its control
//! flow depends on the values its loads observe. So we *run* it, under
//! the one memory model where no fence is ever needed: sequential
//! consistency with immediate delivery. Every load returns the latest
//! store, every tagged value is delivered synchronously, and threads
//! interleave under a deterministic round-robin schedule.
//!
//! One schedule explores one set of control-flow paths (who wins the
//! lock, whether the spin loop is entered). The analyzer therefore runs
//! several *schedule variants* — different quantum patterns derived from
//! a mixing function — and unions the footprints. Variants are fixed in
//! number and fully deterministic, so the recovered footprint (and
//! everything downstream of it) is a pure function of the kernel and
//! seed.
//!
//! Spin loops are collapsed at record time: a load identical to the
//! thread's immediately preceding access adds nothing to the footprint
//! (the open-store window set cannot have changed in between) and is not
//! recorded, which keeps traces proportional to useful work instead of
//! spin time.

use asymfence::prelude::{Fetch, Instr, ThreadProgram};

/// One shared-memory access in a thread's program-order trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// A load of the word at the byte address.
    Load(u64),
    /// A store to the word at the byte address.
    Store(u64),
    /// An atomic RMW on the word — drains the window like a full fence.
    Rmw(u64),
    /// An explicit fence (only seen if the input was not fully
    /// unannotated; treated as a window cut, never as an inferred site).
    Fence,
}

/// One thread's recorded program-order access sequence.
#[derive(Clone, Debug, Default)]
pub struct ThreadTrace {
    /// Accesses in program order, spin-collapsed.
    pub accesses: Vec<Access>,
}

/// The outcome of interpreting one schedule variant.
#[derive(Clone, Debug)]
pub struct InterpResult {
    /// Per-thread traces, indexed by program position.
    pub traces: Vec<ThreadTrace>,
    /// Whether every thread ran to `Done` within the step budget.
    pub finished: bool,
    /// Fetch steps consumed.
    pub steps: u64,
}

/// Default total fetch-step budget per variant — generous for the study
/// kernels (tens of protocol iterations each) while bounding a
/// hypothetical non-terminating input.
pub const STEP_CAP: u64 = 2_000_000;

/// Schedule variants each analysis runs. Fixed (not scaled by
/// `--quick`) so the recovered footprint never depends on run mode.
pub const VARIANTS: u64 = 8;

/// SplitMix64 — the repo's stock parameterless mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one set of fresh thread programs to completion under SC with the
/// given schedule variant. Variant 0 alternates threads every step; the
/// others rotate the start thread and draw per-turn quantum lengths from
/// the mixer, so spin phases and race winners differ across variants.
pub fn run_programs(
    mut programs: Vec<Box<dyn ThreadProgram>>,
    variant: u64,
    step_cap: u64,
) -> InterpResult {
    let n = programs.len();
    let mut memory: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut traces = vec![ThreadTrace::default(); n];
    let mut done = vec![false; n];
    let mut steps = 0u64;
    let mut turn = 0u64; // monotonically increasing round counter

    while steps < step_cap && done.iter().any(|d| !d) {
        // Pick the runnable thread for this turn.
        let start = (variant as usize + turn as usize) % n;
        let quantum = if variant == 0 {
            1
        } else {
            1 + (mix(variant ^ turn.wrapping_mul(0x5851_F42D)) % 7)
        };
        turn += 1;

        let Some(t) = (0..n).map(|i| (start + i) % n).find(|&i| !done[i]) else {
            break;
        };

        let mut awaits = 0;
        for _ in 0..quantum {
            if steps >= step_cap {
                break;
            }
            steps += 1;
            match programs[t].fetch() {
                Fetch::Done => {
                    done[t] = true;
                    break;
                }
                Fetch::Await => {
                    // With synchronous delivery a program can only Await
                    // transiently (e.g. an internal backoff); yield the
                    // quantum after a couple of polls.
                    awaits += 1;
                    if awaits > 2 {
                        break;
                    }
                }
                Fetch::Instr(instr) => {
                    awaits = 0;
                    step(&mut *programs[t], instr, &mut memory, &mut traces[t]);
                }
            }
        }
    }

    InterpResult {
        traces,
        finished: done.iter().all(|&d| d),
        steps,
    }
}

/// Executes one instruction under SC: reads hit the latest store,
/// tagged values deliver synchronously, and the access is recorded
/// (spin-collapsed) into the thread's trace.
fn step(
    program: &mut dyn ThreadProgram,
    instr: Instr,
    memory: &mut std::collections::HashMap<u64, u64>,
    trace: &mut ThreadTrace,
) {
    let record = |trace: &mut ThreadTrace, a: Access| {
        if trace.accesses.last() != Some(&a) {
            trace.accesses.push(a);
        }
    };
    match instr {
        Instr::Load { addr, tag } => {
            let value = memory.get(&addr.raw()).copied().unwrap_or(0);
            record(trace, Access::Load(addr.raw()));
            if let Some(tag) = tag {
                program.deliver(tag, value);
            }
        }
        Instr::Store { addr, value } => {
            memory.insert(addr.raw(), value);
            record(trace, Access::Store(addr.raw()));
        }
        Instr::Rmw { addr, op, tag } => {
            let old = memory.get(&addr.raw()).copied().unwrap_or(0);
            if let Some(new) = op.apply(old) {
                memory.insert(addr.raw(), new);
            }
            record(trace, Access::Rmw(addr.raw()));
            program.deliver(tag, old);
        }
        Instr::Fence { .. } => record(trace, Access::Fence),
        Instr::Compute { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::MachineConfig;
    use asymfence_workloads::unannot::InferredKernel;

    fn run_kernel(kernel: InferredKernel, variant: u64) -> InterpResult {
        let cfg = MachineConfig::builder().cores(kernel.cores()).build();
        run_programs(kernel.programs(&cfg, asymfence_bench::SEED), variant, STEP_CAP)
    }

    #[test]
    fn sb_trace_is_store_then_load_per_thread() {
        let r = run_kernel(InferredKernel::Sb, 0);
        assert!(r.finished);
        for trace in &r.traces {
            let stores = trace.accesses.iter().filter(|a| matches!(a, Access::Store(_))).count();
            let loads = trace.accesses.iter().filter(|a| matches!(a, Access::Load(_))).count();
            assert!(stores >= 1 && loads >= 1, "{:?}", trace.accesses);
            // Program order: a store precedes the final (observed) load.
            let first_store = trace
                .accesses
                .iter()
                .position(|a| matches!(a, Access::Store(_)))
                .unwrap();
            let last_load = trace
                .accesses
                .iter()
                .rposition(|a| matches!(a, Access::Load(_)))
                .unwrap();
            assert!(first_store < last_load, "{:?}", trace.accesses);
        }
    }

    #[test]
    fn every_kernel_finishes_under_every_variant() {
        for k in InferredKernel::ALL {
            for v in 0..VARIANTS {
                let r = run_kernel(k, v);
                assert!(r.finished, "{} variant {v}: {} steps", k.name(), r.steps);
            }
        }
    }

    #[test]
    fn interpretation_is_deterministic() {
        let a = run_kernel(InferredKernel::Peterson, 3);
        let b = run_kernel(InferredKernel::Peterson, 3);
        assert_eq!(a.steps, b.steps);
        for (x, y) in a.traces.iter().zip(&b.traces) {
            assert_eq!(x.accesses, y.accesses);
        }
    }

    #[test]
    fn variants_explore_different_interleavings() {
        // Dekker's contended paths depend on who wins; at least two
        // variants should record different traces for some thread.
        let rs: Vec<InterpResult> = (0..VARIANTS)
            .map(|v| run_kernel(InferredKernel::Dekker, v))
            .collect();
        let distinct = rs
            .iter()
            .map(|r| format!("{:?}", r.traces.iter().map(|t| &t.accesses).collect::<Vec<_>>()))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1, "all variants produced identical traces");
    }

    #[test]
    fn spin_collapse_dedupes_consecutive_identical_loads() {
        let mut t = ThreadTrace::default();
        let mut mem = std::collections::HashMap::new();
        struct Sink;
        impl ThreadProgram for Sink {
            fn fetch(&mut self) -> Fetch {
                Fetch::Done
            }
            fn deliver(&mut self, _: u64, _: u64) {}
            fn snapshot(&self) -> Box<dyn ThreadProgram> {
                Box::new(Sink)
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        let mut p = Sink;
        let load = Instr::Load {
            addr: asymfence::prelude::Addr::new(8),
            tag: None,
        };
        step(&mut p, load.clone(), &mut mem, &mut t);
        step(&mut p, load, &mut mem, &mut t);
        assert_eq!(t.accesses.len(), 1);
    }
}
