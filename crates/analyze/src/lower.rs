//! Lowering an inferred placement to C11 for the native runtime.
//!
//! The simulator validates a placement against an idealized machine;
//! shipping it means choosing a real barrier per site. C11 gives four
//! useful strengths, and the asymmetric runtime
//! (`asymfence-native`) adds the membarrier pair the paper's designs
//! model: a *light* side (compiler barrier only — the kernel IPIs make
//! it strong on demand) and a *heavy* side (`membarrier()` or the
//! fallback mprotect shootdown).
//!
//! The mapping is per fence group, driven by the synthesized strength
//! assignment:
//!
//! * **Mixed group** (some weak, some strong): the asymmetric win. Weak
//!   sites lower to [`C11Lower::Light`], strong partners to
//!   [`C11Lower::Heavy`] — exactly the native `FencePair` contract.
//! * **All-strong group**: no asymmetry to exploit; every site is an
//!   `atomic_thread_fence(seq_cst)`.
//! * **All-weak group**: only safe under rollback-capable designs (W+,
//!   Wee), which C11 cannot express — lowered conservatively to
//!   SeqCst on every site.
//! * **Ungrouped site**: on no critical cycle reachable from another
//!   thread's windows; a compiler barrier pins program order and
//!   documents the point without hardware cost.

use asymfence_common::placement::Placement;

/// A C11-expressible barrier choice for one placed fence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum C11Lower {
    /// `atomic_signal_fence(memory_order_seq_cst)` — compiler-only.
    Compiler,
    /// `atomic_thread_fence(memory_order_seq_cst)`.
    SeqCst,
    /// Asymmetric light side: compiler barrier, strength supplied by the
    /// heavy partner's process-wide barrier.
    Light,
    /// Asymmetric heavy side: `membarrier()` (or the fallback shootdown).
    Heavy,
}

impl C11Lower {
    /// The C expression the lowering names.
    pub fn c_expr(self) -> &'static str {
        match self {
            C11Lower::Compiler => "atomic_signal_fence(memory_order_seq_cst)",
            C11Lower::SeqCst => "atomic_thread_fence(memory_order_seq_cst)",
            C11Lower::Light => "asf_light() /* compiler barrier + heavy partner */",
            C11Lower::Heavy => "asf_heavy() /* membarrier or shootdown */",
        }
    }

    /// Short report label.
    pub fn label(self) -> &'static str {
        match self {
            C11Lower::Compiler => "compiler",
            C11Lower::SeqCst => "seq_cst",
            C11Lower::Light => "light",
            C11Lower::Heavy => "heavy",
        }
    }
}

/// One site's lowering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoweredFence {
    /// Synthetic site id (matches the placement).
    pub site: u32,
    /// The placement label (`t0@0x40`).
    pub label: String,
    /// The chosen barrier.
    pub lower: C11Lower,
}

/// A whole placement lowered to C11.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lowering {
    /// Per-site choices, in placement order.
    pub fences: Vec<LoweredFence>,
    /// Whether any group lowered asymmetrically (drives the native
    /// `C11Pair` choice: asymmetric pairs need the membarrier backend).
    pub asymmetric: bool,
}

/// Lowers a placement given its fence groups (indices into
/// `placement.fences`) and the synthesized weak-site mask over the same
/// indices. `mask` bit `i` set means site `i` was proven safe as a weak
/// fence under the searched design.
pub fn lower(placement: &Placement, groups: &[Vec<usize>], mask: u64) -> Lowering {
    let n = placement.len();
    let grouped: Vec<bool> = (0..n)
        .map(|i| groups.iter().any(|g| g.contains(&i)))
        .collect();
    let mut fences = Vec::with_capacity(n);
    let mut asymmetric = false;
    for (i, f) in placement.fences.iter().enumerate() {
        let weak = mask & (1 << i) != 0;
        let lower = if !grouped[i] {
            C11Lower::Compiler
        } else {
            let group = groups.iter().find(|g| g.contains(&i)).unwrap();
            let weak_bits = group.iter().filter(|&&j| mask & (1 << j) != 0).count();
            if weak_bits == 0 || weak_bits == group.len() {
                // All-strong (no asymmetry) or all-weak (needs rollback,
                // inexpressible in C11): SeqCst everywhere.
                C11Lower::SeqCst
            } else if weak {
                asymmetric = true;
                C11Lower::Light
            } else {
                asymmetric = true;
                C11Lower::Heavy
            }
        };
        fences.push(LoweredFence {
            site: f.site,
            label: f.label.clone(),
            lower,
        });
    }
    Lowering { fences, asymmetric }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence_common::assign::synthetic_site;
    use asymfence_common::placement::PlacedFence;

    fn placement(n: usize) -> Placement {
        Placement {
            fences: (0..n)
                .map(|i| PlacedFence {
                    site: synthetic_site(i as u32),
                    thread: i,
                    label: format!("t{i}@0x0"),
                    load_line: 0,
                    triggers: vec![1],
                    pre_writes: vec![],
                    post_reads: vec![],
                })
                .collect(),
            line_bytes: 64,
        }
    }

    #[test]
    fn mixed_group_lowers_asymmetrically() {
        let l = lower(&placement(2), &[vec![0, 1]], 0b01);
        assert!(l.asymmetric);
        assert_eq!(l.fences[0].lower, C11Lower::Light);
        assert_eq!(l.fences[1].lower, C11Lower::Heavy);
    }

    #[test]
    fn all_strong_group_lowers_to_seqcst() {
        let l = lower(&placement(2), &[vec![0, 1]], 0);
        assert!(!l.asymmetric);
        assert!(l.fences.iter().all(|f| f.lower == C11Lower::SeqCst));
    }

    #[test]
    fn all_weak_group_is_conservative_seqcst() {
        let l = lower(&placement(2), &[vec![0, 1]], 0b11);
        assert!(!l.asymmetric);
        assert!(l.fences.iter().all(|f| f.lower == C11Lower::SeqCst));
    }

    #[test]
    fn ungrouped_site_needs_only_a_compiler_barrier() {
        let l = lower(&placement(3), &[vec![0, 1]], 0b001);
        assert_eq!(l.fences[2].lower, C11Lower::Compiler);
    }

    #[test]
    fn c_exprs_are_distinct() {
        let exprs: std::collections::HashSet<&str> =
            [C11Lower::Compiler, C11Lower::SeqCst, C11Lower::Light, C11Lower::Heavy]
                .iter()
                .map(|l| l.c_expr())
                .collect();
        assert_eq!(exprs.len(), 4);
    }
}
