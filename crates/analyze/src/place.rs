//! From critical windows to a minimal fence placement.
//!
//! Critical windows ([`crate::cycles`]) say which store→load pairs can
//! break sequential consistency. A fence must cut each one — but one
//! fence can cut many: the decorator
//! ([`FencedProgram`](asymfence::cpu::insert::FencedProgram)) fires
//! immediately before a *load* of a given line whenever one of the
//! window's trigger stores is still dirty. So the placement condenses
//! windows by their anchoring load: one **site** per `(thread, load
//! line)`, owning the union of its windows' trigger store lines.
//!
//! Condensing can leave dead sites. A fence clears the thread's dirty
//! window, so a site that textually follows another site's load may
//! never see a dirty trigger at runtime (the earlier fence already
//! drained it). We replay the decorator's arming rule over every
//! recorded trace and drop sites that never fire — the *liveness
//! filter* that makes the placement minimal rather than merely
//! sufficient.

use std::collections::{BTreeMap, BTreeSet};

use asymfence::prelude::MachineConfig;
use asymfence_common::assign::synthetic_site;
use asymfence_common::ids::Addr;
use asymfence_common::placement::{PlacedFence, Placement};
use asymfence_workloads::unannot::InferredKernel;

use crate::cycles::{self, WindowInfo};
use crate::interp::{self, Access, ThreadTrace};

/// Everything one whole-program analysis produced, counters included.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The kernel analyzed.
    pub kernel: InferredKernel,
    /// The inferred placement (sorted by thread, then load line).
    pub placement: Placement,
    /// Every recovered window (critical or not), in canonical order.
    pub windows: Vec<WindowInfo>,
    /// Index into `windows` of those on at least one critical cycle.
    pub critical: Vec<usize>,
    /// Simple critical cycles enumerated.
    pub cycles: u64,
    /// DFS branches cut by the reorder bound.
    pub bounded: u64,
    /// Sites dropped by the liveness filter.
    pub dropped_dead: usize,
    /// Total interpreter fetch steps across all schedule variants.
    pub steps: u64,
}

/// One candidate site before liveness filtering.
#[derive(Clone, Debug)]
struct SiteDraft {
    thread: usize,
    load_line: u64,
    triggers: BTreeSet<u64>,
    store_words: BTreeSet<u64>,
    load_words: BTreeSet<u64>,
}

/// Runs the whole pipeline for one kernel: interpret under every
/// schedule variant, extract and merge windows, enumerate critical
/// cycles, condense to sites, liveness-filter, and number the
/// survivors. Pure function of `(kernel, seed)`.
pub fn analyze(kernel: InferredKernel, seed: u64) -> Analysis {
    let cfg = MachineConfig::builder().cores(kernel.cores()).build();
    analyze_with(kernel, &cfg, seed)
}

/// [`analyze`] against an explicit machine config (the line size is the
/// one knob that matters: windows and triggers are line-granular).
pub fn analyze_with(kernel: InferredKernel, cfg: &MachineConfig, seed: u64) -> Analysis {
    // 1. Footprint recovery: one SC run per schedule variant.
    let mut runs = Vec::new();
    let mut steps = 0;
    for variant in 0..interp::VARIANTS {
        let programs = kernel.programs(cfg, seed ^ variant);
        let r = interp::run_programs(programs, variant, interp::STEP_CAP);
        assert!(
            r.finished,
            "{} did not finish under SC (variant {variant}); the kernel is broken \
             independent of fences",
            kernel.name()
        );
        steps += r.steps;
        runs.push(r);
    }

    // 2. Windows, digraph, critical cycles.
    let windows = cycles::merge_windows(
        runs.iter()
            .map(|r| cycles::extract_windows(&r.traces, cfg.line_bytes))
            .collect(),
    );
    let adj = cycles::digraph(&windows);
    let scan = cycles::critical_cycles(&windows, &adj);
    let critical: Vec<usize> = (0..windows.len()).filter(|&i| scan.on_cycle[i]).collect();

    // 3. Condense critical windows into sites keyed by (thread, load line).
    let mut drafts: Vec<SiteDraft> = Vec::new();
    for &i in &critical {
        let w = &windows[i];
        match drafts
            .iter_mut()
            .find(|d| d.thread == w.thread && d.load_line == w.load_line)
        {
            Some(d) => {
                d.triggers.insert(w.store_line);
                d.store_words.extend(&w.store_words);
                d.load_words.extend(&w.load_words);
            }
            None => drafts.push(SiteDraft {
                thread: w.thread,
                load_line: w.load_line,
                triggers: BTreeSet::from([w.store_line]),
                store_words: w.store_words.clone(),
                load_words: w.load_words.clone(),
            }),
        }
    }
    drafts.sort_by_key(|d| (d.thread, d.load_line));

    // 4. Liveness filter: replay the decorator's arming rule over every
    //    recorded trace; a site that never fires anywhere is dead.
    let mut live = vec![false; drafts.len()];
    for r in &runs {
        for (thread, trace) in r.traces.iter().enumerate() {
            fire_sites(thread, trace, cfg.line_bytes, &drafts, &mut live);
        }
    }
    let dropped_dead = live.iter().filter(|&&l| !l).count();
    let mut drafts: Vec<SiteDraft> = drafts
        .into_iter()
        .zip(live)
        .filter(|&(_, l)| l)
        .map(|(d, _)| d)
        .collect();

    // 4b. Coverage attribution: a firing fence drains *every* open
    //    store, so it also cuts critical windows whose own load-line
    //    site died (their coverage transfers here — that is why the dead
    //    site was droppable). Replay the drain and fold each cut
    //    window's trigger line and word evidence into the cutting site,
    //    iterating to fixpoint because widened triggers can fire
    //    earlier. Without this the footprints under-approximate and the
    //    synthesis layer misses cross-thread fence groups (e.g. dcl's
    //    two fences would look conflict-free).
    let crit_set: BTreeSet<(usize, u64, u64)> = critical
        .iter()
        .map(|&i| (windows[i].thread, windows[i].store_line, windows[i].load_line))
        .collect();
    for round in 0.. {
        assert!(round < 32, "coverage attribution failed to converge");
        let mut changed = false;
        for r in &runs {
            for (thread, trace) in r.traces.iter().enumerate() {
                changed |= attribute_coverage(thread, trace, cfg.line_bytes, &crit_set, &mut drafts);
            }
        }
        if !changed {
            break;
        }
    }

    // 5. Number the survivors.
    let fences = drafts
        .iter()
        .enumerate()
        .map(|(i, d)| PlacedFence {
            site: synthetic_site(i as u32),
            thread: d.thread,
            label: format!("t{}@{:#x}", d.thread, d.load_line * cfg.line_bytes),
            load_line: d.load_line,
            triggers: d.triggers.iter().copied().collect(),
            pre_writes: d.store_words.iter().map(|&w| Addr::new(w)).collect(),
            post_reads: d.load_words.iter().map(|&w| Addr::new(w)).collect(),
        })
        .collect();

    Analysis {
        kernel,
        placement: Placement {
            fences,
            line_bytes: cfg.line_bytes,
        },
        windows,
        critical,
        cycles: scan.cycles,
        bounded: scan.bounded,
        dropped_dead,
        steps,
    }
}

/// Replays the decorator's rule over one thread trace, marking sites
/// that fire: dirty store lines accumulate, a fence/RMW (or a firing
/// site) drains them, and a site fires at a load of its line when a
/// trigger is dirty.
fn fire_sites(
    thread: usize,
    trace: &ThreadTrace,
    line_bytes: u64,
    drafts: &[SiteDraft],
    live: &mut [bool],
) {
    let mut dirty: BTreeSet<u64> = BTreeSet::new();
    for &a in &trace.accesses {
        match a {
            Access::Store(w) => {
                dirty.insert(w / line_bytes);
            }
            Access::Rmw(_) | Access::Fence => dirty.clear(),
            Access::Load(w) => {
                let line = w / line_bytes;
                if let Some(i) = drafts
                    .iter()
                    .position(|d| d.thread == thread && d.load_line == line)
                {
                    if drafts[i].triggers.iter().any(|t| dirty.contains(t)) {
                        live[i] = true;
                        dirty.clear(); // the fired fence drains the window
                    }
                }
            }
        }
    }
}

/// Replays the placed decorator over one thread trace and attributes
/// every critical window to the fence that cuts it: when a site fires it
/// drains all open stores, so any later load pairing with a drained
/// store (a would-be window) was cut *here*. Folds the cut window's
/// store line into the cutting site's triggers and its words into the
/// footprint evidence. Returns whether anything widened.
fn attribute_coverage(
    thread: usize,
    trace: &ThreadTrace,
    line_bytes: u64,
    crit_set: &BTreeSet<(usize, u64, u64)>,
    drafts: &mut [SiteDraft],
) -> bool {
    let mut changed = false;
    // Store words open (undrained) since the last fence/RMW, and words
    // already drained, each tagged with the first site that drained it.
    let mut open: Vec<u64> = Vec::new();
    let mut drained: BTreeMap<u64, usize> = BTreeMap::new();
    for &a in &trace.accesses {
        match a {
            Access::Store(w) => open.push(w),
            Access::Rmw(_) | Access::Fence => {
                // A real RMW cuts windows by itself: nothing to place.
                open.clear();
                drained.clear();
            }
            Access::Load(w) => {
                let line = w / line_bytes;
                if let Some(i) = drafts
                    .iter()
                    .position(|d| d.thread == thread && d.load_line == line)
                {
                    let fires = open
                        .iter()
                        .any(|&s| drafts[i].triggers.contains(&(s / line_bytes)));
                    if fires {
                        for &s in &open {
                            drained.entry(s).or_insert(i);
                        }
                        open.clear();
                    }
                }
                for (&s, &i) in &drained {
                    if s == w {
                        continue; // same-word forwarding: never a window
                    }
                    if crit_set.contains(&(thread, s / line_bytes, line)) {
                        let d = &mut drafts[i];
                        changed |= d.triggers.insert(s / line_bytes);
                        changed |= d.store_words.insert(s);
                        changed |= d.load_words.insert(w);
                    }
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_is_deterministic() {
        let a = analyze(InferredKernel::Dekker, asymfence_bench::SEED);
        let b = analyze(InferredKernel::Dekker, asymfence_bench::SEED);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.windows, b.windows);
    }

    #[test]
    fn sb_gets_one_site_per_thread() {
        let a = analyze(InferredKernel::Sb, asymfence_bench::SEED);
        assert_eq!(a.placement.len(), 2);
        assert_eq!(a.cycles, 1, "exactly the Figure 1d cycle");
        let threads: Vec<usize> = a.placement.fences.iter().map(|f| f.thread).collect();
        assert_eq!(threads, vec![0, 1]);
        for f in &a.placement.fences {
            assert_eq!(f.triggers.len(), 1);
        }
    }

    #[test]
    fn peterson_gets_a_placement_with_zero_annotations() {
        let a = analyze(InferredKernel::Peterson, asymfence_bench::SEED);
        assert!(!a.placement.is_empty(), "peterson needs fences under TSO");
        // One guard per thread: before the flag[other] read, triggered by
        // the announce stores.
        assert_eq!(a.placement.len(), 2);
        let threads: Vec<usize> = a.placement.fences.iter().map(|f| f.thread).collect();
        assert_eq!(threads, vec![0, 1]);
    }

    #[test]
    fn labels_and_ids_are_canonical() {
        let a = analyze(InferredKernel::Sb, asymfence_bench::SEED);
        for (i, f) in a.placement.fences.iter().enumerate() {
            assert_eq!(f.site, synthetic_site(i as u32));
            assert!(f.label.starts_with(&format!("t{}@0x", f.thread)), "{}", f.label);
        }
    }
}
