//! Differential validation of the analyzer against the paper's hand
//! annotations, plus pinned regressions.
//!
//! Five of the six unannotated kernels have hand-annotated twins in
//! `asymfence_workloads::sites`. The analyzer never reads those — so
//! agreement between the structure it *recovers* (conflict digraph,
//! fence groups) and the structure the paper *wrote down* is real
//! evidence the recovery works. Peterson, the sixth, has no twin by
//! design and is covered by the property sweep.

use std::collections::BTreeSet;

use asymfence::prelude::MachineConfig;
use asymfence_analyze::{analyze, Analysis};
use asymfence_synth::groups;
use asymfence_workloads::unannot::InferredKernel;

/// Canonical group shape: the sorted multiset of per-group sorted
/// thread lists (labels differ between hand and inferred sites; the
/// thread structure is what must agree).
fn group_shape(threads_per_site: &[usize], groups: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut shape: Vec<Vec<usize>> = groups
        .iter()
        .map(|g| {
            let mut t: Vec<usize> = g.iter().map(|&i| threads_per_site[i]).collect();
            t.sort();
            t
        })
        .collect();
    shape.sort();
    shape
}

/// Unordered cross-thread pairs carrying at least one conflict edge.
fn edge_shape(threads_per_site: &[usize], adj: &[Vec<usize>]) -> BTreeSet<(usize, usize)> {
    let mut pairs = BTreeSet::new();
    for (i, out) in adj.iter().enumerate() {
        for &j in out {
            let (a, b) = (threads_per_site[i], threads_per_site[j]);
            pairs.insert((a.min(b), a.max(b)));
        }
    }
    pairs
}

fn twins() -> Vec<InferredKernel> {
    InferredKernel::ALL
        .into_iter()
        .filter(|k| k.site_bench().is_some())
        .collect()
}

#[test]
fn inferred_groups_match_hand_annotation_structure_on_all_twins() {
    for k in twins() {
        let a = analyze(k, asymfence_bench::SEED);
        let bench = k.site_bench().unwrap();
        let cfg = MachineConfig::builder().cores(bench.cores()).build();
        let hand = bench.sites(&cfg);

        let it: Vec<usize> = a.placement.fences.iter().map(|f| f.thread).collect();
        let ht: Vec<usize> = hand.iter().map(|s| s.thread).collect();
        let ig = groups::fence_groups_of(&a.placement.fences, a.placement.line_bytes);
        let hg = groups::fence_groups(&hand, cfg.line_bytes);
        assert_eq!(
            group_shape(&it, &ig),
            group_shape(&ht, &hg),
            "{}: inferred fence-group thread structure diverges from the hand annotation",
            k.name()
        );

        let ie = groups::conflict_edges_of(&a.placement.fences, a.placement.line_bytes);
        let he = groups::conflict_edges(&hand, cfg.line_bytes);
        assert_eq!(
            edge_shape(&it, &ie),
            edge_shape(&ht, &he),
            "{}: inferred conflict-digraph thread pairs diverge from the hand annotation",
            k.name()
        );
    }
}

/// Every site the analyzer places must exist in the hand annotation's
/// thread census: same number of fenced threads, and never more sites
/// on a thread than the hand annotation uses (the analyzer is minimal;
/// the paper's placement is the generous upper bound).
#[test]
fn inferred_sites_never_exceed_the_hand_annotation_per_thread() {
    for k in twins() {
        let a = analyze(k, asymfence_bench::SEED);
        let bench = k.site_bench().unwrap();
        let cfg = MachineConfig::builder().cores(bench.cores()).build();
        let hand = bench.sites(&cfg);
        for t in 0..k.cores() {
            let inferred = a.placement.fences.iter().filter(|f| f.thread == t).count();
            let handed = hand.iter().filter(|s| s.thread == t).count();
            assert!(
                inferred <= handed,
                "{} thread {t}: {inferred} inferred sites vs {handed} hand sites",
                k.name()
            );
        }
    }
}

/// Property sweep over seeds and every kernel (Peterson included):
/// the analysis is a pure function of the kernel (seed-invariant for
/// the study kernels), every critical window's trigger store is owned
/// by some same-thread fence, and sites are canonically sorted.
#[test]
fn analysis_properties_hold_across_seeds() {
    for k in InferredKernel::ALL {
        let baseline = analyze(k, asymfence_bench::SEED);
        assert!(!baseline.placement.is_empty(), "{}", k.name());
        for seed in 0..8u64 {
            let a = analyze(k, seed);
            assert_eq!(
                a.placement,
                baseline.placement,
                "{} placement must not depend on the data seed",
                k.name()
            );
            for &i in &a.critical {
                let w = &a.windows[i];
                assert!(
                    a.placement
                        .fences
                        .iter()
                        .any(|f| f.thread == w.thread && f.triggers.contains(&w.store_line)),
                    "{}: critical window (t{} st{} ld{}) not owned by any fence",
                    k.name(),
                    w.thread,
                    w.store_line,
                    w.load_line
                );
            }
            let keys: Vec<(usize, u64)> = a
                .placement
                .fences
                .iter()
                .map(|f| (f.thread, f.load_line))
                .collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted, "{}: sites must be canonically sorted", k.name());
        }
    }
}

/// Pinned regressions: `tests/regressions/seeds.txt` freezes the
/// placement (labels + cycle count) for every kernel under the seeds
/// that mattered while developing the liveness filter and the coverage
/// fixpoint. Any drift is a behavior change that needs a deliberate
/// re-pin.
#[test]
fn pinned_regression_seeds_reproduce_exactly() {
    let pins = include_str!("regressions/seeds.txt");
    let mut checked = 0;
    for line in pins.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kernel = InferredKernel::from_name(parts.next().unwrap())
            .unwrap_or_else(|| panic!("bad kernel in pin: {line}"));
        let seed: u64 = parts.next().unwrap().parse().unwrap();
        let cycles: u64 = parts.next().unwrap().parse().unwrap();
        let labels = parts.next().unwrap();
        let a: Analysis = analyze(kernel, seed);
        let got: Vec<&str> = a.placement.fences.iter().map(|f| f.label.as_str()).collect();
        assert_eq!(got.join(","), labels, "{} seed {seed}: placement drifted", kernel.name());
        assert_eq!(a.cycles, cycles, "{} seed {seed}: cycle count drifted", kernel.name());
        checked += 1;
    }
    assert!(checked >= 24, "pin file lost lines: {checked}");
}
