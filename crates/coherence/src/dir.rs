//! Directory / L2 bank.
//!
//! Each mesh tile hosts one bank of the shared L2 plus the full-map MESI
//! directory slice for the lines homed there (interleaved by line
//! address), and — for the WeeFence comparison design — one module of the
//! distributed Global Reorder Table (GRT).
//!
//! Transactions are serialized per line: while a line has a transaction in
//! flight, new requests are **parked** in a per-line FIFO and serviced
//! when the line frees (NACK-and-retry protocols starve pathologically —
//! a lock holder's release can phase-lock behind spinning CASes forever).
//! Write transactions gather `InvAck`s from every sharer and may end
//! three ways:
//!
//! * **success** — no Bypass-Set bounce: requester becomes owner (`DataM`);
//! * **bounce** — a plain write hit a Bypass Set, or a Conditional Order
//!   hit true sharing: requester gets `NackBounce` and retries;
//! * **order completion** — an Order (or all-false-sharing Conditional
//!   Order) write: the update is merged into memory here, Bypass-Set
//!   holders stay sharers, and the requester receives the line Shared.

use asymfence_common::hash::{FxBuildHasher, FxHashMap};

use asymfence_common::ids::{BankId, LineAddr};

use crate::msg::{LineData, Msg, OrderMode, WordUpdate};

/// An outgoing message produced by a bank, to be injected into the mesh.
#[derive(Clone, Debug)]
pub struct Outgoing {
    /// Destination node (tile) index.
    pub dst: usize,
    /// Extra cycles before injection (models bank/L2/memory access time).
    pub delay: u64,
    /// The message.
    pub msg: Msg,
}

/// Directory record for one line.
#[derive(Clone, Copy, Debug, Default)]
struct DirLine {
    owner: Option<usize>,
    sharers: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TxnKind {
    Read,
    Write,
    /// Grant sent; waiting for the requester's `Unblock`.
    AwaitUnblock,
}

/// An in-flight transaction on one line.
#[derive(Clone, Copy, Debug)]
struct Txn {
    kind: TxnKind,
    requester: usize,
    pending_acks: u32,
    bounced: bool,
    any_true_share: bool,
    order: OrderMode,
    update: Option<WordUpdate>,
}

impl Txn {
    fn await_unblock(requester: usize) -> Self {
        Txn {
            kind: TxnKind::AwaitUnblock,
            requester,
            pending_acks: 0,
            bounced: false,
            any_true_share: false,
            order: OrderMode::None,
            update: None,
        }
    }
}

/// Tag-only set-associative L2 bank used for latency classification.
#[derive(Clone, Debug)]
struct L2Tags {
    sets: Vec<Vec<(u64, u64)>>, // (line raw, lru)
    ways: usize,
    clock: u64,
}

impl L2Tags {
    fn new(sets: usize, ways: usize) -> Self {
        L2Tags {
            sets: vec![Vec::new(); sets],
            ways,
            clock: 0,
        }
    }

    /// Returns whether the access hit; inserts the line either way.
    /// `bank_local` must be the line address with the bank-interleaving
    /// bits stripped (`line / num_banks`), so consecutive lines homed at
    /// this bank spread across all sets.
    fn touch(&mut self, bank_local: u64) -> bool {
        self.clock += 1;
        let idx = (bank_local % self.sets.len() as u64) as usize;
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.0 == bank_local) {
            e.1 = self.clock;
            return true;
        }
        if set.len() >= self.ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("nonempty");
            set.swap_remove(victim);
        }
        set.push((bank_local, self.clock));
        false
    }
}

/// Per-bank counters, attributed to requesting cores where meaningful.
#[derive(Clone, Debug, Default)]
pub struct BankCounters {
    /// Order transactions completed, per requesting core.
    pub orders: Vec<u64>,
    /// Conditional Orders that failed on true sharing, per core.
    pub co_failures: Vec<u64>,
    /// Conditional Orders that completed, per core.
    pub co_successes: Vec<u64>,
    /// L2 tag misses at this bank.
    pub l2_misses: u64,
    /// Requests parked because the line was busy.
    pub busy_nacks: u64,
}

/// One directory + L2 bank.
#[derive(Clone, Debug)]
pub struct DirBank {
    id: BankId,
    num_cores: usize,
    words_per_line: usize,
    l2_hit_cycles: u64,
    mem_cycles: u64,
    interleave_lines: u64,
    lines: FxHashMap<LineAddr, DirLine>,
    busy: FxHashMap<LineAddr, Txn>,
    waiting: FxHashMap<LineAddr, std::collections::VecDeque<Msg>>,
    image: FxHashMap<LineAddr, LineData>,
    l2: L2Tags,
    grt: FxHashMap<usize, Vec<(u64, Vec<LineAddr>)>>,
    counters: BankCounters,
}

impl DirBank {
    /// Creates a bank.
    ///
    /// # Panics
    ///
    /// Panics if any geometry parameter is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: BankId,
        num_cores: usize,
        words_per_line: usize,
        l2_sets: usize,
        l2_ways: usize,
        l2_hit_cycles: u64,
        mem_cycles: u64,
        interleave_lines: u64,
    ) -> Self {
        assert!(num_cores > 0 && words_per_line > 0 && l2_sets > 0 && l2_ways > 0);
        assert!(interleave_lines > 0);
        DirBank {
            id,
            num_cores,
            words_per_line,
            l2_hit_cycles,
            mem_cycles,
            interleave_lines,
            // `lines` and `image` track the bank's share of the touched
            // working set; pre-sizing them past the typical footprint
            // keeps growth rehashes out of the simulation loop.
            lines: FxHashMap::with_capacity_and_hasher(256, FxBuildHasher::default()),
            busy: FxHashMap::with_capacity_and_hasher(64, FxBuildHasher::default()),
            waiting: FxHashMap::with_capacity_and_hasher(64, FxBuildHasher::default()),
            image: FxHashMap::with_capacity_and_hasher(256, FxBuildHasher::default()),
            l2: L2Tags::new(l2_sets, l2_ways),
            grt: FxHashMap::with_capacity_and_hasher(16, FxBuildHasher::default()),
            counters: BankCounters {
                orders: vec![0; num_cores],
                co_failures: vec![0; num_cores],
                co_successes: vec![0; num_cores],
                l2_misses: 0,
                busy_nacks: 0,
            },
        }
    }

    /// This bank's identifier.
    pub fn id(&self) -> BankId {
        self.id
    }

    /// Counter snapshot.
    pub fn counters(&self) -> &BankCounters {
        &self.counters
    }

    /// Whether any transaction is in flight or parked at this bank.
    pub fn is_idle(&self) -> bool {
        self.busy.is_empty() && self.waiting.is_empty()
    }

    /// Debug description of in-flight transactions.
    pub fn debug_busy(&self) -> Vec<String> {
        self.busy
            .iter()
            .map(|(l, t)| format!("{l}: {t:?} sharers={:b} owner={:?}", self.sharers_of(*l), self.owner_of(*l)))
            .collect()
    }

    /// Reads one word straight from the memory image (testing/back door).
    pub fn backdoor_read(&self, line: LineAddr, word: usize) -> u64 {
        self.image.get(&line).map_or(0, |d| d[word])
    }

    /// Writes one word straight into the memory image (initialization).
    pub fn backdoor_write(&mut self, line: LineAddr, word: usize, value: u64) {
        let wpl = self.words_per_line;
        self.image
            .entry(line)
            .or_insert_with(|| LineData::zeroed(wpl))[word] = value;
    }

    /// Restores the as-new state for machine reuse, keeping every map's
    /// allocation so a warmed pool runs allocation-free.
    pub fn reset(&mut self) {
        self.lines.clear();
        self.busy.clear();
        self.waiting.clear();
        self.image.clear();
        for set in &mut self.l2.sets {
            set.clear();
        }
        self.l2.clock = 0;
        self.grt.clear();
        self.counters.orders.fill(0);
        self.counters.co_failures.fill(0);
        self.counters.co_successes.fill(0);
        self.counters.l2_misses = 0;
        self.counters.busy_nacks = 0;
    }

    /// Marks a line resident in this bank's L2 (models data the program
    /// initialized before the measured region).
    pub fn warm_l2(&mut self, line: LineAddr) {
        let idx = self.bank_local(line);
        self.l2.touch(idx);
    }

    /// Whether `core` currently owns `line` per the directory.
    pub fn owner_of(&self, line: LineAddr) -> Option<usize> {
        self.lines.get(&line).and_then(|d| d.owner)
    }

    /// The sharer bitmask the directory holds for `line`.
    pub fn sharers_of(&self, line: LineAddr) -> u64 {
        self.lines.get(&line).map_or(0, |d| d.sharers)
    }

    fn line_data(&mut self, line: LineAddr) -> LineData {
        let wpl = self.words_per_line;
        *self.image.entry(line).or_insert_with(|| LineData::zeroed(wpl))
    }

    /// Line address with the bank-selection bits stripped, so this bank's
    /// lines spread across all L2 sets.
    fn bank_local(&self, line: LineAddr) -> u64 {
        let chunk = line.raw() / self.interleave_lines;
        (chunk / self.num_cores as u64) * self.interleave_lines + line.raw() % self.interleave_lines
    }

    fn l2_access_delay(&mut self, line: LineAddr) -> u64 {
        if self.l2.touch(self.bank_local(line)) {
            self.l2_hit_cycles
        } else {
            self.counters.l2_misses += 1;
            self.l2_hit_cycles + self.mem_cycles
        }
    }

    fn merge_image(&mut self, line: LineAddr, data: &[u64]) {
        let wpl = self.words_per_line;
        let slot = self
            .image
            .entry(line)
            .or_insert_with(|| LineData::zeroed(wpl));
        slot.copy_from_slice(data);
    }

    fn merge_update(&mut self, line: LineAddr, update: Option<WordUpdate>) {
        let wpl = self.words_per_line;
        let slot = self
            .image
            .entry(line)
            .or_insert_with(|| LineData::zeroed(wpl));
        if let Some(u) = update {
            slot[u.word as usize] = u.value;
        }
    }

    /// Handles one incoming message, returning the replies to inject.
    /// Convenience wrapper over [`DirBank::handle_into`] for tests; the
    /// hot path passes a reusable buffer instead.
    pub fn handle(&mut self, msg: Msg) -> Vec<Outgoing> {
        let mut out = Vec::new();
        self.handle_into(msg, &mut out);
        out
    }

    /// Handles one incoming message, pushing the replies to inject onto
    /// `out`. Requests for busy lines are parked and serviced FIFO when
    /// the line frees.
    ///
    /// # Panics
    ///
    /// Panics if handed a message type that cores, not banks, receive.
    pub fn handle_into(&mut self, msg: Msg, out: &mut Vec<Outgoing>) {
        // Park requests targeting busy lines.
        if let Msg::GetS { line, .. } | Msg::GetX { line, .. } = &msg {
            if self.busy.contains_key(line) {
                self.counters.busy_nacks += 1;
                self.waiting.entry(*line).or_default().push_back(msg);
                return;
            }
        }
        self.handle_inner(msg, out);
        // Service parked requests on lines that just freed. Each request
        // re-busies its line, so this loop services at most one waiter
        // per freed line per incoming message.
        loop {
            let ready: Vec<LineAddr> = self
                .waiting
                .keys()
                .filter(|l| !self.busy.contains_key(l))
                .copied()
                .collect();
            if ready.is_empty() {
                break;
            }
            let mut progressed = false;
            for line in ready {
                if self.busy.contains_key(&line) {
                    continue;
                }
                let Some(q) = self.waiting.get_mut(&line) else { continue };
                let Some(next) = q.pop_front() else { continue };
                if q.is_empty() {
                    self.waiting.remove(&line);
                }
                self.handle_inner(next, out);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }

    fn handle_inner(&mut self, msg: Msg, out: &mut Vec<Outgoing>) {
        match msg {
            Msg::GetS { core, line } => self.handle_gets(core.0, line, out),
            Msg::GetX {
                core,
                line,
                update,
                order,
                ..
            } => self.handle_getx(core.0, line, update, order, out),
            Msg::PutM {
                core,
                line,
                data,
                keep_sharer,
            } => self.handle_putm(core.0, line, data, keep_sharer),
            Msg::InvAck {
                core,
                line,
                bounced,
                keep_sharer,
                true_share,
                data,
            } => self.handle_inv_ack(core.0, line, bounced, keep_sharer, true_share, data, out),
            Msg::DowngradeAck { core, line, data } => {
                self.handle_downgrade_ack(core.0, line, data, out)
            }
            Msg::GrtDepositAndRead {
                core,
                fence_serial,
                ps,
            } => self.handle_grt_deposit(core.0, fence_serial, ps, out),
            Msg::GrtRead { core, fence_serial } => {
                let mut remote: Vec<LineAddr> = self
                    .grt
                    .iter()
                    .filter(|(c, _)| **c != core.0)
                    .flat_map(|(_, fences)| fences.iter().flat_map(|(_, lines)| lines.iter().copied()))
                    .collect();
                remote.sort_unstable();
                remote.dedup();
                out.push(Outgoing {
                    dst: core.0,
                    delay: 1,
                    msg: Msg::GrtReply {
                        fence_serial,
                        remote_ps: remote,
                    },
                });
            }
            Msg::GrtRemove { core, fence_serial } => {
                if let Some(entries) = self.grt.get_mut(&core.0) {
                    entries.retain(|(s, _)| *s != fence_serial);
                    if entries.is_empty() {
                        self.grt.remove(&core.0);
                    }
                }
            }
            Msg::Unblock { core, line } => {
                if let Some(txn) = self.busy.get(&line) {
                    if txn.kind == TxnKind::AwaitUnblock && txn.requester == core.0 {
                        self.busy.remove(&line);
                    }
                }
            }
            other => panic!("bank received core-bound message {other:?}"),
        }
    }

    fn handle_gets(&mut self, core: usize, line: LineAddr, out: &mut Vec<Outgoing>) {
        debug_assert!(!self.busy.contains_key(&line), "parked by handle()");
        let dl = self.lines.entry(line).or_default();
        if let Some(owner) = dl.owner {
            if owner != core {
                self.busy.insert(
                    line,
                    Txn {
                        kind: TxnKind::Read,
                        requester: core,
                        pending_acks: 1,
                        bounced: false,
                        any_true_share: false,
                        order: OrderMode::None,
                        update: None,
                    },
                );
                out.push(Outgoing {
                    dst: owner,
                    delay: 1,
                    msg: Msg::FetchDowngrade { line },
                });
                return;
            }
        }
        // No remote owner: serve from L2/memory.
        let exclusive = dl.owner.is_none() && dl.sharers == 0;
        let dl_sharers = {
            let dl = self.lines.get_mut(&line).expect("just inserted");
            dl.sharers |= 1 << core;
            if dl.owner == Some(core) {
                // Owner re-reading (should not normally happen): keep owner.
            } else if exclusive {
                dl.owner = Some(core);
                dl.sharers &= !(1 << core);
            }
            dl.sharers
        };
        let _ = dl_sharers;
        let delay = self.l2_access_delay(line);
        let data = self.line_data(line);
        let msg = if exclusive {
            Msg::DataE { line, data }
        } else {
            Msg::DataS { line, data }
        };
        self.busy.insert(line, Txn::await_unblock(core));
        out.push(Outgoing {
            dst: core,
            delay,
            msg,
        });
    }

    fn handle_getx(
        &mut self,
        core: usize,
        line: LineAddr,
        update: Option<WordUpdate>,
        order: OrderMode,
        out: &mut Vec<Outgoing>,
    ) {
        debug_assert!(!self.busy.contains_key(&line), "parked by handle()");
        let dl = *self.lines.entry(line).or_default();
        // Invalidation targets: the remote owner (first, matching the
        // directory's historical fan-out order), then remote sharers in
        // core order. Counted via the sharer bitmask so the fan-out
        // never allocates.
        let owner_target = dl.owner.filter(|&o| o != core);
        let mut sharer_mask = dl.sharers & !(1 << core);
        if let Some(o) = dl.owner {
            sharer_mask &= !(1 << o);
        }
        let n_targets = u32::from(owner_target.is_some()) + sharer_mask.count_ones();
        if n_targets == 0 {
            // Immediate grant.
            let delay = self.l2_access_delay(line);
            let data = self.line_data(line);
            let dl = self.lines.get_mut(&line).expect("present");
            dl.owner = Some(core);
            dl.sharers = 0;
            self.busy.insert(line, Txn::await_unblock(core));
            out.push(Outgoing {
                dst: core,
                delay,
                msg: Msg::DataM { line, data },
            });
            return;
        }
        let word_mask = update.map_or(0u32, |u| 1 << u.word);
        self.busy.insert(
            line,
            Txn {
                kind: TxnKind::Write,
                requester: core,
                pending_acks: n_targets,
                bounced: false,
                any_true_share: false,
                order,
                update,
            },
        );
        let inv = |t: usize| Outgoing {
            dst: t,
            delay: 1,
            msg: Msg::Inv {
                line,
                requester: asymfence_common::ids::CoreId(core),
                order,
                word_mask,
            },
        };
        if let Some(o) = owner_target {
            out.push(inv(o));
        }
        for c in 0..self.num_cores {
            if sharer_mask & (1 << c) != 0 {
                out.push(inv(c));
            }
        }
    }

    fn handle_putm(&mut self, core: usize, line: LineAddr, data: LineData, keep_sharer: bool) {
        self.merge_image(line, &data);
        let dl = self.lines.entry(line).or_default();
        if dl.owner == Some(core) {
            dl.owner = None;
        }
        dl.sharers &= !(1 << core);
        if keep_sharer {
            dl.sharers |= 1 << core;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_inv_ack(
        &mut self,
        core: usize,
        line: LineAddr,
        bounced: bool,
        keep_sharer: bool,
        true_share: bool,
        data: Option<LineData>,
        out: &mut Vec<Outgoing>,
    ) {
        if let Some(d) = data {
            self.merge_image(line, &d);
        }
        let Some(txn) = self.busy.get_mut(&line) else {
            return; // stale ack after a racing writeback
        };
        debug_assert_eq!(txn.kind, TxnKind::Write);
        txn.bounced |= bounced;
        txn.any_true_share |= true_share;
        txn.pending_acks -= 1;
        let keep = keep_sharer;
        if !bounced {
            let dl = self.lines.entry(line).or_default();
            dl.sharers &= !(1 << core);
            if dl.owner == Some(core) {
                dl.owner = None;
            }
            if keep {
                dl.sharers |= 1 << core;
            }
        }
        let done = {
            let txn = self.busy.get(&line).expect("still busy");
            txn.pending_acks == 0
        };
        if !done {
            return;
        }
        let txn = self.busy.remove(&line).expect("busy");
        let failed = txn.bounced || (txn.order == OrderMode::CondOrder && txn.any_true_share);
        if failed {
            if txn.order == OrderMode::CondOrder {
                self.counters.co_failures[txn.requester] += 1;
            }
            out.push(Outgoing {
                dst: txn.requester,
                delay: 1,
                msg: Msg::NackBounce { line },
            });
            return;
        }
        if txn.order != OrderMode::None {
            // Order / all-false Conditional Order completion: merge the
            // update in memory; requester and BS holders are sharers.
            self.merge_update(line, txn.update);
            let dl = self.lines.entry(line).or_default();
            dl.owner = None;
            dl.sharers |= 1 << txn.requester;
            match txn.order {
                OrderMode::Order => self.counters.orders[txn.requester] += 1,
                OrderMode::CondOrder => self.counters.co_successes[txn.requester] += 1,
                OrderMode::None => unreachable!(),
            }
            let data = self.line_data(line);
            self.busy.insert(line, Txn::await_unblock(txn.requester));
            out.push(Outgoing {
                dst: txn.requester,
                delay: 1,
                msg: Msg::OrderDone { line, data },
            });
            return;
        }
        // Plain write success.
        let dl = self.lines.entry(line).or_default();
        dl.owner = Some(txn.requester);
        dl.sharers = 0;
        let data = self.line_data(line);
        self.busy.insert(line, Txn::await_unblock(txn.requester));
        out.push(Outgoing {
            dst: txn.requester,
            delay: 1,
            msg: Msg::DataM { line, data },
        });
    }

    fn handle_downgrade_ack(
        &mut self,
        core: usize,
        line: LineAddr,
        data: Option<LineData>,
        out: &mut Vec<Outgoing>,
    ) {
        if let Some(d) = data {
            self.merge_image(line, &d);
        }
        let Some(txn) = self.busy.get(&line) else {
            return;
        };
        if txn.kind != TxnKind::Read {
            return;
        }
        let txn = self.busy.remove(&line).expect("busy");
        let dl = self.lines.entry(line).or_default();
        // The old owner keeps a Shared copy (or is a harmless stale sharer
        // if it raced an eviction); the requester joins.
        if dl.owner == Some(core) {
            dl.owner = None;
        }
        dl.sharers |= 1 << core;
        dl.sharers |= 1 << txn.requester;
        let delay = self.l2_access_delay(line);
        let data = self.line_data(line);
        self.busy.insert(line, Txn::await_unblock(txn.requester));
        out.push(Outgoing {
            dst: txn.requester,
            delay,
            msg: Msg::DataS { line, data },
        });
    }

    fn handle_grt_deposit(
        &mut self,
        core: usize,
        fence_serial: u64,
        ps: Vec<LineAddr>,
        out: &mut Vec<Outgoing>,
    ) {
        self.grt.entry(core).or_default().push((fence_serial, ps));
        let mut remote: Vec<LineAddr> = self
            .grt
            .iter()
            .filter(|(c, _)| **c != core)
            .flat_map(|(_, fences)| fences.iter().flat_map(|(_, lines)| lines.iter().copied()))
            .collect();
        remote.sort_unstable();
        remote.dedup();
        out.push(Outgoing {
            dst: core,
            delay: 1,
            msg: Msg::GrtReply {
                fence_serial,
                remote_ps: remote,
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence_common::ids::CoreId;

    fn bank() -> DirBank {
        DirBank::new(BankId(0), 4, 4, 16, 4, 11, 200, 1)
    }

    fn la(n: u64) -> LineAddr {
        LineAddr::from_raw(n)
    }

    fn upd(word: u8, value: u64) -> WordUpdate {
        WordUpdate { word, value }
    }

    /// Confirms the grant that `b` just issued to `core` for `line`.
    fn unblock(b: &mut DirBank, core: usize, line: LineAddr) {
        let out = b.handle(Msg::Unblock {
            core: CoreId(core),
            line,
        });
        assert!(out.is_empty());
        assert!(b.is_idle() || !b.is_idle()); // no-op shape check
    }

    #[test]
    fn first_read_grants_exclusive_with_memory_latency() {
        let mut b = bank();
        let out = b.handle(Msg::GetS {
            core: CoreId(1),
            line: la(0),
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, 1);
        assert_eq!(out[0].delay, 11 + 200, "cold L2 miss pays memory");
        assert!(matches!(out[0].msg, Msg::DataE { .. }));
        assert_eq!(b.owner_of(la(0)), Some(1));
    }

    #[test]
    fn second_read_from_owner_path_downgrades() {
        let mut b = bank();
        b.handle(Msg::GetS {
            core: CoreId(1),
            line: la(0),
        });
        unblock(&mut b, 1, la(0));
        let out = b.handle(Msg::GetS {
            core: CoreId(2),
            line: la(0),
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, 1, "fetch-downgrade goes to the owner");
        assert!(matches!(out[0].msg, Msg::FetchDowngrade { .. }));
        // A third request while busy is parked (no reply yet).
        let out = b.handle(Msg::GetS {
            core: CoreId(3),
            line: la(0),
        });
        assert!(out.is_empty(), "busy requests are parked, not NACKed");
        assert!(!b.is_idle());
        // Owner answers with dirty data.
        let out = b.handle(Msg::DowngradeAck {
            core: CoreId(1),
            line: la(0),
            data: Some(LineData::from_words(&[9, 9, 9, 9])),
        });
        assert_eq!(out[0].dst, 2);
        assert!(matches!(&out[0].msg, Msg::DataS { data, .. } if data[0] == 9));
        assert_eq!(b.owner_of(la(0)), None);
        // Core 3's parked read is serviced once core 2 unblocks.
        let out = b.handle(Msg::Unblock {
            core: CoreId(2),
            line: la(0),
        });
        assert_eq!(out.len(), 1, "parked request serviced on unblock");
        assert_eq!(out[0].dst, 3);
        assert!(matches!(out[0].msg, Msg::DataS { .. }));
        unblock(&mut b, 3, la(0));
        assert_eq!(b.sharers_of(la(0)), 0b1110);
    }

    #[test]
    fn uncontended_write_grants_m_immediately() {
        let mut b = bank();
        let out = b.handle(Msg::GetX {
            core: CoreId(0),
            line: la(3),
            update: Some(upd(1, 42)),
            order: OrderMode::None,
            attempt: 0,
        });
        assert!(matches!(out[0].msg, Msg::DataM { .. }));
        assert_eq!(b.owner_of(la(3)), Some(0));
    }

    #[test]
    fn write_invalidate_collects_acks_then_grants() {
        let mut b = bank();
        b.handle(Msg::GetS {
            core: CoreId(1),
            line: la(0),
        });
        unblock(&mut b, 1, la(0));
        // Make core 2 a sharer too (1 downgrades).
        let o = b.handle(Msg::GetS {
            core: CoreId(2),
            line: la(0),
        });
        assert!(matches!(o[0].msg, Msg::FetchDowngrade { .. }));
        b.handle(Msg::DowngradeAck {
            core: CoreId(1),
            line: la(0),
            data: None,
        });
        unblock(&mut b, 2, la(0));
        // Core 3 writes.
        let out = b.handle(Msg::GetX {
            core: CoreId(3),
            line: la(0),
            update: Some(upd(0, 7)),
            order: OrderMode::None,
            attempt: 0,
        });
        let mut dsts: Vec<usize> = out.iter().map(|o| o.dst).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![1, 2], "invalidations to both sharers");
        let none = b.handle(Msg::InvAck {
            core: CoreId(1),
            line: la(0),
            bounced: false,
            keep_sharer: false,
            true_share: false,
            data: None,
        });
        assert!(none.is_empty());
        let out = b.handle(Msg::InvAck {
            core: CoreId(2),
            line: la(0),
            bounced: false,
            keep_sharer: false,
            true_share: false,
            data: None,
        });
        assert!(matches!(out[0].msg, Msg::DataM { .. }));
        assert_eq!(out[0].dst, 3);
        assert_eq!(b.owner_of(la(0)), Some(3));
        assert_eq!(b.sharers_of(la(0)), 0);
    }

    #[test]
    fn bounced_ack_nacks_the_writer_and_keeps_bouncer_as_sharer() {
        let mut b = bank();
        b.handle(Msg::GetS {
            core: CoreId(1),
            line: la(0),
        });
        unblock(&mut b, 1, la(0));
        let out = b.handle(Msg::GetX {
            core: CoreId(2),
            line: la(0),
            update: Some(upd(0, 1)),
            order: OrderMode::None,
            attempt: 0,
        });
        assert_eq!(out[0].dst, 1);
        let out = b.handle(Msg::InvAck {
            core: CoreId(1),
            line: la(0),
            bounced: true,
            keep_sharer: false,
            true_share: false,
            data: None,
        });
        assert!(matches!(out[0].msg, Msg::NackBounce { .. }));
        assert_eq!(out[0].dst, 2);
        // Core 1 was the owner and bounced: it keeps its copy.
        assert_eq!(b.owner_of(la(0)), Some(1));
    }

    #[test]
    fn order_completion_merges_update_and_keeps_bs_holder_as_sharer() {
        let mut b = bank();
        b.handle(Msg::GetS {
            core: CoreId(1),
            line: la(0),
        });
        unblock(&mut b, 1, la(0));
        b.handle(Msg::GetX {
            core: CoreId(2),
            line: la(0),
            update: Some(upd(2, 77)),
            order: OrderMode::Order,
            attempt: 1,
        });
        let out = b.handle(Msg::InvAck {
            core: CoreId(1),
            line: la(0),
            bounced: false,
            keep_sharer: true,
            true_share: false,
            data: None,
        });
        assert!(matches!(&out[0].msg, Msg::OrderDone { data, .. } if data[2] == 77));
        assert_eq!(b.backdoor_read(la(0), 2), 77, "update merged into memory");
        assert_eq!(b.owner_of(la(0)), None);
        assert_eq!(b.sharers_of(la(0)), 0b0110, "BS holder and requester share");
        assert_eq!(b.counters().orders[2], 1);
    }

    #[test]
    fn conditional_order_fails_on_true_share_and_discards_update() {
        let mut b = bank();
        b.handle(Msg::GetS {
            core: CoreId(1),
            line: la(0),
        });
        unblock(&mut b, 1, la(0));
        b.handle(Msg::GetX {
            core: CoreId(2),
            line: la(0),
            update: Some(upd(0, 5)),
            order: OrderMode::CondOrder,
            attempt: 1,
        });
        let out = b.handle(Msg::InvAck {
            core: CoreId(1),
            line: la(0),
            bounced: false,
            keep_sharer: true,
            true_share: true,
            data: None,
        });
        assert!(matches!(out[0].msg, Msg::NackBounce { .. }));
        assert_eq!(b.backdoor_read(la(0), 0), 0, "update discarded");
        assert_eq!(
            b.sharers_of(la(0)) & 0b0010,
            0b0010,
            "true-sharing BS holder stays a sharer"
        );
        assert_eq!(b.counters().co_failures[2], 1);
    }

    #[test]
    fn conditional_order_succeeds_when_all_matches_are_false_sharing() {
        let mut b = bank();
        b.handle(Msg::GetS {
            core: CoreId(1),
            line: la(0),
        });
        unblock(&mut b, 1, la(0));
        b.handle(Msg::GetX {
            core: CoreId(2),
            line: la(0),
            update: Some(upd(3, 9)),
            order: OrderMode::CondOrder,
            attempt: 1,
        });
        let out = b.handle(Msg::InvAck {
            core: CoreId(1),
            line: la(0),
            bounced: false,
            keep_sharer: true,
            true_share: false,
            data: None,
        });
        assert!(matches!(out[0].msg, Msg::OrderDone { .. }));
        assert_eq!(b.backdoor_read(la(0), 3), 9);
        assert_eq!(b.counters().co_successes[2], 1);
    }

    #[test]
    fn putm_merges_and_honours_keep_sharer() {
        let mut b = bank();
        b.handle(Msg::GetX {
            core: CoreId(0),
            line: la(1),
            update: Some(upd(0, 1)),
            order: OrderMode::None,
            attempt: 0,
        });
        b.handle(Msg::PutM {
            core: CoreId(0),
            line: la(1),
            data: LineData::from_words(&[1, 2, 3, 4]),
            keep_sharer: true,
        });
        assert_eq!(b.owner_of(la(1)), None);
        assert_eq!(b.sharers_of(la(1)), 0b0001);
        assert_eq!(b.backdoor_read(la(1), 3), 4);
    }

    #[test]
    fn grt_deposit_returns_other_cores_pending_sets() {
        let mut b = bank();
        let out = b.handle(Msg::GrtDepositAndRead {
            core: CoreId(0),
            fence_serial: 1,
            ps: vec![la(8)],
        });
        assert!(
            matches!(&out[0].msg, Msg::GrtReply { remote_ps, .. } if remote_ps.is_empty()),
            "first depositor sees nothing"
        );
        let out = b.handle(Msg::GrtDepositAndRead {
            core: CoreId(1),
            fence_serial: 2,
            ps: vec![la(16)],
        });
        assert!(
            matches!(&out[0].msg, Msg::GrtReply { remote_ps, .. } if remote_ps == &vec![la(8)])
        );
        b.handle(Msg::GrtRemove { core: CoreId(0), fence_serial: 1 });
        let out = b.handle(Msg::GrtDepositAndRead {
            core: CoreId(2),
            fence_serial: 3,
            ps: vec![],
        });
        assert!(
            matches!(&out[0].msg, Msg::GrtReply { remote_ps, .. } if remote_ps == &vec![la(16)])
        );
    }

    #[test]
    fn l2_second_access_hits() {
        let mut b = bank();
        let out = b.handle(Msg::GetS {
            core: CoreId(0),
            line: la(0),
        });
        assert_eq!(out[0].delay, 211);
        unblock(&mut b, 0, la(0));
        // Writeback then re-read: now an L2 hit.
        b.handle(Msg::PutM {
            core: CoreId(0),
            line: la(0),
            data: LineData::zeroed(4),
            keep_sharer: false,
        });
        let out = b.handle(Msg::GetS {
            core: CoreId(0),
            line: la(0),
        });
        assert_eq!(out[0].delay, 11);
        assert_eq!(b.counters().l2_misses, 1);
    }
}
