//! Coherence protocol messages.
//!
//! The protocol is a full-map directory MESI with the paper's extensions:
//!
//! * invalidations may **bounce** off a Bypass Set (`InvAck { bounced }`),
//! * write requests may carry the **Order** bit or a **Conditional Order**
//!   word mask (the request then carries its update so the directory can
//!   merge it into memory),
//! * sharers may ask to be **kept as sharers** after invalidation,
//! * writebacks can request keep-as-sharer (dirty eviction of a line whose
//!   address sits in the Bypass Set, paper §5.1),
//! * the WeeFence comparison design adds GRT deposit/read/remove traffic.

use asymfence_common::ids::{CoreId, LineAddr};

/// The paper's Order modes attached to a write request.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OrderMode {
    /// Plain write: a Bypass-Set hit bounces it.
    #[default]
    None,
    /// WS+ Order operation: completes past Bypass Sets, keeping matching
    /// caches as sharers.
    Order,
    /// SW+ Conditional Order: like Order, but fails if any Bypass-Set match
    /// is on the same *words* (true sharing).
    CondOrder,
}

/// A word-granularity update carried by an Order/Conditional-Order request
/// (and by every `GetX`, so the directory can merge it on an Order).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WordUpdate {
    /// Word index within the line.
    pub word: u8,
    /// New value.
    pub value: u64,
}

/// Atomic read-modify-write operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RmwKind {
    /// Unconditionally writes the operand, returning the old value.
    Swap(u64),
    /// Adds the operand, returning the old value.
    Add(u64),
    /// Compare-and-swap: writes `new` only if the old value equals
    /// `expect`; returns the old value either way.
    Cas {
        /// Expected old value.
        expect: u64,
        /// Replacement value.
        new: u64,
    },
}

impl RmwKind {
    /// The value stored given the old value, or `None` if the RMW does not
    /// write (failed CAS).
    pub fn apply(self, old: u64) -> Option<u64> {
        match self {
            RmwKind::Swap(v) => Some(v),
            RmwKind::Add(v) => Some(old.wrapping_add(v)),
            RmwKind::Cas { expect, new } => (old == expect).then_some(new),
        }
    }
}

/// Maximum words per line representable by the inline [`LineData`]
/// payload (the paper's machine uses 4: 32 B lines of 8 B words).
/// Kept small on purpose: `LineData` is `Copy` and rides inside every
/// protocol [`Msg`], so its inline array is the dominant per-message
/// copy cost in the simulation kernel. `MachineConfig::validate`
/// enforces the same bound.
pub const MAX_LINE_WORDS: usize = 8;

/// Line data payload (one value per word), stored inline so protocol
/// messages, cache lines, and the directory's memory image never touch
/// the heap. Dereferences to a `[u64]` slice of the line's words.
#[derive(Clone, Copy)]
pub struct LineData {
    len: u8,
    words: [u64; MAX_LINE_WORDS],
}

impl LineData {
    /// An all-zero line of `len` words.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`MAX_LINE_WORDS`].
    pub fn zeroed(len: usize) -> Self {
        assert!(len <= MAX_LINE_WORDS, "{len} words/line > MAX_LINE_WORDS");
        LineData {
            len: len as u8,
            words: [0; MAX_LINE_WORDS],
        }
    }

    /// A line holding a copy of `words`.
    ///
    /// # Panics
    ///
    /// Panics if `words` is longer than [`MAX_LINE_WORDS`].
    pub fn from_words(words: &[u64]) -> Self {
        let mut d = Self::zeroed(words.len());
        d.words[..words.len()].copy_from_slice(words);
        d
    }
}

impl std::ops::Deref for LineData {
    type Target = [u64];
    fn deref(&self) -> &[u64] {
        &self.words[..self.len as usize]
    }
}

impl std::ops::DerefMut for LineData {
    fn deref_mut(&mut self) -> &mut [u64] {
        &mut self.words[..self.len as usize]
    }
}

impl PartialEq for LineData {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for LineData {}

impl std::fmt::Debug for LineData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self[..], f)
    }
}

/// Protocol messages exchanged between L1 controllers and directory banks.
#[derive(Clone, Debug)]
pub enum Msg {
    // ------------------------------------------------------- core -> dir
    /// Read request.
    GetS {
        /// Requesting core.
        core: CoreId,
        /// Requested line.
        line: LineAddr,
    },
    /// Write/upgrade request. Carries the update so Order can merge it.
    GetX {
        /// Requesting core.
        core: CoreId,
        /// Requested line.
        line: LineAddr,
        /// The word this write will modify (`None` for an RMW upgrade,
        /// which applies its operation after the fill).
        update: Option<WordUpdate>,
        /// Order mode for this attempt.
        order: OrderMode,
        /// Retry attempt number (0 = first try); used for traffic split.
        attempt: u32,
    },
    /// Dirty writeback. `keep_sharer` implements paper §5.1.
    PutM {
        /// Evicting core.
        core: CoreId,
        /// Evicted line.
        line: LineAddr,
        /// Dirty data.
        data: LineData,
        /// Keep the evicting node in the sharer list.
        keep_sharer: bool,
    },
    /// Wee: deposit this core's Pending Set and read everyone else's.
    GrtDepositAndRead {
        /// Depositing core.
        core: CoreId,
        /// Fence identifier, echoed in the reply.
        fence_serial: u64,
        /// Pending-set lines.
        ps: Vec<LineAddr>,
    },
    /// Wee: read the remote Pending Sets registered at this bank (the
    /// second phase of fence arming; the deposit went to the fence's own
    /// bank first).
    GrtRead {
        /// Reading core.
        core: CoreId,
        /// Fence identifier, echoed in the reply.
        fence_serial: u64,
    },
    /// Wee: fence completed, drop that fence's Pending Set.
    GrtRemove {
        /// Core whose fence completed.
        core: CoreId,
        /// The completed fence (a core may have several fences open).
        fence_serial: u64,
    },
    /// Fill confirmation: the requester received its data grant, so the
    /// directory may release the line's busy state. (The classic
    /// "Unblock" of directory protocols — without it a second writer
    /// could be granted ownership while the first grant is in flight.)
    Unblock {
        /// Core that received the grant.
        core: CoreId,
        /// Line.
        line: LineAddr,
    },

    // ------------------------------------------------------- dir -> core
    /// Read data, shared state.
    DataS {
        /// Filled line.
        line: LineAddr,
        /// Line contents.
        data: LineData,
    },
    /// Read data, exclusive state (no other sharer).
    DataE {
        /// Filled line.
        line: LineAddr,
        /// Line contents.
        data: LineData,
    },
    /// Write data, modified state (plain GetX success).
    DataM {
        /// Filled line.
        line: LineAddr,
        /// Line contents (pre-merge; the L1 applies the store).
        data: LineData,
    },
    /// Order / Conditional-Order success: the update was merged into
    /// memory and the requester holds the line Shared.
    OrderDone {
        /// Line.
        line: LineAddr,
        /// Post-merge contents.
        data: LineData,
    },
    /// The write bounced off at least one Bypass Set (or a Conditional
    /// Order hit true sharing). Retry later.
    NackBounce {
        /// Line.
        line: LineAddr,
    },
    /// The directory had a transaction in flight for this line; retry soon
    /// (not a Bypass-Set bounce).
    NackBusy {
        /// Line.
        line: LineAddr,
    },
    /// Wee: combined remote Pending Sets registered at this bank.
    GrtReply {
        /// Echoed fence identifier.
        fence_serial: u64,
        /// Union of other cores' Pending Sets at this bank.
        remote_ps: Vec<LineAddr>,
    },

    // ---------------------------------------------------- dir -> sharer
    /// Invalidate (or bounce) a cached copy on behalf of a writer.
    Inv {
        /// Line to invalidate.
        line: LineAddr,
        /// The writing core (never invalidated).
        requester: CoreId,
        /// Order mode of the write.
        order: OrderMode,
        /// Word mask of the write (Conditional Order true-sharing test).
        word_mask: u32,
    },
    /// Ask the M/E owner to downgrade to Shared and return data.
    FetchDowngrade {
        /// Line.
        line: LineAddr,
    },

    // ---------------------------------------------------- sharer -> dir
    /// Reply to `Inv`.
    InvAck {
        /// Responding core.
        core: CoreId,
        /// Line.
        line: LineAddr,
        /// The Bypass Set rejected the invalidation; the copy was *not*
        /// invalidated and the write must be NACKed.
        bounced: bool,
        /// The copy was invalidated but the core must stay a sharer
        /// (Bypass-Set match under Order/Conditional Order).
        keep_sharer: bool,
        /// Under Conditional Order: the Bypass-Set match overlapped the
        /// written words.
        true_share: bool,
        /// Dirty data, if the responder was the owner.
        data: Option<LineData>,
    },
    /// Reply to `FetchDowngrade`.
    DowngradeAck {
        /// Responding core.
        core: CoreId,
        /// Line.
        line: LineAddr,
        /// Dirty data (`None` if the line was already gone: a racing
        /// writeback carries it instead).
        data: Option<LineData>,
    },
}

impl Msg {
    /// Short static name of the message kind, for trace labels.
    pub fn label(&self) -> &'static str {
        match self {
            Msg::GetS { .. } => "GetS",
            Msg::GetX { .. } => "GetX",
            Msg::PutM { .. } => "PutM",
            Msg::GrtDepositAndRead { .. } => "GrtDepositAndRead",
            Msg::GrtRead { .. } => "GrtRead",
            Msg::GrtRemove { .. } => "GrtRemove",
            Msg::Unblock { .. } => "Unblock",
            Msg::DataS { .. } => "DataS",
            Msg::DataE { .. } => "DataE",
            Msg::DataM { .. } => "DataM",
            Msg::OrderDone { .. } => "OrderDone",
            Msg::NackBounce { .. } => "NackBounce",
            Msg::NackBusy { .. } => "NackBusy",
            Msg::GrtReply { .. } => "GrtReply",
            Msg::Inv { .. } => "Inv",
            Msg::FetchDowngrade { .. } => "FetchDowngrade",
            Msg::InvAck { .. } => "InvAck",
            Msg::DowngradeAck { .. } => "DowngradeAck",
        }
    }

    /// The cache line this message concerns, when it concerns one (GRT
    /// traffic operates on fence serials / Pending Sets, not lines).
    /// Schedule oracles use this to decide which deliveries conflict.
    pub fn line(&self) -> Option<LineAddr> {
        match self {
            Msg::GetS { line, .. }
            | Msg::GetX { line, .. }
            | Msg::PutM { line, .. }
            | Msg::Unblock { line, .. }
            | Msg::DataS { line, .. }
            | Msg::DataE { line, .. }
            | Msg::DataM { line, .. }
            | Msg::OrderDone { line, .. }
            | Msg::NackBounce { line }
            | Msg::NackBusy { line }
            | Msg::Inv { line, .. }
            | Msg::FetchDowngrade { line }
            | Msg::InvAck { line, .. }
            | Msg::DowngradeAck { line, .. } => Some(*line),
            Msg::GrtDepositAndRead { .. }
            | Msg::GrtRead { .. }
            | Msg::GrtRemove { .. }
            | Msg::GrtReply { .. } => None,
        }
    }
}

/// Byte-size model for traffic accounting: 8 B header + 8 B address, plus
/// 8 B per carried word and the full line for data messages.
pub fn msg_bytes(msg: &Msg, line_bytes: u64) -> u64 {
    const HDR: u64 = 16;
    match msg {
        Msg::GetS { .. }
        | Msg::GrtRead { .. }
        | Msg::GrtRemove { .. }
        | Msg::NackBounce { .. }
        | Msg::NackBusy { .. }
        | Msg::Inv { .. }
        | Msg::FetchDowngrade { .. }
        | Msg::Unblock { .. } => HDR,
        Msg::GetX { update, .. } => HDR + 8 * u64::from(update.is_some()),
        Msg::PutM { .. } => HDR + line_bytes,
        Msg::DataS { .. } | Msg::DataE { .. } | Msg::DataM { .. } | Msg::OrderDone { .. } => {
            HDR + line_bytes
        }
        Msg::GrtDepositAndRead { ps, .. } => HDR + 8 * ps.len() as u64,
        Msg::GrtReply { remote_ps, .. } => HDR + 8 * remote_ps.len() as u64,
        Msg::InvAck { data, .. } | Msg::DowngradeAck { data, .. } => {
            HDR + data.as_ref().map_or(0, |_| line_bytes)
        }
    }
}

/// Whether a message is bounce-retry traffic (Table 4 accounting).
///
/// `NackBusy` and its resends are ordinary protocol serialization (they
/// exist in the baseline too), so only Bypass-Set bounces and the retries
/// they trigger count.
pub fn msg_is_retry(msg: &Msg) -> bool {
    match msg {
        Msg::GetX { attempt, .. } => *attempt > 0,
        Msg::NackBounce { .. } => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence_common::ids::{Addr, CoreId};

    #[test]
    fn rmw_apply_semantics() {
        assert_eq!(RmwKind::Swap(5).apply(9), Some(5));
        assert_eq!(RmwKind::Add(3).apply(u64::MAX), Some(2));
        assert_eq!(RmwKind::Cas { expect: 1, new: 7 }.apply(1), Some(7));
        assert_eq!(RmwKind::Cas { expect: 1, new: 7 }.apply(2), None);
    }

    #[test]
    fn message_sizes() {
        let line = LineAddr::containing(Addr::new(0), 32);
        let c = CoreId(0);
        assert_eq!(msg_bytes(&Msg::GetS { core: c, line }, 32), 16);
        assert_eq!(
            msg_bytes(
                &Msg::GetX {
                    core: c,
                    line,
                    update: Some(WordUpdate { word: 0, value: 1 }),
                    order: OrderMode::None,
                    attempt: 0
                },
                32
            ),
            24
        );
        assert_eq!(
            msg_bytes(
                &Msg::DataM {
                    line,
                    data: LineData::zeroed(4)
                },
                32
            ),
            48
        );
        assert_eq!(
            msg_bytes(
                &Msg::InvAck {
                    core: c,
                    line,
                    bounced: false,
                    keep_sharer: false,
                    true_share: false,
                    data: None
                },
                32
            ),
            16
        );
    }

    #[test]
    fn retry_classification() {
        let line = LineAddr::from_raw(1);
        assert!(msg_is_retry(&Msg::NackBounce { line }));
        assert!(!msg_is_retry(&Msg::NackBusy { line }));
        assert!(!msg_is_retry(&Msg::GetS { core: CoreId(0), line }));
        let gx = |attempt| Msg::GetX {
            core: CoreId(0),
            line,
            update: None,
            order: OrderMode::None,
            attempt,
        };
        assert!(!msg_is_retry(&gx(0)));
        assert!(msg_is_retry(&gx(2)));
    }

    #[test]
    fn line_data_is_inline_and_slice_like() {
        let mut d = LineData::from_words(&[1, 2, 3]);
        assert_eq!(d.len(), 3);
        assert_eq!(d[1], 2);
        d[1] = 9;
        assert_eq!(&d[..], &[1, 9, 3]);
        assert_eq!(d, LineData::from_words(&[1, 9, 3]));
        assert_ne!(d, LineData::zeroed(3));
        assert_eq!(format!("{:?}", LineData::from_words(&[7])), "[7]");
    }
}
