//! MESI directory coherence with the asymmetric-fence extensions.
//!
//! This crate is the coherence substrate of the `asymfence` workspace:
//! private L1 caches, banked shared L2 with a full-map directory, and a 2D
//! mesh between them — extended with the mechanisms of *Asymmetric Memory
//! Fences* (ASPLOS 2015):
//!
//! * per-core **Bypass Sets** that bounce conflicting invalidations
//!   ([`bypass`]),
//! * **Order** and **Conditional Order** write transactions ([`dir`]),
//! * keep-as-sharer writebacks (paper §5.1),
//! * the WeeFence **GRT** (global reorder table) for the comparison design.
//!
//! The entry point is [`mem::MemSystem`]; the `asymfence-cpu` crate drives
//! it from the core model.
//!
//! # Examples
//!
//! ```
//! use asymfence_coherence::mem::{MemEvent, MemSystem};
//! use asymfence_common::config::MachineConfig;
//! use asymfence_common::ids::{Addr, CoreId};
//!
//! let mut mem = MemSystem::new(&MachineConfig::default());
//! mem.backdoor_write(Addr::new(0x40), 123);
//! let tok = mem.issue_load(0, CoreId(0), Addr::new(0x40));
//! for t in 0..1000 {
//!     mem.tick(t);
//!     if let Some(MemEvent::LoadDone { token, value }) = mem.pop_event(CoreId(0)) {
//!         assert_eq!(token, tok);
//!         assert_eq!(value, 123);
//!         break;
//!     }
//! }
//! ```

pub mod bypass;
pub mod dir;
pub mod l1;
pub mod mem;
pub mod msg;

pub use bypass::{BsEntry, BsMatch, BypassSet};
pub use mem::{MemCounters, MemEvent, MemSystem, Token};
pub use msg::{LineData, OrderMode, RmwKind, WordUpdate};
