//! The Bypass Set (BS).
//!
//! A small hardware list in each cache controller holding the addresses of
//! post-weak-fence accesses that retired and completed before their fence
//! completed. Incoming write transactions that match a BS entry are
//! rejected ("bounced") so the early completion can never become visible
//! as an SC violation.
//!
//! Matching is at **line** granularity by default; the SW+ design keeps
//! per-word information so a Conditional Order can distinguish true from
//! false sharing. Entries are tagged with the serial number of the weak
//! fence that created them and are removed when that fence completes.

use asymfence_common::ids::LineAddr;

/// One Bypass-Set entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BsEntry {
    /// Line address of the early-completed access.
    pub line: LineAddr,
    /// Word mask of the access within the line (used only by SW+).
    pub word_mask: u32,
    /// Serial of the youngest incomplete weak fence preceding the access;
    /// the entry lives until all fences with serial `<= epoch` complete.
    pub epoch: u64,
}

/// Result of matching an incoming write against the Bypass Set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BsMatch {
    /// Some entry shares the line.
    pub line_match: bool,
    /// Some entry shares at least one written word (true sharing).
    pub word_match: bool,
}

/// A per-core Bypass Set with a hard capacity (paper: 32 entries).
#[derive(Clone, Debug)]
pub struct BypassSet {
    entries: Vec<BsEntry>,
    capacity: usize,
    /// Sticky flag: the BS bounced an incoming request since the last
    /// [`BypassSet::take_bounced_flag`] (the W+ timeout trigger).
    bounced_flag: bool,
    /// Peak occupancy ever observed.
    peak: usize,
}

impl BypassSet {
    /// Creates an empty Bypass Set with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BypassSet capacity must be nonzero");
        BypassSet {
            entries: Vec::with_capacity(capacity),
            capacity,
            bounced_flag: false,
            peak: 0,
        }
    }

    /// Inserts an entry; merges word masks with an existing same-line,
    /// same-epoch entry.
    ///
    /// Returns `false` if the set is full (the fence must then degrade to
    /// a strong fence for this access — an ablation knob, it never happens
    /// with the paper's 32 entries and 3–5 line working sets).
    pub fn insert(&mut self, line: LineAddr, word_mask: u32, epoch: u64) -> bool {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.line == line && e.epoch == epoch)
        {
            e.word_mask |= word_mask;
            return true;
        }
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push(BsEntry {
            line,
            word_mask,
            epoch,
        });
        self.peak = self.peak.max(self.entries.len());
        true
    }

    /// Matches an incoming write (line + written-word mask).
    pub fn check(&self, line: LineAddr, word_mask: u32) -> BsMatch {
        let mut m = BsMatch {
            line_match: false,
            word_match: false,
        };
        for e in &self.entries {
            if e.line == line {
                m.line_match = true;
                if e.word_mask & word_mask != 0 {
                    m.word_match = true;
                }
            }
        }
        m
    }

    /// Whether any entry references `line` (used by evictions).
    pub fn holds_line(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Removes entries whose fence epoch is `<= completed_epoch`.
    pub fn clear_completed(&mut self, completed_epoch: u64) {
        self.entries.retain(|e| e.epoch > completed_epoch);
    }

    /// Removes everything (W+ rollback).
    pub fn clear_all(&mut self) {
        self.entries.clear();
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct lines currently covered. Counted by a
    /// first-occurrence scan (the set holds at most a few dozen entries)
    /// so the per-fence-completion stats harvest never allocates.
    pub fn distinct_lines(&self) -> usize {
        self.entries
            .iter()
            .enumerate()
            .filter(|(i, e)| !self.entries[..*i].iter().any(|p| p.line == e.line))
            .count()
    }

    /// Peak occupancy since construction.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Records that the BS bounced an incoming request.
    pub fn note_bounce(&mut self) {
        self.bounced_flag = true;
    }

    /// Returns and clears the "bounced something" flag.
    pub fn take_bounced_flag(&mut self) -> bool {
        std::mem::take(&mut self.bounced_flag)
    }

    /// Approximate bytes of heap capacity retained across resets (for
    /// pool telemetry).
    pub fn retained_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<BsEntry>()
    }

    /// Restores the as-new state for machine reuse, keeping the entry
    /// allocation.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.bounced_flag = false;
        self.peak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_raw(n)
    }

    #[test]
    fn insert_and_match_line_granularity() {
        let mut bs = BypassSet::new(4);
        assert!(bs.insert(line(1), 0b0001, 0));
        let m = bs.check(line(1), 0b1000);
        assert!(m.line_match, "same line, different word still matches line");
        assert!(!m.word_match);
        let m = bs.check(line(2), 0b0001);
        assert!(!m.line_match && !m.word_match);
    }

    #[test]
    fn word_match_detects_true_sharing() {
        let mut bs = BypassSet::new(4);
        bs.insert(line(1), 0b0011, 0);
        assert!(bs.check(line(1), 0b0010).word_match);
        assert!(!bs.check(line(1), 0b0100).word_match);
    }

    #[test]
    fn same_line_entries_merge_masks() {
        let mut bs = BypassSet::new(1);
        assert!(bs.insert(line(1), 0b0001, 0));
        assert!(bs.insert(line(1), 0b0010, 0), "merge, not a new entry");
        assert_eq!(bs.len(), 1);
        assert!(bs.check(line(1), 0b0010).word_match);
        assert!(bs.check(line(1), 0b0001).word_match);
    }

    #[test]
    fn capacity_overflow_reports_false() {
        let mut bs = BypassSet::new(2);
        assert!(bs.insert(line(1), 1, 0));
        assert!(bs.insert(line(2), 1, 0));
        assert!(!bs.insert(line(3), 1, 0));
        assert_eq!(bs.len(), 2);
        assert_eq!(bs.peak(), 2);
    }

    #[test]
    fn epoch_clearing_is_selective() {
        let mut bs = BypassSet::new(8);
        bs.insert(line(1), 1, 1);
        bs.insert(line(2), 1, 2);
        bs.insert(line(3), 1, 3);
        bs.clear_completed(2);
        assert!(!bs.holds_line(line(1)));
        assert!(!bs.holds_line(line(2)));
        assert!(bs.holds_line(line(3)));
        bs.clear_all();
        assert!(bs.is_empty());
    }

    #[test]
    fn distinct_lines_dedup_across_epochs() {
        let mut bs = BypassSet::new(8);
        bs.insert(line(1), 1, 1);
        bs.insert(line(1), 2, 2); // same line, different fence
        bs.insert(line(2), 1, 2);
        assert_eq!(bs.len(), 3);
        assert_eq!(bs.distinct_lines(), 2);
    }

    #[test]
    fn bounce_flag_is_sticky_until_taken() {
        let mut bs = BypassSet::new(2);
        assert!(!bs.take_bounced_flag());
        bs.note_bounce();
        bs.note_bounce();
        assert!(bs.take_bounced_flag());
        assert!(!bs.take_bounced_flag());
    }
}
