//! Private L1 data cache: set-associative, LRU, MESI stable states.

use asymfence_common::ids::LineAddr;

use crate::msg::LineData;

/// MESI stable states of an L1 line (`I` is represented by absence).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum L1State {
    /// Shared, clean.
    S,
    /// Exclusive, clean.
    E,
    /// Modified, dirty.
    M,
}

impl L1State {
    /// Whether a store can hit this state without a coherence transaction.
    pub fn writable(self) -> bool {
        matches!(self, L1State::E | L1State::M)
    }
}

/// One resident line.
#[derive(Clone, Debug)]
pub struct L1Line {
    /// Line address.
    pub line: LineAddr,
    /// Coherence state.
    pub state: L1State,
    /// Word values.
    pub data: LineData,
    lru: u64,
}

/// What an insertion displaced.
#[derive(Clone, Debug, PartialEq)]
pub struct Evicted {
    /// Victim line address.
    pub line: LineAddr,
    /// Dirty data needing a writeback, if the victim was Modified.
    pub dirty: Option<LineData>,
}

/// A set-associative, true-LRU L1 cache.
///
/// # Examples
///
/// ```
/// use asymfence_coherence::l1::{L1Cache, L1State};
/// use asymfence_coherence::msg::LineData;
/// use asymfence_common::ids::LineAddr;
///
/// let mut l1 = L1Cache::new(2, 2, 4);
/// l1.insert(LineAddr::from_raw(0), L1State::E, LineData::zeroed(4));
/// assert!(l1.lookup(LineAddr::from_raw(0)).is_some());
/// assert!(l1.lookup(LineAddr::from_raw(2)).is_none()); // same set, absent
/// ```
#[derive(Clone, Debug)]
pub struct L1Cache {
    sets: Vec<Vec<L1Line>>,
    ways: usize,
    clock: u64,
}

impl L1Cache {
    /// Creates a cache of `sets x ways` lines of `words_per_line` words.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(sets: usize, ways: usize, words_per_line: usize) -> Self {
        assert!(sets > 0 && ways > 0 && words_per_line > 0);
        L1Cache {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            clock: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() % self.sets.len() as u64) as usize
    }

    /// Finds a resident line and refreshes its LRU position.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut L1Line> {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(line);
        let entry = self.sets[idx].iter_mut().find(|l| l.line == line)?;
        entry.lru = clock;
        Some(entry)
    }

    /// Finds a resident line without touching LRU state.
    pub fn peek(&self, line: LineAddr) -> Option<&L1Line> {
        let idx = self.set_index(line);
        self.sets[idx].iter().find(|l| l.line == line)
    }

    /// Inserts (or replaces) a line, returning any displaced victim.
    ///
    /// # Panics
    ///
    /// Panics if `data` length differs from other lines' word counts.
    pub fn insert(&mut self, line: LineAddr, state: L1State, data: LineData) -> Option<Evicted> {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(existing) = set.iter_mut().find(|l| l.line == line) {
            existing.state = state;
            existing.data = data;
            existing.lru = clock;
            return None;
        }
        let mut evicted = None;
        if set.len() >= self.ways {
            let victim_pos = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("nonempty set");
            let victim = set.swap_remove(victim_pos);
            evicted = Some(Evicted {
                line: victim.line,
                dirty: (victim.state == L1State::M).then_some(victim.data),
            });
        }
        set.push(L1Line {
            line,
            state,
            data,
            lru: clock,
        });
        evicted
    }

    /// Removes a line, returning dirty data if it was Modified.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineData> {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|l| l.line == line)?;
        let victim = set.swap_remove(pos);
        (victim.state == L1State::M).then_some(victim.data)
    }

    /// Downgrades an owner line to Shared, returning dirty data if it was
    /// Modified. Returns `None` if the line is absent.
    pub fn downgrade(&mut self, line: LineAddr) -> Option<Option<LineData>> {
        let idx = self.set_index(line);
        let entry = self.sets[idx].iter_mut().find(|l| l.line == line)?;
        let dirty = (entry.state == L1State::M).then_some(entry.data);
        entry.state = L1State::S;
        Some(dirty)
    }

    /// Number of resident lines (for tests/stats).
    pub fn resident(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Approximate bytes of heap capacity retained across resets (for
    /// pool telemetry).
    pub fn retained_bytes(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.capacity() * std::mem::size_of::<L1Line>())
            .sum()
    }

    /// Empties the cache for machine reuse, keeping every set's
    /// allocation so a warmed pool runs allocation-free.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn la(n: u64) -> LineAddr {
        LineAddr::from_raw(n)
    }

    fn ld(words: &[u64]) -> LineData {
        LineData::from_words(words)
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut l1 = L1Cache::new(1, 2, 1);
        l1.insert(la(1), L1State::S, ld(&[1]));
        l1.insert(la(2), L1State::S, ld(&[2]));
        l1.lookup(la(1)); // touch 1 so 2 is LRU
        let ev = l1.insert(la(3), L1State::S, ld(&[3])).expect("eviction");
        assert_eq!(ev.line, la(2));
        assert_eq!(ev.dirty, None, "clean eviction is silent");
        assert!(l1.peek(la(1)).is_some());
        assert!(l1.peek(la(2)).is_none());
    }

    #[test]
    fn dirty_eviction_returns_data() {
        let mut l1 = L1Cache::new(1, 1, 2);
        l1.insert(la(1), L1State::M, ld(&[7, 8]));
        let ev = l1.insert(la(2), L1State::S, ld(&[0, 0])).expect("eviction");
        assert_eq!(ev.line, la(1));
        assert_eq!(ev.dirty, Some(ld(&[7, 8])));
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut l1 = L1Cache::new(1, 1, 1);
        l1.insert(la(1), L1State::S, ld(&[1]));
        assert!(l1.insert(la(1), L1State::M, ld(&[2])).is_none());
        let line = l1.peek(la(1)).unwrap();
        assert_eq!(line.state, L1State::M);
        assert_eq!(line.data, ld(&[2]));
        assert_eq!(l1.resident(), 1);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut l1 = L1Cache::new(2, 2, 1);
        l1.insert(la(0), L1State::M, ld(&[9]));
        l1.insert(la(1), L1State::S, ld(&[4]));
        assert_eq!(l1.invalidate(la(0)), Some(ld(&[9])));
        assert_eq!(l1.invalidate(la(1)), None);
        assert_eq!(l1.invalidate(la(5)), None, "absent line");
        assert_eq!(l1.resident(), 0);
    }

    #[test]
    fn downgrade_keeps_line_shared() {
        let mut l1 = L1Cache::new(1, 2, 1);
        l1.insert(la(1), L1State::M, ld(&[3]));
        assert_eq!(l1.downgrade(la(1)), Some(Some(ld(&[3]))));
        assert_eq!(l1.peek(la(1)).unwrap().state, L1State::S);
        assert_eq!(l1.downgrade(la(1)), Some(None), "already clean");
        assert_eq!(l1.downgrade(la(9)), None, "absent");
    }

    #[test]
    fn sets_are_independent() {
        let mut l1 = L1Cache::new(2, 1, 1);
        l1.insert(la(0), L1State::S, ld(&[0])); // set 0
        l1.insert(la(1), L1State::S, ld(&[1])); // set 1
        assert_eq!(l1.resident(), 2);
        // Same set as line 0 evicts only from set 0.
        let ev = l1.insert(la(2), L1State::S, ld(&[2])).unwrap();
        assert_eq!(ev.line, la(0));
        assert!(l1.peek(la(1)).is_some());
    }

    #[test]
    fn writable_states() {
        assert!(!L1State::S.writable());
        assert!(L1State::E.writable());
        assert!(L1State::M.writable());
    }
}
