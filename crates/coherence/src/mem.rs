//! The memory system: per-core L1 ports (cache + Bypass Set + MSHRs +
//! write-transaction state), the directory/L2 banks, and the mesh that
//! connects them.
//!
//! Cores drive the memory system through [`MemSystem::issue_load`],
//! [`MemSystem::issue_store`] and [`MemSystem::issue_rmw`], advance it
//! once per cycle with [`MemSystem::tick`], and consume completions,
//! bounces, invalidation notifications and WeeFence arming through
//! [`MemSystem::pop_event`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use asymfence_common::config::MachineConfig;
use asymfence_common::hash::{FxBuildHasher, FxHashMap};
use asymfence_common::ids::{Addr, BankId, CoreId, Cycle, LineAddr};
use asymfence_common::schedule::{ChoiceKind, ChoicePoint, ScheduleOracle, ScheduleRecording};
use asymfence_common::stats::TrafficStats;
use asymfence_common::trace::{TraceKind, TraceSink};
use asymfence_common::trace_event;
use asymfence_noc::{Mesh, Network};

use crate::bypass::BypassSet;
use crate::dir::{BankCounters, DirBank, Outgoing};
use crate::l1::{L1Cache, L1State};
use crate::msg::{msg_bytes, msg_is_retry, LineData, Msg, OrderMode, RmwKind, WordUpdate};

/// Cycles before resending a request that hit a busy directory line.
const BUSY_RETRY_CYCLES: u64 = 4;

/// Identifier of an outstanding memory request.
pub type Token = u64;

/// Completion and notification events delivered to a core.
#[derive(Clone, Debug, PartialEq)]
pub enum MemEvent {
    /// A load performed; `value` is the loaded word.
    LoadDone {
        /// Request token.
        token: Token,
        /// Loaded value.
        value: u64,
    },
    /// A store merged with the memory system (globally performed).
    StoreDone {
        /// Request token.
        token: Token,
    },
    /// An atomic read-modify-write completed; `old` is the pre-RMW value.
    RmwDone {
        /// Request token.
        token: Token,
        /// Value before the RMW.
        old: u64,
    },
    /// The in-flight store was bounced by a remote Bypass Set (one event
    /// per bounce).
    StoreBounced {
        /// Request token.
        token: Token,
    },
    /// A cached line was invalidated or evicted: speculative loads on it
    /// must be squashed.
    InvSeen {
        /// The departed line.
        line: LineAddr,
    },
    /// Wee: the GRT round trip finished; the fence may now let post-fence
    /// accesses through, watching `remote_ps`.
    WeeArmed {
        /// Fence this arming belongs to.
        fence_serial: u64,
        /// Union of remote Pending Sets at the fence's GRT bank.
        remote_ps: Vec<LineAddr>,
    },
}

/// Per-core memory-side counters (merged into `CoreStats` by the machine).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemCounters {
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// Stores that were bounced at least once.
    pub writes_bounced: u64,
    /// Total bounce NACKs received.
    pub bounce_retries: u64,
}

#[derive(Clone, Copy, Debug)]
enum StoreKind {
    Plain,
    Rmw(RmwKind),
}

#[derive(Clone, Debug)]
struct PendingStore {
    token: Token,
    line: LineAddr,
    word: u8,
    kind: StoreKind,
    value: u64,
    attempt: u32,
    bounced_once: bool,
    /// Waiting for an MSHR fill on the same line before sending GetX.
    deferred: bool,
    /// Loads coalesced behind this write transaction: `(token, word)`.
    waiting_loads: Vec<(Token, u8)>,
}

#[derive(Clone, Debug, Default)]
struct Mshr {
    loads: Vec<(Token, u8)>,
}

#[derive(Clone, Debug)]
enum LocalEv {
    /// An L1 load hit completing after the hit latency.
    LoadHit { token: Token, line: LineAddr, word: u8 },
    /// A writable-hit store/RMW completing after the hit latency.
    StoreHit { token: Token, rmw_old: Option<u64> },
    /// Retry the pending store transaction on a line.
    RetryStore { line: LineAddr },
    /// Retry a read request that hit a busy directory line.
    RetryLoad { line: LineAddr },
}

#[derive(Clone, Debug)]
struct WeePending {
    fence_serial: u64,
    collected: Vec<LineAddr>,
    /// Replies still outstanding (own bank first, then the broadcast).
    remaining: usize,
}

struct CorePort {
    l1: L1Cache,
    bs: BypassSet,
    mshrs: FxHashMap<LineAddr, Mshr>,
    /// In-flight write transactions, keyed by line (at most one per line;
    /// TSO issues one total, wider merge widths several).
    pending_stores: FxHashMap<LineAddr, PendingStore>,
    order_mode: OrderMode,
    wee: Option<WeePending>,
    events: VecDeque<MemEvent>,
    counters: MemCounters,
}

// BinaryHeap needs Ord; order only by (cycle, seq).
#[derive(Debug)]
struct LocalEvSlot(LocalEv);
impl PartialEq for LocalEvSlot {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for LocalEvSlot {}
impl PartialOrd for LocalEvSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LocalEvSlot {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// The full memory hierarchy of the simulated machine.
pub struct MemSystem {
    cfg: Arc<MachineConfig>,
    ports: Vec<CorePort>,
    banks: Vec<DirBank>,
    net: Network<Msg>,
    local: BinaryHeap<Reverse<(Cycle, u64, usize, LocalEvSlot)>>,
    local_seq: u64,
    next_token: Token,
    /// Monotone message counter feeding the schedule oracle's
    /// NoC/invalidation choice points.
    perturb_seq: u64,
    /// The schedule oracle answering every nondeterminism point, built
    /// from `MachineConfig::schedule`; `None` when the machine runs on
    /// natural time (seeded plan with an inactive perturbation).
    oracle: Option<Box<dyn ScheduleOracle>>,
    /// Fence-lifecycle trace sink; `None` unless `record_trace` is set.
    /// Pure observation — never read back by the protocol.
    trace: Option<TraceSink>,
    /// Reusable buffer for directory-bank outgoing messages (kept across
    /// dispatches so the hot path never allocates).
    scratch: Vec<Outgoing>,
}

impl MemSystem {
    /// Builds the memory system for a machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &MachineConfig) -> Self {
        Self::with_shared(Arc::new(cfg.clone()))
    }

    /// Like [`MemSystem::new`], but sharing an already-counted
    /// configuration (the machine hands the same `Arc` to every core and
    /// to the memory system instead of cloning the config per component).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_shared(cfg: Arc<MachineConfig>) -> Self {
        cfg.validate().expect("invalid MachineConfig");
        let (cols, rows) = cfg.mesh_dims();
        let mesh = Mesh::new(cols, rows, cfg.num_cores);
        let net = Network::new(mesh, cfg.hop_cycles, cfg.link_bytes_per_cycle);
        let ports = (0..cfg.num_cores)
            .map(|_| CorePort {
                l1: L1Cache::new(cfg.l1_sets(), cfg.l1_ways, cfg.words_per_line()),
                bs: BypassSet::new(cfg.bs_entries),
                // Pre-size past any realistic in-flight count so the
                // tables never rehash mid-run.
                mshrs: FxHashMap::with_capacity_and_hasher(64, FxBuildHasher::default()),
                pending_stores: FxHashMap::with_capacity_and_hasher(64, FxBuildHasher::default()),
                order_mode: OrderMode::None,
                wee: None,
                events: VecDeque::new(),
                counters: MemCounters::default(),
            })
            .collect();
        let banks = (0..cfg.num_cores)
            .map(|i| {
                DirBank::new(
                    BankId(i),
                    cfg.num_cores,
                    cfg.words_per_line(),
                    cfg.l2_sets(),
                    cfg.l2_ways,
                    cfg.l2_hit_cycles,
                    cfg.mem_cycles,
                    cfg.dir_interleave_lines,
                )
            })
            .collect();
        let trace = cfg.record_trace.then(|| TraceSink::new(cfg.fence_design));
        let oracle = cfg.schedule.build_oracle(cfg.perturb);
        MemSystem {
            cfg,
            ports,
            banks,
            net,
            local: BinaryHeap::new(),
            local_seq: 0,
            next_token: 1,
            perturb_seq: 0,
            oracle,
            trace,
            scratch: Vec::new(),
        }
    }

    /// Restores the as-new state for machine reuse under `cfg` (which
    /// must describe the same hardware shape the system was built with —
    /// see `MachineConfig::same_machine_shape`). Every container keeps
    /// its allocation, so a warmed pool machine resets and reruns without
    /// touching the heap.
    pub fn reset(&mut self, cfg: Arc<MachineConfig>) {
        debug_assert!(self.cfg.same_machine_shape(&cfg), "shape must match");
        self.cfg = cfg;
        for p in &mut self.ports {
            p.l1.reset();
            p.bs.reset();
            p.mshrs.clear();
            p.pending_stores.clear();
            p.order_mode = OrderMode::None;
            p.wee = None;
            p.events.clear();
            p.counters = MemCounters::default();
        }
        for b in &mut self.banks {
            b.reset();
        }
        self.net.reset();
        self.local.clear();
        self.local_seq = 0;
        self.next_token = 1;
        self.perturb_seq = 0;
        self.oracle = self.cfg.schedule.build_oracle(self.cfg.perturb);
        self.trace = self.cfg.record_trace.then(|| TraceSink::new(self.cfg.fence_design));
    }

    /// The earliest future cycle at which the memory system has work to
    /// do (a scheduled local event or an in-flight message arrival);
    /// `Cycle::MAX` when nothing is outstanding. Everything due at or
    /// before the last [`MemSystem::tick`] has already been processed,
    /// so the machine may jump straight to this cycle.
    pub fn next_time(&self) -> Cycle {
        let local = self.local.peek().map_or(Cycle::MAX, |Reverse((t, ..))| *t);
        let net = self.net.next_arrival().unwrap_or(Cycle::MAX);
        local.min(net)
    }

    /// Whether `core` has undelivered completion/notification events.
    pub fn port_has_events(&self, core: CoreId) -> bool {
        !self.ports[core.0].events.is_empty()
    }

    /// Approximate bytes of heap capacity retained across resets (for
    /// pool telemetry): L1 set arrays and bypass-set entry arrays, the
    /// dominant per-port retained structures.
    pub fn retained_bytes(&self) -> usize {
        self.ports
            .iter()
            .map(|p| p.l1.retained_bytes() + p.bs.retained_bytes())
            .sum()
    }

    /// The trace sink, mutably, when `record_trace` is enabled.
    ///
    /// Core-side code emits its fence-lifecycle events through this.
    pub fn trace_sink(&mut self) -> Option<&mut TraceSink> {
        self.trace.as_mut()
    }

    /// The trace sink, if one is recording.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Removes and returns the trace sink, ending recording.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.trace.take()
    }

    /// Asks the schedule oracle how long a retired store waits in the
    /// write buffer before becoming drainable. The core hands its own
    /// id and store serial; `line` is the store's target line. Returns
    /// 0 when the machine runs on natural time.
    pub fn wb_drain_stall(&mut self, core: CoreId, serial: u64, line: LineAddr) -> u64 {
        match self.oracle.as_mut() {
            Some(orc) => orc.choose(&ChoicePoint {
                kind: ChoiceKind::WbDrain,
                core: core.0,
                line: Some(line.raw()),
                seq: serial,
            }),
            None => 0,
        }
    }

    /// Hands back the schedule oracle's recording of every choice point
    /// this run encountered (scripted plans only; the sampling oracle
    /// records nothing). Exhaustive exploration reads this to extend
    /// its choice tree from the frontier the run exposed.
    pub fn take_schedule_recording(&mut self) -> Option<ScheduleRecording> {
        self.oracle.as_mut().and_then(|o| o.take_recording())
    }

    /// The configuration this memory system was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Per-bank counters without collecting (allocation-free harvest).
    pub fn each_bank_counters(&self) -> impl Iterator<Item = &BankCounters> {
        self.banks.iter().map(|b| b.counters())
    }

    fn line_of(&self, addr: Addr) -> LineAddr {
        LineAddr::containing(addr, self.cfg.line_bytes)
    }

    fn word_of(&self, addr: Addr) -> u8 {
        addr.word_in_line(self.cfg.line_bytes, self.cfg.word_bytes).0
    }

    /// Home bank (node index) of a line: chunks of
    /// `dir_interleave_lines` consecutive lines share a bank.
    pub fn home_bank(&self, line: LineAddr) -> usize {
        ((line.raw() / self.cfg.dir_interleave_lines) % self.cfg.num_cores as u64) as usize
    }

    fn schedule(&mut self, at: Cycle, core: usize, ev: LocalEv) {
        self.local_seq += 1;
        self.local
            .push(Reverse((at, self.local_seq, core, LocalEvSlot(ev))));
    }

    fn send(&mut self, now: Cycle, src: usize, dst: usize, msg: Msg) {
        let bytes = msg_bytes(&msg, self.cfg.line_bytes);
        let retry = msg_is_retry(&msg);
        if self.trace.is_some() {
            let hops = self.net.mesh().hops(src, dst) as u16;
            let label = msg.label();
            trace_event!(
                self.trace.as_mut(),
                now,
                CoreId(src),
                TraceKind::NocHop { src: src as u16, dst: dst as u16, hops, msg: label }
            );
        }
        // Every message is a nondeterminism point: generic NoC jitter,
        // with invalidation deliveries as their own point kind (they
        // take extra lag, reordering invals against data replies and
        // other sharers' invals). Per-pair FIFO is kept by the network
        // layer, so any answer the oracle gives stays protocol-legal.
        let extra = if let Some(orc) = self.oracle.as_mut() {
            self.perturb_seq += 1;
            let kind = if matches!(msg, Msg::Inv { .. }) {
                ChoiceKind::InvalDelivery
            } else {
                ChoiceKind::NocMessage
            };
            orc.choose(&ChoicePoint {
                kind,
                core: src,
                line: msg.line().map(LineAddr::raw),
                seq: self.perturb_seq,
            })
        } else {
            0
        };
        self.net.send_delayed(now, src, dst, bytes, retry, extra, msg);
    }

    // ------------------------------------------------------------------
    // Core-facing request API
    // ------------------------------------------------------------------

    /// Issues a load for `core`; a `LoadDone` event follows.
    pub fn issue_load(&mut self, now: Cycle, core: CoreId, addr: Addr) -> Token {
        let token = self.next_token;
        self.next_token += 1;
        let line = self.line_of(addr);
        let word = self.word_of(addr);
        let c = core.0;

        if self.ports[c].l1.lookup(line).is_some() {
            self.ports[c].counters.l1_hits += 1;
            let at = now + self.cfg.l1_hit_cycles;
            self.schedule(at, c, LocalEv::LoadHit { token, line, word });
            return token;
        }
        self.ports[c].counters.l1_misses += 1;
        self.start_load_miss(now, c, token, line, word);
        token
    }

    fn start_load_miss(&mut self, now: Cycle, c: usize, token: Token, line: LineAddr, word: u8) {
        if let Some(ps) = self.ports[c].pending_stores.get_mut(&line) {
            ps.waiting_loads.push((token, word));
            return;
        }
        if let Some(mshr) = self.ports[c].mshrs.get_mut(&line) {
            mshr.loads.push((token, word));
            return;
        }
        self.ports[c].mshrs.insert(
            line,
            Mshr {
                loads: vec![(token, word)],
            },
        );
        let dst = self.home_bank(line);
        self.send(
            now,
            c,
            dst,
            Msg::GetS {
                core: CoreId(c),
                line,
            },
        );
    }

    /// Issues a store for `core`; a `StoreDone` event follows (possibly
    /// after bounces). At most one store may be outstanding per core (the
    /// TSO write buffer drains one at a time).
    ///
    /// # Panics
    ///
    /// Panics if the core already has a store in flight.
    pub fn issue_store(&mut self, now: Cycle, core: CoreId, addr: Addr, value: u64) -> Token {
        self.issue_write(now, core, addr, value, StoreKind::Plain)
    }

    /// Issues an atomic read-modify-write; an `RmwDone` event follows.
    /// RMWs never carry an Order bit (they are not pre-fence writes of a
    /// weak fence in any of the paper's designs).
    ///
    /// # Panics
    ///
    /// Panics if the core already has a store in flight.
    pub fn issue_rmw(&mut self, now: Cycle, core: CoreId, addr: Addr, op: RmwKind) -> Token {
        self.issue_write(now, core, addr, 0, StoreKind::Rmw(op))
    }

    fn issue_write(
        &mut self,
        now: Cycle,
        core: CoreId,
        addr: Addr,
        value: u64,
        kind: StoreKind,
    ) -> Token {
        let token = self.next_token;
        self.next_token += 1;
        let line = self.line_of(addr);
        let word = self.word_of(addr);
        let c = core.0;
        assert!(
            !self.ports[c].pending_stores.contains_key(&line),
            "{core}: one store transaction per line at a time"
        );

        if self.try_local_write(now, c, token, line, word, value, kind) {
            return token;
        }

        self.ports[c].counters.l1_misses += 1;
        let deferred = self.ports[c].mshrs.contains_key(&line);
        self.ports[c].pending_stores.insert(
            line,
            PendingStore {
                token,
                line,
                word,
                kind,
                value,
                attempt: 0,
                bounced_once: false,
                deferred,
                waiting_loads: Vec::new(),
            },
        );
        if !deferred {
            self.send_store_request(now, c, line);
        }
        token
    }

    /// Whether `core` has a write transaction in flight on `line`.
    pub fn store_pending_on(&self, core: CoreId, line: LineAddr) -> bool {
        self.ports[core.0].pending_stores.contains_key(&line)
    }

    /// Attempts to complete a write as a writable L1 hit. Returns whether
    /// it succeeded (completion event scheduled).
    #[allow(clippy::too_many_arguments)]
    fn try_local_write(
        &mut self,
        now: Cycle,
        c: usize,
        token: Token,
        line: LineAddr,
        word: u8,
        value: u64,
        kind: StoreKind,
    ) -> bool {
        let port = &mut self.ports[c];
        let Some(l) = port.l1.lookup(line) else {
            return false;
        };
        if !l.state.writable() {
            return false;
        }
        let old = l.data[word as usize];
        let wrote = match kind {
            StoreKind::Plain => {
                l.data[word as usize] = value;
                true
            }
            StoreKind::Rmw(op) => match op.apply(old) {
                Some(new) => {
                    l.data[word as usize] = new;
                    true
                }
                None => false,
            },
        };
        if wrote {
            l.state = L1State::M;
        }
        port.counters.l1_hits += 1;
        let rmw_old = matches!(kind, StoreKind::Rmw(_)).then_some(old);
        self.schedule(
            now + self.cfg.l1_hit_cycles,
            c,
            LocalEv::StoreHit { token, rmw_old },
        );
        true
    }

    fn send_store_request(&mut self, now: Cycle, c: usize, line: LineAddr) {
        let (line, update, order, attempt) = {
            let ps = self.ports[c].pending_stores.get(&line).expect("pending store");
            let order = match ps.kind {
                StoreKind::Plain if ps.attempt > 0 => self.ports[c].order_mode,
                _ => OrderMode::None,
            };
            let update = match ps.kind {
                StoreKind::Plain => Some(WordUpdate {
                    word: ps.word,
                    value: ps.value,
                }),
                StoreKind::Rmw(_) => None,
            };
            (ps.line, update, order, ps.attempt)
        };
        let dst = self.home_bank(line);
        self.send(
            now,
            c,
            dst,
            Msg::GetX {
                core: CoreId(c),
                line,
                update,
                order,
                attempt,
            },
        );
    }

    // ------------------------------------------------------------------
    // Fence-machinery hooks used by the core model
    // ------------------------------------------------------------------

    /// Sets the Order mode applied to this core's bounced-store retries
    /// (WS+ sets `Order` when a weak fence dispatches; SW+ sets
    /// `CondOrder`; W+ and S+ leave it `None`).
    pub fn set_order_mode(&mut self, core: CoreId, mode: OrderMode) {
        self.ports[core.0].order_mode = mode;
    }

    /// Inserts an early-completed access into the Bypass Set. Returns
    /// `false` on overflow.
    pub fn bs_insert(&mut self, core: CoreId, line: LineAddr, word_mask: u32, epoch: u64) -> bool {
        self.ports[core.0].bs.insert(line, word_mask, epoch)
    }

    /// Clears Bypass-Set entries belonging to fences with serial
    /// `<= completed_epoch`.
    pub fn bs_clear_completed(&mut self, core: CoreId, completed_epoch: u64) {
        self.ports[core.0].bs.clear_completed(completed_epoch);
    }

    /// Empties the Bypass Set (W+ rollback).
    pub fn bs_clear_all(&mut self, core: CoreId) {
        self.ports[core.0].bs.clear_all();
    }

    /// Current Bypass-Set size.
    pub fn bs_len(&self, core: CoreId) -> usize {
        self.ports[core.0].bs.len()
    }

    /// Distinct lines currently in the Bypass Set.
    pub fn bs_distinct_lines(&self, core: CoreId) -> usize {
        self.ports[core.0].bs.distinct_lines()
    }

    /// Peak Bypass-Set occupancy.
    pub fn bs_peak(&self, core: CoreId) -> usize {
        self.ports[core.0].bs.peak()
    }

    /// Returns and clears the "this Bypass Set bounced something" flag
    /// (half of the W+ timeout condition).
    pub fn bs_take_bounced_flag(&mut self, core: CoreId) -> bool {
        self.ports[core.0].bs.take_bounced_flag()
    }

    /// Node hosting the centralized GRT. The paper argues a *distributed*
    /// GRT cannot be read consistently ("we believe that the problem is
    /// still unsolved", §2.3), so the Wee comparison point idealizes it
    /// as a single table — deposit-and-read is one atomic visit, which
    /// guarantees that of two colliding fences at least one observes the
    /// other's Pending Set.
    pub const GRT_HOME: usize = 0;

    /// Wee: deposit `ps` at the GRT and fetch the other cores' Pending
    /// Sets; a [`MemEvent::WeeArmed`] event follows.
    pub fn wee_register(
        &mut self,
        now: Cycle,
        core: CoreId,
        _ps_bank: usize,
        fence_serial: u64,
        ps: Vec<LineAddr>,
    ) {
        self.ports[core.0].wee = Some(WeePending {
            fence_serial,
            collected: Vec::new(),
            remaining: 1,
        });
        self.send(
            now,
            core.0,
            Self::GRT_HOME,
            Msg::GrtDepositAndRead {
                core,
                fence_serial,
                ps,
            },
        );
    }

    /// Wee: remove a completed fence's Pending Set from the GRT.
    pub fn wee_unregister(&mut self, now: Cycle, core: CoreId, _ps_bank: usize, fence_serial: u64) {
        // Drop the pending arming only if it belongs to this fence (a
        // younger fence may be mid-arming).
        if self.ports[core.0]
            .wee
            .as_ref()
            .is_some_and(|w| w.fence_serial == fence_serial)
        {
            self.ports[core.0].wee = None;
        }
        self.send(
            now,
            core.0,
            Self::GRT_HOME,
            Msg::GrtRemove { core, fence_serial },
        );
    }

    // ------------------------------------------------------------------
    // Event consumption and introspection
    // ------------------------------------------------------------------

    /// Pops the next event for `core`, if any.
    pub fn pop_event(&mut self, core: CoreId) -> Option<MemEvent> {
        self.ports[core.0].events.pop_front()
    }

    /// Per-core memory counters.
    pub fn counters(&self, core: CoreId) -> &MemCounters {
        &self.ports[core.0].counters
    }

    /// Bank counters (Order/Conditional-Order/L2 statistics) per bank.
    pub fn bank_counters(&self) -> Vec<&BankCounters> {
        self.banks.iter().map(|b| b.counters()).collect()
    }

    /// Network traffic counters.
    pub fn traffic(&self) -> &TrafficStats {
        self.net.traffic()
    }

    /// Whether nothing is in flight anywhere in the memory system.
    pub fn is_idle(&self) -> bool {
        self.net.is_idle()
            && self.local.is_empty()
            && self.banks.iter().all(|b| b.is_idle())
            && self
                .ports
                .iter()
                .all(|p| p.pending_stores.is_empty() && p.mshrs.is_empty())
    }

    /// Debug dump of stuck state: per-bank busy transactions and per-core
    /// outstanding requests.
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, b) in self.banks.iter().enumerate() {
            for l in b.debug_busy() {
                let _ = writeln!(out, "bank{i} busy {l}");
            }
        }
        for (i, p) in self.ports.iter().enumerate() {
            for ps in p.pending_stores.values() {
                let _ = writeln!(out, "core{i} pending_store {ps:?}");
            }
            for (l, m) in &p.mshrs {
                let _ = writeln!(out, "core{i} mshr {l} loads={:?}", m.loads);
            }
        }
        let _ = writeln!(
            out,
            "net idle={} next_arrival={:?} local events={}",
            self.net.is_idle(),
            self.net.next_arrival(),
            self.local.len()
        );
        out
    }

    /// Reads a word's globally-visible value (testing back door): the
    /// owner's copy if any L1 holds the line E/M, else the home bank's
    /// memory image.
    pub fn backdoor_read(&self, addr: Addr) -> u64 {
        let line = self.line_of(addr);
        let word = self.word_of(addr) as usize;
        for p in &self.ports {
            if let Some(l) = p.l1.peek(line) {
                if matches!(l.state, L1State::M | L1State::E) {
                    return l.data[word];
                }
            }
        }
        self.banks[self.home_bank(line)].backdoor_read(line, word)
    }

    /// Writes a word directly into memory (initialization; caches must not
    /// hold the line yet).
    pub fn backdoor_write(&mut self, addr: Addr, value: u64) {
        let line = self.line_of(addr);
        let word = self.word_of(addr) as usize;
        let bank = self.home_bank(line);
        self.banks[bank].backdoor_write(line, word, value);
    }

    /// Like [`MemSystem::backdoor_write`], but also installs the line in
    /// the home L2 bank — data the program touched before the measured
    /// region starts.
    pub fn backdoor_write_warm(&mut self, addr: Addr, value: u64) {
        let line = self.line_of(addr);
        let word = self.word_of(addr) as usize;
        let bank = self.home_bank(line);
        self.banks[bank].backdoor_write(line, word, value);
        self.banks[bank].warm_l2(line);
    }

    // ------------------------------------------------------------------
    // Per-cycle advance
    // ------------------------------------------------------------------

    /// Advances the memory system to cycle `now`: fires due local events
    /// and processes every message arriving by `now`.
    pub fn tick(&mut self, now: Cycle) {
        loop {
            let fired_local = if let Some(Reverse((t, ..))) = self.local.peek() {
                if *t <= now {
                    let Reverse((_, _, core, slot)) = self.local.pop().expect("peeked");
                    self.fire_local(now, core, slot.0);
                    true
                } else {
                    false
                }
            } else {
                false
            };
            let delivered = if let Some((node, msg)) = self.net.pop_arrival(now) {
                self.dispatch(now, node, msg);
                true
            } else {
                false
            };
            if !fired_local && !delivered {
                break;
            }
        }
    }

    fn fire_local(&mut self, now: Cycle, core: usize, ev: LocalEv) {
        match ev {
            LocalEv::LoadHit { token, line, word } => {
                // Re-check: the line may have been invalidated since issue.
                let value = self.ports[core]
                    .l1
                    .peek(line)
                    .map(|l| l.data[word as usize]);
                match value {
                    Some(v) => self.ports[core]
                        .events
                        .push_back(MemEvent::LoadDone { token, value: v }),
                    None => {
                        self.ports[core].counters.l1_misses += 1;
                        self.start_load_miss(now, core, token, line, word);
                    }
                }
            }
            LocalEv::StoreHit { token, rmw_old } => {
                let ev = match rmw_old {
                    Some(old) => MemEvent::RmwDone { token, old },
                    None => MemEvent::StoreDone { token },
                };
                self.ports[core].events.push_back(ev);
            }
            LocalEv::RetryStore { line } => {
                if self.ports[core].pending_stores.contains_key(&line) {
                    self.send_store_request(now, core, line);
                }
            }
            LocalEv::RetryLoad { line } => {
                if self.ports[core].mshrs.contains_key(&line) {
                    let dst = self.home_bank(line);
                    self.send(
                        now,
                        core,
                        dst,
                        Msg::GetS {
                            core: CoreId(core),
                            line,
                        },
                    );
                }
            }
        }
    }

    fn dispatch(&mut self, now: Cycle, node: usize, msg: Msg) {
        #[cfg(debug_assertions)]
        if let Ok(v) = std::env::var("ASF_TRACE") {
            let from: u64 = v.parse().unwrap_or(0);
            if now >= from {
                eprintln!("t={now} node={node} <- {msg:?}");
            }
        }
        match msg {
            Msg::GetS { .. }
            | Msg::GetX { .. }
            | Msg::PutM { .. }
            | Msg::InvAck { .. }
            | Msg::DowngradeAck { .. }
            | Msg::GrtDepositAndRead { .. }
            | Msg::GrtRead { .. }
            | Msg::GrtRemove { .. }
            | Msg::Unblock { .. } => {
                let mut outs = std::mem::take(&mut self.scratch);
                self.banks[node].handle_into(msg, &mut outs);
                for o in outs.drain(..) {
                    let bytes = msg_bytes(&o.msg, self.cfg.line_bytes);
                    let retry = msg_is_retry(&o.msg);
                    self.net
                        .send(now + o.delay, node, o.dst, bytes, retry, o.msg);
                }
                self.scratch = outs;
            }
            Msg::DataS { line, data } => {
                self.handle_fill(now, node, line, data, L1State::S);
                self.send_unblock(now, node, line);
            }
            Msg::DataE { line, data } => {
                self.handle_fill(now, node, line, data, L1State::E);
                self.send_unblock(now, node, line);
            }
            Msg::DataM { line, data } => {
                self.complete_pending_store(now, node, line, data, false);
                self.send_unblock(now, node, line);
            }
            Msg::OrderDone { line, data } => {
                self.complete_pending_store(now, node, line, data, true);
                self.send_unblock(now, node, line);
            }
            Msg::NackBounce { line } => self.handle_bounce(now, node, line),
            Msg::NackBusy { line } => self.handle_busy_nack(now, node, line),
            Msg::GrtReply {
                fence_serial,
                remote_ps,
            } => self.handle_grt_reply(now, node, fence_serial, remote_ps),
            Msg::Inv {
                line,
                requester,
                order,
                word_mask,
            } => self.handle_inv(now, node, line, requester, order, word_mask),
            Msg::FetchDowngrade { line } => self.handle_fetch_downgrade(now, node, line),
        }
    }

    /// Confirms a data grant so the directory releases the line.
    fn send_unblock(&mut self, now: Cycle, core: usize, line: LineAddr) {
        let dst = self.home_bank(line);
        self.send(
            now,
            core,
            dst,
            Msg::Unblock {
                core: CoreId(core),
                line,
            },
        );
    }

    /// Inserts a filled line, handling any eviction (writeback, keep-as-
    /// sharer, squash notification).
    fn fill_line(
        &mut self,
        now: Cycle,
        core: usize,
        line: LineAddr,
        state: L1State,
        data: LineData,
    ) {
        let evicted = self.ports[core].l1.insert(line, state, data);
        if let Some(ev) = evicted {
            self.ports[core]
                .events
                .push_back(MemEvent::InvSeen { line: ev.line });
            if let Some(dirty) = ev.dirty {
                // Paper §5.1: a dirty eviction whose address is in the BS
                // asks the directory to keep this node as sharer.
                let keep = self.ports[core].bs.holds_line(ev.line);
                let dst = self.home_bank(ev.line);
                self.send(
                    now,
                    core,
                    dst,
                    Msg::PutM {
                        core: CoreId(core),
                        line: ev.line,
                        data: dirty,
                        keep_sharer: keep,
                    },
                );
            }
        }
    }

    fn handle_fill(&mut self, now: Cycle, core: usize, line: LineAddr, data: LineData, state: L1State) {
        let mshr = self.ports[core].mshrs.remove(&line);
        self.fill_line(now, core, line, state, data);
        if let Some(m) = mshr {
            for (token, word) in m.loads {
                let value = self.ports[core]
                    .l1
                    .peek(line)
                    .map(|l| l.data[word as usize])
                    .unwrap_or(0);
                self.ports[core]
                    .events
                    .push_back(MemEvent::LoadDone { token, value });
            }
        }
        // A store deferred behind this fill can now proceed.
        let deferred = self.ports[core]
            .pending_stores
            .get(&line)
            .is_some_and(|ps| ps.deferred);
        if deferred {
            let ps = self.ports[core]
                .pending_stores
                .get_mut(&line)
                .expect("deferred");
            ps.deferred = false;
            let (token, word, value, kind) = (ps.token, ps.word, ps.value, ps.kind);
            let writable = self.ports[core]
                .l1
                .peek(line)
                .is_some_and(|l| l.state.writable());
            if writable {
                let waiting = self.ports[core]
                    .pending_stores
                    .remove(&line)
                    .expect("deferred")
                    .waiting_loads;
                let ok = self.try_local_write(now, core, token, line, word, value, kind);
                debug_assert!(ok, "writable line must accept the write");
                for (t, w) in waiting {
                    let v = self.ports[core]
                        .l1
                        .peek(line)
                        .map(|l| l.data[w as usize])
                        .unwrap_or(0);
                    self.ports[core]
                        .events
                        .push_back(MemEvent::LoadDone { token: t, value: v });
                }
            } else {
                self.send_store_request(now, core, line);
            }
        }
    }

    fn complete_pending_store(
        &mut self,
        now: Cycle,
        core: usize,
        line: LineAddr,
        data: LineData,
        order_completion: bool,
    ) {
        let mut ps = self.ports[core]
            .pending_stores
            .remove(&line)
            .expect("pending store");
        debug_assert_eq!(ps.line, line);
        let mut data = data;
        let old = data[ps.word as usize];
        let mut dirty = false;
        match ps.kind {
            StoreKind::Plain => {
                if !order_completion {
                    data[ps.word as usize] = ps.value;
                    dirty = true;
                }
                // Order completion: the directory already merged the
                // update; the returned data is post-merge and the line
                // stays Shared here.
            }
            StoreKind::Rmw(op) => {
                if let Some(new) = op.apply(old) {
                    data[ps.word as usize] = new;
                    dirty = true;
                }
            }
        }
        let state = if order_completion {
            L1State::S
        } else if dirty {
            L1State::M
        } else {
            L1State::E
        };
        if order_completion {
            let conditional = self.ports[core].order_mode == OrderMode::CondOrder;
            trace_event!(
                self.trace.as_mut(),
                now,
                CoreId(core),
                TraceKind::OrderComplete { line, conditional }
            );
        }
        self.fill_line(now, core, line, state, data);
        let done_ev = match ps.kind {
            StoreKind::Plain => MemEvent::StoreDone { token: ps.token },
            StoreKind::Rmw(_) => MemEvent::RmwDone {
                token: ps.token,
                old,
            },
        };
        self.ports[core].events.push_back(done_ev);
        let waiting = std::mem::take(&mut ps.waiting_loads);
        for (token, word) in waiting {
            let value = self.ports[core]
                .l1
                .peek(line)
                .map(|l| l.data[word as usize])
                .unwrap_or(0);
            self.ports[core]
                .events
                .push_back(MemEvent::LoadDone { token, value });
        }
    }

    fn handle_grt_reply(
        &mut self,
        now: Cycle,
        core: usize,
        fence_serial: u64,
        remote_ps: Vec<LineAddr>,
    ) {
        let num_cores = self.cfg.num_cores;
        let Some(wee) = self.ports[core].wee.as_mut() else {
            return; // stale (fence already completed)
        };
        if wee.fence_serial != fence_serial {
            return;
        }
        let _ = (now, num_cores);
        wee.collected.extend(remote_ps);
        wee.remaining -= 1;
        if wee.remaining == 0 {
            self.finish_wee_arming(core);
        }
    }

    fn finish_wee_arming(&mut self, core: usize) {
        let wee = self.ports[core].wee.take().expect("wee pending");
        let mut remote = wee.collected;
        remote.sort_unstable();
        remote.dedup();
        self.ports[core].events.push_back(MemEvent::WeeArmed {
            fence_serial: wee.fence_serial,
            remote_ps: remote,
        });
    }

    fn handle_bounce(&mut self, now: Cycle, core: usize, line: LineAddr) {
        let token = {
            let port = &mut self.ports[core];
            let Some(ps) = port.pending_stores.get_mut(&line) else {
                return; // stale
            };
            ps.attempt += 1;
            if !ps.bounced_once {
                ps.bounced_once = true;
                port.counters.writes_bounced += 1;
            }
            port.counters.bounce_retries += 1;
            let attempt = ps.attempt;
            let token = ps.token;
            trace_event!(
                self.trace.as_mut(),
                now,
                CoreId(core),
                TraceKind::StoreBounce { line, attempt }
            );
            token
        };
        self.ports[core]
            .events
            .push_back(MemEvent::StoreBounced { token });
        self.schedule(
            now + self.cfg.bounce_retry_cycles,
            core,
            LocalEv::RetryStore { line },
        );
    }

    fn handle_busy_nack(&mut self, now: Cycle, core: usize, line: LineAddr) {
        trace_event!(
            self.trace.as_mut(),
            now,
            CoreId(core),
            TraceKind::DirNack { line }
        );
        let is_store = self.ports[core]
            .pending_stores
            .get(&line)
            .is_some_and(|ps| !ps.deferred);
        if is_store {
            self.schedule(now + BUSY_RETRY_CYCLES, core, LocalEv::RetryStore { line });
        } else if self.ports[core].mshrs.contains_key(&line) {
            self.schedule(now + BUSY_RETRY_CYCLES, core, LocalEv::RetryLoad { line });
        }
    }

    fn handle_inv(
        &mut self,
        now: Cycle,
        core: usize,
        line: LineAddr,
        _requester: CoreId,
        order: OrderMode,
        word_mask: u32,
    ) {
        let m = self.ports[core].bs.check(line, word_mask);
        let dst = self.home_bank(line);
        if m.line_match && order == OrderMode::None {
            // Bounce: keep the cached copy, reject the write.
            self.ports[core].bs.note_bounce();
            trace_event!(
                self.trace.as_mut(),
                now,
                CoreId(core),
                TraceKind::BsHit { line }
            );
            self.send(
                now,
                core,
                dst,
                Msg::InvAck {
                    core: CoreId(core),
                    line,
                    bounced: true,
                    keep_sharer: false,
                    true_share: false,
                    data: None,
                },
            );
            return;
        }
        let present = self.ports[core].l1.peek(line).is_some();
        let dirty = self.ports[core].l1.invalidate(line);
        if present {
            self.ports[core]
                .events
                .push_back(MemEvent::InvSeen { line });
        }
        let true_share = order == OrderMode::CondOrder && m.word_match;
        self.send(
            now,
            core,
            dst,
            Msg::InvAck {
                core: CoreId(core),
                line,
                bounced: false,
                keep_sharer: m.line_match,
                true_share,
                data: dirty,
            },
        );
    }

    fn handle_fetch_downgrade(&mut self, now: Cycle, core: usize, line: LineAddr) {
        let data = self.ports[core].l1.downgrade(line).flatten();
        let dst = self.home_bank(line);
        self.send(
            now,
            core,
            dst,
            Msg::DowngradeAck {
                core: CoreId(core),
                line,
                data,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cores: usize) -> MachineConfig {
        MachineConfig::builder().cores(cores).build()
    }

    fn ms(cores: usize) -> MemSystem {
        MemSystem::new(&cfg(cores))
    }

    /// Ticks until an event arrives for `core` or `limit` cycles pass.
    fn next_event(m: &mut MemSystem, core: usize, start: Cycle, limit: u64) -> (Cycle, MemEvent) {
        for t in start..start + limit {
            m.tick(t);
            if let Some(e) = m.pop_event(CoreId(core)) {
                return (t, e);
            }
        }
        panic!("no event for core {core} within {limit} cycles");
    }

    #[test]
    fn cold_load_fetches_from_memory() {
        let mut m = ms(2);
        m.backdoor_write(Addr::new(0x40), 99);
        let tok = m.issue_load(0, CoreId(0), Addr::new(0x40));
        let (t, ev) = next_event(&mut m, 0, 0, 1000);
        assert_eq!(ev, MemEvent::LoadDone { token: tok, value: 99 });
        assert!(t >= 200, "cold miss must pay the memory round trip, got {t}");
        assert_eq!(m.counters(CoreId(0)).l1_misses, 1);
    }

    #[test]
    fn second_load_hits_in_l1() {
        let mut m = ms(2);
        let tok = m.issue_load(0, CoreId(0), Addr::new(0x40));
        let (t0, _) = next_event(&mut m, 0, 0, 1000);
        let tok2 = m.issue_load(t0 + 1, CoreId(0), Addr::new(0x48));
        let (t1, ev) = next_event(&mut m, 0, t0 + 1, 10);
        assert_eq!(ev, MemEvent::LoadDone { token: tok2, value: 0 });
        assert_eq!(t1, t0 + 1 + 2, "L1 hit takes l1_hit_cycles");
        assert_ne!(tok, tok2);
        assert_eq!(m.counters(CoreId(0)).l1_hits, 1);
    }

    #[test]
    fn store_then_remote_load_sees_value() {
        let mut m = ms(2);
        let a = Addr::new(0x100);
        let st = m.issue_store(0, CoreId(0), a, 7);
        let (t0, ev) = next_event(&mut m, 0, 0, 1000);
        assert_eq!(ev, MemEvent::StoreDone { token: st });
        let ld = m.issue_load(t0 + 1, CoreId(1), a);
        let (_, ev) = next_event(&mut m, 1, t0 + 1, 1000);
        assert_eq!(ev, MemEvent::LoadDone { token: ld, value: 7 });
        assert_eq!(m.backdoor_read(a), 7);
    }

    #[test]
    fn remote_store_invalidates_and_notifies_sharer() {
        let mut m = ms(2);
        let a = Addr::new(0x200);
        m.issue_load(0, CoreId(1), a);
        let (t0, _) = next_event(&mut m, 1, 0, 1000);
        m.issue_store(t0 + 1, CoreId(0), a, 5);
        let (_, ev) = next_event(&mut m, 1, t0 + 1, 1000);
        assert_eq!(
            ev,
            MemEvent::InvSeen {
                line: LineAddr::containing(a, 32)
            }
        );
        let (_, ev) = next_event(&mut m, 0, t0 + 1, 1000);
        assert!(matches!(ev, MemEvent::StoreDone { .. }));
        assert_eq!(m.backdoor_read(a), 5);
    }

    #[test]
    fn bypass_set_bounces_remote_store_until_cleared() {
        let mut m = ms(2);
        let a = Addr::new(0x300);
        let line = LineAddr::containing(a, 32);
        // Core 1 reads the line and puts it in its BS (early-completed
        // post-fence read).
        m.issue_load(0, CoreId(1), a);
        let (t0, _) = next_event(&mut m, 1, 0, 1000);
        assert!(m.bs_insert(CoreId(1), line, 0b0001, 1));
        // Core 0 tries to write: bounced.
        let st = m.issue_store(t0 + 1, CoreId(0), a, 9);
        let (t1, ev) = next_event(&mut m, 0, t0 + 1, 1000);
        assert_eq!(ev, MemEvent::StoreBounced { token: st });
        assert_eq!(m.counters(CoreId(0)).writes_bounced, 1);
        // Still bouncing while the BS entry lives.
        let (t2, ev) = next_event(&mut m, 0, t1 + 1, 1000);
        assert_eq!(ev, MemEvent::StoreBounced { token: st });
        assert!(m.bs_take_bounced_flag(CoreId(1)));
        // Fence completes: BS cleared; the store goes through.
        m.bs_clear_completed(CoreId(1), 1);
        let (_, ev) = next_event(&mut m, 0, t2 + 1, 2000);
        assert_eq!(ev, MemEvent::StoreDone { token: st });
        assert_eq!(m.backdoor_read(a), 9);
        assert!(m.counters(CoreId(0)).bounce_retries >= 2);
    }

    #[test]
    fn order_mode_pushes_write_past_bypass_set() {
        let mut m = ms(2);
        let a = Addr::new(0x340);
        let line = LineAddr::containing(a, 32);
        m.issue_load(0, CoreId(1), a);
        let (t0, _) = next_event(&mut m, 1, 0, 1000);
        m.bs_insert(CoreId(1), line, 0b0001, 1);
        m.set_order_mode(CoreId(0), OrderMode::Order);
        let st = m.issue_store(t0 + 1, CoreId(0), a, 4);
        // First attempt bounces; the retry carries the Order bit and
        // completes, with core 1 kept as a sharer.
        let (t1, ev) = next_event(&mut m, 0, t0 + 1, 1000);
        assert_eq!(ev, MemEvent::StoreBounced { token: st });
        let (_, ev) = next_event(&mut m, 0, t1 + 1, 2000);
        assert_eq!(ev, MemEvent::StoreDone { token: st });
        assert_eq!(m.backdoor_read(a), 4);
        // Core 1's copy was invalidated by the Order.
        let (_, ev) = next_event(&mut m, 1, t1 + 1, 2000);
        assert_eq!(ev, MemEvent::InvSeen { line });
    }

    #[test]
    fn cond_order_true_share_keeps_bouncing_false_share_completes() {
        let mut m = ms(2);
        let a = Addr::new(0x380); // word 0 of its line
        let line = LineAddr::containing(a, 32);
        m.issue_load(0, CoreId(1), a);
        let (t0, _) = next_event(&mut m, 1, 0, 1000);
        // True sharing: BS holds word 0, store writes word 0.
        m.bs_insert(CoreId(1), line, 0b0001, 1);
        m.set_order_mode(CoreId(0), OrderMode::CondOrder);
        let st = m.issue_store(t0 + 1, CoreId(0), a, 3);
        let (t1, ev) = next_event(&mut m, 0, t0 + 1, 1000);
        assert_eq!(ev, MemEvent::StoreBounced { token: st }, "plain first try");
        let (t2, ev) = next_event(&mut m, 0, t1 + 1, 1000);
        assert_eq!(ev, MemEvent::StoreBounced { token: st }, "CO fails on true share");
        // Clear the BS (fence completed): next CO retry completes.
        m.bs_clear_completed(CoreId(1), 1);
        let (_, ev) = next_event(&mut m, 0, t2 + 1, 2000);
        assert_eq!(ev, MemEvent::StoreDone { token: st });

        // False sharing: BS holds word 3 of another line, store to word 0.
        // Drain core 1's stale notifications (the Order invalidation).
        while m.pop_event(CoreId(1)).is_some() {}
        let b = Addr::new(0x3c0);
        let bline = LineAddr::containing(b, 32);
        let ld = m.issue_load(1000, CoreId(1), b);
        let mut t3 = 1000;
        'outer: for t in 1000..3000 {
            m.tick(t);
            while let Some(ev) = m.pop_event(CoreId(1)) {
                if matches!(ev, MemEvent::LoadDone { token, .. } if token == ld) {
                    t3 = t;
                    break 'outer;
                }
            }
        }
        assert!(t3 > 1000, "load must complete");
        m.bs_insert(CoreId(1), bline, 0b1000, 2);
        let st2 = m.issue_store(t3 + 1, CoreId(0), b, 8);
        let (t4, ev) = next_event(&mut m, 0, t3 + 1, 1000);
        assert_eq!(ev, MemEvent::StoreBounced { token: st2 });
        let (_, ev) = next_event(&mut m, 0, t4 + 1, 2000);
        assert_eq!(ev, MemEvent::StoreDone { token: st2 }, "false share completes as Order");
    }

    #[test]
    fn rmw_swap_returns_old_value() {
        let mut m = ms(2);
        let a = Addr::new(0x400);
        m.backdoor_write(a, 11);
        let tok = m.issue_rmw(0, CoreId(0), a, RmwKind::Swap(22));
        let (_, ev) = next_event(&mut m, 0, 0, 1000);
        assert_eq!(ev, MemEvent::RmwDone { token: tok, old: 11 });
        assert_eq!(m.backdoor_read(a), 22);
    }

    #[test]
    fn rmw_cas_failure_leaves_memory_unchanged() {
        let mut m = ms(2);
        let a = Addr::new(0x440);
        m.backdoor_write(a, 1);
        let tok = m.issue_rmw(0, CoreId(0), a, RmwKind::Cas { expect: 0, new: 5 });
        let (_, ev) = next_event(&mut m, 0, 0, 1000);
        assert_eq!(ev, MemEvent::RmwDone { token: tok, old: 1 });
        assert_eq!(m.backdoor_read(a), 1);
    }

    #[test]
    fn loads_coalesce_behind_pending_store() {
        let mut m = ms(2);
        let a = Addr::new(0x480);
        let st = m.issue_store(0, CoreId(0), a, 6);
        let ld = m.issue_load(1, CoreId(0), a.offset(8));
        let (_, ev) = next_event(&mut m, 0, 0, 1000);
        assert_eq!(ev, MemEvent::StoreDone { token: st });
        let ev = m.pop_event(CoreId(0)).expect("coalesced load completes");
        assert_eq!(ev, MemEvent::LoadDone { token: ld, value: 0 });
    }

    #[test]
    fn wee_grt_round_trip() {
        let mut m = ms(2);
        let line = LineAddr::from_raw(10);
        let bank = m.home_bank(line);
        m.wee_register(0, CoreId(0), bank, 1, vec![line]);
        let (_, ev) = next_event(&mut m, 0, 0, 1000);
        assert_eq!(
            ev,
            MemEvent::WeeArmed {
                fence_serial: 1,
                remote_ps: vec![]
            }
        );
        m.wee_register(100, CoreId(1), bank, 2, vec![LineAddr::from_raw(12)]);
        let (_, ev) = next_event(&mut m, 1, 100, 1000);
        assert_eq!(
            ev,
            MemEvent::WeeArmed {
                fence_serial: 2,
                remote_ps: vec![line]
            }
        );
        m.wee_unregister(200, CoreId(0), bank, 1);
    }

    #[test]
    fn contended_writes_serialize_with_busy_nacks() {
        let mut m = ms(4);
        let a = Addr::new(0x500);
        // Two cores write the same line simultaneously.
        let s0 = m.issue_store(0, CoreId(0), a, 1);
        let s1 = m.issue_store(0, CoreId(1), a.offset(8), 2);
        let mut done = 0;
        for t in 0..5000 {
            m.tick(t);
            for c in 0..2 {
                while let Some(ev) = m.pop_event(CoreId(c)) {
                    if matches!(ev, MemEvent::StoreDone { .. }) {
                        done += 1;
                    }
                }
            }
            if done == 2 {
                break;
            }
        }
        assert_eq!(done, 2, "both writes must eventually complete");
        assert_eq!(m.backdoor_read(a), 1);
        assert_eq!(m.backdoor_read(a.offset(8)), 2);
        let _ = (s0, s1);
    }

    #[test]
    fn idle_after_quiescing() {
        let mut m = ms(2);
        assert!(m.is_idle());
        m.issue_load(0, CoreId(0), Addr::new(0x40));
        assert!(!m.is_idle());
        let _ = next_event(&mut m, 0, 0, 1000);
        m.tick(5000);
        assert!(m.is_idle());
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    fn dbg_contended() {
        let cfg = MachineConfig::builder().cores(4).build();
        let mut m = MemSystem::new(&cfg);
        let a = Addr::new(0x500);
        let _s0 = m.issue_store(0, CoreId(0), a, 1);
        let _s1 = m.issue_store(0, CoreId(1), a.offset(8), 2);
        for t in 0..2000 {
            m.tick(t);
            for c in 0..2 {
                while let Some(ev) = m.pop_event(CoreId(c)) {
                    eprintln!("t={t} core={c} {ev:?}");
                }
            }
        }
        eprintln!("idle={}", m.is_idle());
    }
}

#[cfg(test)]
mod eviction_tests {
    use super::*;

    /// A machine with a 2-line L1 so evictions are easy to force.
    fn tiny_l1() -> MemSystem {
        let cfg = MachineConfig::builder()
            .cores(2)
            .tweak(|c| {
                c.l1_bytes = 64; // 2 lines
                c.l1_ways = 2;
            })
            .build();
        MemSystem::new(&cfg)
    }

    fn pump(m: &mut MemSystem, from: Cycle, to: Cycle) {
        for t in from..to {
            m.tick(t);
        }
    }

    #[test]
    fn dirty_eviction_writes_back_and_preserves_data() {
        let mut m = tiny_l1();
        // Dirty line A, then evict it by filling the set.
        let a = Addr::new(0x00);
        m.issue_store(0, CoreId(0), a, 77);
        pump(&mut m, 0, 2_000);
        while m.pop_event(CoreId(0)).is_some() {}
        // Two more lines in the same (only) set force A out.
        m.issue_load(2_000, CoreId(0), Addr::new(0x40));
        pump(&mut m, 2_000, 4_000);
        m.issue_load(4_000, CoreId(0), Addr::new(0x80));
        pump(&mut m, 4_000, 8_000);
        // A's dirty data must have reached memory.
        assert_eq!(m.backdoor_read(a), 77, "writeback preserved the value");
        // And an InvSeen/eviction notice reached the core.
        let mut saw_evict = false;
        while let Some(ev) = m.pop_event(CoreId(0)) {
            if matches!(ev, MemEvent::InvSeen { line } if line == LineAddr::from_raw(0)) {
                saw_evict = true;
            }
        }
        assert!(saw_evict, "eviction notified the core for squash safety");
    }

    #[test]
    fn dirty_eviction_with_bs_keeps_node_as_sharer() {
        // Paper §5.1: a dirty line whose address is in the BS writes back
        // with keep-as-sharer, so future writes still bounce.
        let mut m = tiny_l1();
        let a = Addr::new(0x00);
        m.issue_store(0, CoreId(0), a, 5);
        pump(&mut m, 0, 2_000);
        m.bs_insert(CoreId(0), LineAddr::from_raw(0), 1, 1);
        // Evict A (dirty) while its line sits in the BS.
        m.issue_load(2_000, CoreId(0), Addr::new(0x40));
        pump(&mut m, 2_000, 4_000);
        m.issue_load(4_000, CoreId(0), Addr::new(0x80));
        pump(&mut m, 4_000, 8_000);
        while m.pop_event(CoreId(0)).is_some() {}
        // A remote write must still bounce off core 0's BS.
        let tok = m.issue_store(8_000, CoreId(1), a, 9);
        let mut bounced = false;
        for t in 8_000..40_000 {
            m.tick(t);
            while let Some(ev) = m.pop_event(CoreId(1)) {
                if matches!(ev, MemEvent::StoreBounced { token } if token == tok) {
                    bounced = true;
                }
            }
            if bounced {
                break;
            }
        }
        assert!(bounced, "keep-as-sharer preserved the bounce after eviction");
        // Clearing the BS lets the write through.
        m.bs_clear_completed(CoreId(0), 1);
        let mut done = false;
        for t in 40_000..120_000 {
            m.tick(t);
            while let Some(ev) = m.pop_event(CoreId(1)) {
                if matches!(ev, MemEvent::StoreDone { token } if token == tok) {
                    done = true;
                }
            }
            if done {
                break;
            }
        }
        assert!(done);
        assert_eq!(m.backdoor_read(a), 9);
    }

    #[test]
    fn clean_eviction_is_silent_but_still_notifies_core() {
        let mut m = tiny_l1();
        let traffic_probe = |m: &MemSystem| m.traffic().messages;
        m.issue_load(0, CoreId(0), Addr::new(0x00));
        pump(&mut m, 0, 2_000);
        m.issue_load(2_000, CoreId(0), Addr::new(0x40));
        pump(&mut m, 2_000, 4_000);
        let before = traffic_probe(&m);
        m.issue_load(4_000, CoreId(0), Addr::new(0x80)); // evicts a clean line
        pump(&mut m, 4_000, 8_000);
        let after = traffic_probe(&m);
        // GetS + DataE + Unblock: exactly three messages — no writeback.
        assert_eq!(after - before, 3, "clean eviction sends no PutM");
    }

    #[test]
    fn load_hit_invalidated_before_completion_is_refetched() {
        // A load hit is scheduled, the line is invalidated in the window,
        // and the load must transparently become a miss with fresh data.
        let cfg = MachineConfig::builder().cores(2).build();
        let mut m = MemSystem::new(&cfg);
        let a = Addr::new(0x40);
        m.issue_load(0, CoreId(0), a);
        pump(&mut m, 0, 2_000);
        while m.pop_event(CoreId(0)).is_some() {}
        // Remote store invalidates; local load issued the same cycle hits
        // the stale line but must observe a coherent value either way.
        let st = m.issue_store(2_000, CoreId(1), a, 3);
        let ld = m.issue_load(2_000, CoreId(0), a);
        let mut got = None;
        let mut store_done = false;
        for t in 2_000..40_000 {
            m.tick(t);
            while let Some(ev) = m.pop_event(CoreId(0)) {
                if let MemEvent::LoadDone { token, value } = ev {
                    if token == ld {
                        got = Some(value);
                    }
                }
            }
            while let Some(ev) = m.pop_event(CoreId(1)) {
                if matches!(ev, MemEvent::StoreDone { token } if token == st) {
                    store_done = true;
                }
            }
            if got.is_some() && store_done {
                break;
            }
        }
        let v = got.expect("load completed");
        assert!(v == 0 || v == 3, "value is one of the coherent values");
        assert_eq!(m.backdoor_read(a), 3);
    }
}
