//! Property-based tests of the coherence substrate: the memory system
//! must behave like a single serializable memory no matter how requests
//! interleave.
//!
//! Runs on the in-repo property harness (`asymfence_common::prop`):
//! failing case seeds persist to `tests/regressions/prop_coherence.seeds`
//! and replay before fresh cases. `ASF_PROP_CASES` / `ASF_PROP_SEED`
//! override the budget and base seed.

use asymfence_coherence::mem::{MemEvent, MemSystem};
use asymfence_coherence::RmwKind;
use asymfence_common::config::MachineConfig;
use asymfence_common::ids::{Addr, CoreId};
use asymfence_common::prop::{bools, check, pairs, triples, u64s, usizes, vecs, Config};

fn cfg(cores: usize) -> MachineConfig {
    MachineConfig::builder().cores(cores).build()
}

fn prop_cfg(cases: u32) -> Config {
    Config::from_env(cases).regressions("tests/regressions/prop_coherence.seeds")
}

/// Drives the memory system until idle, collecting events per core.
fn run_to_idle(
    ms: &mut MemSystem,
    start: u64,
    limit: u64,
) -> Result<Vec<(usize, MemEvent)>, String> {
    let mut events = Vec::new();
    for t in start..start + limit {
        ms.tick(t);
        for c in 0..ms.config().num_cores {
            while let Some(ev) = ms.pop_event(CoreId(c)) {
                events.push((c, ev));
            }
        }
        if ms.is_idle() {
            break;
        }
    }
    if !ms.is_idle() {
        return Err("memory system must quiesce".into());
    }
    Ok(events)
}

/// Single-core sequential semantics: a serial run of stores and loads
/// matches a simple map model.
#[test]
fn single_core_matches_memory_model() {
    let gen = vecs(triples(u64s(0, 15), u64s(0, 999), bools()), 1, 40);
    check("single_core_matches_memory_model", &prop_cfg(24), &gen, |ops| {
        let mut ms = MemSystem::new(&cfg(2));
        let mut model = std::collections::HashMap::new();
        let mut t = 0u64;
        for &(slot, value, is_store) in ops {
            let addr = Addr::new(slot * 8);
            if is_store {
                ms.issue_store(t, CoreId(0), addr, value);
                let evs = run_to_idle(&mut ms, t, 5_000)?;
                let store_done = evs
                    .iter()
                    .any(|(_, e)| matches!(e, MemEvent::StoreDone { .. }));
                if !store_done {
                    return Err("store did not complete".into());
                }
                model.insert(slot, value);
            } else {
                let tok = ms.issue_load(t, CoreId(0), addr);
                let evs = run_to_idle(&mut ms, t, 5_000)?;
                let got = evs.iter().find_map(|(_, e)| match e {
                    MemEvent::LoadDone { token, value } if *token == tok => Some(*value),
                    _ => None,
                });
                let want = Some(*model.get(&slot).unwrap_or(&0));
                if got != want {
                    return Err(format!("load of slot {slot}: got {got:?}, want {want:?}"));
                }
            }
            t += 5_000;
        }
        Ok(())
    });
}

/// Write serialization: concurrent stores from many cores to random
/// addresses leave every word holding one of the values written to it.
#[test]
fn concurrent_stores_serialize() {
    let gen = vecs(triples(usizes(0, 3), u64s(0, 5), u64s(1, 999)), 4, 32);
    check("concurrent_stores_serialize", &prop_cfg(24), &gen, |writes| {
        let mut ms = MemSystem::new(&cfg(4));
        let mut per_core_busy = [false; 4];
        // Issue at most one store per core at a time (TSO write buffer).
        let mut t = 0u64;
        let mut written: std::collections::HashMap<u64, Vec<u64>> =
            std::collections::HashMap::new();
        for &(core, slot, value) in writes {
            if per_core_busy[core] {
                // Drain everything before reusing the core.
                run_to_idle(&mut ms, t, 200_000)?;
                per_core_busy = [false; 4];
                t += 200_000;
            }
            ms.issue_store(t, CoreId(core), Addr::new(slot * 8), value);
            per_core_busy[core] = true;
            written.entry(slot).or_default().push(value);
            t += 3; // slight stagger
        }
        run_to_idle(&mut ms, t, 400_000)?;
        for (slot, values) in &written {
            let final_v = ms.backdoor_read(Addr::new(slot * 8));
            if !values.contains(&final_v) {
                return Err(format!("slot {slot} holds {final_v}, not among {values:?}"));
            }
        }
        Ok(())
    });
}

/// Atomicity: N concurrent fetch-add(1) streams to one word sum exactly.
#[test]
fn rmw_add_is_atomic() {
    check("rmw_add_is_atomic", &prop_cfg(24), &u64s(1, 5), |&per_core| {
        let cores = 4usize;
        let mut ms = MemSystem::new(&cfg(cores));
        let addr = Addr::new(0x40);
        let mut remaining: Vec<u64> = vec![per_core; cores];
        let mut outstanding: Vec<Option<u64>> = vec![None; cores];
        let mut done = 0;
        let mut t = 0u64;
        while done < cores {
            for c in 0..cores {
                if outstanding[c].is_none() && remaining[c] > 0 {
                    outstanding[c] = Some(ms.issue_rmw(t, CoreId(c), addr, RmwKind::Add(1)));
                }
            }
            ms.tick(t);
            for c in 0..cores {
                while let Some(ev) = ms.pop_event(CoreId(c)) {
                    if let MemEvent::RmwDone { token, .. } = ev {
                        if outstanding[c] == Some(token) {
                            outstanding[c] = None;
                            remaining[c] -= 1;
                            if remaining[c] == 0 {
                                done += 1;
                            }
                        }
                    }
                }
            }
            t += 1;
            if t >= 2_000_000 {
                return Err("RMW streams must make progress".into());
            }
        }
        run_to_idle(&mut ms, t, 100_000)?;
        let got = ms.backdoor_read(addr);
        let want = per_core * cores as u64;
        if got != want {
            return Err(format!("sum {got}, want {want}"));
        }
        Ok(())
    });
}

/// A Bypass-Set entry always bounces conflicting writes until cleared,
/// and the write always completes afterwards.
#[test]
fn bounce_then_complete() {
    let gen = pairs(u64s(0, 31), u64s(1, 99));
    check("bounce_then_complete", &prop_cfg(24), &gen, |&(slot, value)| {
        let mut ms = MemSystem::new(&cfg(2));
        let addr = Addr::new(slot * 8);
        let line = asymfence_common::ids::LineAddr::containing(addr, 32);
        // Core 1 reads and protects the line.
        ms.issue_load(0, CoreId(1), addr);
        run_to_idle(&mut ms, 0, 10_000)?;
        ms.bs_insert(CoreId(1), line, 1, 1);
        // Core 0 writes: must bounce at least once.
        let tok = ms.issue_store(10_000, CoreId(0), addr, value);
        let mut bounced = false;
        for t in 10_000..60_000 {
            ms.tick(t);
            while let Some(ev) = ms.pop_event(CoreId(0)) {
                if matches!(ev, MemEvent::StoreBounced { token } if token == tok) {
                    bounced = true;
                }
            }
            if bounced {
                break;
            }
        }
        if !bounced {
            return Err("BS must bounce the conflicting write".into());
        }
        // Clear the BS: the store completes and the value lands.
        ms.bs_clear_completed(CoreId(1), 1);
        let mut completed = false;
        for t in 60_000..200_000 {
            ms.tick(t);
            while let Some(ev) = ms.pop_event(CoreId(0)) {
                if matches!(ev, MemEvent::StoreDone { token } if token == tok) {
                    completed = true;
                }
            }
            while ms.pop_event(CoreId(1)).is_some() {}
            if completed && ms.is_idle() {
                break;
            }
        }
        if !completed {
            return Err("store must complete after BS clear".into());
        }
        let got = ms.backdoor_read(addr);
        if got != value {
            return Err(format!("memory holds {got}, want {value}"));
        }
        Ok(())
    });
}
