//! Property-based tests of the coherence substrate: the memory system
//! must behave like a single serializable memory no matter how requests
//! interleave.

use proptest::prelude::*;

use asymfence_coherence::mem::{MemEvent, MemSystem};
use asymfence_coherence::RmwKind;
use asymfence_common::config::MachineConfig;
use asymfence_common::ids::{Addr, CoreId};

fn cfg(cores: usize) -> MachineConfig {
    MachineConfig::builder().cores(cores).build()
}

/// Drives the memory system until idle, collecting events per core.
fn run_to_idle(ms: &mut MemSystem, start: u64, limit: u64) -> Vec<(usize, MemEvent)> {
    let mut events = Vec::new();
    for t in start..start + limit {
        ms.tick(t);
        for c in 0..ms.config().num_cores {
            while let Some(ev) = ms.pop_event(CoreId(c)) {
                events.push((c, ev));
            }
        }
        if ms.is_idle() {
            break;
        }
    }
    assert!(ms.is_idle(), "memory system must quiesce");
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-core sequential semantics: a serial run of stores and loads
    /// matches a simple map model.
    #[test]
    fn single_core_matches_memory_model(
        ops in prop::collection::vec((0u64..16, 0u64..1000, prop::bool::ANY), 1..40)
    ) {
        let mut ms = MemSystem::new(&cfg(2));
        let mut model = std::collections::HashMap::new();
        let mut t = 0u64;
        for (slot, value, is_store) in ops {
            let addr = Addr::new(slot * 8);
            if is_store {
                ms.issue_store(t, CoreId(0), addr, value);
                let evs = run_to_idle(&mut ms, t, 5_000);
                let store_done = evs.iter().any(|(_, e)| matches!(e, MemEvent::StoreDone { .. }));
                prop_assert!(store_done);
                model.insert(slot, value);
            } else {
                let tok = ms.issue_load(t, CoreId(0), addr);
                let evs = run_to_idle(&mut ms, t, 5_000);
                let got = evs.iter().find_map(|(_, e)| match e {
                    MemEvent::LoadDone { token, value } if *token == tok => Some(*value),
                    _ => None,
                });
                prop_assert_eq!(got, Some(*model.get(&slot).unwrap_or(&0)));
            }
            t += 5_000;
        }
    }

    /// Write serialization: concurrent stores from many cores to random
    /// addresses leave every word holding one of the values written to it.
    #[test]
    fn concurrent_stores_serialize(
        writes in prop::collection::vec((0usize..4, 0u64..6, 1u64..1000), 4..32)
    ) {
        let mut ms = MemSystem::new(&cfg(4));
        let mut per_core_busy = [false; 4];
        // Issue at most one store per core at a time (TSO write buffer).
        let mut t = 0u64;
        let mut written: std::collections::HashMap<u64, Vec<u64>> = std::collections::HashMap::new();
        for (core, slot, value) in writes {
            if per_core_busy[core] {
                // Drain everything before reusing the core.
                run_to_idle(&mut ms, t, 200_000);
                per_core_busy = [false; 4];
                t += 200_000;
            }
            ms.issue_store(t, CoreId(core), Addr::new(slot * 8), value);
            per_core_busy[core] = true;
            written.entry(slot).or_default().push(value);
            t += 3; // slight stagger
        }
        run_to_idle(&mut ms, t, 400_000);
        for (slot, values) in &written {
            let final_v = ms.backdoor_read(Addr::new(slot * 8));
            prop_assert!(
                values.contains(&final_v),
                "slot {slot} holds {final_v}, not among {values:?}"
            );
        }
    }

    /// Atomicity: N concurrent fetch-add(1) streams to one word sum
    /// exactly.
    #[test]
    fn rmw_add_is_atomic(per_core in 1u64..6) {
        let cores = 4usize;
        let mut ms = MemSystem::new(&cfg(cores));
        let addr = Addr::new(0x40);
        let mut remaining: Vec<u64> = vec![per_core; cores];
        let mut outstanding: Vec<Option<u64>> = vec![None; cores];
        let mut done = 0;
        let mut t = 0u64;
        while done < cores {
            for c in 0..cores {
                if outstanding[c].is_none() && remaining[c] > 0 {
                    outstanding[c] = Some(ms.issue_rmw(t, CoreId(c), addr, RmwKind::Add(1)));
                }
            }
            ms.tick(t);
            for c in 0..cores {
                while let Some(ev) = ms.pop_event(CoreId(c)) {
                    if let MemEvent::RmwDone { token, .. } = ev {
                        if outstanding[c] == Some(token) {
                            outstanding[c] = None;
                            remaining[c] -= 1;
                            if remaining[c] == 0 {
                                done += 1;
                            }
                        }
                    }
                }
            }
            t += 1;
            prop_assert!(t < 2_000_000, "RMW streams must make progress");
        }
        run_to_idle(&mut ms, t, 100_000);
        prop_assert_eq!(ms.backdoor_read(addr), per_core * cores as u64);
    }

    /// A Bypass-Set entry always bounces conflicting writes until cleared,
    /// and the write always completes afterwards.
    #[test]
    fn bounce_then_complete(slot in 0u64..32, value in 1u64..100) {
        let mut ms = MemSystem::new(&cfg(2));
        let addr = Addr::new(slot * 8);
        let line = asymfence_common::ids::LineAddr::containing(addr, 32);
        // Core 1 reads and protects the line.
        ms.issue_load(0, CoreId(1), addr);
        run_to_idle(&mut ms, 0, 10_000);
        ms.bs_insert(CoreId(1), line, 1, 1);
        // Core 0 writes: must bounce at least once.
        let tok = ms.issue_store(10_000, CoreId(0), addr, value);
        let mut bounced = false;
        for t in 10_000..60_000 {
            ms.tick(t);
            while let Some(ev) = ms.pop_event(CoreId(0)) {
                if matches!(ev, MemEvent::StoreBounced { token } if token == tok) {
                    bounced = true;
                }
            }
            if bounced {
                break;
            }
        }
        prop_assert!(bounced, "BS must bounce the conflicting write");
        // Clear the BS: the store completes and the value lands.
        ms.bs_clear_completed(CoreId(1), 1);
        let mut completed = false;
        for t in 60_000..200_000 {
            ms.tick(t);
            while let Some(ev) = ms.pop_event(CoreId(0)) {
                if matches!(ev, MemEvent::StoreDone { token } if token == tok) {
                    completed = true;
                }
            }
            while ms.pop_event(CoreId(1)).is_some() {}
            if completed && ms.is_idle() {
                break;
            }
        }
        prop_assert!(completed);
        prop_assert_eq!(ms.backdoor_read(addr), value);
    }
}
