//! Asymmetric-fence runtime for real hardware.
//!
//! The rest of the workspace *simulates* the paper's asymmetric fence
//! designs; this crate *ships* the same heavy/light split as a usable
//! Rust library. The hot side of a synchronization protocol issues
//! [`light_fence`] — a compiler fence, zero instructions — and the rare
//! side issues [`heavy_fence`], backed by
//! `membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED)` on Linux (probed and
//! registered once, see [`backend`]) and degrading to `fence(SeqCst)`
//! on both sides anywhere else ([`FenceBackend::SeqCstFallback`]).
//!
//! # Design correspondence
//!
//! Protocols are parameterized over a [`FencePair`], which assigns a
//! real fence to each of the two static roles the simulated designs
//! annotate:
//!
//! | pair | critical (hot) site | non-critical (rare) site | simulated design |
//! |------|---------------------|--------------------------|------------------|
//! | [`AllHeavy`] | heavy | heavy | S+ (all strong) |
//! | [`Asymmetric`] | light | heavy | W+ / WS+ (weak hot side) |
//! | [`HwSeqCst`] | `fence(SeqCst)` | `fence(SeqCst)` | S+ (portable control) |
//!
//! Two of the simulator's workloads are ported natively on top of the
//! pair: the THE work-stealing deque ([`TheDeque`]) and the TLRW STM
//! ([`TlrwStm`]), plus the mutual-exclusion/litmus kernels
//! ([`dekker`], [`sb_hammer`], [`mp_hammer`]) used by the
//! `native_bench` cross-validation harness and the litmus tests.
//!
//! ```
//! use asymfence_native::{backend, Asymmetric, TheDeque};
//!
//! println!("heavy fence backed by: {}", backend().label());
//! let q = TheDeque::new(16, Asymmetric);
//! q.push(1);
//! q.push(2);
//! assert_eq!(q.take(), Some(2)); // owner pays only a compiler fence
//! assert_eq!(q.steal(), Some(1)); // thief pays the membarrier
//! ```
#![deny(missing_docs)]

mod backend;
mod deque;
mod kernels;
mod pair;
mod stm;

pub use backend::{backend, heavy_fence, heavy_fence_cost_ns, light_fence, FenceBackend};
pub use deque::TheDeque;
pub use kernels::{dekker, mp_hammer, peterson, sb_hammer, KernelRun};
pub use pair::{AllHeavy, Asymmetric, C11Fence, C11Pair, FencePair, HwSeqCst, PairKind};
pub use stm::{Conflict, TlrwStm, Tx};
