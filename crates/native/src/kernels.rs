//! Native mutual-exclusion and litmus kernels: the store→fence→load
//! windows the simulator studies, run on real threads.
//!
//! Each kernel reports how many sequential-consistency (or
//! mutual-exclusion) violations it observed; a sound [`FencePair`] must
//! report zero. The asymmetric assignments mirror the simulated
//! workloads: the hot thread's fence site is *critical* (light), the
//! peer's is *non-critical* (heavy).

use crate::pair::FencePair;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Counts from one kernel run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelRun {
    /// Protocol operations completed (entries, rounds, …).
    pub ops: u64,
    /// Sequential-consistency / mutual-exclusion violations observed.
    /// Zero for every sound fence pair.
    pub violations: u64,
}

fn spin_wait(mut tries: u32, cond: impl Fn() -> bool) {
    while !cond() {
        tries += 1;
        if tries.is_multiple_of(64) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Two-thread Dekker mutual exclusion, `iters` critical-section entries
/// per thread. Thread 0's entry fence is the *critical* site, thread
/// 1's the *non-critical* one (the simulated dekker's asymmetric
/// annotation). Violations are witnessed inside the critical section.
///
/// ```
/// use asymfence_native::{dekker, Asymmetric};
/// assert_eq!(dekker(Asymmetric, 50).violations, 0);
/// ```
pub fn dekker<P: FencePair>(pair: P, iters: u64) -> KernelRun {
    struct Shared {
        flag: [AtomicU32; 2],
        turn: AtomicU32,
        owner: AtomicU32,
    }
    let s = Shared {
        flag: [AtomicU32::new(0), AtomicU32::new(0)],
        turn: AtomicU32::new(0),
        owner: AtomicU32::new(u32::MAX),
    };
    let run = |me: usize| {
        let other = 1 - me;
        let entry_fence = || {
            if me == 0 {
                pair.critical()
            } else {
                pair.noncritical()
            }
        };
        let mut violations = 0u64;
        for _ in 0..iters {
            s.flag[me].store(1, Ordering::Relaxed);
            entry_fence();
            while s.flag[other].load(Ordering::Relaxed) == 1 {
                if s.turn.load(Ordering::Relaxed) != me as u32 {
                    s.flag[me].store(0, Ordering::Relaxed);
                    spin_wait(0, || s.turn.load(Ordering::Relaxed) == me as u32);
                    s.flag[me].store(1, Ordering::Relaxed);
                    entry_fence();
                } else {
                    std::hint::spin_loop();
                }
            }
            // Critical section: we must be alone.
            s.owner.store(me as u32, Ordering::Relaxed);
            for _ in 0..8 {
                if s.owner.load(Ordering::Relaxed) != me as u32 {
                    violations += 1;
                    break;
                }
                std::hint::spin_loop();
            }
            s.turn.store(other as u32, Ordering::Relaxed);
            s.flag[me].store(0, Ordering::Release);
        }
        violations
    };
    let violations = std::thread::scope(|sc| {
        let t1 = sc.spawn(|| run(1));
        run(0) + t1.join().unwrap()
    });
    KernelRun {
        ops: 2 * iters,
        violations,
    }
}

/// Store-buffering (SB) hammer: both threads store their flag, fence,
/// and load the peer's; both loading 0 in one round is the
/// TSO-reorderable outcome every sound pair must forbid. Thread 0 runs
/// the *critical* fence, thread 1 the *non-critical* one. Rounds
/// rendezvous on a sense-reversing barrier so each round is a fresh
/// race.
///
/// ```
/// use asymfence_native::{sb_hammer, Asymmetric};
/// assert_eq!(sb_hammer(Asymmetric, 200).violations, 0);
/// ```
pub fn sb_hammer<P: FencePair>(pair: P, rounds: u64) -> KernelRun {
    let x = AtomicU32::new(0);
    let y = AtomicU32::new(0);
    let arrived = [AtomicU64::new(0), AtomicU64::new(0)];
    let observed = [AtomicU32::new(0), AtomicU32::new(0)];
    let run = |me: usize| {
        let (mine, theirs) = if me == 0 { (&x, &y) } else { (&y, &x) };
        let mut violations = 0u64;
        for round in 1..=rounds {
            mine.store(1, Ordering::Relaxed);
            if me == 0 {
                pair.critical();
            } else {
                pair.noncritical();
            }
            let seen = theirs.load(Ordering::Relaxed);
            observed[me].store(seen, Ordering::Relaxed);
            // Rendezvous (monotonic phase counter, so a slow waiter can
            // never miss a state): both threads are past their load here.
            arrived[me].store(2 * round, Ordering::SeqCst);
            spin_wait(0, || arrived[1 - me].load(Ordering::SeqCst) >= 2 * round);
            if me == 0 {
                if seen == 0 && observed[1].load(Ordering::SeqCst) == 0 {
                    violations += 1;
                }
                x.store(0, Ordering::SeqCst);
                y.store(0, Ordering::SeqCst);
            }
            // Second phase: hold thread 1 until thread 0 judged + reset.
            arrived[me].store(2 * round + 1, Ordering::SeqCst);
            spin_wait(0, || {
                arrived[1 - me].load(Ordering::SeqCst) > 2 * round
            });
        }
        violations
    };
    let violations = std::thread::scope(|sc| {
        let t1 = sc.spawn(|| run(1));
        run(0) + t1.join().unwrap()
    });
    KernelRun {
        ops: rounds,
        violations,
    }
}

/// Two-thread Peterson lock, `iters` critical-section entries per
/// thread — the native twin of the *unannotated* `peterson` kernel the
/// analyzer infers fences for (there is no hand-annotated simulated
/// twin; the placement comes out of `asymfence-analyze`). The inferred
/// WS+ assignment makes thread 0's entry fence the *critical* site and
/// thread 1's the *non-critical* one, which is how the roles are wired
/// here. Violations are witnessed inside the critical section.
///
/// ```
/// use asymfence_native::{peterson, Asymmetric};
/// assert_eq!(peterson(Asymmetric, 50).violations, 0);
/// ```
pub fn peterson<P: FencePair>(pair: P, iters: u64) -> KernelRun {
    struct Shared {
        flag: [AtomicU32; 2],
        turn: AtomicU32,
        owner: AtomicU32,
    }
    let s = Shared {
        flag: [AtomicU32::new(0), AtomicU32::new(0)],
        turn: AtomicU32::new(0),
        owner: AtomicU32::new(u32::MAX),
    };
    let run = |me: usize| {
        let other = 1 - me;
        let mut violations = 0u64;
        for _ in 0..iters {
            s.flag[me].store(1, Ordering::Relaxed);
            s.turn.store(other as u32, Ordering::Relaxed);
            // The inferred site: between the announce stores and the
            // flag[other] read that decides entry.
            if me == 0 {
                pair.critical();
            } else {
                pair.noncritical();
            }
            spin_wait(0, || {
                s.flag[other].load(Ordering::Relaxed) == 0
                    || s.turn.load(Ordering::Relaxed) != other as u32
            });
            // Critical section: we must be alone.
            s.owner.store(me as u32, Ordering::Relaxed);
            for _ in 0..8 {
                if s.owner.load(Ordering::Relaxed) != me as u32 {
                    violations += 1;
                    break;
                }
                std::hint::spin_loop();
            }
            s.flag[me].store(0, Ordering::Release);
        }
        violations
    };
    let violations = std::thread::scope(|sc| {
        let t1 = sc.spawn(|| run(1));
        run(0) + t1.join().unwrap()
    });
    KernelRun {
        ops: 2 * iters,
        violations,
    }
}

/// Message-passing (MP) hammer: the writer publishes `data` then `flag`
/// with the *non-critical* fence between them; the reader spins on
/// `flag` and reads `data` after the *critical* fence. Reading a stale
/// `data` for a fresh `flag` is the violation. The reader acks each
/// round so the writer never runs ahead.
///
/// ```
/// use asymfence_native::{mp_hammer, Asymmetric};
/// assert_eq!(mp_hammer(Asymmetric, 200).violations, 0);
/// ```
pub fn mp_hammer<P: FencePair>(pair: P, rounds: u64) -> KernelRun {
    let data = AtomicU64::new(0);
    let flag = AtomicU64::new(0);
    let ack = AtomicU64::new(0);
    let violations = std::thread::scope(|sc| {
        let reader = sc.spawn(|| {
            let mut violations = 0u64;
            for round in 1..=rounds {
                spin_wait(0, || flag.load(Ordering::Relaxed) >= round);
                pair.critical();
                let d = data.load(Ordering::Relaxed);
                if d < round * 7919 {
                    violations += 1;
                }
                ack.store(round, Ordering::Release);
            }
            violations
        });
        for round in 1..=rounds {
            data.store(round * 7919, Ordering::Relaxed);
            pair.noncritical();
            flag.store(round, Ordering::Relaxed);
            spin_wait(0, || ack.load(Ordering::Acquire) >= round);
        }
        reader.join().unwrap()
    });
    KernelRun {
        ops: rounds,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::{AllHeavy, Asymmetric, HwSeqCst};

    #[test]
    fn dekker_excludes_under_every_pair() {
        assert_eq!(dekker(AllHeavy, 400).violations, 0);
        assert_eq!(dekker(Asymmetric, 400).violations, 0);
        assert_eq!(dekker(HwSeqCst, 400).violations, 0);
    }

    #[test]
    fn sb_forbidden_outcome_never_observed() {
        assert_eq!(sb_hammer(Asymmetric, 500).violations, 0);
        assert_eq!(sb_hammer(AllHeavy, 500).violations, 0);
    }

    #[test]
    fn mp_stale_read_never_observed() {
        assert_eq!(mp_hammer(Asymmetric, 500).violations, 0);
        assert_eq!(mp_hammer(HwSeqCst, 500).violations, 0);
    }

    #[test]
    fn peterson_excludes_under_every_pair() {
        assert_eq!(peterson(AllHeavy, 400).violations, 0);
        assert_eq!(peterson(Asymmetric, 400).violations, 0);
        assert_eq!(peterson(HwSeqCst, 400).violations, 0);
    }

    #[test]
    fn ops_accounting() {
        assert_eq!(dekker(HwSeqCst, 10).ops, 20);
        assert_eq!(sb_hammer(HwSeqCst, 10).ops, 10);
        assert_eq!(mp_hammer(HwSeqCst, 10).ops, 10);
        assert_eq!(peterson(HwSeqCst, 10).ops, 20);
    }
}
