//! Native port of the THE work-stealing deque from
//! `asymfence-workloads`' simulated version, parameterized over a
//! [`FencePair`].
//!
//! The owner's `take` is the hot path: it runs the classic THE
//! store→fence→load window (publish the decremented tail, fence, read
//! the head) with the *critical* fence, so under [`crate::Asymmetric`]
//! the owner never executes a hardware fence. Thieves serialize on a
//! mutex and run the mirrored window (publish the incremented head,
//! fence, read the tail) with the *non-critical* fence — under the
//! membarrier backend the thief's heavy fence is what makes the owner's
//! compiler-only fence sound.
//!
//! One deviation from the simulated port: the simulator models a TSO
//! machine, where the owner's `push` needs no fence between the slot
//! store and the tail store. C11 `Relaxed` makes no such promise, so the
//! native `push` publishes the tail with `Release` and thieves read it
//! with `Acquire`.

use crate::pair::FencePair;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Value stored in an empty slot; pushing it is rejected so a stolen
/// read can never be confused with uninitialized data.
const EMPTY: u64 = u64::MAX;

/// A bounded THE work-stealing deque of `u64` task ids.
///
/// Exactly one thread may call [`push`](TheDeque::push) /
/// [`take`](TheDeque::take) (the owner); any number may call
/// [`steal`](TheDeque::steal). All slots and indices are atomics, so a
/// protocol bug shows up as lost or duplicated tasks (checked by the
/// stress tests), never as undefined behaviour.
///
/// ```
/// use asymfence_native::{Asymmetric, TheDeque};
/// let q = TheDeque::new(8, Asymmetric);
/// assert!(q.push(7));
/// assert_eq!(q.take(), Some(7));
/// assert_eq!(q.steal(), None);
/// ```
pub struct TheDeque<P: FencePair> {
    head: AtomicU64,
    tail: AtomicU64,
    lock: Mutex<()>,
    slots: Box<[AtomicU64]>,
    pair: P,
}

impl<P: FencePair> TheDeque<P> {
    /// An empty deque with room for `capacity` outstanding tasks.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize, pair: P) -> Self {
        assert!(capacity > 0, "deque capacity must be nonzero");
        TheDeque {
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            lock: Mutex::new(()),
            slots: (0..capacity).map(|_| AtomicU64::new(EMPTY)).collect(),
            pair,
        }
    }

    fn slot(&self, index: u64) -> &AtomicU64 {
        &self.slots[index as usize % self.slots.len()]
    }

    /// Owner-only: appends `task` at the tail. Returns false when the
    /// deque is full (conservative: a concurrent steal can only make
    /// room). `task` must not be `u64::MAX`.
    ///
    /// # Panics
    ///
    /// Panics when `task` is the reserved empty marker.
    pub fn push(&self, task: u64) -> bool {
        assert_ne!(task, EMPTY, "u64::MAX is reserved");
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        // A thief's optimistic head increment can transiently pass the
        // tail; treat that (None) as full too — it only costs a retry.
        match t.checked_sub(h) {
            Some(live) if live < self.slots.len() as u64 => {}
            _ => return false,
        }
        self.slot(t).store(task, Ordering::Relaxed);
        // Publish: pairs with the Acquire tail load in `steal`, making
        // the slot store visible before the slot becomes stealable.
        self.tail.store(t + 1, Ordering::Release);
        true
    }

    /// Owner-only: pops from the tail. This is the THE fast path —
    /// store the decremented tail, *critical* fence, load the head — and
    /// falls back to the thief lock only when the two meet on the last
    /// task.
    pub fn take(&self) -> Option<u64> {
        let t = self.tail.load(Ordering::Relaxed);
        if t == 0 {
            return None;
        }
        let t = t - 1;
        self.tail.store(t, Ordering::Relaxed);
        self.pair.critical();
        let h = self.head.load(Ordering::Relaxed);
        if h <= t {
            // More than one task, or we won the race for the last one:
            // thieves that saw our tail store will back off.
            return Some(self.slot(t).load(Ordering::Relaxed));
        }
        // Conflict on the last task: restore, then retry under the
        // thief lock where head is stable.
        self.tail.store(t + 1, Ordering::Relaxed);
        let _guard = self.lock.lock().unwrap();
        let h = self.head.load(Ordering::Relaxed);
        if h <= t {
            self.tail.store(t, Ordering::Relaxed);
            Some(self.slot(t).load(Ordering::Relaxed))
        } else {
            None
        }
    }

    /// Thief path: steals from the head. Serializes thieves on the lock,
    /// then runs the mirrored window — store the incremented head,
    /// *non-critical* fence, load the tail — so either the owner's take
    /// sees the new head or this steal sees the owner's new tail (the
    /// Dekker property the fence pair guarantees).
    pub fn steal(&self) -> Option<u64> {
        let _guard = self.lock.lock().unwrap();
        let h = self.head.load(Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Relaxed);
        self.pair.noncritical();
        let t = self.tail.load(Ordering::Acquire);
        if h + 1 > t {
            self.head.store(h, Ordering::Relaxed); // lost the race: undo
            return None;
        }
        Some(self.slot(h).load(Ordering::Relaxed))
    }

    /// Tasks currently in the deque, as seen by a racy observer.
    pub fn len(&self) -> usize {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        t.saturating_sub(h) as usize
    }

    /// True when [`len`](TheDeque::len) observes no tasks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::{AllHeavy, Asymmetric, HwSeqCst};
    use std::sync::atomic::AtomicBool;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let q = TheDeque::new(8, Asymmetric);
        assert!(q.is_empty());
        for task in [10, 11, 12] {
            assert!(q.push(task));
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.take(), Some(12));
        assert_eq!(q.steal(), Some(10));
        assert_eq!(q.take(), Some(11));
        assert_eq!(q.take(), None);
        assert_eq!(q.steal(), None);
    }

    #[test]
    fn push_rejects_overflow() {
        let q = TheDeque::new(2, AllHeavy);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(!q.push(3));
        assert_eq!(q.steal(), Some(1));
        assert!(q.push(3));
    }

    /// Two-thread stress: every pushed task is taken or stolen exactly
    /// once. Catches lost/duplicated tasks across the fence window.
    fn stress<P: FencePair>(pair: P, tasks: u64) {
        let q = TheDeque::new(64, pair);
        let done = AtomicBool::new(false);
        let (owner_sum, thief_sum) = std::thread::scope(|s| {
            let thief = s.spawn(|| {
                let mut sum = 0u64;
                while !done.load(Ordering::Acquire) {
                    match q.steal() {
                        Some(v) => sum += v,
                        None => std::thread::yield_now(),
                    }
                }
                while let Some(v) = q.steal() {
                    sum += v;
                }
                sum
            });
            let mut sum = 0u64;
            let mut next = 1u64;
            while next <= tasks {
                let burst = (tasks - next + 1).min(13);
                for _ in 0..burst {
                    if q.push(next) {
                        next += 1;
                    } else {
                        break;
                    }
                }
                for _ in 0..burst / 2 {
                    if let Some(v) = q.take() {
                        sum += v;
                    }
                }
            }
            while let Some(v) = q.take() {
                sum += v;
            }
            done.store(true, Ordering::Release);
            (sum, thief.join().unwrap())
        });
        assert_eq!(owner_sum + thief_sum, tasks * (tasks + 1) / 2);
    }

    #[test]
    fn stress_all_pairs() {
        stress(AllHeavy, 2_000);
        stress(Asymmetric, 2_000);
        stress(HwSeqCst, 2_000);
    }
}
