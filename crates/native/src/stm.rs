//! Native port of the TLRW (read/write-lock) STM from
//! `asymfence-workloads`' simulated version, parameterized over a
//! [`FencePair`].
//!
//! TLRW's read barrier is the asymmetric hot path: announce the reader
//! flag, *critical* fence, check the writer word. The write barrier is
//! the rare side: acquire the writer word, *non-critical* fence, scan
//! every reader flag. Under [`crate::Asymmetric`] with the membarrier
//! backend a read-only transaction therefore executes zero hardware
//! fences — the writer's membarrier is what makes the reader's
//! store→load window sound (the paper's motivating example).
//!
//! Writes are buffered in the transaction and applied at commit (lazy
//! versioning), so an abort releases locks without an undo log.

use crate::pair::FencePair;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Spins allowed on a contended lock word before giving up, mirroring
/// the simulated port's `BARRIER_PATIENCE`.
const BARRIER_PATIENCE: u32 = 3;

/// A conflicting lock word was still held after the patience window of
/// re-checks; the transaction must abort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conflict;

struct TVar {
    /// One visible-reader flag per thread (TLRW's read-lock bytes).
    readers: Box<[AtomicU32]>,
    /// Owning writer id + 1, or 0 when write-unlocked.
    writer: AtomicU32,
    data: AtomicU64,
}

/// A fixed array of transactional `u64` locations guarded by per-thread
/// read flags and a writer word, TLRW-style.
///
/// ```
/// use asymfence_native::{Asymmetric, TlrwStm};
/// let stm = TlrwStm::new(4, 2, Asymmetric);
/// let (sum, _aborts) = stm.run(0, |tx| {
///     let a = tx.read(0)?;
///     tx.write(1, a + 1)?;
///     tx.read(1)
/// });
/// assert_eq!(sum, 1);
/// assert_eq!(stm.peek(1), 1);
/// ```
pub struct TlrwStm<P: FencePair> {
    locs: Box<[TVar]>,
    threads: usize,
    pair: P,
}

impl<P: FencePair> TlrwStm<P> {
    /// `locations` zero-initialized cells shared by `threads` threads
    /// (thread ids `0..threads`).
    ///
    /// # Panics
    ///
    /// Panics when either count is 0.
    pub fn new(locations: usize, threads: usize, pair: P) -> Self {
        assert!(locations > 0 && threads > 0);
        TlrwStm {
            locs: (0..locations)
                .map(|_| TVar {
                    readers: (0..threads).map(|_| AtomicU32::new(0)).collect(),
                    writer: AtomicU32::new(0),
                    data: AtomicU64::new(0),
                })
                .collect(),
            threads,
            pair,
        }
    }

    /// Number of transactional locations.
    pub fn locations(&self) -> usize {
        self.locs.len()
    }

    /// Non-transactional read for checking results between phases.
    pub fn peek(&self, loc: usize) -> u64 {
        self.locs[loc].data.load(Ordering::Acquire)
    }

    /// Starts a transaction for thread `tid`. Prefer [`run`](Self::run),
    /// which retries conflicts with backoff.
    ///
    /// # Panics
    ///
    /// Panics when `tid` is out of range.
    pub fn begin(&self, tid: usize) -> Tx<'_, P> {
        assert!(tid < self.threads, "thread id out of range");
        Tx {
            stm: self,
            tid,
            read_set: Vec::new(),
            write_set: Vec::new(),
        }
    }

    /// Runs `body` as a transaction, retrying on [`Conflict`] with
    /// exponential spin backoff. Returns the committed result and the
    /// number of aborted attempts.
    pub fn run<R>(
        &self,
        tid: usize,
        mut body: impl FnMut(&mut Tx<'_, P>) -> Result<R, Conflict>,
    ) -> (R, u64) {
        let mut aborts = 0u64;
        loop {
            let mut tx = self.begin(tid);
            match body(&mut tx) {
                Ok(r) => {
                    tx.commit();
                    return (r, aborts);
                }
                Err(Conflict) => {
                    drop(tx); // releases every held lock
                    aborts += 1;
                    for _ in 0..(1u32 << aborts.min(6)) * (tid as u32 + 1) {
                        std::hint::spin_loop();
                    }
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// An in-flight transaction; dropping it without
/// [`commit`](Tx::commit) aborts (releases all locks, applies nothing).
pub struct Tx<'s, P: FencePair> {
    stm: &'s TlrwStm<P>,
    tid: usize,
    read_set: Vec<usize>,
    write_set: Vec<(usize, u64)>,
}

impl<P: FencePair> Tx<'_, P> {
    fn wid(&self) -> u32 {
        self.tid as u32 + 1
    }

    /// Transactional read. The TLRW read barrier: publish this thread's
    /// reader flag, *critical* fence, then check the writer word (a few
    /// patience re-checks before conceding a [`Conflict`]).
    pub fn read(&mut self, loc: usize) -> Result<u64, Conflict> {
        if let Some(&(_, v)) = self.write_set.iter().rev().find(|&&(l, _)| l == loc) {
            return Ok(v);
        }
        let cell = &self.stm.locs[loc];
        if self.read_set.contains(&loc) {
            return Ok(cell.data.load(Ordering::Relaxed));
        }
        cell.readers[self.tid].store(1, Ordering::Relaxed);
        self.stm.pair.critical();
        for _ in 0..=BARRIER_PATIENCE {
            // Acquire pairs with the committing writer's Release of the
            // writer word, so the data load below can't be hoisted past
            // this check (the fence pair only covers the st->ld window).
            let w = cell.writer.load(Ordering::Acquire);
            if w == 0 || w == self.wid() {
                self.read_set.push(loc);
                return Ok(cell.data.load(Ordering::Relaxed));
            }
            std::hint::spin_loop();
        }
        cell.readers[self.tid].store(0, Ordering::Relaxed);
        Err(Conflict)
    }

    /// Transactional write (buffered until commit). The TLRW write
    /// barrier: acquire the writer word, *non-critical* fence, then scan
    /// every other thread's reader flag; any survivor past the patience
    /// window is a [`Conflict`].
    pub fn write(&mut self, loc: usize, value: u64) -> Result<(), Conflict> {
        if self.write_set.iter().any(|&(l, _)| l == loc) {
            self.write_set.push((loc, value));
            return Ok(());
        }
        let cell = &self.stm.locs[loc];
        let mut acquired = false;
        for _ in 0..=BARRIER_PATIENCE {
            match cell
                .writer
                .compare_exchange(0, self.wid(), Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    acquired = true;
                    break;
                }
                Err(w) if w == self.wid() => {
                    acquired = true;
                    break;
                }
                Err(_) => std::hint::spin_loop(),
            }
        }
        if !acquired {
            return Err(Conflict);
        }
        self.stm.pair.noncritical();
        // Our own reader flag (an upgrade) doesn't block us.
        for (tid, flag) in cell.readers.iter().enumerate() {
            if tid == self.tid {
                continue;
            }
            let mut patience = 0;
            while flag.load(Ordering::Relaxed) != 0 {
                patience += 1;
                if patience > BARRIER_PATIENCE {
                    cell.writer.store(0, Ordering::Release);
                    return Err(Conflict);
                }
                std::hint::spin_loop();
            }
        }
        self.write_set.push((loc, value));
        Ok(())
    }

    /// Commits: *non-critical* fence, apply the buffered writes, then
    /// release every lock (writes become visible no later than the
    /// releases).
    pub fn commit(mut self) {
        self.stm.pair.noncritical();
        for &(loc, v) in &self.write_set {
            self.stm.locs[loc].data.store(v, Ordering::Relaxed);
        }
        self.release();
    }

    fn release(&mut self) {
        for &(loc, _) in &self.write_set {
            let cell = &self.stm.locs[loc];
            if cell.writer.load(Ordering::Relaxed) == self.wid() {
                cell.writer.store(0, Ordering::Release);
            }
        }
        for &loc in &self.read_set {
            self.stm.locs[loc].readers[self.tid].store(0, Ordering::Release);
        }
        self.write_set.clear();
        self.read_set.clear();
    }
}

impl<P: FencePair> Drop for Tx<'_, P> {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::{AllHeavy, Asymmetric, HwSeqCst};

    #[test]
    fn read_your_own_write_and_commit() {
        let stm = TlrwStm::new(3, 2, Asymmetric);
        let mut tx = stm.begin(0);
        tx.write(2, 9).unwrap();
        assert_eq!(tx.read(2).unwrap(), 9);
        assert_eq!(stm.peek(2), 0); // lazy: nothing visible yet
        tx.commit();
        assert_eq!(stm.peek(2), 9);
    }

    #[test]
    fn abort_on_drop_releases_locks() {
        let stm = TlrwStm::new(2, 2, AllHeavy);
        {
            let mut tx = stm.begin(0);
            tx.write(0, 5).unwrap();
            tx.read(1).unwrap();
        } // dropped uncommitted
        assert_eq!(stm.peek(0), 0);
        let mut tx = stm.begin(1);
        assert_eq!(tx.read(0).unwrap(), 0); // not blocked by thread 0
        tx.write(1, 1).unwrap();
        tx.commit();
    }

    #[test]
    fn writer_blocks_reader_into_conflict() {
        let stm = TlrwStm::new(1, 2, HwSeqCst);
        let mut writer = stm.begin(0);
        writer.write(0, 1).unwrap();
        let mut reader = stm.begin(1);
        assert_eq!(reader.read(0), Err(Conflict));
        writer.commit();
        assert_eq!(reader.read(0), Ok(1));
    }

    /// Concurrent increments of one hot counter must not lose updates.
    fn counter_stress<P: FencePair>(pair: P, per_thread: u64) {
        let stm = TlrwStm::new(2, 2, pair);
        std::thread::scope(|s| {
            for tid in 0..2 {
                let stm = &stm;
                s.spawn(move || {
                    for _ in 0..per_thread {
                        stm.run(tid, |tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(stm.peek(0), 2 * per_thread);
    }

    #[test]
    fn counter_stress_all_pairs() {
        counter_stress(AllHeavy, 300);
        counter_stress(Asymmetric, 300);
        counter_stress(HwSeqCst, 300);
    }
}
