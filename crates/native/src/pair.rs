//! Fence-pair strategies: how a protocol's critical/non-critical fence
//! sites map onto real fences.
//!
//! The simulated designs annotate every static fence site with a role
//! ([the hot, critical side vs the rare, non-critical
//! side](crate#design-correspondence)); a [`FencePair`] decides what each
//! role costs on silicon. Parameterizing the native kernels over the
//! pair is the hardware analogue of re-running a simulated workload
//! under a different fence design.

use crate::backend::{heavy_fence, light_fence};
use std::sync::atomic::{compiler_fence, fence, Ordering};

/// A strategy assigning real fences to the two roles of an asymmetric
/// pair. Implementors are zero-sized markers; the kernels monomorphize
/// over them so the fence choice inlines into the hot loop.
///
/// ```
/// use asymfence_native::{Asymmetric, FencePair};
/// use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
///
/// static FLAG: AtomicUsize = AtomicUsize::new(0);
/// static PEER: AtomicUsize = AtomicUsize::new(0);
///
/// fn hot_side<P: FencePair>(pair: P) -> usize {
///     FLAG.store(1, Relaxed);
///     pair.critical(); // wf: free under the membarrier backend
///     PEER.load(Relaxed)
/// }
///
/// let _ = hot_side(Asymmetric);
/// ```
pub trait FencePair: Copy + Send + Sync + 'static {
    /// Stable lowercase label for reports.
    fn name(self) -> &'static str;
    /// The simulated fence design this pair corresponds to (`S+`, `W+`,
    /// …) for sim-vs-silicon cross-validation.
    fn sim_design(self) -> &'static str;
    /// Fence for critical (hot-side) sites — the paper's wf.
    fn critical(self);
    /// Fence for non-critical (rare-side) sites — the paper's sf.
    fn noncritical(self);
}

/// Every site gets the heavy fence — the silicon analogue of the
/// all-strong S+ design (every static fence is the strong one of the
/// pair). Correct everywhere, and the baseline the asymmetric pair must
/// beat on read/owner-dominated kernels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllHeavy;

impl FencePair for AllHeavy {
    fn name(self) -> &'static str {
        "all-heavy"
    }
    fn sim_design(self) -> &'static str {
        "S+"
    }
    fn critical(self) {
        heavy_fence();
    }
    fn noncritical(self) {
        heavy_fence();
    }
}

/// Critical sites get [`light_fence`], non-critical sites get
/// [`heavy_fence`] — the silicon analogue of the W+/WS+ designs, where
/// the hot side runs weak fences and the rare side absorbs the ordering
/// cost. Only sound when every racing access pair is fenced with
/// matching roles (the same group invariant the simulated designs
/// enforce per fence group).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Asymmetric;

impl FencePair for Asymmetric {
    fn name(self) -> &'static str {
        "asymmetric"
    }
    fn sim_design(self) -> &'static str {
        "W+"
    }
    fn critical(self) {
        light_fence();
    }
    fn noncritical(self) {
        heavy_fence();
    }
}

/// Control: every site is a plain hardware `fence(SeqCst)` regardless of
/// backend — what a portable library without membarrier would ship.
/// Separates the cost of the membarrier *mechanism* (visible in
/// [`AllHeavy`]) from the win of the *asymmetry*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HwSeqCst;

impl FencePair for HwSeqCst {
    fn name(self) -> &'static str {
        "seqcst"
    }
    fn sim_design(self) -> &'static str {
        "S+"
    }
    fn critical(self) {
        fence(Ordering::SeqCst);
    }
    fn noncritical(self) {
        fence(Ordering::SeqCst);
    }
}

/// One C11-expressible fence, as named by an inferred-placement
/// lowering (`asymfence-analyze`'s `C11Lower` labels). This is the
/// native half of the analyze → lower → run pipeline: the analyzer
/// decides the strength symbolically, this enum issues it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum C11Fence {
    /// `atomic_signal_fence(seq_cst)`: compiler-only.
    Compiler,
    /// `atomic_thread_fence(seq_cst)`: the portable strong fence.
    #[default]
    SeqCst,
    /// Asymmetric light side ([`light_fence`]).
    Light,
    /// Asymmetric heavy side ([`heavy_fence`]).
    Heavy,
}

impl C11Fence {
    /// Parses a lowering label (`compiler`, `seq_cst`, `light`,
    /// `heavy`) as emitted by the analyzer's C11 lowering.
    pub fn from_label(label: &str) -> Option<C11Fence> {
        match label {
            "compiler" => Some(C11Fence::Compiler),
            "seq_cst" => Some(C11Fence::SeqCst),
            "light" => Some(C11Fence::Light),
            "heavy" => Some(C11Fence::Heavy),
            _ => None,
        }
    }

    /// Issues the fence.
    #[inline]
    pub fn issue(self) {
        match self {
            C11Fence::Compiler => compiler_fence(Ordering::SeqCst),
            C11Fence::SeqCst => fence(Ordering::SeqCst),
            C11Fence::Light => light_fence(),
            C11Fence::Heavy => heavy_fence(),
        }
    }
}

/// A [`FencePair`] assembled at runtime from an inferred placement's
/// C11 lowering: the analyzer's synthesized weak site maps to
/// `critical`, its strong partner to `noncritical`. Unlike the built-in
/// marker pairs this carries data, so the fence dispatch is a jump
/// rather than an inlined constant — the price of running a placement
/// that was *computed*, not hand-written. Deliberately not part of
/// [`PairKind::ALL`]: the report grid stays the three fixed strategies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct C11Pair {
    /// Fence for critical (hot-side) sites.
    pub critical: C11Fence,
    /// Fence for non-critical (rare-side) sites.
    pub noncritical: C11Fence,
}

impl FencePair for C11Pair {
    fn name(self) -> &'static str {
        "c11"
    }
    fn sim_design(self) -> &'static str {
        // A light/heavy split is the asymmetric WS+ shape; anything
        // else degenerates to the all-strong baseline.
        if self.critical == C11Fence::Light && self.noncritical == C11Fence::Heavy {
            "WS+"
        } else {
            "S+"
        }
    }
    fn critical(self) {
        self.critical.issue();
    }
    fn noncritical(self) {
        self.noncritical.issue();
    }
}

/// Runtime selector over the three built-in pairs, for CLIs and report
/// loops; dispatch to the monomorphized kernels with a `match`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairKind {
    /// [`AllHeavy`].
    AllHeavy,
    /// [`Asymmetric`].
    Asymmetric,
    /// [`HwSeqCst`].
    HwSeqCst,
}

impl PairKind {
    /// All pairs, in report order.
    pub const ALL: [PairKind; 3] = [PairKind::AllHeavy, PairKind::Asymmetric, PairKind::HwSeqCst];

    /// The pair's stable label (matches [`FencePair::name`]).
    pub fn name(self) -> &'static str {
        match self {
            PairKind::AllHeavy => AllHeavy.name(),
            PairKind::Asymmetric => Asymmetric.name(),
            PairKind::HwSeqCst => HwSeqCst.name(),
        }
    }

    /// The simulated design label (matches [`FencePair::sim_design`]).
    pub fn sim_design(self) -> &'static str {
        match self {
            PairKind::AllHeavy => AllHeavy.sim_design(),
            PairKind::Asymmetric => Asymmetric.sim_design(),
            PairKind::HwSeqCst => HwSeqCst.sim_design(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_and_fences_run() {
        let mut seen = Vec::new();
        for kind in PairKind::ALL {
            assert!(!seen.contains(&kind.name()));
            seen.push(kind.name());
        }
        AllHeavy.critical();
        AllHeavy.noncritical();
        Asymmetric.critical();
        Asymmetric.noncritical();
        HwSeqCst.critical();
        HwSeqCst.noncritical();
    }

    #[test]
    fn sim_design_mapping() {
        assert_eq!(PairKind::Asymmetric.sim_design(), "W+");
        assert_eq!(PairKind::AllHeavy.sim_design(), "S+");
        assert_eq!(PairKind::HwSeqCst.sim_design(), "S+");
    }

    #[test]
    fn c11_labels_round_trip_and_issue() {
        for (label, f) in [
            ("compiler", C11Fence::Compiler),
            ("seq_cst", C11Fence::SeqCst),
            ("light", C11Fence::Light),
            ("heavy", C11Fence::Heavy),
        ] {
            assert_eq!(C11Fence::from_label(label), Some(f));
            f.issue();
        }
        assert_eq!(C11Fence::from_label("mfence"), None);
    }

    #[test]
    fn c11_pair_design_mapping_tracks_asymmetry() {
        let asym = C11Pair { critical: C11Fence::Light, noncritical: C11Fence::Heavy };
        assert_eq!(asym.sim_design(), "WS+");
        let sym = C11Pair { critical: C11Fence::SeqCst, noncritical: C11Fence::SeqCst };
        assert_eq!(sym.sim_design(), "S+");
        asym.critical();
        asym.noncritical();
    }

    #[test]
    fn c11_pair_stays_out_of_the_report_grid() {
        assert!(PairKind::ALL.iter().all(|k| k.name() != C11Pair::default().name()));
    }
}
