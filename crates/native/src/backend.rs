//! Backend probing and the two process-global fences.
//!
//! The split mirrors the paper's wf/sf pair: [`light_fence`] is the weak
//! fence the hot side issues (free at the hardware level), [`heavy_fence`]
//! is the strong fence the rare side issues, and the heavy side pays
//! *extra* relative to a conventional fence so the light side can pay
//! nothing. On Linux the heavy fence is `membarrier(2)` with
//! `MEMBARRIER_CMD_PRIVATE_EXPEDITED`: the kernel interrupts every other
//! CPU currently running a thread of this process and executes a full
//! memory barrier there, which serializes against the light side's
//! compiler-ordered access pair exactly like an in-ROB strong fence
//! would. Everywhere else both fences degrade to `fence(SeqCst)`.

use std::sync::atomic::{compiler_fence, fence, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The mechanism backing [`heavy_fence`] in this process, probed once on
/// first use (see [`backend`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FenceBackend {
    /// `membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED)` is available and the
    /// process registered for it: [`light_fence`] compiles to nothing
    /// (compiler fence only) and [`heavy_fence`] issues the syscall.
    Membarrier,
    /// Portable fallback: *both* fences are `fence(SeqCst)`. The light
    /// fence must escalate too — a heavy `fence(SeqCst)` on one thread
    /// does not order another thread's unfenced accesses, so a
    /// compiler-only light fence would reintroduce the store→load
    /// reordering the pair exists to forbid.
    SeqCstFallback,
}

impl FenceBackend {
    /// Stable lowercase label used in reports and metrics files.
    pub fn label(self) -> &'static str {
        match self {
            FenceBackend::Membarrier => "membarrier",
            FenceBackend::SeqCstFallback => "seqcst-fallback",
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! Raw `membarrier(2)` via the variadic libc `syscall` symbol that
    //! std already links — the workspace stays zero-external-dep.
    use std::ffi::{c_int, c_long};

    extern "C" {
        fn syscall(num: c_long, ...) -> c_long;
    }

    #[cfg(target_arch = "x86_64")]
    const NR_MEMBARRIER: c_long = 324;
    // Every arch on the generic syscall table (aarch64, riscv64, ...).
    #[cfg(not(target_arch = "x86_64"))]
    const NR_MEMBARRIER: c_long = 283;

    const MEMBARRIER_CMD_QUERY: c_int = 0;
    const MEMBARRIER_CMD_PRIVATE_EXPEDITED: c_int = 1 << 3;
    const MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED: c_int = 1 << 4;

    fn membarrier(cmd: c_int) -> c_long {
        // flags = 0, cpu_id = 0 (unused without the RSEQ flag).
        unsafe { syscall(NR_MEMBARRIER, cmd as c_long, 0 as c_long, 0 as c_long) }
    }

    /// Probes for private-expedited support and registers the process
    /// for it (registration is required before the first expedited call
    /// and is idempotent). Returns false when the kernel lacks the
    /// syscall or the command.
    pub fn register() -> bool {
        let supported = membarrier(MEMBARRIER_CMD_QUERY);
        if supported < 0 {
            return false; // ENOSYS: pre-4.3 kernel or seccomp-filtered
        }
        let need = (MEMBARRIER_CMD_PRIVATE_EXPEDITED | MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED)
            as c_long;
        if supported & need != need {
            return false;
        }
        membarrier(MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED) == 0
    }

    /// One expedited barrier; true on success.
    pub fn expedited() -> bool {
        membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED) == 0
    }
}

static BACKEND: OnceLock<FenceBackend> = OnceLock::new();

fn probe() -> FenceBackend {
    // `ASF_NATIVE_BACKEND=fallback` forces the portable path so CI can
    // exercise it even on kernels that do support membarrier.
    if std::env::var("ASF_NATIVE_BACKEND").is_ok_and(|v| v == "fallback") {
        return FenceBackend::SeqCstFallback;
    }
    #[cfg(target_os = "linux")]
    if sys::register() {
        return FenceBackend::Membarrier;
    }
    FenceBackend::SeqCstFallback
}

/// The backend [`light_fence`]/[`heavy_fence`] use, probed (and, for
/// membarrier, registered) once on first call and cached for the process
/// lifetime.
///
/// ```
/// use asymfence_native::{backend, FenceBackend};
/// let b = backend();
/// assert_eq!(b, backend()); // stable for the whole process
/// assert!(matches!(b, FenceBackend::Membarrier | FenceBackend::SeqCstFallback));
/// ```
pub fn backend() -> FenceBackend {
    *BACKEND.get_or_init(probe)
}

/// The weak fence (paper's wf): issued on the *hot* side of an
/// asymmetric pair.
///
/// Under [`FenceBackend::Membarrier`] this is `compiler_fence(SeqCst)` —
/// zero instructions, it only pins the surrounding accesses in program
/// order so the peer's [`heavy_fence`] has something to serialize
/// against. Under [`FenceBackend::SeqCstFallback`] it escalates to a
/// real `fence(SeqCst)` (see the variant docs for why).
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
/// static FLAG: AtomicUsize = AtomicUsize::new(0);
/// static SEEN: AtomicUsize = AtomicUsize::new(0);
/// // Hot side of a store→load (Dekker) pair:
/// FLAG.store(1, Relaxed);
/// asymfence_native::light_fence();
/// let _peer = SEEN.load(Relaxed); // cannot be hoisted above the store
/// ```
#[inline]
pub fn light_fence() {
    match backend() {
        FenceBackend::Membarrier => compiler_fence(Ordering::SeqCst),
        FenceBackend::SeqCstFallback => fence(Ordering::SeqCst),
    }
}

/// The strong fence (paper's sf): issued on the *rare* side of an
/// asymmetric pair.
///
/// Under [`FenceBackend::Membarrier`] this performs an expedited
/// `membarrier(2)`: every CPU running a thread of this process executes
/// a full barrier before the call returns, so the caller's
/// store→syscall→load sequence orders against each peer's
/// compiler-fenced pair without the peer executing a single fence
/// instruction. Under the fallback it is a plain `fence(SeqCst)`.
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
/// static FLAG: AtomicUsize = AtomicUsize::new(0);
/// static SEEN: AtomicUsize = AtomicUsize::new(0);
/// // Rare side of the same Dekker pair:
/// SEEN.store(1, Relaxed);
/// asymfence_native::heavy_fence(); // serializes every peer's light pair
/// let _peer = FLAG.load(Relaxed);
/// ```
#[inline]
pub fn heavy_fence() {
    match backend() {
        FenceBackend::Membarrier => {
            compiler_fence(Ordering::SeqCst);
            #[cfg(target_os = "linux")]
            if !sys::expedited() {
                // Defensive: the probe registered successfully, so this
                // should be unreachable; degrade rather than mis-order.
                fence(Ordering::SeqCst);
            }
            compiler_fence(Ordering::SeqCst);
        }
        FenceBackend::SeqCstFallback => fence(Ordering::SeqCst),
    }
}

/// Measures the mean round-trip cost of [`heavy_fence`] in nanoseconds
/// over `iters` back-to-back calls (plus one warm-up, which also forces
/// the backend probe). Used by `native_bench` to report the heavy-side
/// price on the machine at hand.
pub fn heavy_fence_cost_ns(iters: u32) -> f64 {
    heavy_fence();
    let iters = iters.max(1);
    let start = Instant::now();
    for _ in 0..iters {
        heavy_fence();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_stable_and_fences_run() {
        let b = backend();
        assert_eq!(b, backend());
        light_fence();
        heavy_fence();
        assert!(!b.label().is_empty());
    }

    #[test]
    fn heavy_cost_is_positive() {
        assert!(heavy_fence_cost_ns(16) > 0.0);
    }
}
