//! Acceptance tests for the schedule-exploration engine: known-bad
//! scenarios must be found and shrunk to a minimal core within a bounded
//! budget; known-good scenarios must survive a full sweep under every
//! fence design.

use asymfence::prelude::FenceDesign;
use asymfence_explore::{ExploreConfig, Explorer, Failure, Scenario, ALL_DESIGNS};

/// The unfenced Dekker core must trip the Shasha–Snir oracle within a
/// small seed budget and shrink to the textbook two-thread, two-op form.
#[test]
fn unfenced_sb_is_found_and_shrunk_to_minimal_core() {
    let ex = Explorer::new(ExploreConfig {
        seeds: 64,
        ..Default::default()
    });
    let report = ex.sweep(&Scenario::store_buffering(false), FenceDesign::SPlus);
    let cex = report.violation.expect("unfenced SB must violate SC");
    assert!(cex.scenario.threads.len() <= 2);
    for t in &cex.scenario.threads {
        assert!(t.ops.len() <= 3, "thread not minimal: {:?}", t.ops);
    }
    match &cex.failure {
        Failure::Scv { report } => assert!(report.contains("SC-violation cycle")),
        other => panic!("expected an SCV cycle, got {other:?}"),
    }
}

/// The obfuscated variant — padding, scratch stores, a bystander thread —
/// must boil down to the same minimal core.
#[test]
fn padded_sb_shrinks_away_the_noise() {
    let ex = Explorer::new(ExploreConfig {
        seeds: 64,
        ..Default::default()
    });
    let report = ex.sweep(&Scenario::store_buffering_padded(), FenceDesign::SPlus);
    let cex = report.violation.expect("padded unfenced SB must violate SC");
    assert!(
        cex.scenario.threads.len() <= 2,
        "bystander thread survived shrinking: {}",
        cex.scenario
    );
    for t in &cex.scenario.threads {
        assert!(
            t.ops.len() <= 3,
            "padding survived shrinking: {}",
            cex.scenario
        );
    }
    assert!(matches!(cex.failure, Failure::Scv { .. }));
}

/// A full counterexample report names the design, the seed, and walks the
/// cycle in human-readable form.
#[test]
fn counterexample_report_is_reproducible_and_readable() {
    let ex = Explorer::new(ExploreConfig {
        seeds: 64,
        ..Default::default()
    });
    let report = ex.sweep(&Scenario::store_buffering(false), FenceDesign::SPlus);
    let cex = report.violation.expect("unfenced SB must violate SC");
    let text = cex.to_string();
    assert!(text.contains("SPlus"));
    assert!(text.contains(&format!("seed {}", cex.seed)));
    assert!(text.contains("SC-violation cycle"));
    assert!(text.contains("reproduce"));
    // The reported seed really does reproduce the failure.
    assert!(ex
        .run_seed(&cex.scenario, cex.design, cex.seed)
        .is_some());
}

/// Exploration is a pure function of the config: two sweeps agree on the
/// minimized counterexample bit-for-bit.
#[test]
fn sweeps_are_deterministic() {
    let ex = Explorer::new(ExploreConfig {
        seeds: 64,
        ..Default::default()
    });
    let sc = Scenario::store_buffering(false);
    let a = ex.sweep(&sc, FenceDesign::WPlus).violation.expect("violates");
    let b = ex.sweep(&sc, FenceDesign::WPlus).violation.expect("violates");
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.found_seed, b.found_seed);
    assert_eq!(a.scenario, b.scenario);
    assert_eq!(a.failure, b.failure);
}

/// The parallel sweep is observationally identical to the serial scan:
/// same minimized counterexample, same serial-equivalent run count, at
/// any worker count. (This is the explorer half of the run-engine
/// determinism guarantee; the figure half lives in
/// `crates/bench/tests/runner_determinism.rs`.)
#[test]
fn parallel_sweep_matches_serial_sweep_bit_for_bit() {
    let cfg = ExploreConfig {
        seeds: 48,
        ..Default::default()
    };
    for scenario in [
        Scenario::store_buffering(false),
        Scenario::store_buffering(true),
    ] {
        for &design in &[FenceDesign::SPlus, FenceDesign::WPlus] {
            let sc = scenario.clone().with_roles_for(design);
            let serial = Explorer::new(cfg).with_jobs(1).sweep(&sc, design);
            let parallel = Explorer::new(cfg).with_jobs(8).sweep(&sc, design);
            assert_eq!(serial.runs, parallel.runs, "{design:?}");
            match (&serial.violation, &parallel.violation) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.seed, b.seed);
                    assert_eq!(a.found_seed, b.found_seed);
                    assert_eq!(a.scenario, b.scenario);
                    assert_eq!(a.failure, b.failure);
                    // The rendered report (what the CLI prints) matches too.
                    assert_eq!(a.to_string(), b.to_string());
                }
                (a, b) => panic!("{design:?}: serial={a:?} parallel={b:?}"),
            }
        }
    }
}

/// Known-good: the fenced Dekker idiom survives a 1000-seed perturbation
/// sweep under every safe design (ISSUE acceptance bound).
#[test]
fn fenced_sb_survives_1000_seed_sweep_under_every_design() {
    let ex = Explorer::new(ExploreConfig {
        seeds: 1000,
        ..Default::default()
    });
    for report in ex.sweep_all_designs(&Scenario::store_buffering(true)) {
        assert!(
            report.clean(),
            "design {:?} violated SC:\n{}",
            report.design,
            report.violation.unwrap()
        );
        assert_eq!(report.runs, 1000);
    }
}

/// Known-good: the three-thread fence cycle (paper Fig. 1e/3c) stays SC
/// under every design across a perturbation sweep.
#[test]
fn three_thread_cycle_survives_sweep_under_every_design() {
    let ex = Explorer::new(ExploreConfig {
        seeds: 200,
        ..Default::default()
    });
    for report in ex.sweep_all_designs(&Scenario::three_thread_cycle()) {
        assert!(
            report.clean(),
            "design {:?} violated SC:\n{}",
            report.design,
            report.violation.unwrap()
        );
    }
}

/// The deliberately broken design (weak fences with no safety net) is
/// caught by the same sweep that certifies the safe designs — the oracle
/// itself is live.
#[test]
fn broken_design_is_caught_by_the_same_sweep() {
    let ex = Explorer::new(ExploreConfig {
        seeds: 64,
        ..Default::default()
    });
    let sc = Scenario::store_buffering(true).with_roles_for(FenceDesign::WfOnlyUnsafe);
    let report = ex.sweep(&sc, FenceDesign::WfOnlyUnsafe);
    assert!(
        !report.clean(),
        "wf-only design must fail a perturbation sweep"
    );
}

/// All five safe designs are covered by `ALL_DESIGNS` (guards against the
/// list drifting when designs are added).
#[test]
fn all_designs_covers_the_paper_taxonomy() {
    assert_eq!(ALL_DESIGNS.len(), 5);
    assert!(ALL_DESIGNS.contains(&FenceDesign::SPlus));
    assert!(ALL_DESIGNS.contains(&FenceDesign::WsPlus));
    assert!(ALL_DESIGNS.contains(&FenceDesign::SwPlus));
    assert!(ALL_DESIGNS.contains(&FenceDesign::WPlus));
    assert!(ALL_DESIGNS.contains(&FenceDesign::Wee));
}
