//! Differential properties of the bounded-exhaustive explorer: the DPOR
//! reductions must never change a verdict relative to plain full
//! enumeration of the bounded choice tree, and the exhaustive walk must
//! find (at least) every violation the perturbation sampler can.
//!
//! Runs on the in-repo property harness; failing case seeds persist to
//! `tests/regressions/exhaustive_diff.seeds` and replay before fresh
//! cases on every run.

use asymfence::prelude::FenceDesign;
use asymfence_common::prop::{check, Config};
use asymfence_explore::{DporConfig, Explorer, ScenarioGen};

/// Tiny scenarios keep the full (unpruned) bounded tree cheap enough to
/// enumerate outright, which is exactly what the differential needs.
fn tiny(fenced: bool) -> ScenarioGen {
    ScenarioGen {
        min_threads: 2,
        max_threads: 2,
        max_ops: 3,
        slots: 2,
        fenced,
    }
}

fn cfg(cases: u32) -> Config {
    Config::from_env(cases).regressions("tests/regressions/exhaustive_diff.seeds")
}

fn dcfg(ex: &Explorer, bound: usize, prune: bool) -> DporConfig {
    DporConfig {
        prune,
        ..DporConfig::from_explore(&ex.cfg, bound)
    }
}

/// DPOR (sleep sets + conflict pruning) reports exactly the verdict of
/// plain full enumeration on the same bounded tree. At bound 1 the two
/// walks must also *account* for the same tree: pruned schedules are
/// discharged, not forgotten, so `explored` matches the unpruned run
/// count schedule-for-schedule.
#[test]
fn dpor_pruning_preserves_the_full_enumeration_verdict() {
    let ex = Explorer::default();
    check(
        "dpor_pruning_preserves_the_full_enumeration_verdict",
        &cfg(8),
        &tiny(false),
        |sc| {
            for &design in &[FenceDesign::SPlus, FenceDesign::WPlus] {
                let sc = sc.clone().with_roles_for(design);
                let full = ex.explore_exhaustive(&sc, design, &dcfg(&ex, 1, false));
                let dpor = ex.explore_exhaustive(&sc, design, &dcfg(&ex, 1, true));
                if full.clean() != dpor.clean() {
                    return Err(format!(
                        "{design:?} bound 1: full enumeration {} but DPOR {}",
                        if full.clean() { "clean" } else { "violated" },
                        if dpor.clean() { "clean" } else { "violated" },
                    ));
                }
                if full.clean() && full.explored != dpor.explored {
                    return Err(format!(
                        "{design:?} bound 1: full enumeration covered {} schedules, \
                         DPOR accounted for {} ({} pruned + {} executed)",
                        full.explored, dpor.explored, dpor.pruned, dpor.executed
                    ));
                }
            }
            // Deeper trees: subtree pruning makes the accounting diverge
            // by design, but the verdict may not.
            let sc2 = sc.clone().with_roles_for(FenceDesign::WPlus);
            let full = ex.explore_exhaustive(&sc2, FenceDesign::WPlus, &dcfg(&ex, 2, false));
            let dpor = ex.explore_exhaustive(&sc2, FenceDesign::WPlus, &dcfg(&ex, 2, true));
            if full.clean() != dpor.clean() {
                return Err(format!(
                    "WPlus bound 2: full enumeration {} but DPOR {}",
                    if full.clean() { "clean" } else { "violated" },
                    if dpor.clean() { "clean" } else { "violated" },
                ));
            }
            Ok(())
        },
    );
}

/// Every violation the perturbation sampler can reach is also reached by
/// the exhaustive walk: sampled jitter is just one path through the same
/// choice tree, so `explore_exhaustive` finds a superset at a sufficient
/// bound.
#[test]
fn exhaustive_finds_a_superset_of_sampled_violations() {
    let ex = Explorer::default();
    check(
        "exhaustive_finds_a_superset_of_sampled_violations",
        &cfg(8),
        &tiny(false),
        |sc| {
            for &design in &[FenceDesign::SPlus, FenceDesign::WPlus] {
                let sc = sc.clone().with_roles_for(design);
                let sampled_hit = (0..16).any(|seed| ex.run_seed(&sc, design, seed).is_some());
                if !sampled_hit {
                    continue;
                }
                let rep = ex.explore_exhaustive(&sc, design, &dcfg(&ex, 2, true));
                if rep.clean() {
                    return Err(format!(
                        "{design:?}: the sampler found a violation in 16 seeds but the \
                         exhaustive walk at bound {} came back clean ({} explored)",
                        rep.bound, rep.explored
                    ));
                }
            }
            Ok(())
        },
    );
}
