//! Command-line front end for the schedule explorer.
//!
//! ```text
//! explore --scenario sb-unfenced --design all --seeds 256
//! explore --scenario sb-padded --design S+            # watch the shrinker work
//! explore --scenario sb-fenced --design W+ --seed 17  # replay one seed
//! ```

use std::process::ExitCode;

use asymfence::prelude::FenceDesign;
use asymfence_common::telemetry::{self, BenchSnapshot, MetricEntry, Stopwatch};
use asymfence_explore::{DporConfig, ExploreConfig, Explorer, Scenario, ALL_DESIGNS};

fn parse_design(s: &str) -> Option<Vec<FenceDesign>> {
    Some(match s {
        "all" => ALL_DESIGNS.to_vec(),
        "S+" | "s+" => vec![FenceDesign::SPlus],
        "WS+" | "ws+" => vec![FenceDesign::WsPlus],
        "SW+" | "sw+" => vec![FenceDesign::SwPlus],
        "W+" | "w+" => vec![FenceDesign::WPlus],
        "Wee" | "wee" => vec![FenceDesign::Wee],
        "unsafe" => vec![FenceDesign::WfOnlyUnsafe],
        _ => return None,
    })
}

/// Scenarios by CLI name. `sb-allweak` keeps its all-Critical roles
/// (the point of the case); every other scenario is re-tagged per
/// design via [`Scenario::with_roles_for`]. `corpus` expands to the
/// whole litmus corpus.
fn parse_scenario(s: &str) -> Option<Vec<Scenario>> {
    Some(match s {
        "sb-unfenced" => vec![Scenario::store_buffering(false)],
        "sb-fenced" => vec![Scenario::store_buffering(true)],
        "sb-padded" => vec![Scenario::store_buffering_padded()],
        "sb-allweak" => vec![Scenario::store_buffering_all_weak()],
        "sb-half-fenced" => vec![Scenario::store_buffering_half_fenced()],
        "sb-double-fenced" => vec![Scenario::store_buffering_double_fenced()],
        "mp-unfenced" => vec![Scenario::message_passing(false)],
        "mp-fenced" => vec![Scenario::message_passing(true)],
        "lb" => vec![Scenario::load_buffering()],
        "iriw" => vec![Scenario::iriw()],
        "3cycle" => vec![Scenario::three_thread_cycle()],
        "corpus" => Scenario::litmus_corpus().into_iter().map(|(sc, _)| sc).collect(),
        _ => return None,
    })
}

const USAGE: &str = "usage: explore --scenario <name|corpus> \
  --design <S+|WS+|SW+|W+|Wee|unsafe|all> [--seeds N] [--seed N] [--jobs N] [--trace PATH]\n\
  scenarios: sb-unfenced sb-fenced sb-padded sb-allweak sb-half-fenced\n\
             sb-double-fenced mp-unfenced mp-fenced lb iriw 3cycle corpus\n\
  --seeds N   sweep seed indices 0..N (default 256; seed 0 = natural schedule)\n\
  --seed N    replay exactly one seed instead of sweeping\n\
  --exhaustive  enumerate schedules (DPOR) instead of sampling seeds; a\n\
              clean, complete walk proves SC up to the bound\n\
  --bound N   reorder bound for --exhaustive: max delayed choices per\n\
              schedule (default 2)\n\
  --quick     with --exhaustive, drop the bound to 1 (smoke/CI scale)\n\
  --jobs N    sweep worker threads (default: ASF_JOBS, then all cores);\n\
              reports are identical at any worker count\n\
  --trace PATH  on a violation, write the failing run's fence trace as\n\
              Perfetto-loadable JSON (suffixed per design)\n\
  --metrics PATH  write a harness-telemetry snapshot (JSON, one entry per\n\
              design sweep) to PATH; compare snapshots with `perfdiff`\n\
  ASF_SHARDS/ASF_SHARD_ID in the environment partition the seed sweep\n\
              round-robin across fleet processes (default 1/0: whole sweep)";

/// Writes a counterexample's trace next to `path`, suffixed with the
/// design so `--design all` runs don't overwrite each other. Returns
/// the path written.
fn write_trace(path: &str, design: FenceDesign, json: &str) -> std::io::Result<String> {
    let p = match path.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}-{design:?}.{ext}"),
        _ => format!("{path}-{design:?}"),
    };
    std::fs::write(&p, json)?;
    Ok(p)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenarios: Option<Vec<Scenario>> = None;
    let mut designs = None;
    let mut cfg = ExploreConfig::default();
    let mut single_seed = None;
    let mut jobs = 0;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut scenario_arg = String::new();
    let mut exhaustive = false;
    let mut bound: Option<usize> = None;
    let mut quick = false;

    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--scenario" => match need(i).and_then(|v| parse_scenario(v)) {
                Some(s) => {
                    scenarios = Some(s);
                    scenario_arg = args[i + 1].clone();
                }
                None => {
                    eprintln!("unknown scenario\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--exhaustive" => {
                exhaustive = true;
                i += 1;
                continue;
            }
            "--quick" => {
                quick = true;
                i += 1;
                continue;
            }
            "--bound" => match need(i).and_then(|v| v.parse().ok()) {
                Some(n) => bound = Some(n),
                None => {
                    eprintln!("--bound needs a number\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--design" => match need(i).and_then(|v| parse_design(v)) {
                Some(d) => designs = Some(d),
                None => {
                    eprintln!("unknown design\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--seeds" => match need(i).and_then(|v| v.parse().ok()) {
                Some(n) => cfg.seeds = n,
                None => {
                    eprintln!("--seeds needs a number\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match need(i).and_then(|v| v.parse().ok()) {
                Some(n) => single_seed = Some(n),
                None => {
                    eprintln!("--seed needs a number\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--jobs" => match need(i).and_then(|v| v.parse().ok()) {
                Some(n) => jobs = n,
                None => {
                    eprintln!("--jobs needs a number\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--trace" => match need(i) {
                Some(p) => trace_path = Some(p.clone()),
                None => {
                    eprintln!("--trace needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--metrics" => match need(i) {
                Some(p) => metrics_path = Some(p.clone()),
                None => {
                    eprintln!("--metrics needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 2;
    }

    let (Some(scenarios), Some(designs)) = (scenarios, designs) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let corpus = scenarios.len() > 1;

    // ASF_SHARDS / ASF_SHARD_ID partition the seed space across fleet
    // processes (each runs the seeds it owns; `runs` charges the owned
    // count). Unset, the shard is the whole space and nothing changes.
    cfg.shard = asymfence_common::par::Shard::from_env();

    let ex = Explorer::new(cfg).with_jobs(jobs);
    let bound = bound.unwrap_or(if quick { 1 } else { 2 });
    let dcfg = DporConfig::from_explore(&cfg, bound);
    let deterministic = telemetry::deterministic_from_env();
    let total = Stopwatch::start();
    let mut entries: Vec<MetricEntry> = Vec::new();
    let mut record = |name: &str, design: FenceDesign, runs: u64, wall_ns: u64| {
        let mut e = MetricEntry::new("explore", name, &format!("{design:?}"));
        e.runs = runs;
        e.wall_ns = if deterministic { 0 } else { wall_ns };
        entries.push(e);
    };
    let mut dirty = false;
    for scenario in &scenarios {
        // In corpus mode the metric/workload name is the scenario's own
        // name; single-scenario runs keep the CLI argument for snapshot
        // compatibility.
        let name = if corpus {
            scenario.name.clone()
        } else {
            scenario_arg.clone()
        };
        let label = if corpus {
            format!("{}/", scenario.name)
        } else {
            String::new()
        };
        for &design in &designs {
            // `sb-allweak` keeps its all-Critical roles: the case exists
            // to stress a design outside its grouping assumption.
            let sc = if scenario.name == "sb-allweak" {
                scenario.clone()
            } else {
                scenario.clone().with_roles_for(design)
            };
            if exhaustive {
                let sweep = Stopwatch::start();
                let report = ex.explore_exhaustive(&sc, design, &dcfg);
                record(&name, design, report.runs, sweep.elapsed_ns());
                let stats = format!(
                    "{} schedules explored ({} pruned, {} executed, {} classes) at bound {}",
                    report.explored, report.pruned, report.executed, report.classes, report.bound
                );
                match &report.violation {
                    None => {
                        let proof = if report.complete {
                            " — SC proven up to the bound"
                        } else {
                            " (incomplete: run budget hit)"
                        };
                        println!("{label}{design:?}: clean, {stats}{proof}");
                    }
                    Some(cex) => {
                        println!("{label}{design:?}: VIOLATION, {stats}\n{cex}");
                        if let Some(path) = &trace_path {
                            match &cex.trace {
                                Some(sink) => match write_trace(path, design, &sink.chrome_json())
                                {
                                    Ok(p) => println!("fence trace written to {p}"),
                                    Err(e) => eprintln!("cannot write trace to {path}: {e}"),
                                },
                                None => {
                                    eprintln!("minimized run left no trace (did not re-fail)")
                                }
                            }
                        }
                        dirty = true;
                    }
                }
                continue;
            }
            if let Some(seed) = single_seed {
                let sweep = Stopwatch::start();
                let outcome = ex.run_seed(&sc, design, seed);
                record(&name, design, 1, sweep.elapsed_ns());
                match outcome {
                    None => println!("{label}{design:?} seed {seed}: clean"),
                    Some(f) => {
                        println!("{label}{design:?} seed {seed}: FAILED\n{f}");
                        if let Some(path) = &trace_path {
                            if let Some(sink) = ex.run_seed_traced(&sc, design, seed) {
                                match write_trace(path, design, &sink.chrome_json()) {
                                    Ok(p) => println!("fence trace written to {p}"),
                                    Err(e) => eprintln!("cannot write trace to {path}: {e}"),
                                }
                            }
                        }
                        dirty = true;
                    }
                }
                continue;
            }
            let sweep = Stopwatch::start();
            let report = ex.sweep(&sc, design);
            record(&name, design, report.runs, sweep.elapsed_ns());
            match &report.violation {
                None => println!(
                    "{label}{design:?}: clean over {} seeds ({} runs)",
                    cfg.seeds, report.runs
                ),
                Some(cex) => {
                    println!(
                        "{label}{design:?}: VIOLATION after {} runs\n{cex}",
                        report.runs
                    );
                    if let Some(path) = &trace_path {
                        match &cex.trace {
                            Some(sink) => match write_trace(path, design, &sink.chrome_json()) {
                                Ok(p) => println!("fence trace written to {p}"),
                                Err(e) => eprintln!("cannot write trace to {path}: {e}"),
                            },
                            None => eprintln!("minimized run left no trace (did not re-fail)"),
                        }
                    }
                    dirty = true;
                }
            }
        }
    }
    if let Some(path) = &metrics_path {
        let stem = std::path::Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "explore".to_string());
        let mut snap = BenchSnapshot::new(&stem);
        snap.deterministic = deterministic;
        snap.entries = entries;
        if !deterministic {
            snap.total_wall_ns = total.elapsed_ns();
            snap.peak_rss_bytes = telemetry::peak_rss_bytes().unwrap_or(0);
        }
        match std::fs::write(path, snap.to_json()) {
            Ok(()) => eprintln!(
                "== metrics snapshot -> {path} ({} entries) ==",
                snap.entries.len()
            ),
            Err(e) => {
                eprintln!("cannot write metrics to {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if dirty {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
