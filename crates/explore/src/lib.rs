//! Deterministic schedule exploration for asymmetric-fence designs.
//!
//! This crate turns the simulator into a test oracle: it sweeps litmus
//! [`Scenario`]s across perturbation seeds (NoC jitter, write-buffer
//! drain stalls, invalidation delays — all within coherence-legal
//! bounds), checks every run with the Shasha–Snir sequential-consistency
//! checker, and on failure shrinks to a minimal counterexample: fewest
//! threads, then fewest instructions, then the smallest reproducing
//! seed. Everything is a pure function of the seed, so counterexamples
//! replay bit-identically.
//!
//! ```
//! use asymfence_explore::{Explorer, Scenario};
//! use asymfence::prelude::FenceDesign;
//!
//! let ex = Explorer::default();
//! let report = ex.sweep(&Scenario::store_buffering(false), FenceDesign::WfOnlyUnsafe);
//! let cex = report.violation.expect("unfenced Dekker must trip the oracle");
//! assert!(cex.scenario.threads.len() <= 2);
//! ```

pub mod dpor;
pub mod explorer;
pub mod scenario;

pub use dpor::{DporConfig, ExhaustiveOutcome, RunObs};
pub use explorer::{
    Counterexample, ExhaustiveReport, ExploreConfig, Explorer, Failure, OracleReport, SweepReport,
    ALL_DESIGNS,
};
pub use scenario::{slot_addr, Op, Scenario, ScenarioGen, ThreadSpec};
