//! The deterministic schedule-exploration engine.
//!
//! An [`Explorer`] sweeps a [`Scenario`] across a budget of perturbation
//! seeds. Seed 0 is always the natural (unperturbed) schedule; every
//! other seed drives the simulator's coherence-legal perturbation hooks
//! (NoC delay jitter, write-buffer drain stalls, invalidation delays)
//! through a pure function of `(seed, stream, event-index)`, so any
//! failing seed replays bit-identically.
//!
//! The oracle is the Shasha–Snir cycle checker over the run's perform
//! log, plus outcome checks (deadlock / cycle-limit count as failures).
//! On failure the explorer shrinks the scenario — fewest threads first,
//! then fewest instructions, then the smallest reproducing seed — and
//! reports the minimal counterexample with a human-readable cycle.

use std::collections::BTreeSet;
use std::fmt;

use asymfence::prelude::{scv, FenceDesign, Machine, Perturbation, RunOutcome, TraceSink};
use asymfence_common::par;
use asymfence_common::schedule::ScheduleScript;

use crate::dpor::{self, DporConfig, ExhaustiveOutcome, RunObs};
use crate::scenario::Scenario;

/// All five safe designs from the paper, in presentation order.
pub const ALL_DESIGNS: [FenceDesign; 5] = [
    FenceDesign::SPlus,
    FenceDesign::WsPlus,
    FenceDesign::SwPlus,
    FenceDesign::WPlus,
    FenceDesign::Wee,
];

/// Exploration budgets and perturbation magnitudes.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Number of seeds to sweep (seed indices `0..seeds`). Seed 0 is the
    /// unperturbed schedule.
    pub seeds: u64,
    /// Max extra cycles of NoC jitter per message.
    pub noc_jitter: u64,
    /// Max extra cycles a retired store waits before becoming drainable.
    pub wb_stall: u64,
    /// Max extra cycles added to invalidation delivery.
    pub inval_delay: u64,
    /// Per-run cycle budget.
    pub max_cycles: u64,
    /// Watchdog threshold passed to the machine.
    pub watchdog_cycles: u64,
    /// When a shrink candidate stops failing at the original seed, rescan
    /// this many seeds (from 0) before discarding the candidate.
    pub shrink_seed_window: u64,
    /// Hard budget on simulator runs spent shrinking.
    pub max_shrink_runs: u64,
    /// Seed-space partition for sharded sweeps: only seeds this shard
    /// owns are run (round-robin by seed index), and clean runs charge
    /// the owned count. The default ([`par::Shard::whole`]) sweeps every
    /// seed, leaving single-process behaviour untouched. Shrinking is
    /// not sharded — it replays from one found seed.
    pub shard: par::Shard,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            seeds: 256,
            noc_jitter: 48,
            wb_stall: 96,
            inval_delay: 48,
            max_cycles: 1_000_000,
            watchdog_cycles: 20_000,
            shrink_seed_window: 12,
            max_shrink_runs: 3_000,
            shard: par::Shard::whole(),
        }
    }
}

impl ExploreConfig {
    /// The perturbation for a seed index: 0 means "natural schedule".
    pub fn perturbation(&self, seed: u64) -> Perturbation {
        if seed == 0 {
            Perturbation::default()
        } else {
            Perturbation {
                seed,
                noc_jitter: self.noc_jitter,
                wb_stall: self.wb_stall,
                inval_delay: self.inval_delay,
            }
        }
    }
}

/// Why a run failed the oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Failure {
    /// Shasha–Snir found a cycle; the report comes from `describe_cycle`.
    Scv {
        /// Human-readable cycle walk.
        report: String,
    },
    /// The machine's watchdog declared no forward progress.
    Deadlock,
    /// The run exhausted its cycle budget.
    CycleLimit,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Scv { report } => write!(f, "{report}"),
            Failure::Deadlock => write!(f, "machine deadlocked (watchdog fired)"),
            Failure::CycleLimit => write!(f, "machine exceeded its cycle budget"),
        }
    }
}

/// A shrunk, reproducible failure.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The design under test.
    pub design: FenceDesign,
    /// The perturbation seed that reproduces the failure (0 = natural).
    pub seed: u64,
    /// The seed the sweep originally tripped on, before shrinking.
    pub found_seed: u64,
    /// The minimized scenario.
    pub scenario: Scenario,
    /// What the oracle saw.
    pub failure: Failure,
    /// Fence-lifecycle trace of the minimized failing run: the exact
    /// fence episodes around the violation, ready for
    /// [`TraceSink::chrome_json`]. `None` only if the minimized run
    /// unexpectedly stopped failing on replay.
    pub trace: Option<TraceSink>,
    /// The minimized failing decision vector when the counterexample
    /// came from exhaustive exploration (`None` for sampled
    /// counterexamples, which replay from `seed` instead).
    pub schedule: Option<ScheduleScript>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.schedule {
            Some(s) => writeln!(
                f,
                "violation under design {:?} (exhaustive, {} delayed choice(s)):",
                self.design,
                s.cost()
            )?,
            None => writeln!(
                f,
                "violation under design {:?} (found at seed {}, minimized to seed {}):",
                self.design, self.found_seed, self.seed
            )?,
        }
        write!(f, "{}", self.scenario)?;
        writeln!(f, "{}", self.failure)?;
        match &self.schedule {
            Some(s) => writeln!(
                f,
                "reproduce: re-run this scenario under {:?} with schedule decisions \
                 {:?} (arity {}, quanta noc={}/inval={}/wb={}); scripted schedules \
                 replay bit-identically.",
                self.design, s.decisions, s.arity, s.quanta.noc, s.quanta.inval, s.quanta.wb
            ),
            None => writeln!(
                f,
                "reproduce: re-run this scenario under {:?} with perturbation seed {} \
                 (seed 0 = natural schedule); identical budgets replay bit-identically.",
                self.design, self.seed
            ),
        }
    }
}

/// Result of sweeping one (scenario, design) pair.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The design swept.
    pub design: FenceDesign,
    /// Serial-equivalent simulator runs (seeds up to and including the
    /// first failure, plus shrink runs). Independent of the worker
    /// count, so reports are byte-identical at any [`Explorer::jobs`].
    pub runs: u64,
    /// The minimized failure, if any seed tripped the oracle.
    pub violation: Option<Counterexample>,
}

impl SweepReport {
    /// True when the whole sweep passed the oracle.
    pub fn clean(&self) -> bool {
        self.violation.is_none()
    }
}

/// Result of sweeping an arbitrary machine builder ([`Explorer::sweep_builder`]):
/// the library-call form of the oracle, without scenario shrinking.
#[derive(Clone, Debug)]
pub struct OracleReport {
    /// The lowest failing seed and what the oracle saw there, if any.
    pub violation: Option<(u64, Failure)>,
    /// Serial-equivalent simulator runs charged (seeds up to and
    /// including the first failure, or the whole budget when clean) —
    /// independent of the worker count.
    pub runs: u64,
}

impl OracleReport {
    /// True when every seed passed the oracle.
    pub fn clean(&self) -> bool {
        self.violation.is_none()
    }
}

/// Result of a bounded-exhaustive exploration of one (scenario, design)
/// pair ([`Explorer::explore_exhaustive`]).
#[derive(Clone, Debug)]
pub struct ExhaustiveReport {
    /// The design explored.
    pub design: FenceDesign,
    /// The reorder bound the walk enforced.
    pub bound: usize,
    /// Simulator runs the walk executed (excludes shrinking).
    pub executed: u64,
    /// Schedules discharged by the DPOR reductions without simulation.
    pub pruned: u64,
    /// Schedules accounted for: `executed + pruned`.
    pub explored: u64,
    /// Distinct Mazurkiewicz classes among the executed runs.
    pub classes: u64,
    /// Choice points exposed by the natural run.
    pub frontier: u64,
    /// True when the walk covered the whole bounded tree: a complete,
    /// clean report is a proof of SC up to the bound.
    pub complete: bool,
    /// Serial-equivalent total simulator runs charged (walk + shrink) —
    /// identical at any worker count.
    pub runs: u64,
    /// The minimized failure, if any schedule tripped the oracle.
    pub violation: Option<Counterexample>,
}

impl ExhaustiveReport {
    /// True when every explored schedule passed the oracle.
    pub fn clean(&self) -> bool {
        self.violation.is_none()
    }

    /// True when the report *proves* SC up to the bound: clean and the
    /// walk ran to completion.
    pub fn proven(&self) -> bool {
        self.clean() && self.complete
    }
}

/// The engine. Stateless apart from its config; every method is a pure
/// function of `(config, scenario, design)`, so the seed sweep can fan
/// out over worker threads without changing any report.
#[derive(Clone, Copy, Debug, Default)]
pub struct Explorer {
    /// Budgets and magnitudes.
    pub cfg: ExploreConfig,
    /// Worker threads for the seed sweep: `0` resolves from `ASF_JOBS`
    /// and then the machine's available parallelism; `1` forces the
    /// serial scan. Shrinking is always serial (each step depends on the
    /// previous candidate).
    pub jobs: usize,
}

impl Explorer {
    /// Creates an explorer with the given budgets.
    pub fn new(cfg: ExploreConfig) -> Self {
        Explorer { cfg, jobs: 0 }
    }

    /// Sets the sweep worker count (`0` = resolve from the environment).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Runs one seed of the scenario and applies the oracle.
    pub fn run_seed(
        &self,
        scenario: &Scenario,
        design: FenceDesign,
        seed: u64,
    ) -> Option<Failure> {
        let mut m: Machine = scenario.machine(
            design,
            self.cfg.perturbation(seed),
            self.cfg.watchdog_cycles,
        );
        self.check_machine(&mut m)
    }

    /// Runs an already-built machine to completion and applies the
    /// oracle: deadlock and cycle-limit are failures, and a finished run
    /// is checked with the Shasha–Snir cycle finder. The machine must
    /// have been built with `record_scv_log(true)`.
    ///
    /// # Panics
    ///
    /// Panics if the machine does not record the SCV log.
    pub fn check_machine(&self, m: &mut Machine) -> Option<Failure> {
        match m.run(self.cfg.max_cycles) {
            RunOutcome::Deadlocked => return Some(Failure::Deadlock),
            RunOutcome::CycleLimit => return Some(Failure::CycleLimit),
            RunOutcome::Finished => {}
        }
        let log = m
            .scv_log()
            .expect("oracle machines must record the SCV log");
        scv::find_cycle(log).map(|cycle| Failure::Scv {
            report: scv::describe_cycle(log, &cycle),
        })
    }

    /// Sweeps `0..cfg.seeds` over machines produced by `build` — the
    /// library-call form of the oracle, used by the synthesis engine to
    /// validate fence assignments without going through a [`Scenario`].
    ///
    /// `build` must be a pure function of the perturbation (each worker
    /// constructs its own machine, so the machine itself never crosses a
    /// thread boundary) and must enable the SCV log and set its own
    /// watchdog. As with [`Explorer::sweep`], the result and the charged
    /// `runs` are identical at any worker count.
    pub fn sweep_builder<F>(&self, build: F) -> OracleReport
    where
        F: Fn(Perturbation) -> Machine + Sync,
    {
        let jobs = par::resolve_jobs((self.jobs > 0).then_some(self.jobs));
        let hit = par::par_min_find(jobs, self.cfg.seeds, |seed| {
            if !self.cfg.shard.owns(seed) {
                return None;
            }
            let mut m = build(self.cfg.perturbation(seed));
            self.check_machine(&mut m)
        });
        match hit {
            Some((seed, failure)) => OracleReport {
                runs: self.cfg.shard.owned_in(seed + 1),
                violation: Some((seed, failure)),
            },
            None => OracleReport {
                runs: self.cfg.shard.owned_in(self.cfg.seeds),
                violation: None,
            },
        }
    }

    /// Replays one seed with the fence-lifecycle trace attached and
    /// returns the trace if the run still fails the oracle. Perturbation
    /// replay is bit-identical and tracing is pure observation, so a
    /// failing seed re-fails here; `None` guards against an impossible
    /// divergence rather than an expected path.
    pub fn run_seed_traced(
        &self,
        scenario: &Scenario,
        design: FenceDesign,
        seed: u64,
    ) -> Option<TraceSink> {
        let mut m: Machine = scenario.machine_traced(
            design,
            self.cfg.perturbation(seed),
            self.cfg.watchdog_cycles,
        );
        let failed = match m.run(self.cfg.max_cycles) {
            RunOutcome::Deadlocked | RunOutcome::CycleLimit => true,
            RunOutcome::Finished => {
                let log = m
                    .scv_log()
                    .expect("explorer machines always record the SCV log");
                scv::find_cycle(log).is_some()
            }
        };
        failed.then(|| m.take_trace().expect("record_trace was enabled"))
    }

    /// Sweeps `0..cfg.seeds`; on the lowest failing seed, shrinks it and
    /// stops.
    ///
    /// With more than one worker the sweep fans seeds out over threads
    /// ([`par::par_min_find`]), but still resolves to the *minimum*
    /// failing seed — exactly the seed the serial scan stops at — and
    /// charges `runs` as the serial-equivalent count, so the report (and
    /// everything shrunk from it) is identical at any worker count.
    pub fn sweep(&self, scenario: &Scenario, design: FenceDesign) -> SweepReport {
        let jobs = par::resolve_jobs((self.jobs > 0).then_some(self.jobs));
        let hit = par::par_min_find(jobs, self.cfg.seeds, |seed| {
            if !self.cfg.shard.owns(seed) {
                return None;
            }
            self.run_seed(scenario, design, seed)
        });
        match hit {
            Some((seed, failure)) => {
                let (cex, shrink_runs) = self.shrink(scenario.clone(), design, seed, failure);
                SweepReport {
                    design,
                    runs: self.cfg.shard.owned_in(seed + 1) + shrink_runs,
                    violation: Some(cex),
                }
            }
            None => SweepReport {
                design,
                runs: self.cfg.shard.owned_in(self.cfg.seeds),
                violation: None,
            },
        }
    }

    /// Sweeps the scenario under every safe design.
    pub fn sweep_all_designs(&self, scenario: &Scenario) -> Vec<SweepReport> {
        ALL_DESIGNS
            .iter()
            .map(|&d| self.sweep(&scenario.clone().with_roles_for(d), d))
            .collect()
    }

    /// Checks whether a candidate still fails, trying `seed` first and
    /// then a small window of seeds from 0 up. Returns the reproducing
    /// seed and failure, charging each run against `runs_left`.
    fn refails(
        &self,
        scenario: &Scenario,
        design: FenceDesign,
        seed: u64,
        runs_left: &mut u64,
    ) -> Option<(u64, Failure)> {
        let try_seed = |s: u64, runs_left: &mut u64| -> Option<(u64, Failure)> {
            if *runs_left == 0 {
                return None;
            }
            *runs_left -= 1;
            self.run_seed(scenario, design, s).map(|f| (s, f))
        };
        if let Some(hit) = try_seed(seed, runs_left) {
            return Some(hit);
        }
        for s in 0..self.cfg.shrink_seed_window {
            if s == seed {
                continue;
            }
            if let Some(hit) = try_seed(s, runs_left) {
                return Some(hit);
            }
        }
        None
    }

    /// Greedy structural shrink (threads first, then single ops — the
    /// order [`Scenario::shrink_candidates`] emits), then seed
    /// minimization. Returns the counterexample and runs spent.
    fn shrink(
        &self,
        scenario: Scenario,
        design: FenceDesign,
        seed: u64,
        failure: Failure,
    ) -> (Counterexample, u64) {
        let found_seed = seed;
        let mut cur = (scenario, seed, failure);
        let mut runs_left = self.cfg.max_shrink_runs;

        // Phase 1+2: structural minimization to a local fixpoint.
        loop {
            let mut improved = false;
            for cand in cur.0.shrink_candidates() {
                if let Some((s, f)) = self.refails(&cand, design, cur.1, &mut runs_left) {
                    cur = (cand, s, f);
                    improved = true;
                    break;
                }
            }
            if !improved || runs_left == 0 {
                break;
            }
        }

        // Phase 3: smallest reproducing seed for the minimal scenario.
        for s in 0..cur.1 {
            if runs_left == 0 {
                break;
            }
            runs_left -= 1;
            if let Some(f) = self.run_seed(&cur.0, design, s) {
                cur = (cur.0, s, f);
                break;
            }
        }

        let spent = self.cfg.max_shrink_runs - runs_left;
        let (scenario, seed, failure) = cur;
        // Replay the minimized failure once with the trace on so the
        // counterexample carries the exact fence episodes around the
        // violation. Not charged against `runs`: it is a presentation
        // replay, not part of the search.
        let trace = self.run_seed_traced(&scenario, design, seed);
        (
            Counterexample {
                design,
                seed,
                found_seed,
                scenario,
                failure,
                trace,
                schedule: None,
            },
            spent,
        )
    }

    // ------------------------------------------------------------------
    // Bounded-exhaustive exploration
    // ------------------------------------------------------------------

    /// Runs one already-built scripted machine and distills the
    /// observation the DPOR engine consumes: oracle verdict,
    /// choice-point recording, run fingerprint, Mazurkiewicz class and
    /// contested lines (run log plus `static_shared`).
    pub fn observe_machine(&self, mut m: Machine, static_shared: &BTreeSet<u64>) -> RunObs {
        let line_bytes = m.config().line_bytes;
        let failure = self.check_machine(&mut m);
        let recording = m.take_schedule_recording().unwrap_or_default();
        let log = m.scv_log().cloned().unwrap_or_default();
        RunObs::new(failure, recording, &log, m.now(), line_bytes, static_shared)
    }

    /// Runs one scripted schedule of a scenario (the exhaustive analog
    /// of [`Explorer::run_seed`]).
    pub fn run_script(
        &self,
        scenario: &Scenario,
        design: FenceDesign,
        script: &ScheduleScript,
    ) -> RunObs {
        let static_shared = scenario.shared_slot_lines(
            asymfence_common::config::MachineConfig::default().line_bytes,
        );
        let m = scenario.machine_scripted(design, script.clone(), self.cfg.watchdog_cycles);
        self.observe_machine(m, &static_shared)
    }

    /// Walks the bounded choice tree of `(scenario, design)` and, on a
    /// violation, shrinks it (scenario structure first, then the
    /// decision vector) to a minimal scripted counterexample.
    ///
    /// Like [`Explorer::sweep`], the walk fans out over worker threads
    /// but folds serial-equivalently, so the report is byte-identical
    /// at any [`Explorer::jobs`].
    pub fn explore_exhaustive(
        &self,
        scenario: &Scenario,
        design: FenceDesign,
        dcfg: &DporConfig,
    ) -> ExhaustiveReport {
        let jobs = par::resolve_jobs((self.jobs > 0).then_some(self.jobs));
        let static_shared = scenario.shared_slot_lines(
            asymfence_common::config::MachineConfig::default().line_bytes,
        );
        let out = dpor::explore(dcfg, jobs, |script| {
            let m = scenario.machine_scripted(design, script.clone(), self.cfg.watchdog_cycles);
            self.observe_machine(m, &static_shared)
        });
        let mut runs = out.executed;
        let violation = out.violation.clone().map(|(decisions, failure)| {
            let (cex, spent) =
                self.shrink_exhaustive(scenario.clone(), design, dcfg, decisions, failure);
            runs += spent;
            cex
        });
        ExhaustiveReport {
            design,
            bound: dcfg.bound,
            executed: out.executed,
            pruned: out.pruned,
            explored: out.explored,
            classes: out.classes,
            frontier: out.frontier,
            complete: out.complete,
            runs,
            violation,
        }
    }

    /// Explores the scenario under every safe design (the exhaustive
    /// analog of [`Explorer::sweep_all_designs`]).
    pub fn explore_exhaustive_all_designs(
        &self,
        scenario: &Scenario,
        dcfg: &DporConfig,
    ) -> Vec<ExhaustiveReport> {
        ALL_DESIGNS
            .iter()
            .map(|&d| self.explore_exhaustive(&scenario.clone().with_roles_for(d), d, dcfg))
            .collect()
    }

    /// The library-call form of bounded-exhaustive validation, used by
    /// the synthesis engine: walks the choice tree of machines produced
    /// by `build` without scenario shrinking. `build` must be a pure
    /// function of the script and enable the SCV log; a complete, clean
    /// outcome proves the assignment SC up to the bound.
    pub fn explore_exhaustive_builder<F>(&self, dcfg: &DporConfig, build: F) -> ExhaustiveOutcome
    where
        F: Fn(ScheduleScript) -> Machine + Sync,
    {
        let jobs = par::resolve_jobs((self.jobs > 0).then_some(self.jobs));
        let empty = BTreeSet::new();
        dpor::explore(dcfg, jobs, |script| {
            self.observe_machine(build(script.clone()), &empty)
        })
    }

    /// Greedy shrink of an exhaustively-found failure: structural
    /// candidates survive when a fresh serial bounded walk still finds
    /// a violation (adopting its schedule); then the decision vector is
    /// minimized by zeroing delays one at a time. Returns the
    /// counterexample and the runs spent.
    fn shrink_exhaustive(
        &self,
        scenario: Scenario,
        design: FenceDesign,
        dcfg: &DporConfig,
        decisions: Vec<u8>,
        failure: Failure,
    ) -> (Counterexample, u64) {
        let mut runs_left = self.cfg.max_shrink_runs;
        let mut cur = (scenario, decisions, failure);

        // Phase 1: structural minimization to a local fixpoint. Each
        // candidate gets a serial re-exploration with the remaining
        // budget as its per-subtree cap.
        loop {
            let mut improved = false;
            for cand in cur.0.shrink_candidates() {
                if runs_left == 0 {
                    break;
                }
                let sub = DporConfig {
                    max_runs_per_subtree: dcfg.max_runs_per_subtree.min(runs_left),
                    ..*dcfg
                };
                let out = dpor::explore(&sub, 1, |script| {
                    self.run_script(&cand, design, script)
                });
                runs_left = runs_left.saturating_sub(out.executed);
                if let Some((d, f)) = out.violation {
                    cur = (cand, d, f);
                    improved = true;
                    break;
                }
            }
            if !improved || runs_left == 0 {
                break;
            }
        }

        // Phase 2: schedule minimization — drop nonzero decisions
        // (deepest first) while the failure reproduces.
        loop {
            let mut improved = false;
            for i in (0..cur.1.len()).rev() {
                if cur.1[i] == 0 || runs_left == 0 {
                    continue;
                }
                let mut d = cur.1.clone();
                d[i] = 0;
                while d.last() == Some(&0) {
                    d.pop();
                }
                runs_left -= 1;
                let obs = self.run_script(&cur.0, design, &dcfg.script(d.clone()));
                if let Some(f) = obs.failure {
                    cur.1 = d;
                    cur.2 = f;
                    improved = true;
                    break;
                }
            }
            if !improved || runs_left == 0 {
                break;
            }
        }

        let spent = self.cfg.max_shrink_runs - runs_left;
        let (scenario, decisions, failure) = cur;
        let script = dcfg.script(decisions);
        // Presentation replay with the fence-lifecycle trace attached
        // (not charged against `runs`, as in the sampled path).
        let mut m =
            scenario.machine_scripted_traced(design, script.clone(), self.cfg.watchdog_cycles);
        let failed = match m.run(self.cfg.max_cycles) {
            RunOutcome::Deadlocked | RunOutcome::CycleLimit => true,
            RunOutcome::Finished => {
                let log = m
                    .scv_log()
                    .expect("explorer machines always record the SCV log");
                scv::find_cycle(log).is_some()
            }
        };
        let trace = failed.then(|| m.take_trace().expect("record_trace was enabled"));
        (
            Counterexample {
                design,
                seed: 0,
                found_seed: 0,
                scenario,
                failure,
                trace,
                schedule: Some(script),
            },
            spent,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_zero_is_unperturbed() {
        let cfg = ExploreConfig::default();
        assert!(!cfg.perturbation(0).is_active());
        let p = cfg.perturbation(7);
        assert!(p.is_active());
        assert_eq!(p.seed, 7);
        assert_eq!(p.wb_stall, cfg.wb_stall);
    }

    #[test]
    fn fenced_sb_single_seed_is_clean_under_all_designs() {
        let ex = Explorer::default();
        for &d in &ALL_DESIGNS {
            let sc = Scenario::store_buffering(true).with_roles_for(d);
            assert_eq!(ex.run_seed(&sc, d, 0), None, "design {d:?} seed 0");
            assert_eq!(ex.run_seed(&sc, d, 1), None, "design {d:?} seed 1");
        }
    }

    #[test]
    fn run_seed_is_deterministic() {
        let ex = Explorer::default();
        let sc = Scenario::store_buffering(false);
        let a = ex.run_seed(&sc, FenceDesign::WPlus, 3);
        let b = ex.run_seed(&sc, FenceDesign::WPlus, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_clean_sweeps_charge_the_owned_count_and_cover_all_seeds() {
        let seeds = 10;
        let sc = Scenario::store_buffering(true).with_roles_for(FenceDesign::SPlus);
        let mut total_runs = 0;
        for id in 0..3 {
            let ex = Explorer::new(ExploreConfig {
                seeds,
                shard: par::Shard::new(id, 3),
                ..ExploreConfig::default()
            })
            .with_jobs(1);
            let report = ex.sweep(&sc, FenceDesign::SPlus);
            assert!(report.clean());
            assert_eq!(report.runs, par::Shard::new(id, 3).owned_in(seeds));
            total_runs += report.runs;
        }
        // The three shards together charge exactly the whole-sweep budget.
        assert_eq!(total_runs, seeds);
    }

    #[test]
    fn whole_shard_sweep_is_unchanged_by_the_shard_field() {
        let cfg = ExploreConfig {
            seeds: 6,
            ..ExploreConfig::default()
        };
        assert!(cfg.shard.is_whole());
        let ex = Explorer::new(cfg).with_jobs(1);
        let sc = Scenario::store_buffering(true).with_roles_for(FenceDesign::WsPlus);
        let report = ex.sweep(&sc, FenceDesign::WsPlus);
        assert!(report.clean());
        assert_eq!(report.runs, 6);
    }
}
