//! Bounded-exhaustive schedule exploration with partial-order reduction.
//!
//! The sampling explorer draws schedules at random; this module
//! *enumerates* them. Every run of the simulator exposes a sequence of
//! choice points (NoC message arbitration, invalidation delivery,
//! write-buffer drain — see [`asymfence_common::schedule`]), and each
//! point takes one of `arity` quantized delays. A schedule is therefore
//! a decision vector, and the space of schedules is a tree: node `i`
//! branches on the `i`-th point the run encounters, and the frontier
//! extends dynamically as delays expose new events (retries, bounces).
//!
//! The walk is *reorder-bounded*: at most `bound` points per schedule
//! may take a nonzero delay (the analog of the preemption bound in
//! bounded model checking — small bounds catch nearly all real reorder
//! bugs). Within the bound the tree is explored depth-first,
//! deepest-point-first, and two reductions prune branches that cannot
//! change the verdict:
//!
//! * **Sleep-set pruning (absorbed delays).** Delaying point `i` and
//!   re-running sometimes produces an execution *bit-identical* to the
//!   parent run — the extra cycles were absorbed by the network's
//!   per-pair FIFO clamp or by existing slack. The runs' fingerprints
//!   (outcome, cycle count, perform log, choice-point record) are
//!   compared; on a match, the delayed transition was independent of
//!   everything that followed, so its entire subtree is a replay of the
//!   sibling subtree (with strictly less bound left) and is slept.
//! * **Conflict pruning (persistent sets).** A delay can only change
//!   the *happens-before* order if its subject cache line is contested
//!   — accessed by two or more cores. Points whose line is private to
//!   one core (scratch stores, single-owner fills) only shift that
//!   core's private timing; their delay options are skipped. The
//!   contested-line set is computed once from the natural run's perform
//!   log (every completed run retires the same accesses, so the set is
//!   schedule-independent) plus the scenario's static footprint.
//!
//! Executed runs are binned into Mazurkiewicz equivalence classes — two
//! runs are equivalent when every per-word conflict order (writes
//! totally ordered, reads canonically grouped between writes) and the
//! outcome agree — and the class count is reported next to the raw run
//! count, making the redundancy the reductions removed visible.
//!
//! The fan-out over top-level branches is embarrassingly parallel and
//! *serial-equivalent*: subtree reports are folded in the canonical
//! depth-first order, so the explored/pruned/executed counts, the class
//! census and the first violation are byte-identical at any worker
//! count.

use std::collections::BTreeSet;

use asymfence_common::par;
use asymfence_common::schedule::{ChoiceRecord, ScheduleQuanta, ScheduleRecording, ScheduleScript};
use asymfence_common::scvlog::ScvLog;

use crate::explorer::{ExploreConfig, Failure};

/// Budgets and semantics of one bounded-exhaustive exploration.
#[derive(Clone, Copy, Debug)]
pub struct DporConfig {
    /// Max nonzero delay decisions per schedule (the reorder bound).
    pub bound: usize,
    /// Delay options per choice point (option `k` waits `k × quantum`).
    pub arity: u8,
    /// Per-kind delay quanta.
    pub quanta: ScheduleQuanta,
    /// Hard cap on simulator runs per top-level subtree; hitting it
    /// clears [`ExhaustiveOutcome::complete`].
    pub max_runs_per_subtree: u64,
    /// Enable the DPOR reductions (sleep-set + conflict pruning).
    /// Disabling them enumerates the full bounded tree — the
    /// differential tests compare the two verdicts.
    pub prune: bool,
}

impl Default for DporConfig {
    fn default() -> Self {
        DporConfig {
            bound: 2,
            arity: 2,
            quanta: ScheduleQuanta::default(),
            max_runs_per_subtree: 20_000,
            prune: true,
        }
    }
}

impl DporConfig {
    /// Derives the exploration shape from the sampler's perturbation
    /// magnitudes: each quantum is the magnitude the seed sweep would
    /// have drawn up to, so the exhaustive walk covers the same delay
    /// scale the sampler covers — just systematically.
    pub fn from_explore(cfg: &ExploreConfig, bound: usize) -> Self {
        DporConfig {
            bound,
            quanta: ScheduleQuanta {
                noc: cfg.noc_jitter,
                inval: cfg.inval_delay,
                wb: cfg.wb_stall,
            },
            ..DporConfig::default()
        }
    }

    /// The script for a decision vector under this config's shape.
    pub fn script(&self, decisions: Vec<u8>) -> ScheduleScript {
        ScheduleScript {
            quanta: self.quanta,
            arity: self.arity,
            decisions,
        }
    }
}

/// What the engine needs to know about one executed run.
#[derive(Clone, Debug)]
pub struct RunObs {
    /// The oracle's verdict (`None` = clean).
    pub failure: Option<Failure>,
    /// Every choice point the run encountered, in encounter order.
    pub points: Vec<ChoiceRecord>,
    /// Timing-faithful run identity: two runs with equal fingerprints
    /// executed cycle-for-cycle identically (sleep-set test).
    pub fingerprint: u64,
    /// Mazurkiewicz-class signature (see [`trace_class`]).
    pub class: u64,
    /// Raw line addresses contested by ≥ 2 cores.
    pub shared_lines: BTreeSet<u64>,
}

impl RunObs {
    /// Distills a finished run: oracle verdict, choice-point recording,
    /// the perform log and final cycle count, plus any statically-known
    /// contested lines the caller wants folded in.
    pub fn new(
        failure: Option<Failure>,
        recording: ScheduleRecording,
        log: &ScvLog,
        cycles: u64,
        line_bytes: u64,
        static_shared: &BTreeSet<u64>,
    ) -> Self {
        let mut shared_lines = shared_lines(log, line_bytes);
        shared_lines.extend(static_shared.iter().copied());
        let fingerprint = fingerprint(&failure, &recording, log, cycles);
        let class = trace_class(&failure, log);
        RunObs {
            failure,
            points: recording.records,
            fingerprint,
            class,
            shared_lines,
        }
    }
}

/// Aggregate result of one exhaustive exploration.
#[derive(Clone, Debug, Default)]
pub struct ExhaustiveOutcome {
    /// Simulator runs actually executed.
    pub executed: u64,
    /// Subtrees discharged by the reductions: `arity - 1` immediate
    /// options per conflict-pruned point (never simulated), plus one per
    /// absorbed (slept) probe that still had bound left to spend. At
    /// bound 1 sleeping discharges nothing, so `explored` equals the
    /// full-enumeration run count exactly.
    pub pruned: u64,
    /// Schedules accounted for: `executed + pruned`.
    pub explored: u64,
    /// Distinct Mazurkiewicz classes among the executed runs.
    pub classes: u64,
    /// Choice points the natural run exposed (the tree's initial width).
    pub frontier: u64,
    /// True when every subtree ran to completion within its budget. A
    /// complete, clean outcome is a proof of SC up to the bound.
    pub complete: bool,
    /// The first failing schedule in canonical depth-first order.
    pub violation: Option<(Vec<u8>, Failure)>,
}

/// One top-level subtree's contribution (internal).
#[derive(Clone, Debug, Default)]
struct SubtreeReport {
    executed: u64,
    pruned: u64,
    classes: BTreeSet<u64>,
    complete: bool,
    violation: Option<(Vec<u8>, Failure)>,
}

struct Ctx<'a, F> {
    cfg: &'a DporConfig,
    run: &'a F,
    shared: &'a BTreeSet<u64>,
}

impl<F> Ctx<'_, F>
where
    F: Fn(&ScheduleScript) -> RunObs,
{
    /// True when delaying `rec`'s event can change inter-core
    /// happens-before order (conflict-prune test). Points without a
    /// subject line (GRT traffic) always qualify.
    fn conflicting(&self, rec: &ChoiceRecord) -> bool {
        match rec.point.line {
            Some(l) => self.shared.contains(&l),
            None => true,
        }
    }

    /// Explores every schedule extending `decisions` whose extra
    /// nonzero choices all land at indices `>= decisions.len()`, given
    /// `obs` (the already-executed run of `decisions` + zeros) and the
    /// cost spent so far. Deepest-point-first, matching the canonical
    /// serial order the parallel fold reproduces.
    fn branch(&self, rep: &mut SubtreeReport, decisions: &[u8], obs: &RunObs, cost: usize) {
        if cost >= self.cfg.bound {
            return;
        }
        for i in (decisions.len()..obs.points.len()).rev() {
            if self.cfg.prune && !self.conflicting(&obs.points[i]) {
                rep.pruned += u64::from(self.cfg.arity) - 1;
                continue;
            }
            for k in 1..self.cfg.arity {
                if rep.violation.is_some() || !rep.complete {
                    return;
                }
                if rep.executed >= self.cfg.max_runs_per_subtree {
                    rep.complete = false;
                    return;
                }
                let mut d2 = decisions.to_vec();
                d2.resize(i + 1, 0);
                d2[i] = k;
                let obs2 = (self.run)(&self.cfg.script(d2.clone()));
                rep.executed += 1;
                rep.classes.insert(obs2.class);
                if let Some(f) = obs2.failure.clone() {
                    rep.violation = Some((d2, f));
                    return;
                }
                if self.cfg.prune && obs2.fingerprint == obs.fingerprint {
                    // The delay was absorbed: the run replayed the
                    // parent cycle-for-cycle, so every deeper extension
                    // replays the sibling subtree. Sleep it — but only
                    // charge `pruned` when bound remained to spend (at
                    // the leaf level there is no subtree to discharge,
                    // and `explored` must match full enumeration).
                    if cost + 1 < self.cfg.bound {
                        rep.pruned += 1;
                    }
                    continue;
                }
                self.branch(rep, &d2, &obs2, cost + 1);
            }
        }
    }
}

/// Walks the bounded choice tree of `run` and reports the census.
///
/// `run` must be a pure function of the script (each invocation builds
/// a fresh machine). Top-level branches fan out over `jobs` workers;
/// the fold is serial-equivalent, so the outcome is byte-identical at
/// any worker count.
pub fn explore<F>(cfg: &DporConfig, jobs: usize, run: F) -> ExhaustiveOutcome
where
    F: Fn(&ScheduleScript) -> RunObs + Sync,
{
    let root = run(&cfg.script(Vec::new()));
    let mut out = ExhaustiveOutcome {
        executed: 1,
        complete: true,
        frontier: root.points.len() as u64,
        ..ExhaustiveOutcome::default()
    };
    let mut classes: BTreeSet<u64> = BTreeSet::new();
    classes.insert(root.class);
    if let Some(f) = root.failure.clone() {
        out.violation = Some((Vec::new(), f));
        out.classes = classes.len() as u64;
        out.explored = out.executed + out.pruned;
        return out;
    }

    // One work item per top-level choice point, in canonical
    // (deepest-first) order: item for index i explores every schedule
    // whose *first* nonzero decision is at i.
    let items: Vec<usize> = (0..root.points.len()).rev().collect();
    let ctx = Ctx {
        cfg,
        run: &run,
        shared: &root.shared_lines,
    };
    let reports = par::par_map(jobs.max(1), &items, |_, &i| {
        let mut rep = SubtreeReport {
            complete: true,
            ..SubtreeReport::default()
        };
        if cfg.bound == 0 {
            return rep;
        }
        if cfg.prune && !ctx.conflicting(&root.points[i]) {
            rep.pruned += u64::from(cfg.arity) - 1;
            return rep;
        }
        for k in 1..cfg.arity {
            if rep.violation.is_some() || !rep.complete {
                break;
            }
            let mut d = vec![0u8; i + 1];
            d[i] = k;
            let obs = run(&cfg.script(d.clone()));
            rep.executed += 1;
            rep.classes.insert(obs.class);
            if let Some(f) = obs.failure.clone() {
                rep.violation = Some((d, f));
                break;
            }
            if cfg.prune && obs.fingerprint == root.fingerprint {
                if cfg.bound > 1 {
                    rep.pruned += 1;
                }
                continue;
            }
            ctx.branch(&mut rep, &d, &obs, 1);
        }
        rep
    });

    // Serial-equivalent fold: accumulate subtrees in canonical order,
    // stopping after the first one that found a violation — exactly
    // where the serial walk would have stopped.
    for rep in reports {
        out.executed += rep.executed;
        out.pruned += rep.pruned;
        out.complete &= rep.complete;
        classes.extend(rep.classes.iter().copied());
        if rep.violation.is_some() {
            out.violation = rep.violation;
            break;
        }
    }
    out.classes = classes.len() as u64;
    out.explored = out.executed + out.pruned;
    out
}

// ----------------------------------------------------------------------
// Run distillation helpers
// ----------------------------------------------------------------------

/// FNV-1a over a stream of words: cheap, deterministic, platform-stable.
struct Hasher(u64);

impl Hasher {
    fn new() -> Self {
        Hasher(0xcbf2_9ce4_8422_2325)
    }
    fn word(&mut self, w: u64) {
        // Byte-wise FNV over the word's little-endian bytes.
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn failure_tag(failure: &Option<Failure>) -> u64 {
    match failure {
        None => 0,
        Some(Failure::Scv { .. }) => 1,
        Some(Failure::Deadlock) => 2,
        Some(Failure::CycleLimit) => 3,
    }
}

/// Timing-faithful identity of one run: outcome, final cycle, the full
/// perform log and the full choice-point record. Equal fingerprints ⇒
/// the runs executed identically (used by the sleep-set test).
pub fn fingerprint(
    failure: &Option<Failure>,
    recording: &ScheduleRecording,
    log: &ScvLog,
    cycles: u64,
) -> u64 {
    let mut h = Hasher::new();
    h.word(failure_tag(failure));
    h.word(cycles);
    for e in &log.events {
        h.word(e.core as u64);
        h.word(e.addr);
        h.word(u64::from(e.is_write));
        h.word(e.po);
    }
    for r in &recording.records {
        // Note: only the *points* (behavior), never the chosen option
        // (input) — a run whose extra delay was absorbed must
        // fingerprint-match the sibling that never delayed.
        h.word(r.point.kind as u64);
        h.word(r.point.core as u64);
        h.word(r.point.line.map_or(u64::MAX, |l| l));
        h.word(r.point.seq);
    }
    h.0
}

/// Mazurkiewicz-class signature of a run: per word address, the total
/// order of writes with the reads between consecutive writes treated as
/// an unordered group (canonicalized by sorting on `(core, po)`), plus
/// the outcome tag. Two runs with equal signatures perform the same
/// conflict orders — they are the same trace, only scheduled
/// differently.
pub fn trace_class(failure: &Option<Failure>, log: &ScvLog) -> u64 {
    let mut addrs: Vec<u64> = log.events.iter().map(|e| e.addr).collect();
    addrs.sort_unstable();
    addrs.dedup();
    let mut h = Hasher::new();
    h.word(failure_tag(failure));
    for addr in addrs {
        h.word(addr);
        let mut readers: Vec<(u64, u64)> = Vec::new();
        let flush = |h: &mut Hasher, readers: &mut Vec<(u64, u64)>| {
            readers.sort_unstable();
            for &(c, po) in readers.iter() {
                h.word(0xAAAA);
                h.word(c);
                h.word(po);
            }
            readers.clear();
        };
        for e in log.events.iter().filter(|e| e.addr == addr) {
            if e.is_write {
                flush(&mut h, &mut readers);
                h.word(0xBBBB);
                h.word(e.core as u64);
                h.word(e.po);
            } else {
                readers.push((e.core as u64, e.po));
            }
        }
        flush(&mut h, &mut readers);
    }
    h.0
}

/// Raw line addresses accessed by two or more cores in `log`.
pub fn shared_lines(log: &ScvLog, line_bytes: u64) -> BTreeSet<u64> {
    use std::collections::BTreeMap;
    let mut owner: BTreeMap<u64, usize> = BTreeMap::new();
    let mut shared = BTreeSet::new();
    for e in &log.events {
        let line = e.addr / line_bytes;
        match owner.get(&line) {
            None => {
                owner.insert(line, e.core);
            }
            Some(&c) if c == e.core => {}
            Some(_) => {
                shared.insert(line);
            }
        }
    }
    shared
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence_common::schedule::{ChoiceKind, ChoicePoint};

    fn obs(points: usize, fail: Option<Failure>, fp: u64, class: u64) -> RunObs {
        RunObs {
            failure: fail,
            points: (0..points)
                .map(|i| ChoiceRecord {
                    point: ChoicePoint {
                        kind: ChoiceKind::NocMessage,
                        core: 0,
                        line: Some(1),
                        seq: i as u64,
                    },
                    option: 0,
                })
                .collect(),
            fingerprint: fp,
            class,
            shared_lines: BTreeSet::from([1]),
        }
    }

    /// A synthetic run function: 3 points, every schedule distinct,
    /// no failures. Bound-2 arity-2 over 3 points = 1 + 3 + 3 = 7 runs.
    #[test]
    fn enumerates_the_bounded_tree_exactly_once() {
        let cfg = DporConfig {
            bound: 2,
            prune: false,
            ..DporConfig::default()
        };
        let seen = std::sync::Mutex::new(Vec::new());
        let out = explore(&cfg, 1, |s: &ScheduleScript| {
            let mut key = s.decisions.clone();
            while key.last() == Some(&0) {
                key.pop();
            }
            seen.lock().unwrap().push(key.clone());
            let mut fp = Hasher::new();
            for &d in &key {
                fp.word(u64::from(d));
            }
            fp.word(key.len() as u64 + 100);
            obs(3, None, fp.0, fp.0)
        });
        assert_eq!(out.executed, 7);
        assert_eq!(out.frontier, 3);
        assert!(out.complete);
        assert!(out.violation.is_none());
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 7, "no schedule may be executed twice");
        // classes: all runs distinct by construction.
        assert_eq!(out.classes, 7);
        assert_eq!(out.explored, out.executed);
    }

    #[test]
    fn absorbed_delays_are_slept() {
        // Every delayed run fingerprints identically to the root: the
        // engine must execute only the root + the 3 first-level probes
        // and sleep everything below them.
        let cfg = DporConfig {
            bound: 2,
            prune: true,
            ..DporConfig::default()
        };
        let out = explore(&cfg, 1, |_s: &ScheduleScript| obs(3, None, 42, 42));
        assert_eq!(out.executed, 1 + 3);
        assert_eq!(out.pruned, 3);
        assert!(out.complete);
        assert_eq!(out.classes, 1);
    }

    #[test]
    fn private_lines_are_conflict_pruned() {
        // Points subject to a line only one core touches are skipped
        // without simulation.
        let cfg = DporConfig {
            bound: 1,
            prune: true,
            ..DporConfig::default()
        };
        let out = explore(&cfg, 1, |s: &ScheduleScript| {
            let mut o = obs(2, None, 7 + s.decisions.len() as u64, 9);
            o.points[1].point.line = Some(0xDEAD); // not in shared set
            o.shared_lines = BTreeSet::from([1]);
            o
        });
        // Root + the one conflicting point's probe; the private point
        // never runs.
        assert_eq!(out.executed, 2);
        assert_eq!(out.pruned, 1);
        assert_eq!(out.explored, 3);
    }

    #[test]
    fn violation_stops_at_canonical_first_failure() {
        // Deepest-first order: index 2 probes before index 1. Make
        // index 1's delay the failing one; the engine must charge the
        // index-2 subtree fully before stopping at index 1.
        let cfg = DporConfig {
            bound: 1,
            prune: false,
            ..DporConfig::default()
        };
        for jobs in [1, 2, 4] {
            let out = explore(&cfg, jobs, |s: &ScheduleScript| {
                let fail = s.decisions.len() == 2 && s.decisions[1] == 1;
                let fp = s.decisions.iter().map(|&d| u64::from(d) + 1).sum::<u64>()
                    + 10 * s.decisions.len() as u64;
                obs(
                    3,
                    fail.then_some(Failure::Deadlock),
                    fp,
                    fp,
                )
            });
            // Runs: root, probe@2, probe@1 (fails). probe@0 never runs.
            assert_eq!(out.executed, 3, "jobs={jobs}");
            let (d, f) = out.violation.clone().expect("must fail");
            assert_eq!(d, vec![0, 1]);
            assert_eq!(f, Failure::Deadlock);
        }
    }

    #[test]
    fn parallel_fold_is_serial_equivalent() {
        let cfg = DporConfig {
            bound: 2,
            prune: true,
            ..DporConfig::default()
        };
        let run = |s: &ScheduleScript| {
            let mut fp = Hasher::new();
            for &d in &s.decisions {
                fp.word(u64::from(d));
            }
            fp.word(s.decisions.len() as u64);
            obs(4, None, fp.0, fp.0 % 5)
        };
        let a = explore(&cfg, 1, run);
        let b = explore(&cfg, 3, run);
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.pruned, b.pruned);
        assert_eq!(a.classes, b.classes);
        assert_eq!(a.explored, b.explored);
        assert_eq!(a.complete, b.complete);
    }

    #[test]
    fn trace_class_ignores_schedule_but_sees_conflict_order() {
        let mut a = ScvLog::new();
        a.record(0, 8, true, 0);
        a.record(1, 8, false, 0);
        a.record(2, 16, false, 0); // unrelated read, interleaved late
        let mut b = ScvLog::new();
        b.record(2, 16, false, 0); // same events, different global order
        b.record(0, 8, true, 0);
        b.record(1, 8, false, 0);
        assert_eq!(trace_class(&None, &a), trace_class(&None, &b));
        let mut c = ScvLog::new();
        c.record(1, 8, false, 0); // read now BEFORE the write: new class
        c.record(0, 8, true, 0);
        c.record(2, 16, false, 0);
        assert_ne!(trace_class(&None, &a), trace_class(&None, &c));
    }

    #[test]
    fn shared_lines_require_two_cores() {
        let mut log = ScvLog::new();
        log.record(0, 0, true, 0);
        log.record(0, 8, false, 1); // same line (32 B): still private
        log.record(1, 64, true, 0);
        log.record(0, 64, false, 2); // line 2 contested
        let s = shared_lines(&log, 32);
        assert_eq!(s, BTreeSet::from([2]));
    }
}
