//! Litmus-style scenarios the explorer runs and shrinks.
//!
//! A [`Scenario`] is a pure-data description of a multithreaded program
//! over a small pool of address *slots* (one cache line each). Keeping it
//! data-only — rather than boxed [`ThreadProgram`]s — is what makes
//! shrinking possible: the explorer can drop threads and instructions,
//! rebuild programs, and re-run, all deterministically.
//!
//! [`ThreadProgram`]: asymfence::prelude::ThreadProgram

use std::fmt;

use asymfence::prelude::{
    Addr, FenceDesign, FenceRole, Instr, MachineConfig, Machine, Perturbation,
};
use asymfence_common::schedule::{SchedulePlan, ScheduleScript};
use asymfence_common::prop::{pairs, u8s, usizes, vecs, Gen, VecGen, PairGen, BoolGen, U8Range};
use asymfence_common::rng::SimRng;
use asymfence_common::prop::bools;

/// One scenario instruction (data-only mirror of [`Instr`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Store to a slot (the value is derived from thread/op position).
    Store {
        /// Address slot.
        slot: u8,
    },
    /// Untagged load from a slot (untagged maximizes reordering room).
    Load {
        /// Address slot.
        slot: u8,
    },
    /// A fence; its role comes from the owning [`ThreadSpec`].
    Fence,
    /// Non-memory work.
    Compute {
        /// Units of work.
        cycles: u16,
    },
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Store { slot } => write!(f, "St s{slot}"),
            Op::Load { slot } => write!(f, "Ld s{slot}"),
            Op::Fence => write!(f, "Fence"),
            Op::Compute { cycles } => write!(f, "Cp {cycles}"),
        }
    }
}

/// One thread of a scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadSpec {
    /// The instruction list.
    pub ops: Vec<Op>,
    /// Role given to every `Fence` op in this thread.
    pub role: FenceRole,
}

/// A complete explorable program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Display name (used in reports).
    pub name: String,
    /// The threads.
    pub threads: Vec<ThreadSpec>,
}

/// Byte address of a slot: one cache line (and then some) apart, so
/// distinct slots never falsely share.
pub fn slot_addr(slot: u8) -> Addr {
    Addr::new(0x40 * slot as u64)
}

impl Scenario {
    /// Total instruction count across threads.
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(|t| t.ops.len()).sum()
    }

    /// Builds a machine for this scenario: one core per thread (min 2),
    /// SCV log on, and the given design + perturbation.
    pub fn machine(
        &self,
        design: FenceDesign,
        perturb: Perturbation,
        watchdog_cycles: u64,
    ) -> Machine {
        self.build_machine(design, perturb, watchdog_cycles, false)
    }

    /// As [`Scenario::machine`], with the fence-lifecycle trace sink
    /// attached. The explorer uses this to replay a shrunk failing seed
    /// and attach the trace to its [`Counterexample`](crate::Counterexample).
    pub fn machine_traced(
        &self,
        design: FenceDesign,
        perturb: Perturbation,
        watchdog_cycles: u64,
    ) -> Machine {
        self.build_machine(design, perturb, watchdog_cycles, true)
    }

    /// As [`Scenario::machine`], but driven by an explicit
    /// [`ScheduleScript`] instead of seeded jitter — the exhaustive
    /// explorer builds one machine per decision vector through this.
    pub fn machine_scripted(
        &self,
        design: FenceDesign,
        script: ScheduleScript,
        watchdog_cycles: u64,
    ) -> Machine {
        self.build_scripted(design, script, watchdog_cycles, false)
    }

    /// As [`Scenario::machine_scripted`], with the fence-lifecycle
    /// trace attached (counterexample presentation replays).
    pub fn machine_scripted_traced(
        &self,
        design: FenceDesign,
        script: ScheduleScript,
        watchdog_cycles: u64,
    ) -> Machine {
        self.build_scripted(design, script, watchdog_cycles, true)
    }

    /// Raw line addresses of every slot two or more threads touch — the
    /// statically-known contested footprint the exhaustive explorer
    /// seeds its conflict-pruning set with.
    pub fn shared_slot_lines(&self, line_bytes: u64) -> std::collections::BTreeSet<u64> {
        use std::collections::BTreeMap;
        let mut owner: BTreeMap<u8, usize> = BTreeMap::new();
        let mut shared = std::collections::BTreeSet::new();
        for (ti, t) in self.threads.iter().enumerate() {
            for op in &t.ops {
                let slot = match *op {
                    Op::Store { slot } | Op::Load { slot } => slot,
                    Op::Fence | Op::Compute { .. } => continue,
                };
                match owner.get(&slot) {
                    None => {
                        owner.insert(slot, ti);
                    }
                    Some(&o) if o == ti => {}
                    Some(_) => {
                        shared.insert(slot_addr(slot).raw() / line_bytes);
                    }
                }
            }
        }
        shared
    }

    fn build_scripted(
        &self,
        design: FenceDesign,
        script: ScheduleScript,
        watchdog_cycles: u64,
        trace: bool,
    ) -> Machine {
        let cfg = self
            .config_builder(design, Perturbation::default(), watchdog_cycles, trace)
            .schedule(SchedulePlan::Scripted(script))
            .build();
        self.populate(Machine::new(&cfg))
    }

    fn build_machine(
        &self,
        design: FenceDesign,
        perturb: Perturbation,
        watchdog_cycles: u64,
        trace: bool,
    ) -> Machine {
        let cfg = self
            .config_builder(design, perturb, watchdog_cycles, trace)
            .build();
        self.populate(Machine::new(&cfg))
    }

    fn config_builder(
        &self,
        design: FenceDesign,
        perturb: Perturbation,
        watchdog_cycles: u64,
        trace: bool,
    ) -> asymfence_common::config::MachineConfigBuilder {
        MachineConfig::builder()
            .cores(self.threads.len().max(2))
            .fence_design(design)
            .record_scv_log(true)
            .record_trace(trace)
            .watchdog_cycles(watchdog_cycles)
            .perturb(perturb)
    }

    fn populate(&self, mut m: Machine) -> Machine {
        for (ti, t) in self.threads.iter().enumerate() {
            let mut instrs = Vec::with_capacity(t.ops.len());
            for (oi, op) in t.ops.iter().enumerate() {
                instrs.push(match *op {
                    Op::Store { slot } => Instr::Store {
                        addr: slot_addr(slot),
                        value: (ti as u64 + 1) * 1000 + oi as u64 + 1,
                    },
                    Op::Load { slot } => Instr::Load {
                        addr: slot_addr(slot),
                        tag: None,
                    },
                    Op::Fence => Instr::fence(t.role),
                    Op::Compute { cycles } => Instr::Compute {
                        cycles: cycles as u64,
                    },
                });
            }
            let (p, _regs) = asymfence::prelude::ScriptProgram::new(instrs);
            m.add_thread(Box::new(p));
        }
        m
    }

    /// Structurally smaller variants, in shrink priority order: first
    /// drop whole threads, then single instructions. The explorer and the
    /// property harness both shrink through this.
    pub fn shrink_candidates(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        if self.threads.len() > 1 {
            for i in 0..self.threads.len() {
                let mut s = self.clone();
                s.threads.remove(i);
                out.push(s);
            }
        }
        for t in 0..self.threads.len() {
            if self.threads[t].ops.len() > 1 {
                for i in 0..self.threads[t].ops.len() {
                    let mut s = self.clone();
                    s.threads[t].ops.remove(i);
                    out.push(s);
                }
            }
        }
        out
    }

    /// The role vector the paper's grouping assumptions allow for a
    /// fenced scenario of `n` threads under `design`: WS+ takes at most
    /// one weak (Critical) fence per group; SW+ takes any *asymmetric*
    /// group, so at least one fence stays strong (all-weak groups are
    /// W+/Wee territory — running one under SW+ can mutually bounce both
    /// pre-sets forever, which the explorer finds as a deadlock).
    pub fn roles_for(design: FenceDesign, n: usize) -> Vec<FenceRole> {
        use FenceRole::{Critical, NonCritical};
        (0..n)
            .map(|i| match design {
                FenceDesign::SPlus => NonCritical,
                FenceDesign::WsPlus => {
                    if i == 0 {
                        Critical
                    } else {
                        NonCritical
                    }
                }
                FenceDesign::SwPlus => {
                    if n >= 2 && i == n - 1 {
                        NonCritical
                    } else {
                        Critical
                    }
                }
                FenceDesign::WPlus | FenceDesign::Wee | FenceDesign::WfOnlyUnsafe => Critical,
            })
            .collect()
    }

    /// Re-tags every thread's fence role per [`Scenario::roles_for`].
    pub fn with_roles_for(mut self, design: FenceDesign) -> Scenario {
        let roles = Self::roles_for(design, self.threads.len());
        for (t, role) in self.threads.iter_mut().zip(roles) {
            t.role = role;
        }
        self
    }

    // ------------------------------------------------------------------
    // Canned scenarios
    // ------------------------------------------------------------------

    /// Dekker/store-buffering: `T0: St x; [F]; Ld y | T1: St y; [F]; Ld x`.
    /// Unfenced, TSO reorders it into a Shasha–Snir cycle; fenced, every
    /// design must keep it SC.
    pub fn store_buffering(fenced: bool) -> Scenario {
        let side = |mine: u8, other: u8| {
            let mut ops = vec![Op::Store { slot: mine }];
            if fenced {
                ops.push(Op::Fence);
            }
            ops.push(Op::Load { slot: other });
            ThreadSpec {
                ops,
                role: FenceRole::Critical,
            }
        };
        Scenario {
            name: if fenced { "sb-fenced" } else { "sb-unfenced" }.into(),
            threads: vec![side(0, 1), side(1, 0)],
        }
    }

    /// An obfuscated unfenced store-buffering core buried in timing
    /// padding and an innocent third thread — the explorer's shrink
    /// test-bed: it must boil this down to the two-thread, two-op core.
    pub fn store_buffering_padded() -> Scenario {
        let side = |mine: u8, other: u8, scratch: u8| ThreadSpec {
            ops: vec![
                Op::Load { slot: other },
                Op::Compute { cycles: 400 },
                Op::Store { slot: scratch },
                Op::Store { slot: mine },
                Op::Load { slot: other },
            ],
            role: FenceRole::Critical,
        };
        let bystander = ThreadSpec {
            ops: vec![
                Op::Store { slot: 4 },
                Op::Compute { cycles: 100 },
                Op::Load { slot: 5 },
            ],
            role: FenceRole::NonCritical,
        };
        Scenario {
            name: "sb-padded".into(),
            threads: vec![side(0, 1, 2), side(1, 0, 3), bystander],
        }
    }

    /// Three-thread fence cycle (paper Figures 1e/3c):
    /// `Ti: St x_i; F; Ld x_{i+1 mod 3}`.
    pub fn three_thread_cycle() -> Scenario {
        let side = |mine: u8, other: u8| ThreadSpec {
            ops: vec![Op::Store { slot: mine }, Op::Fence, Op::Load { slot: other }],
            role: FenceRole::Critical,
        };
        Scenario {
            name: "3cycle-fenced".into(),
            threads: vec![side(0, 1), side(1, 2), side(2, 0)],
        }
    }

    /// Dekker with every fence weak (Critical) — legal for W+/Wee, but
    /// an all-weak group violates SW+'s asymmetric-group assumption, and
    /// exhaustive exploration must find the resulting non-SC schedule.
    pub fn store_buffering_all_weak() -> Scenario {
        let mut sc = Scenario::store_buffering(true);
        sc.name = "sb-allweak".into();
        for t in &mut sc.threads {
            t.role = FenceRole::Critical;
        }
        sc
    }

    /// Dekker with one side's fence collapsed away: the unfenced side
    /// still reorders its store past its load, so the SC violation
    /// survives under *every* design.
    pub fn store_buffering_half_fenced() -> Scenario {
        let mut sc = Scenario::store_buffering(true);
        sc.name = "sb-half-fenced".into();
        sc.threads[1].ops.retain(|op| *op != Op::Fence);
        sc
    }

    /// Dekker with doubled adjacent fences on each side — the
    /// collapsed-fence variant: back-to-back fences must behave exactly
    /// like one (the second joins or immediately follows the first's
    /// group), so the scenario stays SC under every design.
    pub fn store_buffering_double_fenced() -> Scenario {
        let mut sc = Scenario::store_buffering(true);
        sc.name = "sb-double-fenced".into();
        for t in &mut sc.threads {
            let at = t.ops.iter().position(|op| *op == Op::Fence).unwrap();
            t.ops.insert(at, Op::Fence);
        }
        sc
    }

    /// Message passing: `T0: St data; [F]; St flag | T1: Ld flag; [F];
    /// Ld data`. TSO never reorders store→store or load→load, so the
    /// scenario is SC even unfenced.
    pub fn message_passing(fenced: bool) -> Scenario {
        let mut t0 = vec![Op::Store { slot: 0 }];
        let mut t1 = vec![Op::Load { slot: 1 }];
        if fenced {
            t0.push(Op::Fence);
            t1.push(Op::Fence);
        }
        t0.push(Op::Store { slot: 1 });
        t1.push(Op::Load { slot: 0 });
        Scenario {
            name: if fenced { "mp-fenced" } else { "mp-unfenced" }.into(),
            threads: vec![
                ThreadSpec {
                    ops: t0,
                    role: FenceRole::Critical,
                },
                ThreadSpec {
                    ops: t1,
                    role: FenceRole::Critical,
                },
            ],
        }
    }

    /// Load buffering: `T0: Ld x; St y | T1: Ld y; St x`. The both-
    /// loads-see-1 outcome needs load→store reordering, which TSO (and
    /// this in-order pipeline) forbids — SC even unfenced.
    pub fn load_buffering() -> Scenario {
        let side = |mine: u8, other: u8| ThreadSpec {
            ops: vec![Op::Load { slot: other }, Op::Store { slot: mine }],
            role: FenceRole::Critical,
        };
        Scenario {
            name: "lb".into(),
            threads: vec![side(0, 1), side(1, 0)],
        }
    }

    /// Independent reads of independent writes: two writers, two
    /// readers observing in opposite orders. Invalidation-based
    /// coherence gives single-copy atomicity, so the readers can never
    /// disagree on the write order — SC even unfenced.
    pub fn iriw() -> Scenario {
        let writer = |slot: u8| ThreadSpec {
            ops: vec![Op::Store { slot }],
            role: FenceRole::NonCritical,
        };
        let reader = |first: u8, second: u8| ThreadSpec {
            ops: vec![Op::Load { slot: first }, Op::Load { slot: second }],
            role: FenceRole::NonCritical,
        };
        Scenario {
            name: "iriw".into(),
            threads: vec![writer(0), writer(1), reader(0, 1), reader(1, 0)],
        }
    }

    /// The litmus corpus the exhaustive explorer checks as tier-1
    /// tests: `(scenario, expected-SC)` pairs, where the verdict holds
    /// under every safe design (roles re-tagged per design via
    /// [`Scenario::with_roles_for`]). Design-specific cases (the SW+
    /// all-weak group) are asserted separately.
    pub fn litmus_corpus() -> Vec<(Scenario, bool)> {
        vec![
            (Scenario::store_buffering(false), false),
            (Scenario::store_buffering(true), true),
            (Scenario::store_buffering_half_fenced(), false),
            (Scenario::store_buffering_double_fenced(), true),
            (Scenario::message_passing(false), true),
            (Scenario::message_passing(true), true),
            (Scenario::load_buffering(), true),
            (Scenario::iriw(), true),
            (Scenario::three_thread_cycle(), true),
        ]
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario `{}` ({} threads):", self.name, self.threads.len())?;
        for (i, t) in self.threads.iter().enumerate() {
            let ops: Vec<String> = t.ops.iter().map(|o| o.to_string()).collect();
            writeln!(f, "  T{i} [{:?}]: {}", t.role, ops.join("; "))?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Strategy combinators for generated scenarios
// ----------------------------------------------------------------------

/// Generator for random fenced-or-not thread programs: each thread is a
/// sequence of stores/loads over `slots` address slots, with a fence
/// inserted after every store when `fenced` (the conservative placement a
/// compiler enforcing SC would use).
#[derive(Clone, Copy, Debug)]
pub struct ScenarioGen {
    /// Minimum number of threads.
    pub min_threads: usize,
    /// Maximum number of threads.
    pub max_threads: usize,
    /// Max memory ops per thread (min 1).
    pub max_ops: usize,
    /// Number of address slots.
    pub slots: u8,
    /// Insert a fence after every store.
    pub fenced: bool,
}

impl ScenarioGen {
    fn ops_gen(&self) -> VecGen<PairGen<BoolGen, U8Range>> {
        vecs(pairs(bools(), u8s(0, self.slots - 1)), 1, self.max_ops)
    }

    /// Turns a raw `(is_store, slot)` list into a thread.
    pub fn thread_from_ops(&self, raw: &[(bool, u8)], role: FenceRole) -> ThreadSpec {
        let mut ops = Vec::new();
        for &(is_store, slot) in raw {
            if is_store {
                ops.push(Op::Store { slot });
                if self.fenced {
                    ops.push(Op::Fence);
                }
            } else {
                ops.push(Op::Load { slot });
            }
        }
        ThreadSpec { ops, role }
    }
}

impl Gen for ScenarioGen {
    type Value = Scenario;

    fn sample(&self, rng: &mut SimRng) -> Scenario {
        let n = usizes(self.min_threads, self.max_threads).sample(rng);
        let og = self.ops_gen();
        let threads = (0..n)
            .map(|_| self.thread_from_ops(&og.sample(rng), FenceRole::Critical))
            .collect();
        Scenario {
            name: if self.fenced { "gen-fenced" } else { "gen-unfenced" }.into(),
            threads,
        }
    }

    fn shrink(&self, v: &Scenario) -> Vec<Scenario> {
        v.shrink_candidates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::RunOutcome;

    #[test]
    fn sb_unfenced_builds_and_runs() {
        let sc = Scenario::store_buffering(false);
        assert_eq!(sc.total_ops(), 4);
        let mut m = sc.machine(FenceDesign::SPlus, Perturbation::default(), 50_000);
        assert_eq!(m.run(1_000_000), RunOutcome::Finished);
        assert!(m.scv_log().is_some());
    }

    #[test]
    fn shrink_candidates_prioritize_threads_then_ops() {
        let sc = Scenario::store_buffering_padded();
        let cands = sc.shrink_candidates();
        // The first candidates drop whole threads.
        assert_eq!(cands[0].threads.len(), sc.threads.len() - 1);
        assert_eq!(cands[1].threads.len(), sc.threads.len() - 1);
        // Later candidates drop single ops.
        assert!(cands
            .iter()
            .any(|c| c.threads.len() == sc.threads.len() && c.total_ops() == sc.total_ops() - 1));
        // Never shrink to an empty scenario or an empty thread.
        assert!(cands.iter().all(|c| !c.threads.is_empty()));
        assert!(cands.iter().all(|c| c.threads.iter().all(|t| !t.ops.is_empty())));
    }

    #[test]
    fn roles_respect_grouping_assumptions() {
        use FenceRole::{Critical, NonCritical};
        assert_eq!(
            Scenario::roles_for(FenceDesign::WsPlus, 3),
            vec![Critical, NonCritical, NonCritical]
        );
        assert_eq!(
            Scenario::roles_for(FenceDesign::SwPlus, 3),
            vec![Critical, Critical, NonCritical]
        );
        assert_eq!(
            Scenario::roles_for(FenceDesign::SwPlus, 2),
            vec![Critical, NonCritical]
        );
        assert_eq!(
            Scenario::roles_for(FenceDesign::WPlus, 2),
            vec![Critical, Critical]
        );
        assert!(Scenario::roles_for(FenceDesign::SPlus, 4)
            .iter()
            .all(|r| *r == NonCritical));
    }

    #[test]
    fn scenario_gen_is_deterministic_and_shrinks() {
        let g = ScenarioGen {
            min_threads: 2,
            max_threads: 3,
            max_ops: 6,
            slots: 4,
            fenced: true,
        };
        let a = g.sample(&mut SimRng::new(5));
        let b = g.sample(&mut SimRng::new(5));
        assert_eq!(a, b);
        assert!((2..=3).contains(&a.threads.len()));
        // Fenced generation puts a fence after every store.
        for t in &a.threads {
            for (i, op) in t.ops.iter().enumerate() {
                if matches!(op, Op::Store { .. }) {
                    assert_eq!(t.ops.get(i + 1), Some(&Op::Fence));
                }
            }
        }
        if a.threads.len() > 1 {
            assert!(!g.shrink(&a).is_empty());
        }
    }

    #[test]
    fn display_is_human_readable() {
        let sc = Scenario::store_buffering(true);
        let s = sc.to_string();
        assert!(s.contains("sb-fenced"));
        assert!(s.contains("St s0"));
        assert!(s.contains("Fence"));
        assert!(s.contains("Ld s1"));
    }
}
