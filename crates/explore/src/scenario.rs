//! Litmus-style scenarios the explorer runs and shrinks.
//!
//! A [`Scenario`] is a pure-data description of a multithreaded program
//! over a small pool of address *slots* (one cache line each). Keeping it
//! data-only — rather than boxed [`ThreadProgram`]s — is what makes
//! shrinking possible: the explorer can drop threads and instructions,
//! rebuild programs, and re-run, all deterministically.
//!
//! [`ThreadProgram`]: asymfence::prelude::ThreadProgram

use std::fmt;

use asymfence::prelude::{
    Addr, FenceDesign, FenceRole, Instr, MachineConfig, Machine, Perturbation,
};
use asymfence_common::prop::{pairs, u8s, usizes, vecs, Gen, VecGen, PairGen, BoolGen, U8Range};
use asymfence_common::rng::SimRng;
use asymfence_common::prop::bools;

/// One scenario instruction (data-only mirror of [`Instr`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Store to a slot (the value is derived from thread/op position).
    Store {
        /// Address slot.
        slot: u8,
    },
    /// Untagged load from a slot (untagged maximizes reordering room).
    Load {
        /// Address slot.
        slot: u8,
    },
    /// A fence; its role comes from the owning [`ThreadSpec`].
    Fence,
    /// Non-memory work.
    Compute {
        /// Units of work.
        cycles: u16,
    },
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Store { slot } => write!(f, "St s{slot}"),
            Op::Load { slot } => write!(f, "Ld s{slot}"),
            Op::Fence => write!(f, "Fence"),
            Op::Compute { cycles } => write!(f, "Cp {cycles}"),
        }
    }
}

/// One thread of a scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadSpec {
    /// The instruction list.
    pub ops: Vec<Op>,
    /// Role given to every `Fence` op in this thread.
    pub role: FenceRole,
}

/// A complete explorable program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Display name (used in reports).
    pub name: String,
    /// The threads.
    pub threads: Vec<ThreadSpec>,
}

/// Byte address of a slot: one cache line (and then some) apart, so
/// distinct slots never falsely share.
pub fn slot_addr(slot: u8) -> Addr {
    Addr::new(0x40 * slot as u64)
}

impl Scenario {
    /// Total instruction count across threads.
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(|t| t.ops.len()).sum()
    }

    /// Builds a machine for this scenario: one core per thread (min 2),
    /// SCV log on, and the given design + perturbation.
    pub fn machine(
        &self,
        design: FenceDesign,
        perturb: Perturbation,
        watchdog_cycles: u64,
    ) -> Machine {
        self.build_machine(design, perturb, watchdog_cycles, false)
    }

    /// As [`Scenario::machine`], with the fence-lifecycle trace sink
    /// attached. The explorer uses this to replay a shrunk failing seed
    /// and attach the trace to its [`Counterexample`](crate::Counterexample).
    pub fn machine_traced(
        &self,
        design: FenceDesign,
        perturb: Perturbation,
        watchdog_cycles: u64,
    ) -> Machine {
        self.build_machine(design, perturb, watchdog_cycles, true)
    }

    fn build_machine(
        &self,
        design: FenceDesign,
        perturb: Perturbation,
        watchdog_cycles: u64,
        trace: bool,
    ) -> Machine {
        let cfg = MachineConfig::builder()
            .cores(self.threads.len().max(2))
            .fence_design(design)
            .record_scv_log(true)
            .record_trace(trace)
            .watchdog_cycles(watchdog_cycles)
            .perturb(perturb)
            .build();
        let mut m = Machine::new(&cfg);
        for (ti, t) in self.threads.iter().enumerate() {
            let mut instrs = Vec::with_capacity(t.ops.len());
            for (oi, op) in t.ops.iter().enumerate() {
                instrs.push(match *op {
                    Op::Store { slot } => Instr::Store {
                        addr: slot_addr(slot),
                        value: (ti as u64 + 1) * 1000 + oi as u64 + 1,
                    },
                    Op::Load { slot } => Instr::Load {
                        addr: slot_addr(slot),
                        tag: None,
                    },
                    Op::Fence => Instr::fence(t.role),
                    Op::Compute { cycles } => Instr::Compute {
                        cycles: cycles as u64,
                    },
                });
            }
            let (p, _regs) = asymfence::prelude::ScriptProgram::new(instrs);
            m.add_thread(Box::new(p));
        }
        m
    }

    /// Structurally smaller variants, in shrink priority order: first
    /// drop whole threads, then single instructions. The explorer and the
    /// property harness both shrink through this.
    pub fn shrink_candidates(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        if self.threads.len() > 1 {
            for i in 0..self.threads.len() {
                let mut s = self.clone();
                s.threads.remove(i);
                out.push(s);
            }
        }
        for t in 0..self.threads.len() {
            if self.threads[t].ops.len() > 1 {
                for i in 0..self.threads[t].ops.len() {
                    let mut s = self.clone();
                    s.threads[t].ops.remove(i);
                    out.push(s);
                }
            }
        }
        out
    }

    /// The role vector the paper's grouping assumptions allow for a
    /// fenced scenario of `n` threads under `design`: WS+ takes at most
    /// one weak (Critical) fence per group; SW+ takes any *asymmetric*
    /// group, so at least one fence stays strong (all-weak groups are
    /// W+/Wee territory — running one under SW+ can mutually bounce both
    /// pre-sets forever, which the explorer finds as a deadlock).
    pub fn roles_for(design: FenceDesign, n: usize) -> Vec<FenceRole> {
        use FenceRole::{Critical, NonCritical};
        (0..n)
            .map(|i| match design {
                FenceDesign::SPlus => NonCritical,
                FenceDesign::WsPlus => {
                    if i == 0 {
                        Critical
                    } else {
                        NonCritical
                    }
                }
                FenceDesign::SwPlus => {
                    if n >= 2 && i == n - 1 {
                        NonCritical
                    } else {
                        Critical
                    }
                }
                FenceDesign::WPlus | FenceDesign::Wee | FenceDesign::WfOnlyUnsafe => Critical,
            })
            .collect()
    }

    /// Re-tags every thread's fence role per [`Scenario::roles_for`].
    pub fn with_roles_for(mut self, design: FenceDesign) -> Scenario {
        let roles = Self::roles_for(design, self.threads.len());
        for (t, role) in self.threads.iter_mut().zip(roles) {
            t.role = role;
        }
        self
    }

    // ------------------------------------------------------------------
    // Canned scenarios
    // ------------------------------------------------------------------

    /// Dekker/store-buffering: `T0: St x; [F]; Ld y | T1: St y; [F]; Ld x`.
    /// Unfenced, TSO reorders it into a Shasha–Snir cycle; fenced, every
    /// design must keep it SC.
    pub fn store_buffering(fenced: bool) -> Scenario {
        let side = |mine: u8, other: u8| {
            let mut ops = vec![Op::Store { slot: mine }];
            if fenced {
                ops.push(Op::Fence);
            }
            ops.push(Op::Load { slot: other });
            ThreadSpec {
                ops,
                role: FenceRole::Critical,
            }
        };
        Scenario {
            name: if fenced { "sb-fenced" } else { "sb-unfenced" }.into(),
            threads: vec![side(0, 1), side(1, 0)],
        }
    }

    /// An obfuscated unfenced store-buffering core buried in timing
    /// padding and an innocent third thread — the explorer's shrink
    /// test-bed: it must boil this down to the two-thread, two-op core.
    pub fn store_buffering_padded() -> Scenario {
        let side = |mine: u8, other: u8, scratch: u8| ThreadSpec {
            ops: vec![
                Op::Load { slot: other },
                Op::Compute { cycles: 400 },
                Op::Store { slot: scratch },
                Op::Store { slot: mine },
                Op::Load { slot: other },
            ],
            role: FenceRole::Critical,
        };
        let bystander = ThreadSpec {
            ops: vec![
                Op::Store { slot: 4 },
                Op::Compute { cycles: 100 },
                Op::Load { slot: 5 },
            ],
            role: FenceRole::NonCritical,
        };
        Scenario {
            name: "sb-padded".into(),
            threads: vec![side(0, 1, 2), side(1, 0, 3), bystander],
        }
    }

    /// Three-thread fence cycle (paper Figures 1e/3c):
    /// `Ti: St x_i; F; Ld x_{i+1 mod 3}`.
    pub fn three_thread_cycle() -> Scenario {
        let side = |mine: u8, other: u8| ThreadSpec {
            ops: vec![Op::Store { slot: mine }, Op::Fence, Op::Load { slot: other }],
            role: FenceRole::Critical,
        };
        Scenario {
            name: "3cycle-fenced".into(),
            threads: vec![side(0, 1), side(1, 2), side(2, 0)],
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario `{}` ({} threads):", self.name, self.threads.len())?;
        for (i, t) in self.threads.iter().enumerate() {
            let ops: Vec<String> = t.ops.iter().map(|o| o.to_string()).collect();
            writeln!(f, "  T{i} [{:?}]: {}", t.role, ops.join("; "))?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Strategy combinators for generated scenarios
// ----------------------------------------------------------------------

/// Generator for random fenced-or-not thread programs: each thread is a
/// sequence of stores/loads over `slots` address slots, with a fence
/// inserted after every store when `fenced` (the conservative placement a
/// compiler enforcing SC would use).
#[derive(Clone, Copy, Debug)]
pub struct ScenarioGen {
    /// Minimum number of threads.
    pub min_threads: usize,
    /// Maximum number of threads.
    pub max_threads: usize,
    /// Max memory ops per thread (min 1).
    pub max_ops: usize,
    /// Number of address slots.
    pub slots: u8,
    /// Insert a fence after every store.
    pub fenced: bool,
}

impl ScenarioGen {
    fn ops_gen(&self) -> VecGen<PairGen<BoolGen, U8Range>> {
        vecs(pairs(bools(), u8s(0, self.slots - 1)), 1, self.max_ops)
    }

    /// Turns a raw `(is_store, slot)` list into a thread.
    pub fn thread_from_ops(&self, raw: &[(bool, u8)], role: FenceRole) -> ThreadSpec {
        let mut ops = Vec::new();
        for &(is_store, slot) in raw {
            if is_store {
                ops.push(Op::Store { slot });
                if self.fenced {
                    ops.push(Op::Fence);
                }
            } else {
                ops.push(Op::Load { slot });
            }
        }
        ThreadSpec { ops, role }
    }
}

impl Gen for ScenarioGen {
    type Value = Scenario;

    fn sample(&self, rng: &mut SimRng) -> Scenario {
        let n = usizes(self.min_threads, self.max_threads).sample(rng);
        let og = self.ops_gen();
        let threads = (0..n)
            .map(|_| self.thread_from_ops(&og.sample(rng), FenceRole::Critical))
            .collect();
        Scenario {
            name: if self.fenced { "gen-fenced" } else { "gen-unfenced" }.into(),
            threads,
        }
    }

    fn shrink(&self, v: &Scenario) -> Vec<Scenario> {
        v.shrink_candidates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::RunOutcome;

    #[test]
    fn sb_unfenced_builds_and_runs() {
        let sc = Scenario::store_buffering(false);
        assert_eq!(sc.total_ops(), 4);
        let mut m = sc.machine(FenceDesign::SPlus, Perturbation::default(), 50_000);
        assert_eq!(m.run(1_000_000), RunOutcome::Finished);
        assert!(m.scv_log().is_some());
    }

    #[test]
    fn shrink_candidates_prioritize_threads_then_ops() {
        let sc = Scenario::store_buffering_padded();
        let cands = sc.shrink_candidates();
        // The first candidates drop whole threads.
        assert_eq!(cands[0].threads.len(), sc.threads.len() - 1);
        assert_eq!(cands[1].threads.len(), sc.threads.len() - 1);
        // Later candidates drop single ops.
        assert!(cands
            .iter()
            .any(|c| c.threads.len() == sc.threads.len() && c.total_ops() == sc.total_ops() - 1));
        // Never shrink to an empty scenario or an empty thread.
        assert!(cands.iter().all(|c| !c.threads.is_empty()));
        assert!(cands.iter().all(|c| c.threads.iter().all(|t| !t.ops.is_empty())));
    }

    #[test]
    fn roles_respect_grouping_assumptions() {
        use FenceRole::{Critical, NonCritical};
        assert_eq!(
            Scenario::roles_for(FenceDesign::WsPlus, 3),
            vec![Critical, NonCritical, NonCritical]
        );
        assert_eq!(
            Scenario::roles_for(FenceDesign::SwPlus, 3),
            vec![Critical, Critical, NonCritical]
        );
        assert_eq!(
            Scenario::roles_for(FenceDesign::SwPlus, 2),
            vec![Critical, NonCritical]
        );
        assert_eq!(
            Scenario::roles_for(FenceDesign::WPlus, 2),
            vec![Critical, Critical]
        );
        assert!(Scenario::roles_for(FenceDesign::SPlus, 4)
            .iter()
            .all(|r| *r == NonCritical));
    }

    #[test]
    fn scenario_gen_is_deterministic_and_shrinks() {
        let g = ScenarioGen {
            min_threads: 2,
            max_threads: 3,
            max_ops: 6,
            slots: 4,
            fenced: true,
        };
        let a = g.sample(&mut SimRng::new(5));
        let b = g.sample(&mut SimRng::new(5));
        assert_eq!(a, b);
        assert!((2..=3).contains(&a.threads.len()));
        // Fenced generation puts a fence after every store.
        for t in &a.threads {
            for (i, op) in t.ops.iter().enumerate() {
                if matches!(op, Op::Store { .. }) {
                    assert_eq!(t.ops.get(i + 1), Some(&Op::Fence));
                }
            }
        }
        if a.threads.len() > 1 {
            assert!(!g.shrink(&a).is_empty());
        }
    }

    #[test]
    fn display_is_human_readable() {
        let sc = Scenario::store_buffering(true);
        let s = sc.to_string();
        assert!(s.contains("sb-fenced"));
        assert!(s.contains("St s0"));
        assert!(s.contains("Fence"));
        assert!(s.contains("Ld s1"));
    }
}
