//! Static fence-site metadata for the synthesis benchmarks.
//!
//! The fence-assignment synthesis engine (`crates/synth`) searches
//! per-site wf/sf choices. To prune candidates that violate a design's
//! structural constraint it needs to know, *statically*, which fence
//! sites belong to the same fence group — fences connected through
//! conflicting accesses in the Shasha-Snir store→fence→load pattern.
//!
//! A [`SiteSpec`] describes one static fence site's memory footprint:
//! the shared words it publishes before the fence (`pre_writes`) and the
//! shared words it observes after it (`post_reads`), recomputed from the
//! same deterministic [`layout`](crate::layout) allocation the workload
//! itself uses, so analysis and execution agree on every address. Only
//! accesses that can *conflict* matter; private scratch (litmus dummy
//! stores, compute) is omitted.
//!
//! [`SiteBench`] enumerates the workloads the synthesis engine targets —
//! each a paper kernel whose fences carry stable
//! [`FenceSite`] ids — and builds
//! their thread programs with the paper's hand-annotated roles as the
//! default mapping.

use asymfence::prelude::{Addr, FenceRole, FenceSite, MachineConfig, ThreadProgram};

use crate::layout::AddressAllocator;
use crate::{bakery, dcl, dekker, litmus, wsq};

/// One static fence site's identity and conflict-relevant footprint.
#[derive(Clone, Debug)]
pub struct SiteSpec {
    /// The stable site id carried by every dynamic execution.
    pub site: FenceSite,
    /// Thread the site belongs to.
    pub thread: usize,
    /// Short human label (e.g. `"owner.take"`).
    pub label: &'static str,
    /// The paper's hand-annotated role (the default strength mapping).
    pub paper_role: FenceRole,
    /// Shared words stored before the fence on its code path.
    pub pre_writes: Vec<Addr>,
    /// Shared words loaded after the fence on its code path.
    pub post_reads: Vec<Addr>,
}

/// Iterations per Dekker thread in the synthesis driver.
pub const DEKKER_ITERS: u64 = 8;
/// Lazy accesses per DCL thread in the synthesis driver.
pub const DCL_ITERS: u64 = 12;
/// Push/take (and steal) rounds per work-stealing driver thread.
pub const WSQ_ROUNDS: u64 = 12;
/// Critical sections per Bakery thread in the synthesis driver.
pub const BAKERY_ITERS: u64 = 4;

/// A synthesis-target workload: a paper kernel whose static fences carry
/// addressable [`FenceSite`] ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteBench {
    /// Store-buffering (Dekker core) litmus — Figure 1d.
    Sb,
    /// Dekker's full mutual-exclusion protocol — Figure 1a.
    Dekker,
    /// Double-checked locking, fenced variant — §4.4.
    Dcl,
    /// THE work-stealing deque, owner + thief driver — §4.1.
    Wsq,
    /// Lamport's Bakery, three participants — §4.3.
    Bakery,
}

impl SiteBench {
    /// Every synthesis benchmark, in report order.
    pub const ALL: [SiteBench; 5] = [
        SiteBench::Sb,
        SiteBench::Dekker,
        SiteBench::Dcl,
        SiteBench::Wsq,
        SiteBench::Bakery,
    ];

    /// Short name (CLI `--filter`, report rows).
    pub fn name(self) -> &'static str {
        match self {
            SiteBench::Sb => "sb",
            SiteBench::Dekker => "dekker",
            SiteBench::Dcl => "dcl",
            SiteBench::Wsq => "wsq",
            SiteBench::Bakery => "bakery",
        }
    }

    /// Cores (= threads) the benchmark needs.
    pub fn cores(self) -> usize {
        match self {
            SiteBench::Bakery => 3,
            _ => 2,
        }
    }

    /// Builds the thread programs with the paper's role annotations and
    /// sited fences. `cfg.num_cores` must equal [`SiteBench::cores`].
    pub fn programs(self, cfg: &MachineConfig, seed: u64) -> Vec<Box<dyn ThreadProgram>> {
        match self {
            SiteBench::Sb => {
                litmus::store_buffering(Some((FenceRole::Critical, FenceRole::NonCritical))).0
            }
            SiteBench::Dekker => dekker::programs(cfg, DEKKER_ITERS, seed),
            SiteBench::Dcl => dcl::programs(cfg, true, DCL_ITERS, seed),
            SiteBench::Wsq => wsq::driver_programs(cfg, WSQ_ROUNDS, seed),
            SiteBench::Bakery => {
                bakery::programs(cfg, bakery::RoleAssign::PriorityThread0, BAKERY_ITERS, seed)
            }
        }
    }

    /// The static fence sites with their conflict footprints, ascending
    /// by site id (mask bit `i` of an assignment refers to `sites[i]`).
    pub fn sites(self, cfg: &MachineConfig) -> Vec<SiteSpec> {
        match self {
            SiteBench::Sb => {
                // x = 0x00, y = 0x40 — the fixed litmus addresses.
                let x = Addr::new(0x00);
                let y = Addr::new(0x40);
                vec![
                    SiteSpec {
                        site: FenceSite(0),
                        thread: 0,
                        label: "t0.sb",
                        paper_role: FenceRole::Critical,
                        pre_writes: vec![x],
                        post_reads: vec![y],
                    },
                    SiteSpec {
                        site: FenceSite(1),
                        thread: 1,
                        label: "t1.sb",
                        paper_role: FenceRole::NonCritical,
                        pre_writes: vec![y],
                        post_reads: vec![x],
                    },
                ]
            }
            SiteBench::Dekker => {
                let mut alloc = AddressAllocator::new(cfg.line_bytes, cfg.word_bytes);
                let l = dekker::DekkerLayout::new(&mut alloc);
                let mut v = Vec::new();
                for t in 0..2 {
                    // Entry fence: the preceding exit wrote `turn` and the
                    // announce wrote `flag[me]`; afterwards the protocol
                    // reads the other flag and (on contention) `turn`.
                    v.push(SiteSpec {
                        site: dekker::entry_site(t),
                        thread: t,
                        label: if t == 0 { "t0.entry" } else { "t1.entry" },
                        paper_role: if t == 0 {
                            FenceRole::Critical
                        } else {
                            FenceRole::NonCritical
                        },
                        pre_writes: vec![l.flag[t], l.turn],
                        post_reads: vec![l.flag[1 - t], l.turn],
                    });
                    // Backoff fence: retract `flag[me]`, then spin on
                    // `turn` until the owner hands it over.
                    v.push(SiteSpec {
                        site: dekker::backoff_site(t),
                        thread: t,
                        label: if t == 0 { "t0.backoff" } else { "t1.backoff" },
                        paper_role: FenceRole::NonCritical,
                        pre_writes: vec![l.flag[t]],
                        post_reads: vec![l.turn],
                    });
                }
                v
            }
            SiteBench::Dcl => {
                let mut alloc = AddressAllocator::new(cfg.line_bytes, cfg.word_bytes);
                let l = dcl::DclLayout::new(&mut alloc);
                let mut v = Vec::new();
                for t in 0..self.cores() {
                    // Reader (acquire) fence: ld initialized → fence → ld
                    // payload. No store precedes it on its path, so it can
                    // never anchor a TSO st→ld reordering — it stays
                    // ungrouped (a refinement over the role annotation).
                    v.push(SiteSpec {
                        site: dcl::reader_site(t),
                        thread: t,
                        label: if t == 0 { "t0.read" } else { "t1.read" },
                        paper_role: FenceRole::Critical,
                        pre_writes: vec![],
                        post_reads: l.payload.to_vec(),
                    });
                    // Initializer (release) fence: st payload → fence →
                    // (publish) … ld payload on the fall-through re-read.
                    v.push(SiteSpec {
                        site: dcl::init_site(t),
                        thread: t,
                        label: if t == 0 { "t0.init" } else { "t1.init" },
                        paper_role: FenceRole::NonCritical,
                        pre_writes: l.payload.to_vec(),
                        post_reads: l.payload.to_vec(),
                    });
                }
                v.sort_by_key(|s| s.site);
                v
            }
            SiteBench::Wsq => {
                let l = wsq::driver_layout(cfg);
                vec![
                    SiteSpec {
                        site: wsq::owner_site(),
                        thread: 0,
                        label: "owner.take",
                        paper_role: FenceRole::Critical,
                        pre_writes: vec![l.tail],
                        post_reads: vec![l.head],
                    },
                    SiteSpec {
                        site: wsq::thief_site(),
                        thread: 1,
                        label: "thief.steal",
                        paper_role: FenceRole::NonCritical,
                        pre_writes: vec![l.head],
                        post_reads: vec![l.tail],
                    },
                ]
            }
            SiteBench::Bakery => {
                let n = self.cores();
                let mut alloc = AddressAllocator::new(cfg.line_bytes, cfg.word_bytes);
                let l = bakery::BakeryLayout::new(&mut alloc, n);
                const DOORWAY: [&str; 3] = ["t0.doorway", "t1.doorway", "t2.doorway"];
                const TICKET: [&str; 3] = ["t0.ticket", "t1.ticket", "t2.ticket"];
                let mut v = Vec::new();
                for t in 0..n {
                    // Doorway fence: E[i] := 1, fence, read every N[j] to
                    // pick a ticket.
                    v.push(SiteSpec {
                        site: bakery::doorway_site(t),
                        thread: t,
                        label: DOORWAY[t],
                        // PriorityThread0: thread 0 is the hot side.
                        paper_role: if t == 0 {
                            FenceRole::Critical
                        } else {
                            FenceRole::NonCritical
                        },
                        pre_writes: vec![l.entering[t]],
                        post_reads: l.number.clone(),
                    });
                    // Ticket fence: publish N[i] and clear E[i], fence,
                    // then the wait loops scan the other threads' state.
                    v.push(SiteSpec {
                        site: bakery::ticket_site(t),
                        thread: t,
                        label: TICKET[t],
                        paper_role: FenceRole::NonCritical,
                        pre_writes: vec![l.number[t], l.entering[t]],
                        post_reads: (0..n)
                            .filter(|&j| j != t)
                            .flat_map(|j| [l.entering[j], l.number[j]])
                            .collect(),
                    });
                }
                v
            }
        }
    }

    /// Parses a benchmark name.
    pub fn from_name(name: &str) -> Option<SiteBench> {
        SiteBench::ALL.into_iter().find(|b| b.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(bench: SiteBench) -> MachineConfig {
        MachineConfig::builder().cores(bench.cores()).build()
    }

    #[test]
    fn sites_are_ascending_and_unique() {
        for b in SiteBench::ALL {
            let sites = b.sites(&cfg(b));
            assert!(!sites.is_empty(), "{}", b.name());
            for w in sites.windows(2) {
                assert!(w[0].site < w[1].site, "{}: sites must ascend", b.name());
            }
        }
    }

    #[test]
    fn site_threads_stay_in_range() {
        for b in SiteBench::ALL {
            for s in b.sites(&cfg(b)) {
                assert!(s.thread < b.cores(), "{}: {}", b.name(), s.label);
            }
        }
    }

    #[test]
    fn programs_match_core_count() {
        for b in SiteBench::ALL {
            assert_eq!(b.programs(&cfg(b), 7).len(), b.cores(), "{}", b.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for b in SiteBench::ALL {
            assert_eq!(SiteBench::from_name(b.name()), Some(b));
        }
        assert_eq!(SiteBench::from_name("nope"), None);
    }
}
