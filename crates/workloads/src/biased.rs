//! Biased locking (paper §4.4): Java-monitor-style lock reservation
//! (Kawachiya et al., OOPSLA'02) expressed with asymmetric fences.
//!
//! A lock is *biased* to its dominant thread. The owner's fast path is a
//! Dekker-style handshake — store the lock word, **fence**, check for a
//! revocation request — with no atomic instruction. A contender first
//! publishes a revocation request, **fences**, and waits for the owner to
//! be out of the critical section, then competes through a CAS path.
//!
//! The owner's fence is `Critical` (weak under WS+/SW+), the revoker's is
//! `NonCritical` — the asymmetric fence group the paper's §4.4 points at.

use asymfence::prelude::{Addr, Fetch, FenceRole, RmwKind, ThreadProgram};
use asymfence_common::config::MachineConfig;
use asymfence_common::rng::SimRng;

use crate::layout::AddressAllocator;
use crate::ops::{Ops, Tag};

/// Shared words of one biased lock.
#[derive(Clone, Debug)]
pub struct BiasedLockLayout {
    /// 1 while the bias owner is inside the critical section.
    pub owner_held: Addr,
    /// Set by contenders to request revocation.
    pub revoke: Addr,
    /// CAS-acquired fallback lock used once the bias is revoked.
    pub fallback: Addr,
    /// Critical-section witness for mutual-exclusion checking.
    pub witness: Addr,
}

impl BiasedLockLayout {
    /// Allocates the lock words on isolated lines.
    pub fn new(alloc: &mut AddressAllocator) -> Self {
        BiasedLockLayout {
            owner_held: alloc.isolated_word(),
            revoke: alloc.isolated_word(),
            fallback: alloc.isolated_word(),
            witness: alloc.isolated_word(),
        }
    }
}

#[derive(Clone, Debug)]
enum BiasSt {
    Start,
    OwnerCheckRevoke { tag: Tag },
    ContendWaitOwner { tag: Tag },
    ContendLockSpin { tag: Tag },
    InCs,
    VerifyCs { tag: Tag },
    ExitCs,
    Finished,
}

/// One thread using the biased lock: thread 0 is the bias owner, the rest
/// are occasional contenders.
#[derive(Clone)]
pub struct BiasedThread {
    tid: usize,
    is_owner: bool,
    layout: BiasedLockLayout,
    iterations: u64,
    cs_compute: u64,
    gap_compute: (u64, u64),
    rng: SimRng,
    ops: Ops,
    state: BiasSt,
    via_fallback: bool,
    /// Critical sections completed.
    pub entries: u64,
    /// Observed witness corruption (must stay 0).
    pub mutex_violations: u64,
}

impl BiasedThread {
    #[allow(clippy::too_many_arguments)]
    fn new(
        tid: usize,
        is_owner: bool,
        layout: BiasedLockLayout,
        iterations: u64,
        cs_compute: u64,
        gap_compute: (u64, u64),
        rng: SimRng,
    ) -> Self {
        BiasedThread {
            tid,
            is_owner,
            layout,
            iterations,
            cs_compute,
            gap_compute,
            rng,
            ops: Ops::new(),
            state: BiasSt::Start,
            via_fallback: false,
            entries: 0,
            mutex_violations: 0,
        }
    }

    fn step(&mut self) -> bool {
        match std::mem::replace(&mut self.state, BiasSt::Finished) {
            BiasSt::Start => {
                if self.entries >= self.iterations {
                    self.state = BiasSt::Finished;
                    return false;
                }
                let gap = self.rng.range(self.gap_compute.0, self.gap_compute.1);
                self.ops.compute(gap);
                if self.is_owner {
                    // Fast path: claim, fence, check for revocation.
                    self.ops.store(self.layout.owner_held, 1);
                    self.ops.fence(FenceRole::Critical);
                    let tag = self.ops.load(self.layout.revoke);
                    self.state = BiasSt::OwnerCheckRevoke { tag };
                } else {
                    // Contend: publish the revocation request, fence, wait
                    // for the owner to leave.
                    self.ops.store(self.layout.revoke, 1);
                    self.ops.fence(FenceRole::NonCritical);
                    let tag = self.ops.load(self.layout.owner_held);
                    self.state = BiasSt::ContendWaitOwner { tag };
                }
                true
            }
            BiasSt::OwnerCheckRevoke { tag } => {
                if self.ops.take(tag) == 0 {
                    self.via_fallback = false;
                    self.state = BiasSt::InCs;
                } else {
                    // Bias revoked: back out and take the fallback path.
                    self.ops.store(self.layout.owner_held, 0);
                    let tag = self
                        .ops
                        .rmw(self.layout.fallback, RmwKind::Cas { expect: 0, new: 1 });
                    self.state = BiasSt::ContendLockSpin { tag };
                }
                true
            }
            BiasSt::ContendWaitOwner { tag } => {
                if self.ops.take(tag) != 0 {
                    self.ops.compute(20 + self.rng.below(20));
                    let tag = self.ops.load(self.layout.owner_held);
                    self.state = BiasSt::ContendWaitOwner { tag };
                } else {
                    let tag = self
                        .ops
                        .rmw(self.layout.fallback, RmwKind::Cas { expect: 0, new: 1 });
                    self.state = BiasSt::ContendLockSpin { tag };
                }
                true
            }
            BiasSt::ContendLockSpin { tag } => {
                if self.ops.take(tag) != 0 {
                    self.ops.compute(24 + self.rng.below(16));
                    let tag = self
                        .ops
                        .rmw(self.layout.fallback, RmwKind::Cas { expect: 0, new: 1 });
                    self.state = BiasSt::ContendLockSpin { tag };
                } else {
                    self.via_fallback = true;
                    self.state = BiasSt::InCs;
                }
                true
            }
            BiasSt::InCs => {
                self.ops.store(self.layout.witness, self.tid as u64 + 1);
                self.ops.compute(self.cs_compute);
                let tag = self.ops.load(self.layout.witness);
                self.state = BiasSt::VerifyCs { tag };
                true
            }
            BiasSt::VerifyCs { tag } => {
                if self.ops.take(tag) != self.tid as u64 + 1 {
                    self.mutex_violations += 1;
                }
                self.state = BiasSt::ExitCs;
                true
            }
            BiasSt::ExitCs => {
                self.ops.store(self.layout.witness, 0);
                if self.via_fallback {
                    self.ops.store(self.layout.fallback, 0);
                    if !self.is_owner {
                        // Retract the revocation request so the owner can
                        // re-bias on its next acquisition.
                        self.ops.store(self.layout.revoke, 0);
                    }
                } else {
                    self.ops.store(self.layout.owner_held, 0);
                }
                self.entries += 1;
                self.state = BiasSt::Start;
                true
            }
            BiasSt::Finished => false,
        }
    }
}

impl std::fmt::Debug for BiasedThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BiasedThread")
            .field("tid", &self.tid)
            .field("owner", &self.is_owner)
            .field("entries", &self.entries)
            .finish()
    }
}

impl ThreadProgram for BiasedThread {
    fn fetch(&mut self) -> Fetch {
        loop {
            if let Some(f) = self.ops.poll() {
                return f;
            }
            if !self.step() {
                return Fetch::Done;
            }
        }
    }

    fn deliver(&mut self, tag: u64, value: u64) {
        self.ops.deliver(tag, value);
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "biased-lock"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Builds a biased-lock workload: thread 0 owns the bias and enters the
/// critical section `owner_iters` times with short gaps; the other threads
/// contend `contender_iters` times with long gaps.
pub fn programs(
    cfg: &MachineConfig,
    owner_iters: u64,
    contender_iters: u64,
    seed: u64,
) -> Vec<Box<dyn ThreadProgram>> {
    let mut alloc = AddressAllocator::new(cfg.line_bytes, cfg.word_bytes);
    let layout = BiasedLockLayout::new(&mut alloc);
    let mut root = SimRng::new(seed ^ 0xB1A5);
    (0..cfg.num_cores)
        .map(|tid| {
            let is_owner = tid == 0;
            Box::new(BiasedThread::new(
                tid,
                is_owner,
                layout.clone(),
                if is_owner { owner_iters } else { contender_iters },
                60,
                if is_owner { (40, 120) } else { (1200, 3600) },
                root.fork(tid as u64),
            )) as Box<dyn ThreadProgram>
        })
        .collect()
}

/// Sums `(entries, violations)` over the machine's biased-lock threads.
pub fn tally(m: &asymfence::Machine) -> (u64, u64) {
    let mut entries = 0;
    let mut violations = 0;
    for i in 0..m.config().num_cores {
        if let Some(p) = m
            .thread_program(asymfence_common::ids::CoreId(i))
            .as_any()
            .downcast_ref::<BiasedThread>()
        {
            entries += p.entries;
            violations += p.mutex_violations;
        }
    }
    (entries, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::*;

    fn run(design: FenceDesign, cores: usize, owner: u64, contender: u64) -> (u64, u64) {
        let cfg = MachineConfig::builder()
            .cores(cores)
            .fence_design(design)
            .seed(4)
            .build();
        let mut m = Machine::new(&cfg);
        for p in programs(&cfg, owner, contender, 4) {
            m.add_thread(p);
        }
        assert_eq!(m.run(500_000_000), RunOutcome::Finished, "{design}");
        tally(&m)
    }

    #[test]
    fn owner_dominates_and_mutual_exclusion_holds() {
        for design in [
            FenceDesign::SPlus,
            FenceDesign::WsPlus,
            FenceDesign::SwPlus,
            FenceDesign::WPlus,
        ] {
            let (entries, violations) = run(design, 3, 40, 3);
            assert_eq!(entries, 40 + 2 * 3, "{design}");
            assert_eq!(violations, 0, "{design}: mutual exclusion broken");
        }
    }

    #[test]
    fn weak_owner_fence_speeds_up_the_fast_path() {
        let cycles = |design| {
            let cfg = MachineConfig::builder()
                .cores(2)
                .fence_design(design)
                .seed(9)
                .build();
            let mut m = Machine::new(&cfg);
            // Give the owner WB pressure: stores before each acquisition
            // come from the gap compute in a real program; here the fast
            // path cost itself is what differs.
            for p in programs(&cfg, 300, 2, 9) {
                m.add_thread(p);
            }
            assert_eq!(m.run(500_000_000), RunOutcome::Finished);
            let s = m.stats();
            (m.now(), s.aggregate().fence_stall_cycles)
        };
        let (t_s, _stall_s) = cycles(FenceDesign::SPlus);
        let (t_w, _stall_w) = cycles(FenceDesign::WsPlus);
        // The contender's strong fence may absorb bounce time (that is
        // the design: the rare thread pays); what matters is that the
        // owner-dominated total does not regress.
        assert!(
            t_w <= t_s + t_s / 10,
            "WS+ ({t_w}) must not be slower than S+ ({t_s})"
        );
    }
}
