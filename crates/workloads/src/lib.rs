//! Fence-intensive workloads for the `asymfence` simulator.
//!
//! These are the paper's three evaluation groups plus the extra idioms of
//! §4, all driving the *real* synchronization protocols over simulated
//! shared memory:
//!
//! * [`cilk`] — Cilk-style work stealing over the THE deque ([`wsq`]),
//!   profiles for the ten CilkApps.
//! * [`tlrw`] + [`ustm`] — the RSTM TLRW read/write-lock STM and its ten
//!   microbenchmarks.
//! * [`stamp`] — STAMP application profiles over TLRW.
//! * [`bakery`] — Lamport's Bakery lock (paper §4.3).
//! * [`biased`] — biased locking / lock reservation (paper §4.4).
//! * [`dcl`] — double-checked locking (paper §4.4).
//! * [`dekker`] — Dekker's full mutual-exclusion protocol (Figure 1a).
//! * [`peterson`] — Peterson's lock with **no** fences: the
//!   whole-program analyzer's acid test.
//! * [`spsc`] — Lamport's SPSC ring buffer (fence-free under TSO: the
//!   negative control, and a coherence streaming stress).
//! * [`litmus`] — the paper's figure-by-figure SCV/deadlock scenarios.
//!
//! Shared infrastructure: [`ops`] (micro-op queues for state-machine
//! programs), [`layout`] (address-space carving), [`sites`] (static
//! fence-site footprints for the synthesis engine), and [`unannot`]
//! (fence-free kernel builders for the whole-program analyzer).

pub mod bakery;
pub mod biased;
pub mod cilk;
pub mod dcl;
pub mod dekker;
pub mod layout;
pub mod litmus;
pub mod ops;
pub mod peterson;
pub mod sites;
pub mod spsc;
pub mod stamp;
pub mod tlrw;
pub mod unannot;
pub mod ustm;
pub mod wsq;
