//! Cilk-style work-stealing workloads (the paper's *CilkApps* group).
//!
//! Each worker owns a THE deque ([`crate::wsq`]) and runs the classic
//! loop: take a task from its own tail; on an empty deque, steal from a
//! random victim's head. Tasks form a deterministic spawn tree whose
//! shape and per-task work are derived from the task id by hashing, so an
//! execution is reproducible regardless of which thread runs which task.
//!
//! The application *kernels* (cholesky's factorization, fft's butterflies,
//! …) are replaced by calibrated profiles — per-task compute length and a
//! stream of store misses through a larger-than-L1 scratch region — which
//! reproduces the paper's fence economics: at `take()`'s fence the write
//! buffer holds several missed stores, so a conventional fence stalls for
//! on the order of the paper's measured 200 cycles while a weak fence
//! hides the drain. See DESIGN.md for the substitution rationale.

use asymfence::prelude::{Addr, Fetch, ThreadProgram};
use asymfence_common::rng::{hash64, SimRng};

use crate::layout::{AddressAllocator, Scratch};
use crate::ops::{Ops, Tag};
use crate::wsq::{push, DequeLayout, Steal, StealOutcome, Take, TakeOutcome};

/// The ten applications of the paper's CilkApps group, as spawn-tree +
/// task-work profiles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum CilkApp {
    Bucket,
    Cholesky,
    Cilksort,
    Fft,
    Fib,
    Heat,
    Knapsack,
    Lu,
    Matmul,
    Plu,
}

impl CilkApp {
    /// All apps, in the paper's Figure 8 order.
    pub const ALL: [CilkApp; 10] = [
        CilkApp::Bucket,
        CilkApp::Cholesky,
        CilkApp::Cilksort,
        CilkApp::Fft,
        CilkApp::Fib,
        CilkApp::Heat,
        CilkApp::Knapsack,
        CilkApp::Lu,
        CilkApp::Matmul,
        CilkApp::Plu,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CilkApp::Bucket => "bucket",
            CilkApp::Cholesky => "cholesky",
            CilkApp::Cilksort => "cilksort",
            CilkApp::Fft => "fft",
            CilkApp::Fib => "fib",
            CilkApp::Heat => "heat",
            CilkApp::Knapsack => "knapsack",
            CilkApp::Lu => "lu",
            CilkApp::Matmul => "matmul",
            CilkApp::Plu => "plu",
        }
    }

    /// Profile parameters for this app.
    pub fn profile(self) -> CilkProfile {
        // Tuned so that, on the default 8-core machine under S+, the
        // group averages the paper's ~13% fence-stall share with 0.5–2
        // fences per kilo-instruction, and steals stay rare.
        match self {
            CilkApp::Bucket => CilkProfile::new(self, 3, 2, 4, 1000, 2000, 5, 4),
            CilkApp::Cholesky => CilkProfile::new(self, 4, 2, 3, 1700, 3600, 4, 6),
            CilkApp::Cilksort => CilkProfile::new(self, 5, 2, 2, 1400, 2800, 4, 5),
            CilkApp::Fft => CilkProfile::new(self, 3, 4, 2, 1200, 2500, 4, 6),
            CilkApp::Fib => CilkProfile::new(self, 7, 2, 1, 380, 760, 3, 2),
            CilkApp::Heat => CilkProfile::new(self, 3, 2, 6, 2800, 5600, 6, 8),
            CilkApp::Knapsack => CilkProfile::new(self, 6, 2, 1, 600, 1300, 3, 3),
            CilkApp::Lu => CilkProfile::new(self, 4, 2, 3, 2100, 4000, 5, 6),
            CilkApp::Matmul => CilkProfile::new(self, 2, 8, 2, 4400, 8800, 7, 10),
            CilkApp::Plu => CilkProfile::new(self, 4, 2, 3, 1900, 3800, 5, 6),
        }
    }
}

/// Spawn-tree and per-task work parameters.
#[derive(Clone, Copy, Debug)]
pub struct CilkProfile {
    /// Which app this profiles.
    pub app: CilkApp,
    /// Spawn-tree depth below the roots.
    pub depth: u8,
    /// Children per non-leaf task.
    pub fanout: u8,
    /// Root tasks seeded per worker.
    pub roots_per_worker: u64,
    /// Minimum compute units per task.
    pub compute_min: u64,
    /// Maximum compute units per task.
    pub compute_max: u64,
    /// Stores per task (streamed through the scratch region: misses).
    pub stores_per_task: u64,
    /// Loads per task.
    pub loads_per_task: u64,
}

impl CilkProfile {
    #[allow(clippy::too_many_arguments)]
    fn new(
        app: CilkApp,
        depth: u8,
        fanout: u8,
        roots_per_worker: u64,
        compute_min: u64,
        compute_max: u64,
        stores_per_task: u64,
        loads_per_task: u64,
    ) -> Self {
        CilkProfile {
            app,
            depth,
            fanout,
            roots_per_worker,
            compute_min,
            compute_max,
            stores_per_task,
            loads_per_task,
        }
    }

    /// Tasks in one root's spawn tree.
    pub fn tree_size(&self) -> u64 {
        let f = self.fanout as u64;
        if f <= 1 {
            self.depth as u64 + 1
        } else {
            (f.pow(self.depth as u32 + 1) - 1) / (f - 1)
        }
    }

    /// Total tasks across `workers` workers.
    pub fn total_tasks(&self, workers: usize) -> u64 {
        workers as u64 * self.roots_per_worker * self.tree_size()
    }
}

/// Task descriptor: depth in the high byte, unique id below.
fn task_descr(depth: u8, uid: u64) -> u64 {
    ((depth as u64) << 56) | (uid & 0x00FF_FFFF_FFFF_FFFF)
}

fn task_depth(task: u64) -> u8 {
    (task >> 56) as u8
}

fn task_uid(task: u64) -> u64 {
    task & 0x00FF_FFFF_FFFF_FFFF
}

/// Shared memory layout for one Cilk run.
#[derive(Clone, Debug)]
pub struct CilkLayout {
    deques: Vec<DequeLayout>,
    counters: Vec<Addr>,
    scratches: Vec<Addr>,
    scratch_bytes: u64,
}

impl CilkLayout {
    /// Carves one arena per worker (deque + progress counter + scratch),
    /// each aligned to `arena_align` so a worker's entire working set —
    /// and therefore a take() fence's Pending Set — lives in a single
    /// directory chunk, as a real per-thread heap arena would.
    ///
    /// # Panics
    ///
    /// Panics if an arena does not fit in one aligned chunk.
    pub fn new(
        alloc: &mut AddressAllocator,
        workers: usize,
        scratch_bytes: u64,
        arena_align: u64,
    ) -> Self {
        let mut deques = Vec::with_capacity(workers);
        let mut counters = Vec::with_capacity(workers);
        let mut scratches = Vec::with_capacity(workers);
        for _ in 0..workers {
            alloc.align_to(arena_align);
            let start = alloc.watermark().raw();
            deques.push(DequeLayout::new(alloc, 1024));
            counters.push(alloc.isolated_word());
            scratches.push(alloc.region(scratch_bytes));
            let used = alloc.watermark().raw() - start;
            assert!(
                used <= arena_align,
                "worker arena ({used} B) exceeds the interleave chunk ({arena_align} B)"
            );
        }
        CilkLayout {
            deques,
            counters,
            scratches,
            scratch_bytes,
        }
    }
}

#[derive(Clone, Debug)]
enum WState {
    Init,
    Loop,
    Taking(Take),
    Stealing { m: Steal, tries: u32 },
    CheckDone { tags: Vec<Tag> },
    Finished,
}

/// One Cilk worker thread.
#[derive(Clone)]
pub struct CilkWorker {
    tid: usize,
    profile: CilkProfile,
    layout: CilkLayout,
    expected_total: u64,
    scratch: Scratch,
    rng: SimRng,
    ops: Ops,
    state: WState,
    local_tail: u64,
    known_empty: bool,
    /// Tasks this worker executed.
    pub executed: u64,
    /// Tasks this worker obtained by stealing.
    pub stolen: u64,
    /// Successful local takes.
    pub takes: u64,
    /// Failed steal attempts.
    pub steal_failures: u64,
}

impl CilkWorker {
    fn new(
        tid: usize,
        profile: CilkProfile,
        layout: CilkLayout,
        workers: usize,
        line_bytes: u64,
        rng: SimRng,
    ) -> Self {
        let scratch = Scratch::new(layout.scratches[tid], layout.scratch_bytes, line_bytes, 8);
        let expected_total = profile.total_tasks(workers);
        CilkWorker {
            tid,
            profile,
            layout,
            expected_total,
            scratch,
            rng,
            ops: Ops::new(),
            state: WState::Init,
            local_tail: 0,
            known_empty: false,
            executed: 0,
            stolen: 0,
            takes: 0,
            steal_failures: 0,
        }
    }

    fn my_deque(&self) -> &DequeLayout {
        &self.layout.deques[self.tid]
    }

    /// Emits one task's work, pushes its children, bumps the counter.
    fn exec_task(&mut self, task: u64) {
        let uid = task_uid(task);
        let depth = task_depth(task);
        let h = hash64(uid);
        let p = self.profile;
        let span = p.compute_max - p.compute_min + 1;
        let compute = p.compute_min + h % span;

        for i in 0..p.loads_per_task {
            let a = self.scratch.next().offset(8 * (i % 2));
            self.ops.load_untagged(a);
        }
        self.ops.compute(compute);
        for i in 0..p.stores_per_task {
            let a = self.scratch.next();
            self.ops.store(a, h ^ i);
        }
        if depth < p.depth {
            let deque = self.my_deque().clone();
            for i in 0..p.fanout as u64 {
                let child = task_descr(depth + 1, hash64(uid ^ (i + 1)));
                self.local_tail = push(&deque, self.local_tail, child, &mut self.ops);
            }
            self.known_empty = false;
        }
        self.executed += 1;
        let counter = self.layout.counters[self.tid];
        self.ops.store(counter, self.executed);
    }

    /// Advances the workload state machine. Returns `false` when done.
    fn step(&mut self) -> bool {
        match std::mem::replace(&mut self.state, WState::Finished) {
            WState::Init => {
                let deque = self.my_deque().clone();
                for i in 0..self.profile.roots_per_worker {
                    let uid = hash64(((self.tid as u64) << 32) ^ i ^ 0xC11C);
                    let root = task_descr(0, uid);
                    self.local_tail = push(&deque, self.local_tail, root, &mut self.ops);
                }
                self.state = WState::Loop;
                true
            }
            WState::Loop => {
                if !self.known_empty && self.local_tail > 0 {
                    let deque = self.my_deque().clone();
                    let take = Take::start(&deque, self.local_tail, &mut self.ops);
                    self.state = WState::Taking(take);
                } else {
                    let m = self.start_steal();
                    self.state = WState::Stealing { m, tries: 0 };
                }
                true
            }
            WState::Taking(mut take) => {
                match take.poll(&mut self.ops) {
                    None => self.state = WState::Taking(take),
                    Some(TakeOutcome::Got { task, new_tail }) => {
                        self.local_tail = new_tail;
                        self.takes += 1;
                        self.exec_task(task);
                        self.state = WState::Loop;
                    }
                    Some(TakeOutcome::Empty { new_tail }) => {
                        self.local_tail = new_tail;
                        self.known_empty = true;
                        self.state = WState::Loop;
                    }
                }
                true
            }
            WState::Stealing { mut m, tries } => {
                match m.poll(&mut self.ops) {
                    None => self.state = WState::Stealing { m, tries },
                    Some(StealOutcome::Got { task }) => {
                        self.stolen += 1;
                        self.exec_task(task);
                        self.state = WState::Loop;
                    }
                    Some(StealOutcome::Empty) => {
                        self.steal_failures += 1;
                        if tries + 1 >= self.layout.deques.len() as u32 {
                            // All victims empty: check global termination.
                            let tags = (0..self.layout.counters.len())
                                .map(|i| self.ops.load(self.layout.counters[i]))
                                .collect();
                            self.state = WState::CheckDone { tags };
                        } else {
                            let m = self.start_steal();
                            self.state = WState::Stealing { m, tries: tries + 1 };
                        }
                    }
                }
                true
            }
            WState::CheckDone { tags } => {
                let total: u64 = tags.into_iter().map(|t| self.ops.take(t)).sum();
                if total >= self.expected_total {
                    self.state = WState::Finished;
                    false
                } else {
                    self.ops.compute(200); // idle backoff before retrying
                    self.state = WState::Loop;
                    true
                }
            }
            WState::Finished => false,
        }
    }

    fn start_steal(&mut self) -> Steal {
        let n = self.layout.deques.len() as u64;
        let mut victim = self.rng.below(n) as usize;
        if victim == self.tid {
            victim = (victim + 1) % n as usize;
        }
        Steal::start(&self.layout.deques[victim], &mut self.ops)
    }
}

impl std::fmt::Debug for CilkWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CilkWorker")
            .field("tid", &self.tid)
            .field("app", &self.profile.app.name())
            .field("executed", &self.executed)
            .finish()
    }
}

impl ThreadProgram for CilkWorker {
    fn fetch(&mut self) -> Fetch {
        loop {
            if let Some(f) = self.ops.poll() {
                return f;
            }
            if !self.step() {
                return Fetch::Done;
            }
        }
    }

    fn deliver(&mut self, tag: u64, value: u64) {
        self.ops.deliver(tag, value);
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        self.profile.app.name()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Installs one Cilk application on a machine: allocates the layout,
/// warms the scratch regions into the L2 (Cilk programs initialize their
/// arrays before the parallel phase), and adds one worker per core.
///
/// # Panics
///
/// Panics if the machine already has threads.
pub fn setup(m: &mut asymfence::Machine, app: CilkApp, seed: u64) {
    let cfg = m.config().clone();
    let (progs, layout) = build(app, &cfg, seed);
    for base in &layout.scratches {
        let mut a = *base;
        let end = base.offset(layout.scratch_bytes);
        while a < end {
            m.warm_memory(a, 0);
            a = a.offset(cfg.line_bytes);
        }
    }
    for p in progs {
        m.add_thread(p);
    }
}

fn build(
    app: CilkApp,
    cfg: &asymfence_common::config::MachineConfig,
    seed: u64,
) -> (Vec<Box<dyn ThreadProgram>>, CilkLayout) {
    let workers = cfg.num_cores;
    let profile = app.profile();
    let mut alloc = AddressAllocator::new(cfg.line_bytes, cfg.word_bytes);
    // Scratch sized 2x the L1 so the store stream always misses the L1.
    let layout = CilkLayout::new(&mut alloc, workers, 2 * cfg.l1_bytes, cfg.interleave_bytes());
    let mut root_rng = SimRng::new(seed ^ hash64(app as u64));
    let progs = (0..workers)
        .map(|tid| {
            let rng = root_rng.fork(tid as u64);
            Box::new(CilkWorker::new(
                tid,
                profile,
                layout.clone(),
                workers,
                cfg.line_bytes,
                rng,
            )) as Box<dyn ThreadProgram>
        })
        .collect();
    (progs, layout)
}

/// Builds the worker programs for one Cilk application run.
///
/// # Examples
///
/// ```
/// use asymfence::prelude::*;
/// use asymfence_workloads::cilk::{self, CilkApp};
///
/// let cfg = MachineConfig::builder().cores(2).build();
/// let mut m = Machine::new(&cfg);
/// for p in cilk::programs(CilkApp::Fib, &cfg, 7) {
///     m.add_thread(p);
/// }
/// assert_eq!(m.run(50_000_000), RunOutcome::Finished);
/// ```
pub fn programs(
    app: CilkApp,
    cfg: &asymfence_common::config::MachineConfig,
    seed: u64,
) -> Vec<Box<dyn ThreadProgram>> {
    build(app, cfg, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::*;

    #[test]
    fn tree_size_math() {
        let p = CilkApp::Fib.profile();
        assert_eq!(p.fanout, 2);
        assert_eq!(p.tree_size(), (1 << (p.depth as u32 + 1)) - 1);
        let m = CilkApp::Matmul.profile();
        assert_eq!(m.tree_size(), 1 + 8 + 64);
    }

    #[test]
    fn task_descriptor_round_trip() {
        let t = task_descr(5, 0x123456789A);
        assert_eq!(task_depth(t), 5);
        assert_eq!(task_uid(t), 0x123456789A);
    }

    #[test]
    fn fib_runs_to_completion_and_executes_every_task() {
        let cfg = MachineConfig::builder().cores(4).build();
        let mut m = Machine::new(&cfg);
        for p in programs(CilkApp::Fib, &cfg, 42) {
            m.add_thread(p);
        }
        assert_eq!(m.run(100_000_000), RunOutcome::Finished);
        let expected = CilkApp::Fib.profile().total_tasks(4);
        let executed: u64 = (0..4)
            .map(|i| {
                m.thread_program(CoreId(i))
                    .as_any()
                    .downcast_ref::<CilkWorker>()
                    .expect("cilk worker")
                    .executed
            })
            .sum();
        assert_eq!(executed, expected, "every task ran exactly once");
        let s = m.stats();
        assert!(s.aggregate().sf_count + s.aggregate().wf_count > 0);
    }

    #[test]
    fn stealing_happens_but_is_rare() {
        let cfg = MachineConfig::builder().cores(4).build();
        let mut m = Machine::new(&cfg);
        for p in programs(CilkApp::Cholesky, &cfg, 3) {
            m.add_thread(p);
        }
        assert_eq!(m.run(200_000_000), RunOutcome::Finished);
        let (mut stolen, mut executed) = (0u64, 0u64);
        for i in 0..4 {
            let w = m
                .thread_program(CoreId(i))
                .as_any()
                .downcast_ref::<CilkWorker>()
                .unwrap();
            stolen += w.stolen;
            executed += w.executed;
        }
        assert_eq!(executed, CilkApp::Cholesky.profile().total_tasks(4));
        assert!(
            (stolen as f64) < 0.25 * executed as f64,
            "stealing should be the uncommon path: {stolen}/{executed}"
        );
    }

    #[test]
    fn weak_fences_reduce_fence_stall_for_fib() {
        let run = |design: FenceDesign| {
            let cfg = MachineConfig::builder()
                .cores(4)
                .fence_design(design)
                .build();
            let mut m = Machine::new(&cfg);
            for p in programs(CilkApp::Fib, &cfg, 11) {
                m.add_thread(p);
            }
            assert_eq!(m.run(100_000_000), RunOutcome::Finished);
            m.stats()
        };
        let s_plus = run(FenceDesign::SPlus);
        let ws_plus = run(FenceDesign::WsPlus);
        assert!(
            s_plus.fence_stall_cycles() > 0,
            "S+ must show fence stall on fib"
        );
        assert!(
            ws_plus.fence_stall_cycles() < s_plus.fence_stall_cycles(),
            "WS+ must reduce fence stall: {} vs {}",
            ws_plus.fence_stall_cycles(),
            s_plus.fence_stall_cycles()
        );
    }
}
